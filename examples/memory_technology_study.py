"""Memory-technology study: where should the weights live?

The paper feeds SuperNPU from room-temperature DRAM, so off-chip
accesses are slow but their heat is rejected for free at 300 K.  The
component registry lets us re-run the Fig. 21 resource-balancing sweep
with the memory moved down the cryostat: LN2-stage DRAM behind a
4K-to-77K link, and chip-stage cryoCMOS SRAM fed by chip-to-chip PTLs.
Colder memory is faster and cheaper per access — but every joule it
dissipates is multiplied by its stage's cooling factor (400x at 4.2 K,
12x at 77 K, 1x at ambient), so the throughput winner and the
wall-power winner diverge.

Run:  python examples/memory_technology_study.py
"""

from collections import defaultdict

from repro.components.study import memory_technology_study


def main() -> None:
    points = memory_technology_study()

    print(f"{'memory':>14s} {'link':>14s} {'width':>5s} {'batch':>5s} "
          f"{'TMAC/s':>8s} {'chip W':>9s} {'wall W':>10s} "
          f"{'GMAC/J wall':>12s}")
    by_technology = defaultdict(list)
    for p in points:
        by_technology[p.memory_technology].append(p)
        print(f"{p.memory_technology:>14s} {p.link_technology:>14s} "
              f"{p.width:5d} {p.batch:5d} {p.mac_per_s / 1e12:8.1f} "
              f"{p.dissipated_w:9.1f} {p.wall_power_w:10.0f} "
              f"{p.mac_per_joule_wall / 1e9:12.2f}")

    fastest = max(points, key=lambda p: p.mac_per_s)
    frugal = max(points, key=lambda p: p.mac_per_joule_wall)
    print(f"\nThroughput winner: {fastest.memory_technology} at width "
          f"{fastest.width} ({fastest.mac_per_s / 1e12:.1f} TMAC/s) — "
          f"cold memory removes the off-chip bandwidth wall.")
    print(f"Wall-efficiency winner: {frugal.memory_technology} at width "
          f"{frugal.width} ({frugal.mac_per_joule_wall / 1e9:.2f} GMAC/J) "
          f"— per-stage cooling factors decide, not access energy alone.")
    for technology, rows in sorted(by_technology.items()):
        stages = defaultdict(float)
        for p in rows:
            for stage, watts in p.dissipation_by_stage_w.items():
                stages[stage] += watts / len(rows)
        split = ", ".join(f"{watts:.1f} W @ {stage:g} K"
                          for stage, watts in sorted(stages.items()))
        print(f"  {technology}: mean dissipation {split}")


if __name__ == "__main__":
    main()
