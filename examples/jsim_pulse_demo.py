"""SFQ device physics demo (paper Fig. 1) on the RCSJ circuit simulator.

Launches a single flux quantum down a Josephson transmission line, then
exercises the superconductor-ring storage element: a data pulse stores one
quantum, a later clock pulse releases it — the working principle of the
SFQ DFF.

Run:  python examples/jsim_pulse_demo.py
"""

import numpy as np

from repro.device.constants import PHI0_MV_PS
from repro.jsim.circuits import build_jtl, build_storage_loop, drive_jtl
from repro.jsim.elements import CurrentSource
from repro.jsim.measure import peak_voltage_mv, switching_times_ps
from repro.jsim.solver import TransientSolver
from repro.jsim.stimuli import gaussian_pulse


def jtl_demo() -> None:
    print("1. SFQ pulse propagation down an 8-stage JTL")
    jtl = build_jtl(8)
    drive_jtl(jtl, pulse_time_ps=40.0)
    result = TransientSolver(jtl.circuit).run(80.0)

    arrivals = [switching_times_ps(result, node)[0] for node in jtl.nodes]
    for index, t in enumerate(arrivals):
        print(f"   J{index}: switches at {t:6.2f} ps")
    hops = len(arrivals) - 1
    print(f"   per-stage delay: {(arrivals[-1] - arrivals[0]) / hops:.2f} ps")

    node = jtl.nodes[4]
    mask = result.time_ps > 30.0
    area = float(np.trapezoid(result.node_voltage_mv(node)[mask], result.time_ps[mask]))
    print(f"   pulse peak: {1e3 * peak_voltage_mv(result, node):.0f} uV, "
          f"area {area:.3f} mV*ps vs Phi0 = {PHI0_MV_PS:.3f} mV*ps")


def dff_demo() -> None:
    print("\n2. Superconductor-ring storage (the Fig. 1 DFF principle)")
    loop = build_storage_loop()
    loop.circuit.add_source(CurrentSource(loop.input_node, gaussian_pulse(40.0), "data"))
    loop.circuit.add_source(CurrentSource(loop.output_node, gaussian_pulse(60.0), "clock"))
    result = TransientSolver(loop.circuit).run(90.0)

    data_in = switching_times_ps(result, loop.input_node)
    data_out = switching_times_ps(result, loop.output_node)
    print(f"   data pulse stored at  {data_in[0]:6.2f} ps  (input junction switches)")
    print(f"   clock applied at       60.00 ps")
    print(f"   output released at    {data_out[0]:6.2f} ps  (logical '1' read out)")


if __name__ == "__main__":
    jtl_demo()
    dff_demo()
