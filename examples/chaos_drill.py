"""Chaos drill: prove the execution layer recovers from injected failures.

Runs the same four-point batch sweep four times and demands bitwise-equal
results every time:

1. a clean serial baseline;
2. under SIGKILLed workers — the process pool dies twice and the runner
   degrades to serial execution;
3. interrupted mid-sweep and resumed from its checkpoint journal,
   executing only the remaining tasks;
4. against a cache with a poisoned entry, which is quarantined and
   re-simulated.

This is the CI chaos smoke step (see ``docs/ROBUSTNESS.md``); run it
locally with ``PYTHONPATH=src python examples/chaos_drill.py``.
"""

import sys
import tempfile
from pathlib import Path

from repro import api, obs
from repro.core.chaos import ANY_TASK, ChaosInjector, FaultSpec, corrupt_cache_entry
from repro.core.jobs import JobRunner, ResultCache, SimTask
from repro.core.resilience import NO_RETRY, RetryPolicy, SweepCheckpoint
from repro.errors import WorkerError

FAST_RETRY = RetryPolicy(max_retries=3, base_delay_s=0.0, jitter=0.0)


def main() -> int:
    obs.enable()
    design = api.design("supernpu")
    network = api.workload("mobilenet")
    tasks = [SimTask(design, network, batch=b) for b in (1, 2, 4, 8)]

    print("chaos drill: SuperNPU x MobileNet, batches 1/2/4/8")
    print("== phase 1: clean serial baseline")
    clean = JobRunner(jobs=1).run(tasks)
    for run in clean:
        print(f"   batch {run.batch}: {run.total_cycles:,} cycles")

    with tempfile.TemporaryDirectory(prefix="chaos-drill-") as scratch:
        scratch = Path(scratch)

        print("== phase 2: SIGKILLed workers -> degrade to serial")
        chaos = ChaosInjector(scratch / "sigkill",
                              {ANY_TASK: FaultSpec("sigkill", times=3)})
        runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY)
        assert runner.run(tasks) == clean, "degraded results differ!"
        assert runner.stats.degraded == 1, "the pool should have died twice"
        print(f"   {runner.stats.describe()}")

        print("== phase 3: interrupted sweep resumes from its checkpoint")
        cache = ResultCache(scratch / "cache")
        journal = scratch / "sweep.journal"
        chaos = ChaosInjector(scratch / "fatal",
                              {tasks[-1].key(): FaultSpec("exception", times=9)})
        try:
            JobRunner(jobs=1, cache=cache, checkpoint=SweepCheckpoint(journal),
                      chaos=chaos, retry=NO_RETRY).run(tasks)
            raise AssertionError("the injected fault should have interrupted the sweep")
        except WorkerError as error:
            print(f"   interrupted as planned: {error.code}")
        resumed = JobRunner(jobs=1, cache=cache,
                            checkpoint=SweepCheckpoint(journal))
        assert resumed.run(tasks) == clean, "resumed results differ!"
        assert resumed.stats.executed == 1, "resume must only run remaining tasks"
        print(f"   {resumed.stats.describe()}")

        print("== phase 4: poisoned cache entry is quarantined")
        corrupt_cache_entry(cache, tasks[0].key(), "poisoned_payload")
        repaired = JobRunner(jobs=1, cache=cache)
        assert repaired.run(tasks) == clean, "post-quarantine results differ!"
        stats = cache.stats()
        assert stats.quarantined == 1, "the poisoned entry should be quarantined"
        print(f"   {repaired.stats.describe()}; quarantined {stats.quarantined}")

    counters = obs.metrics().snapshot()["counters"]
    print("== resilience counters")
    for name in ("jobs.retries", "jobs.pool_restarts", "jobs.degraded",
                 "jobs.resumed", "jobs.cache.quarantined"):
        print(f"   {name:24s}: {counters.get(name, 0)}")
    print("chaos drill passed: all recovery paths reproduce the clean run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
