"""Device bring-up: the lab workflow behind the paper's gate-level layer.

Walks the full circuit-level methodology on the RCSJ simulator: measure a
JTL's wire delay, extract a storage element's setup time, map a circuit's
DC-bias operating margins, tune the on-chip clock source to the NPU's
52.6 GHz, and time a passive transmission line — then compare each number
against the cell-library constant the architecture model uses.

Run:  python examples/device_bringup.py     (takes ~15 s)
"""

from repro.estimator.arch_level import PTL_DELAY_PS_PER_MM
from repro.jsim.circuits import ptl_delay_ps_per_mm, tune_clock_generator
from repro.jsim.extract import bias_margins, extract_jtl_delay_ps, extract_setup_time_ps
from repro.timing.clocking import DEFAULT_WIRE_DELAY_PS


def main() -> None:
    print("1. JTL wire delay")
    measured = extract_jtl_delay_ps()
    print(f"   measured {measured:.2f} ps/stage  "
          f"(cell library wire hop: {DEFAULT_WIRE_DELAY_PS} ps)")

    print("\n2. Storage-loop setup time (data-before-clock separation)")
    setup = extract_setup_time_ps(resolution_ps=0.5)
    print(f"   minimum working separation: {setup:.1f} ps")

    print("\n3. JTL DC-bias operating margins")
    margins = bias_margins(resolution=0.02)
    low, high = margins.plus_minus_percent
    print(f"   operates from {margins.low_fraction:.2f} Ic to "
          f"{margins.high_fraction:.2f} Ic  ({low:+.0f}% / {high:+.0f}% of nominal)")

    print("\n4. On-chip clock source tuned to the NPU clock")
    bias, frequency = tune_clock_generator(52.6, tolerance_ghz=2.0)
    print(f"   bias {bias:.1f} uA -> {frequency:.1f} GHz "
          "(target 52.6 GHz, Table I)")

    print("\n5. Passive transmission line flight time")
    delay = ptl_delay_ps_per_mm()
    print(f"   measured {delay:.1f} ps/mm  "
          f"(architecture model constant: {PTL_DELAY_PS_PER_MM} ps/mm)")


if __name__ == "__main__":
    main()
