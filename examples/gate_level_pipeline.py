"""Gate-level pipelining, demonstrated on real pulse logic (Fig. 2(a)).

Builds the paper's MAC datapath as an actual network of clocked SFQ gates
(AND/XOR/OR plus path-balancing DFFs), then shows the two properties the
whole architecture rests on:

1. deep pipelines cost latency, *not* throughput — a new multiply enters
   every clock;
2. the path-balancing DFFs dominate the gate count, which is why on-chip
   data movement (not logic) rules the SFQ NPU's area and power.

Run:  python examples/gate_level_pipeline.py
"""

import random

from repro.gatesim import build_mac, build_multiplier


def main() -> None:
    multiplier = build_multiplier(4)
    print("4x4-bit gate-level-pipelined multiplier")
    print(f"  gates    : {multiplier.num_gates}  {multiplier.gate_histogram()}")
    print(f"  latency  : {multiplier.latency} clocks")

    rng = random.Random(7)
    operations = [{"a": rng.randrange(16), "b": rng.randrange(16)} for _ in range(8)]
    results = multiplier.compute_stream(operations)
    print("  streaming one multiply per clock:")
    for op, result in zip(operations, results):
        marker = "ok" if result == op["a"] * op["b"] else "WRONG"
        print(f"    {op['a']:2d} x {op['b']:2d} = {result:3d}   [{marker}]")

    histogram = multiplier.gate_histogram()
    logic = histogram["AND"] + histogram["XOR"] + histogram["OR"]
    print(f"  path-balancing DFFs per logic gate: {histogram['DFF'] / logic:.1f}")

    print("\n4-bit MAC (multiplier + psum adder), accumulating like a PE:")
    mac = build_mac(4)
    accumulator = 0
    for a, b in [(9, 9), (12, 3), (5, 5)]:
        accumulator = mac.compute(a=a, b=b, c=accumulator)
        print(f"  psum <- psum + {a}*{b}  =>  {accumulator}")
    assert accumulator == 9 * 9 + 12 * 3 + 5 * 5


if __name__ == "__main__":
    main()
