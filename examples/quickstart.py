"""Quickstart: estimate SuperNPU, simulate a CNN, compare with the TPU.

Run:  python examples/quickstart.py
"""

from repro.baselines.scalesim import TPU_CORE, simulate_cmos
from repro.core.batching import paper_batch
from repro.core.designs import supernpu
from repro.device.cells import rsfq_library
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.workloads.models import resnet50


def main() -> None:
    # 1. Pick a design point and a cell library, and estimate the chip.
    config = supernpu()
    library = rsfq_library()
    estimate = estimate_npu(config, library)
    print(f"{config.name}: {estimate.frequency_ghz:.1f} GHz, "
          f"{estimate.peak_tmacs:.0f} TMAC/s peak, "
          f"{estimate.area_mm2_scaled():.0f} mm^2 (28 nm eq.), "
          f"{estimate.static_power_w:.0f} W static (RSFQ)")

    # 2. Run a workload through the cycle-level simulator.
    network = resnet50()
    batch = paper_batch(config.name, network.name)
    run = simulate(config, network, batch=batch, estimate=estimate)
    power = power_report(run, estimate)
    print(f"\n{network.name} (batch {batch}):")
    print(f"  latency     {run.latency_s * 1e6:8.1f} us")
    print(f"  throughput  {run.tmacs:8.1f} TMAC/s")
    print(f"  PE util     {100 * run.pe_utilization(estimate.peak_mac_per_s):8.1f} %")
    print(f"  chip power  {power.total_w:8.1f} W")

    # 3. Compare against the conventional TPU core.
    tpu = simulate_cmos(TPU_CORE, network, batch=paper_batch("TPU", network.name))
    print(f"\nTPU core: {tpu.tmacs:.1f} TMAC/s  ->  "
          f"SuperNPU speedup {run.mac_per_s / tpu.mac_per_s:.1f}x "
          f"(paper reports ~20x for ResNet50)")


if __name__ == "__main__":
    main()
