"""The whole paper in one run: every headline claim, regenerated and told.

Walks the paper's argument in order — device physics, the frequency story,
the bottlenecks, the optimizations, the evaluation — printing this
reproduction's numbers next to the published ones.

Run:  python examples/paper_walkthrough.py   (takes ~20 s)
"""

from repro.core.experiments import reproduce_all
from repro.core.plotting import bar_chart


def main() -> None:
    results = reproduce_all()

    print("1. SFQ circuits clock fast — until a feedback loop appears (Fig. 7c)")
    feedback = results["fig07_feedback"]
    print(f"   WS MAC {feedback['ws_ghz']:.1f} GHz vs OS MAC {feedback['os_ghz']:.1f} GHz"
          "   (paper: 66 vs 30 for the full adder)")

    print("\n2. The systolic network wins the on-chip fabric (Fig. 5)")
    at64 = results["fig05_network"]["64"]
    for name, metrics in at64.items():
        print(f"   {name:18s} {metrics['critical_path_delay_ps']:7.1f} ps, "
              f"{metrics['area_mm2']:.2f} mm^2")

    print("\n3. Without the DAU, the ifmap buffer would hold >85% duplicates (Fig. 8)")
    for network, ratio in results["fig08_duplication"].items():
        print(f"   {network:12s} {100 * ratio:5.1f}% duplicated")

    print("\n4. The naive design drowns in preparation (Fig. 15)")
    breakdown = results["fig15_cycle_breakdown"]["VGG16"]
    print(f"   VGG16 on Baseline: {100 * breakdown['preparation']:.1f}% preparation, "
          f"{100 * breakdown['computation']:.1f}% computation  (paper: >90% prep)")

    print("\n5. The optimizations stack up (Fig. 23, speedup vs the TPU core)")
    speedups = results["fig23_performance"]
    chart = {design: row["Average"] for design, row in speedups.items()}
    print(bar_chart(chart, width=40, unit="x"))
    print("   (paper: 0.4x / 7.7x / 17.3x / 23x)")

    print("\n6. Power closes the argument (Table III)")
    for label, row in results["table3_power"].items():
        print(f"   {label:30s} {row['chip_power_w']:8.2f} W chip, "
              f"{row['perf_per_watt_vs_tpu']:8.3f}x perf/W vs TPU")
    print("   (paper: RSFQ 964 W, 0.95x/0.002x; ERSFQ 1.9 W, 490x/1.23x)")


if __name__ == "__main__":
    main()
