"""Cooling study: how cryocooler efficiency moves the Table III verdict.

The paper charges 400 wall-watts per 4 K watt and considers a free-cooling
scenario.  This example sweeps the cooling factor from the Carnot bound to
pessimistic coolers and reports where RSFQ and ERSFQ SuperNPU break even
with the TPU on performance per watt.

Run:  python examples/cooling_study.py
"""

from repro.baselines.scalesim import TPU_CORE, simulate_cmos
from repro.cooling.cryocooler import Cryocooler, carnot_cooling_factor
from repro.core.designs import supernpu
from repro.core.metrics import efficiency_row
from repro.device.cells import Technology, library_for
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.workloads.models import resnet50


def main() -> None:
    network = resnet50()
    tpu = simulate_cmos(TPU_CORE, network, batch=20)
    tpu_row = efficiency_row("TPU", TPU_CORE.average_power_w, tpu.mac_per_s, cooler=None)

    config = supernpu()
    chips = {}
    for technology in (Technology.RSFQ, Technology.ERSFQ):
        library = library_for(technology)
        estimate = estimate_npu(config, library)
        run = simulate(config, network, batch=30, estimate=estimate)
        chips[technology.value] = (power_report(run, estimate).total_w, run.mac_per_s)

    carnot = carnot_cooling_factor()
    print(f"Carnot bound at 4.2 K: {carnot:.0f} W/W "
          f"(the paper's 400 W/W cooler is ~{100 * carnot / 400:.0f}% of ideal)\n")
    print(f"{'cooling W/W':>12s} {'RSFQ perf/W':>14s} {'ERSFQ perf/W':>14s}   (vs TPU)")
    for factor in (carnot, 100, 200, 400, 1000, 4000):
        cooler = Cryocooler(factor=factor)
        cells = []
        for tech in ("rsfq", "ersfq"):
            chip_w, perf = chips[tech]
            row = efficiency_row(tech, chip_w, perf, cooler=cooler)
            cells.append(f"{row.normalized_to(tpu_row):13.3f}x")
        print(f"{factor:12.0f} {cells[0]:>14s} {cells[1]:>14s}")

    # Break-even cooling factor for ERSFQ: wall power where perf/W == TPU's.
    chip_w, perf = chips["ersfq"]
    breakeven = (perf / tpu_row.mac_per_joule - chip_w) / chip_w
    print(f"\nERSFQ-SuperNPU beats the TPU for any cooler better than "
          f"~{breakeven:.0f} W/W — the paper's 400 W/W plant qualifies "
          f"(Table III: 1.23x).")


if __name__ == "__main__":
    main()
