"""Co-simulation: correct answers AND cycle counts for the same network.

The full SFQ-NPU methodology in miniature — one tiny quantized CNN runs
through BOTH sides of the library:

* the *functional* side (bit-true systolic array + DAU + int8 quantizers)
  produces the actual classification outputs;
* the *performance* side (the cycle-level simulator on SuperNPU) prices
  the very same layers in cycles, microseconds and watts.

Run:  python examples/cosim_tiny_cnn.py
"""

import numpy as np

from repro.core.designs import supernpu
from repro.device.cells import ersfq_library
from repro.estimator.arch_level import estimate_npu
from repro.functional.inference import FunctionalNPU, TinyQuantCNN, top1_agreement
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.workloads.layers import ConvLayer, fc_layer
from repro.workloads.models import Network


def performance_model_of(model: TinyQuantCNN, input_size: int = 12) -> Network:
    """Describe the TinyQuantCNN's MAC layers for the cycle simulator."""
    half = input_size // 2
    layers = (
        ConvLayer("conv1", 1, input_size, input_size,
                  model.conv1.weights.shape[0], 3, 3, padding=1),
        ConvLayer("conv2", model.conv1.weights.shape[0], half, half,
                  model.conv2.weights.shape[0], 3, 3, padding=1),
        fc_layer("head", model.head.weights.shape[1], model.head.weights.shape[0]),
    )
    return Network("TinyQuantCNN", layers)


def main() -> None:
    model = TinyQuantCNN.random(seed=3)
    npu = FunctionalNPU(array_rows=32, array_cols=8)
    rng = np.random.default_rng(11)
    images = rng.normal(0, 1, size=(12, 1, 12, 12))

    print("Functional side (bit-true int8 systolic array):")
    agreement = top1_agreement(model, npu, images)
    logits = model.forward_systolic(images[0], npu)
    print(f"  top-1 agreement with float reference: {100 * agreement:.0f}%")
    print(f"  image 0 logits (first 4): {np.round(logits[:4], 2)}")

    print("\nPerformance side (cycle-level SuperNPU, ERSFQ):")
    network = performance_model_of(model)
    library = ersfq_library()
    estimate = estimate_npu(supernpu(), library)
    run = simulate(supernpu(), network, batch=len(images), estimate=estimate)
    power = power_report(run, estimate)
    print(f"  {run.total_cycles:,} cycles at {run.frequency_ghz:.1f} GHz "
          f"-> {run.latency_s * 1e6:.2f} us for {len(images)} images")
    print(f"  {run.tmacs:.2f} TMAC/s effective, "
          f"{power.total_w * 1e3:.1f} mW chip power (ERSFQ)")
    energy_uj = power.total_w * run.latency_s * 1e6
    print(f"  {energy_uj / len(images) * 1e3:.3f} nJ per image")


if __name__ == "__main__":
    main()
