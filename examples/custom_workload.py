"""Bring your own network: define a custom CNN and evaluate every design.

Shows the workload API (ConvLayer / fc_layer / depthwise_layer / Network)
and runs the custom model across the TPU and all four SFQ design points,
plus a functional bit-true check of one layer on the systolic-array model.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.baselines.scalesim import TPU_CORE, simulate_cmos
from repro.core.batching import derived_batch
from repro.core.designs import all_designs
from repro.device.cells import rsfq_library
from repro.estimator.arch_level import estimate_npu
from repro.functional.reference import conv2d_reference
from repro.functional.systolic import conv2d_systolic
from repro.simulator.engine import simulate
from repro.workloads.layers import ConvLayer, depthwise_layer, fc_layer
from repro.workloads.models import Network


def build_tinyedge() -> Network:
    """A small edge-vision network: conv stem, separable middle, FC head."""
    layers = (
        ConvLayer("stem", 3, 112, 112, 32, 3, 3, stride=2, padding=1),
        depthwise_layer("dw1", 32, 56),
        ConvLayer("pw1", 32, 56, 56, 64, 1, 1),
        depthwise_layer("dw2", 64, 56, stride=2),
        ConvLayer("pw2", 64, 28, 28, 128, 1, 1),
        ConvLayer("conv3", 128, 28, 28, 128, 3, 3, padding=1),
        fc_layer("head", 128 * 14 * 14, 100),
    )
    return Network("TinyEdge", layers)


def main() -> None:
    network = build_tinyedge()
    print(f"{network.name}: {len(network.layers)} layers, "
          f"{network.total_macs / 1e6:.0f} MMACs/image, "
          f"{network.total_weight_bytes / 1e6:.1f} MB of weights\n")

    library = rsfq_library()
    tpu = simulate_cmos(TPU_CORE, network, batch=8)
    print(f"{'TPU':14s} {tpu.tmacs:8.2f} TMAC/s   (reference)")
    for config in all_designs():
        estimate = estimate_npu(config, library)
        batch = derived_batch(config.with_updates(name=f"{config.name}*"), network)
        run = simulate(config, network, batch=batch, estimate=estimate)
        print(f"{config.name:14s} {run.tmacs:8.2f} TMAC/s   "
              f"({run.mac_per_s / tpu.mac_per_s:5.1f}x TPU, batch {batch})")

    # Bit-true sanity: the systolic dataflow computes the stem correctly.
    rng = np.random.default_rng(0)
    ifmap = rng.integers(-8, 8, size=(3, 16, 16)).astype(np.int64)
    weights = rng.integers(-4, 4, size=(8, 3, 3, 3)).astype(np.int64)
    reference = conv2d_reference(ifmap, weights, stride=2, padding=1)
    systolic = conv2d_systolic(ifmap, weights, array_rows=16, array_cols=4,
                               stride=2, padding=1)
    assert np.array_equal(reference, systolic)
    print("\nFunctional check: systolic-array output == direct convolution  [OK]")


if __name__ == "__main__":
    main()
