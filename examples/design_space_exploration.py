"""Design-space exploration: rebuild the paper's Section V study.

Sweeps buffer division (Fig. 20), PE-array width (Fig. 21) and registers
per PE (Fig. 22) on a reduced workload set, then prints the winning
configuration next to the published SuperNPU.

Run:  python examples/design_space_exploration.py
"""

from repro.core.designs import supernpu
from repro.core.optimizer import (
    balanced_buffer_bytes,
    buffer_sweep,
    register_sweep,
    resource_sweep,
)
from repro.uarch.config import MIB
from repro.workloads.models import alexnet, mobilenet, resnet50


def main() -> None:
    workloads = [alexnet(), resnet50(), mobilenet()]

    print("Step 1 — buffer integration + division (Fig. 20):")
    for point in buffer_sweep(workloads=workloads, divisions=(2, 16, 64, 256)):
        m = point.metrics
        print(f"  {point.label:26s} single {m['single_batch']:6.2f}x  "
              f"max {m['max_batch']:6.2f}x  area {m['area']:5.2f}x")

    print("\nStep 2 — resource balancing (Fig. 21):")
    for point in resource_sweep(workloads=workloads, widths=(256, 128, 64, 32)):
        m = point.metrics
        print(f"  width {point.label:14s} perf {m['max_batch_added_buffer']:6.1f}x  "
              f"(fixed buffer {m['max_batch_fixed_buffer']:6.1f}x)")

    print("\nStep 3 — registers per PE (Fig. 22):")
    for width, rows in register_sweep(workloads=workloads, widths=(64, 128),
                                      registers=(1, 4, 8, 16)).items():
        series = "  ".join(f"{p.metrics['speedup']:.1f}x" for p in rows)
        print(f"  width {width:3d}: {series}")

    chosen = supernpu()
    print(f"\nPaper's pick: {chosen.pe_array_width}-wide array, "
          f"{balanced_buffer_bytes(64) // MIB} MB balanced buffers, "
          f"{chosen.registers_per_pe} registers per PE -> SuperNPU")


if __name__ == "__main__":
    main()
