"""Ablation — timing-variation yield of the 52.6 GHz clock.

The paper rejects aggressive clock skewing partly because it "lowers the
yield of fabrication" (Section III-A).  This bench Monte-Carlos per-cell
timing spread and reports the clock achievable at high yield.
"""

from _bench_utils import print_table

from repro.core.designs import supernpu
from repro.estimator.variation import monte_carlo_frequency

SIGMAS = (0.02, 0.05, 0.10)
TRIALS = 40


def run_variation(library):
    config = supernpu()
    return {
        sigma: monte_carlo_frequency(config, sigma=sigma, trials=TRIALS,
                                     seed=2024, library=library)
        for sigma in SIGMAS
    }


def test_variation_yield(benchmark, rsfq):
    reports = benchmark(run_variation, rsfq)

    rows = [
        (
            f"{100 * sigma:.0f}%",
            f"{report.nominal_ghz:.1f}",
            f"{report.mean_ghz:.1f}",
            f"{report.worst_ghz:.1f}",
            f"{report.frequency_at_yield(0.9):.1f}",
        )
        for sigma, report in reports.items()
    ]
    print_table(
        "Timing-variation Monte Carlo (GHz)",
        ("sigma", "nominal", "mean", "worst", "f @ 90% yield"),
        rows,
    )

    for sigma, report in reports.items():
        # Variation can only cost frequency relative to nominal timing.
        assert report.worst_ghz <= report.nominal_ghz + 1e-9
        # The clock survives realistic spreads with single-digit % loss.
        assert report.frequency_at_yield(0.9) > 0.8 * report.nominal_ghz
    # Wider spread -> lower guaranteed clock.
    guaranteed = [reports[s].frequency_at_yield(0.9) for s in SIGMAS]
    assert guaranteed == sorted(guaranteed, reverse=True)
