"""Extension — throughput-vs-batch curve and its knee.

Section V-A3 equates batch size with computational intensity; this bench
draws the whole curve for SuperNPU on ResNet50 and locates the knee where
extra batching stops paying — the quantitative basis of Table II's
"maximum resident batch" policy.
"""

from _bench_utils import print_table

from repro.core.designs import supernpu
from repro.simulator.batch_sweep import batch_sweep, knee_batch
from repro.workloads.models import resnet50

BATCHES = (1, 2, 4, 8, 16, 30)


def test_multibatch_curve(benchmark, rsfq):
    points = benchmark(
        batch_sweep, supernpu(), resnet50(), BATCHES, None, rsfq
    )

    rows = [
        (
            point.batch,
            f"{point.tmacs:.1f}",
            f"{point.latency_s * 1e6:.1f}",
            f"{point.latency_per_image_s * 1e6:.1f}",
        )
        for point in points
    ]
    print_table(
        "SuperNPU / ResNet50 throughput vs batch",
        ("batch", "TMAC/s", "latency us", "us/image"),
        rows,
    )

    knee = knee_batch(points)
    print(f"\nknee batch (10% marginal-gain threshold): {knee}")

    # Batching multiplies throughput many-fold before residency limits.
    peak = max(point.mac_per_s for point in points)
    assert peak > 5 * points[0].mac_per_s
    # Per-image latency improves monotonically up to the peak batch.
    best = max(points, key=lambda p: p.mac_per_s)
    assert best.latency_per_image_s < points[0].latency_per_image_s
    # The knee sits strictly inside the sweep.
    assert BATCHES[0] <= knee <= BATCHES[-1]
