"""JSIM transient-solver hot path: the batched RK4 array-program.

Times one SFQ pulse traversing a 16-stage JTL — large enough that the
scalar per-step implementation pays its per-element scatter cost on
every RK4 stage, which is exactly what the vectorized solver folds into
precomputed incidence operators.

Set ``SUPERNPU_JSIM_SOLVER=reference`` to time the preserved scalar
implementation (:class:`repro.jsim.ScalarReferenceSolver`) instead:
``BENCH_pr8_scalar.json`` was recorded that way, and
``supernpu bench compare BENCH_pr8.json --baseline BENCH_pr8_scalar.json``
shows the before/after ratio on identical physics.
"""

from __future__ import annotations

import os

import pytest

from repro.jsim import (
    ScalarReferenceSolver,
    TransientSolver,
    build_jtl,
    drive_jtl,
    switch_count,
)

_REFERENCE = os.environ.get("SUPERNPU_JSIM_SOLVER", "") == "reference"

#: One pulse through this many junctions; duration long enough to arrive.
STAGES = 16
DURATION_PS = 75.0
BATCH = 16


def _pulsed_jtl():
    jtl = build_jtl(STAGES)
    drive_jtl(jtl, 25.0)
    return jtl


def test_jsim_solver_jtl_transient(benchmark):
    jtl = _pulsed_jtl()
    solver_cls = ScalarReferenceSolver if _REFERENCE else TransientSolver
    solver = solver_cls(jtl.circuit)
    result = benchmark(solver.run, DURATION_PS)
    # The physics sanity check: the pulse reached the far end.
    assert switch_count(result, jtl.nodes[-1]) >= 1


@pytest.mark.skipif(
    _REFERENCE, reason="the scalar reference has no batched entry point"
)
def test_jsim_solver_run_batch(benchmark):
    """Batch amortization: 16 independent transients as one stacked system."""
    jtl = _pulsed_jtl()
    solver = TransientSolver(jtl.circuit)
    results = benchmark(solver.run_batch, DURATION_PS, batch=BATCH)
    assert results.batch == BATCH
    assert switch_count(results.member(BATCH - 1), jtl.nodes[-1]) >= 1
