"""Fig. 21 — PE-array / buffer resource balancing.

Paper: shrinking the 256-wide array and reinvesting the area into on-chip
buffers (256 -> 24 MB ... 64 -> 46 MB ... 16 -> 51 MB) raises max-batch
performance to ~47x Baseline at width 128 and ~42x at width 64, with
computational intensity climbing monotonically as the array narrows.
"""

from _bench_utils import print_table

from repro.core.optimizer import balanced_buffer_bytes, resource_sweep
from repro.uarch.config import MIB

WIDTHS = (256, 128, 64, 32, 16)


def test_fig21_resource_balancing(benchmark, workloads, rsfq):
    points = benchmark(resource_sweep, workloads, rsfq, WIDTHS)

    rows = [
        (
            p.label,
            f"{p.metrics['max_batch_fixed_buffer']:.1f}x",
            f"{p.metrics['max_batch_added_buffer']:.1f}x",
            f"{p.metrics['intensity']:.0f}",
        )
        for p in points
    ]
    print_table(
        "Fig. 21: width sweep (perf normalized to Baseline; intensity = MACs/weight)",
        ("width, buffer", "fixed buffer", "added buffer", "intensity"),
        rows,
    )

    by_width = dict(zip(WIDTHS, points))
    # Narrowing the array multiplies performance despite the lower peak.
    assert by_width[64].metrics["max_batch_added_buffer"] > 10
    assert by_width[128].metrics["max_batch_added_buffer"] > 10
    # The two candidate widths the paper keeps are 128 and 64.
    best = max(WIDTHS, key=lambda w: by_width[w].metrics["max_batch_added_buffer"])
    assert best in (128, 64, 32)


def test_fig21_buffer_capacities(benchmark):
    capacities = benchmark(
        lambda: {w: balanced_buffer_bytes(w) / MIB for w in WIDTHS}
    )
    rows = [(w, f"{capacities[w]:.0f} MB") for w in WIDTHS]
    print_table("Fig. 21 x-axis: balanced buffer capacity", ("width", "buffer"), rows)

    # Paper's axis: 24 / 38 / 46 / 50 / 51 MB.
    assert capacities[256] == 24
    assert 34 <= capacities[128] <= 44
    assert 40 <= capacities[64] <= 55
    assert capacities[16] > capacities[64]
    assert capacities[16] <= 60
