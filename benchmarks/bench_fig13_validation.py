"""Fig. 13 — estimator validation against prototype measurements.

Paper: average errors of 5.6% / 1.2% / 1.3% (frequency / power / area) for
the microarchitecture prototypes and 4.7% / 2.3% / 9.5% for the 2x2 NPU.
"""

from _bench_utils import print_table

from repro.estimator.validation import (
    MAX_AREA_ERROR,
    MAX_FREQUENCY_ERROR,
    MAX_POWER_ERROR,
    validate,
)


def test_fig13_validation(benchmark, rsfq):
    rows_by_name = benchmark(validate, rsfq)

    rows = []
    for name, row in rows_by_name.items():
        freq = (
            "-"
            if row.frequency_error is None
            else f"{row.model_frequency_ghz:.1f}/{row.reference_frequency_ghz:.1f}"
            f" ({100 * row.frequency_error:.1f}%)"
        )
        rows.append(
            (
                name,
                freq,
                f"{row.model_power_mw:.3f}/{row.reference_power_mw:.3f}"
                f" ({100 * row.power_error:.1f}%)",
                f"{row.model_area_mm2:.3f}/{row.reference_area_mm2:.3f}"
                f" ({100 * row.area_error:.1f}%)",
            )
        )
    print_table(
        "Fig. 13: model vs measurement (model/ref, relative error)",
        ("unit", "frequency GHz", "power mW", "area mm2"),
        rows,
    )

    for row in rows_by_name.values():
        if row.frequency_error is not None:
            assert row.frequency_error <= MAX_FREQUENCY_ERROR
        assert row.power_error <= MAX_POWER_ERROR
        assert row.area_error <= MAX_AREA_ERROR

    # Paper's per-metric averages: ~5.6% freq, ~1.2% power, ~1.3% area
    # across the microarchitecture prototypes.
    uarch = [rows_by_name[n] for n in ("mac_unit", "sr_mem", "nw_unit")]
    power_mean = sum(r.power_error for r in uarch) / len(uarch)
    area_mean = sum(r.area_error for r in uarch) / len(uarch)
    assert power_mean <= 0.03
    assert area_mean <= 0.03
