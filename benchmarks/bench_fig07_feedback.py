"""Fig. 7(c) — feedback loop's impact on SFQ clock frequency.

Paper (JSIM measurements): a full adder drops from 66 GHz (concurrent-flow)
to 30 GHz (counter-flow with accumulator loop); a shift register from
133 GHz to 71 GHz.
"""

import pytest
from _bench_utils import print_table

from repro.uarch.buffers import ShiftRegisterBuffer
from repro.uarch.mac import Dataflow, MACUnit
from repro.device import cells
from repro.timing.clocking import concurrent_flow_cct, counter_flow_cct

PAPER = {
    "FA": (66.0, 30.0),
    "SR": (133.0, 71.0),
}


def run_fig07(library):
    and_gate = library[cells.AND]
    dff = library[cells.DFF]
    fa_fast = concurrent_flow_cct(and_gate.setup_ps, and_gate.hold_ps).frequency_ghz
    fa_loop = and_gate.delay_ps + 1.6 + dff.delay_ps + 1.6
    fa_slow = counter_flow_cct(and_gate.setup_ps, and_gate.hold_ps, fa_loop).frequency_ghz
    sr_fast = concurrent_flow_cct(dff.setup_ps, dff.hold_ps).frequency_ghz
    sr_slow = ShiftRegisterBuffer(64, io_width=1).frequency(library).frequency_ghz
    return {"FA": (fa_fast, fa_slow), "SR": (sr_fast, sr_slow)}


def test_fig07_feedback_frequency(benchmark, rsfq):
    measured = benchmark(run_fig07, rsfq)

    rows = [
        (circuit,
         f"{measured[circuit][0]:.1f}", f"{PAPER[circuit][0]:.0f}",
         f"{measured[circuit][1]:.1f}", f"{PAPER[circuit][1]:.0f}")
        for circuit in ("FA", "SR")
    ]
    print_table(
        "Fig. 7c: frequency GHz (measured vs paper, without/with feedback)",
        ("circuit", "no-fb (ours)", "no-fb (paper)", "fb (ours)", "fb (paper)"),
        rows,
    )

    for circuit, (fast_ref, slow_ref) in PAPER.items():
        fast, slow = measured[circuit]
        assert fast == pytest.approx(fast_ref, rel=0.05)
        assert slow == pytest.approx(slow_ref, rel=0.10)
        assert slow < 0.6 * fast  # the headline: loops cripple the clock


def test_fig07_os_pe_frequency(benchmark, rsfq):
    """The architectural consequence: an OS-dataflow PE runs ~half speed."""

    def run():
        ws = MACUnit(8, 24, Dataflow.WEIGHT_STATIONARY).frequency(rsfq).frequency_ghz
        os = MACUnit(8, 24, Dataflow.OUTPUT_STATIONARY).frequency(rsfq).frequency_ghz
        return ws, os

    ws, os = benchmark(run)
    print_table("PE dataflow frequency (GHz)",
                ("dataflow", "GHz"), [("WS", f"{ws:.1f}"), ("OS", f"{os:.1f}")])
    assert os < 0.55 * ws
