"""Fig. 8 — duplicated ifmap pixels without the data alignment unit.

Paper: over 90% of the pixels the ifmap buffer would hold are duplicates
for AlexNet, ResNet50 and VGG16 (the three networks plotted).
"""

from _bench_utils import print_table

from repro.workloads.analysis import duplication_report
from repro.workloads.models import alexnet, resnet50, vgg16

#: The three networks Fig. 8 plots, with the paper's qualitative bound and
#: the floor our layer tables achieve (ResNet50's 1x1-heavy body dilutes
#: the aggregate; see EXPERIMENTS.md).
CASES = [(alexnet, 0.90), (resnet50, 0.50), (vgg16, 0.88)]


def run_fig08():
    return {build().name: duplication_report(build()) for build, _ in CASES}


def test_fig08_duplication(benchmark):
    reports = benchmark(run_fig08)

    rows = [
        (name, f"{100 * (1 - r.duplication_ratio):.1f}%", f"{100 * r.duplication_ratio:.1f}%")
        for name, r in reports.items()
    ]
    print_table("Fig. 8: ifmap pixel breakdown (unique vs duplicated)",
                ("network", "unique", "duplicated"), rows)

    for build, floor in CASES:
        report = reports[build().name]
        assert report.duplication_ratio >= floor
        assert report.duplicated_pixels > 0
    # The message of the figure: most streamed pixels are duplicates.
    mean = sum(r.duplication_ratio for r in reports.values()) / len(reports)
    assert mean > 0.75
