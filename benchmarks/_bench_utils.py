"""Table-printing helper shared by the figure/table benchmarks."""

from __future__ import annotations


def print_table(title: str, headers, rows) -> None:
    """Render rows under a title; visible with ``pytest -s``."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(f"{str(h):>{w}s}" for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(f"{str(c):>{w}s}" for c, w in zip(row, widths)))
