"""Fig. 15 — Baseline cycle breakdown per CNN workload.

Paper: the preparation step (data movement before computation) dominates
the Baseline's execution, above 90% of cycles for every workload.
"""

from _bench_utils import print_table

from repro.core.designs import baseline
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate


def run_fig15(library, workloads):
    config = baseline()
    estimate = estimate_npu(config, library)
    return {
        network.name: simulate(config, network, batch=1, estimate=estimate)
        for network in workloads
    }


def test_fig15_cycle_breakdown(benchmark, rsfq, workloads):
    runs = benchmark(run_fig15, rsfq, workloads)

    rows = []
    for name, run in runs.items():
        split = run.cycle_breakdown()
        rows.append(
            (
                name,
                f"{100 * split['preparation']:.1f}%",
                f"{100 * split['computation']:.1f}%",
                f"{100 * split['memory']:.1f}%",
            )
        )
    print_table(
        "Fig. 15: Baseline cycle breakdown (paper: preparation > 90%)",
        ("workload", "preparation", "computation", "memory"),
        rows,
    )

    for name, run in runs.items():
        assert run.cycle_breakdown()["preparation"] > 0.90, name
