"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark both *times* its experiment (pytest-benchmark) and checks
the paper-shape claims it reproduces; run with ``-s`` to see the
regenerated rows next to the published values.

The whole benchmark session runs with ``repro.obs`` metrics enabled and
writes the aggregate snapshot (simulated cycles/MACs, layers, estimator
units, solver steps, wall-time histograms) as JSON when it ends —
``SUPERNPU_BENCH_METRICS_OUT`` overrides the default
``benchmarks/bench_metrics.json`` path — so the benchmark trajectory is
machine-comparable across PRs.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(scope="session", autouse=True)
def bench_metrics_snapshot():
    """Collect obs metrics for the whole session and emit them as JSON."""
    from repro import obs

    obs.reset()
    obs.enable(tracing=False)  # span trees would grow unbounded over a session
    yield
    out = os.environ.get(
        "SUPERNPU_BENCH_METRICS_OUT",
        os.path.join(os.path.dirname(__file__), "bench_metrics.json"),
    )
    manifest = obs.RunManifest.capture("benchmarks")
    try:
        obs.write_metrics(out, manifest=manifest)
    finally:
        obs.disable()
        obs.reset()


@pytest.fixture(scope="session", autouse=True)
def bench_hotspot_profile():
    """Optionally profile the whole benchmark session's host time.

    Driven entirely by environment variables (set by
    ``repro.obs.bench.run_benchmarks`` when a hotspot capture is
    requested): ``SUPERNPU_BENCH_HOTSPOT_OUT`` names the output JSON,
    ``SUPERNPU_BENCH_HOTSPOT_MODE`` picks sampling/tracing, and
    ``SUPERNPU_BENCH_HOTSPOT_HZ`` sets the sampling rate.  Without the
    OUT variable this fixture is a no-op, so plain benchmark runs pay
    nothing.
    """
    out = os.environ.get("SUPERNPU_BENCH_HOTSPOT_OUT")
    if not out:
        yield
        return
    import json

    from repro.obs.hotspot import DEFAULT_SAMPLE_HZ, HotspotProfiler

    mode = os.environ.get("SUPERNPU_BENCH_HOTSPOT_MODE", "sampling")
    try:
        hz = float(os.environ.get("SUPERNPU_BENCH_HOTSPOT_HZ", ""))
    except ValueError:
        hz = DEFAULT_SAMPLE_HZ
    profiler = HotspotProfiler(mode=mode, sample_hz=hz)
    profiler.start()
    try:
        yield
    finally:
        profile = profiler.stop()
        document = {
            "summary": profile.summary(),
            "collapsed": profile.collapsed(),
            "profile": profile.to_dict(),
        }
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)


def pytest_runtest_logreport(report):
    """Fold per-test outcomes into the session's obs snapshot.

    ``bench.tests`` counts passed call phases and ``bench.test_seconds``
    histograms their durations, so a BENCH recording carries how many
    benchmarks ran and their end-to-end (not just timed-region) cost.
    """
    if report.when != "call" or not report.passed:
        return
    from repro import obs

    obs.counter("bench.tests").inc()
    obs.histogram("bench.test_seconds").observe(report.duration)


@pytest.fixture(scope="session")
def rsfq():
    from repro.device.cells import rsfq_library

    return rsfq_library()


@pytest.fixture(scope="session")
def workloads():
    from repro.workloads.models import all_workloads

    return all_workloads()
