"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark both *times* its experiment (pytest-benchmark) and checks
the paper-shape claims it reproduces; run with ``-s`` to see the
regenerated rows next to the published values.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(scope="session")
def rsfq():
    from repro.device.cells import rsfq_library

    return rsfq_library()


@pytest.fixture(scope="session")
def workloads():
    from repro.workloads.models import all_workloads

    return all_workloads()
