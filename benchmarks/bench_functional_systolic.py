"""Functional systolic-array hot path: skew-cancelled matmul vs stepping.

Times a full convolution through the weight-stationary tiling
(:func:`repro.functional.systolic.conv2d_systolic`) plus one raw tile on
each dataflow.  By default the arrays use the skew-cancelled integer
matmul ``run()``; set ``SUPERNPU_SYSTOLIC=stepped`` to time the
cycle-accurate ``run_stepped()`` emulation the matmul is proven bitwise
equal to (``BENCH_pr8_scalar.json`` was recorded that way).
"""

from __future__ import annotations

import os

import numpy as np

from repro.functional.os_systolic import OSSystolicArray
from repro.functional.systolic import SystolicArray, conv2d_systolic
from repro.functional.reference import conv2d_reference

_STEPPED = os.environ.get("SUPERNPU_SYSTOLIC", "") == "stepped"

_RNG = np.random.default_rng(2020)
_IFMAP = _RNG.integers(-8, 8, size=(8, 14, 14))
_WEIGHTS = _RNG.integers(-8, 8, size=(16, 8, 3, 3))
_TILE_WEIGHTS = _RNG.integers(-8, 8, size=(32, 32))
_TILE_STREAMS = _RNG.integers(-8, 8, size=(32, 64))
_OS_X = _RNG.integers(-8, 8, size=(32, 72))
_OS_W = _RNG.integers(-8, 8, size=(32, 72))


def _ws_tile():
    array = SystolicArray(32, 32)
    array.load_weights(_TILE_WEIGHTS)
    runner = array.run_stepped if _STEPPED else array.run
    return runner(_TILE_STREAMS)


def _os_tile():
    array = OSSystolicArray(32, 32)
    runner = array.run_stepped if _STEPPED else array.run
    return runner(_OS_X, _OS_W)


def test_systolic_ws_tile(benchmark):
    outputs = benchmark(_ws_tile)
    assert outputs.shape == (32, 64)
    assert outputs.dtype == np.int64


def test_systolic_os_tile(benchmark):
    outputs = benchmark(_os_tile)
    assert outputs.shape == (32, 32)
    assert outputs.dtype == np.int64


def test_systolic_conv2d(benchmark):
    """Tiled conv through the WS array; bit-checked against the reference."""
    output = benchmark(
        conv2d_systolic, _IFMAP, _WEIGHTS, 32, 32, 1, 1
    )
    np.testing.assert_array_equal(
        output, conv2d_reference(_IFMAP, _WEIGHTS, stride=1, padding=1)
    )
