"""Design-space search — rediscovering SuperNPU mechanically.

The paper reaches SuperNPU through three guided steps (Figs. 20-22); this
bench sweeps the same space exhaustively under the TPU-class area budget
and checks the mechanical winner lands in the same design region.
"""

from _bench_utils import print_table

from repro.core.search import best, search
from repro.workloads.models import alexnet, mobilenet, resnet50


def run_search():
    return search(
        widths=(256, 128, 64, 32),
        divisions=(1, 16, 64, 256),
        registers=(1, 2, 8, 16),
        workloads=[alexnet(), resnet50(), mobilenet()],
    )


def test_dse_search(benchmark):
    results = benchmark(run_search)

    rows = [
        (
            c.config.name,
            f"{c.mean_tmacs:.1f}",
            f"{c.area_mm2_28nm:.0f}",
            f"{c.peak_tmacs:.0f}",
        )
        for c in results[:8]
    ]
    rows.append(("...", "", "", ""))
    rows += [
        (c.config.name, f"{c.mean_tmacs:.1f}", f"{c.area_mm2_28nm:.0f}",
         f"{c.peak_tmacs:.0f}")
        for c in results[-3:]
    ]
    print_table(
        "Exhaustive DSE under the <330 mm2 budget (mean TMAC/s)",
        ("design", "mean TMAC/s", "area mm2", "peak"),
        rows,
    )

    winner = best(results)
    # The mechanical winner is SuperNPU-class: narrowed array, heavily
    # divided integrated buffers, multiple registers per PE.
    assert winner.config.pe_array_width in (64, 128)
    assert winner.config.ifmap_division >= 64
    assert winner.config.registers_per_pe >= 2
    # The gap to the naive corner of the space is enormous (Fig. 20/23).
    worst = results[-1]
    assert worst.config.ifmap_division == 1
    assert winner.mean_mac_per_s > 100 * worst.mean_mac_per_s
