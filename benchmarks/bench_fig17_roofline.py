"""Fig. 17 — roofline analysis of the single-batch Baseline.

Paper: with one input batch, every workload's attainable performance sits
far below the 3366 TMAC/s peak — maximum PE utilization is below 2% on
average, and the measured performance hugs the bandwidth roof.
"""

from _bench_utils import print_table

from repro.core.designs import baseline
from repro.core.metrics import roofline_point
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate


def run_fig17(library, workloads):
    config = baseline()
    estimate = estimate_npu(config, library)
    points = []
    for network in workloads:
        run = simulate(config, network, batch=1, estimate=estimate)
        points.append(
            roofline_point(
                network, 1, estimate.peak_mac_per_s,
                config.memory_bandwidth_gbps, measured=run,
            )
        )
    return points


def test_fig17_roofline(benchmark, rsfq, workloads):
    points = benchmark(run_fig17, rsfq, workloads)

    rows = [
        (
            p.network,
            f"{p.intensity_mac_per_byte:.0f}",
            f"{p.attainable_mac_per_s / 1e9:.0f}",
            f"{(p.measured_mac_per_s or 0) / 1e9:.0f}",
            f"{100 * p.max_pe_utilization:.2f}%",
        )
        for p in points
    ]
    print_table(
        "Fig. 17: roofline (intensity MAC/B, roofline GMAC/s, measured GMAC/s, util bound)",
        ("workload", "MAC/B", "roofline", "measured", "max util"),
        rows,
    )

    # Paper: >98% below peak; average utilization bound under 2%.
    mean_util = sum(p.max_pe_utilization for p in points) / len(points)
    assert mean_util < 0.02
    for p in points:
        assert p.attainable_mac_per_s < 0.1 * p.peak_mac_per_s
        assert p.measured_mac_per_s <= p.attainable_mac_per_s * 1.05
