"""Extension — joules per inference (the per-image view of Table III)."""

from _bench_utils import print_table

from repro.core.energy import inference_energy_table, relative_energy
from repro.workloads.models import resnet50


def test_energy_per_image(benchmark):
    rows = benchmark(inference_energy_table, resnet50())
    rel = relative_energy(rows)

    table = [
        (
            row.label,
            f"{row.images_per_s:.0f}",
            f"{row.wall_joules_per_image:.2e}",
            f"{rel[row.label]:.4f}x",
        )
        for row in rows
    ]
    print_table(
        "Energy per ResNet50 inference (wall, incl. cooling scenario)",
        ("configuration", "images/s", "J/image", "vs TPU"),
        table,
    )

    # ERSFQ with free cooling uses orders of magnitude less energy/image.
    assert rel["ERSFQ-SuperNPU (free cooling)"] < 0.01
    # Paying the full 400x cooling bill brings it to rough parity with the
    # TPU on this workload (Table III's 1.23x perf/W is the 6-CNN average;
    # individual workloads straddle 1.0).
    assert 0.5 < rel["ERSFQ-SuperNPU (w/ cooling)"] < 1.5
    # RSFQ with cooling is the energy disaster Table III shows.
    assert rel["RSFQ-SuperNPU (w/ cooling)"] > 10
    # Everyone's raw throughput is the same story as Fig. 23.
    by_label = {row.label: row for row in rows}
    assert by_label["ERSFQ-SuperNPU (w/ cooling)"].images_per_s > by_label["TPU"].images_per_s