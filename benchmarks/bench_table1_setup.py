"""Table I — evaluation setup: frequency, peak throughput, area.

Paper: every SFQ design clocks at 52.6 GHz; peaks of 3366 TMAC/s
(256x256) and 842 TMAC/s (64x256); 28 nm-equivalent areas of ~283-299 mm2,
all under the TPU's <330 mm2.
"""

import pytest
from _bench_utils import print_table

from repro.baselines.scalesim import TPU_CORE
from repro.core.designs import all_designs
from repro.estimator.arch_level import estimate_npu


def run_table1(library):
    return {config.name: estimate_npu(config, library) for config in all_designs()}


def test_table1_setup(benchmark, rsfq):
    estimates = benchmark(run_table1, rsfq)

    rows = [
        (
            "TPU",
            f"{TPU_CORE.pe_array_width}x{TPU_CORE.pe_array_height}",
            1,
            f"{TPU_CORE.frequency_ghz:.1f}",
            f"{TPU_CORE.peak_mac_per_s / 1e12:.0f}",
            "<330",
        )
    ]
    for name, est in estimates.items():
        rows.append(
            (
                name,
                f"{est.config.pe_array_width}x{est.config.pe_array_height}",
                est.config.registers_per_pe,
                f"{est.frequency_ghz:.1f}",
                f"{est.peak_tmacs:.0f}",
                f"{est.area_mm2_scaled():.0f}",
            )
        )
    print_table(
        "Table I: setup (freq GHz, peak TMAC/s, area mm2 @28nm)",
        ("design", "array", "regs", "freq", "peak", "area"),
        rows,
    )

    for name, est in estimates.items():
        assert est.frequency_ghz == pytest.approx(52.6, rel=0.002), name
        assert est.area_mm2_scaled() < 330, name
    assert estimates["Baseline"].peak_tmacs == pytest.approx(3447, rel=0.05)
    assert estimates["SuperNPU"].peak_tmacs == pytest.approx(862, rel=0.05)
    # Peak ratio between the wide and narrow arrays is exactly 4.
    assert estimates["Baseline"].peak_tmacs == pytest.approx(
        4 * estimates["SuperNPU"].peak_tmacs
    )
