"""Ablation — process-scaling headroom (paper footnote 2).

The paper evaluates on the mid-1990s-class AIST 1.0 um process "to show
the SFQ technology's performance potential conservatively" and cites the
linear frequency-scaling rule (valid to ~0.2 um, where a TFF has reached
770 GHz).  This bench projects SuperNPU down the process ladder.
"""

import pytest
from _bench_utils import print_table

from repro.core.designs import supernpu
from repro.core.scaling import scaling_sweep

FEATURES = (1.0, 0.5, 0.25, 0.2, 0.1, 0.028)


def test_scaling_projection(benchmark, rsfq):
    projections = benchmark(scaling_sweep, supernpu(), FEATURES, rsfq)

    rows = [
        (
            f"{p.feature_size_um} um",
            f"{p.frequency_ghz:.0f}",
            f"{p.peak_tmacs:.0f}",
            f"{p.area_mm2:.0f}",
        )
        for p in projections
    ]
    print_table(
        "Scaling ablation: SuperNPU down the process ladder",
        ("node", "clock GHz", "peak TMAC/s", "area mm2"),
        rows,
    )

    by_feature = dict(zip(FEATURES, projections))
    # Linear frequency rule down to 0.2 um ...
    assert by_feature[0.5].frequency_ghz == pytest.approx(
        2 * by_feature[1.0].frequency_ghz, rel=0.01
    )
    assert by_feature[0.2].frequency_ghz == pytest.approx(
        5 * by_feature[1.0].frequency_ghz, rel=0.01
    )
    # ... clamped below it (the rule is not validated past 0.2 um).
    assert by_feature[0.1].frequency_ghz == by_feature[0.2].frequency_ghz
    # Quadratic area shrink continues all the way to 28 nm.
    assert by_feature[0.028].area_mm2 == pytest.approx(
        by_feature[1.0].area_mm2 * 0.028**2, rel=0.01
    )
    # At the 0.2 um clamp the clock sits in the few-hundred-GHz class the
    # paper's TFF citation motivates.
    assert 200 <= by_feature[0.2].frequency_ghz <= 400
