"""Fig. 23 — the headline performance evaluation.

Paper (speedup over the TPU core, average of six CNNs):
Baseline 0.4x, Buffer opt. 7.7x, Resource opt. 17.3x, SuperNPU 23x, with
MobileNet peaking around 42x on SuperNPU.
"""

from _bench_utils import print_table

from repro.core.evaluate import evaluate_suite

PAPER_AVERAGES = {
    "Baseline": 0.4,
    "Buffer opt.": 7.7,
    "Resource opt.": 17.3,
    "SuperNPU": 23.0,
}


def test_fig23_performance(benchmark):
    suite = benchmark(evaluate_suite)
    speedups = suite.speedups()

    workload_names = list(suite.tpu_runs) + ["Average"]
    rows = [
        tuple([design] + [f"{speedups[design][w]:.2f}x" for w in workload_names])
        for design in speedups
    ]
    print_table(
        "Fig. 23: speedup over TPU (paper averages: 0.4 / 7.7 / 17.3 / 23)",
        tuple(["design"] + workload_names),
        rows,
    )

    averages = {design: row["Average"] for design, row in speedups.items()}
    # Shape: the optimization sequence is strictly improving.
    order = ["Baseline", "Buffer opt.", "Resource opt.", "SuperNPU"]
    values = [averages[d] for d in order]
    assert values == sorted(values)
    # Band checks around the paper's numbers.
    assert averages["Baseline"] < 1.0
    assert 3 <= averages["Buffer opt."] <= 25
    assert 8 <= averages["Resource opt."] <= 40
    assert 10 <= averages["SuperNPU"] <= 50
    # Per-workload headline features.
    supernpu = speedups["SuperNPU"]
    assert all(v > 1 for k, v in supernpu.items() if k != "Average")
    workloads_only = {k: v for k, v in supernpu.items() if k != "Average"}
    assert max(workloads_only, key=workloads_only.get) == "MobileNet"
