"""Fig. 22 — weight registers per PE.

Paper: the 128-wide design cannot improve with more registers (it is
memory-bound), while the 64-wide design keeps gaining — which is why
SuperNPU is the 64-wide array with 8 registers per PE.
"""

from _bench_utils import print_table

from repro.core.optimizer import register_sweep

REGISTERS = (1, 2, 4, 8, 16, 32)


def test_fig22_registers(benchmark, workloads, rsfq):
    rows_by_width = benchmark(register_sweep, workloads, rsfq, (64, 128), REGISTERS)

    rows = []
    for width, points in rows_by_width.items():
        for regs, point in zip(REGISTERS, points):
            rows.append((width, regs, f"{point.metrics['speedup']:.1f}x"))
    print_table(
        "Fig. 22: speedup vs Baseline by registers per PE",
        ("width", "registers", "speedup"),
        rows,
    )

    speed64 = [p.metrics["speedup"] for p in rows_by_width[64]]
    speed128 = [p.metrics["speedup"] for p in rows_by_width[128]]
    # 64-wide keeps improving with more registers (our model's average gain
    # is smaller than the paper's — see EXPERIMENTS.md — but monotone) ...
    assert speed64[REGISTERS.index(8)] > 1.04 * speed64[0]
    assert all(a <= b * 1.001 for a, b in zip(speed64, speed64[1:]))
    # ... and gains more from registers than the 128-wide design does.
    gain64 = speed64[REGISTERS.index(8)] / speed64[0]
    gain128 = speed128[REGISTERS.index(8)] / speed128[0]
    assert gain64 > gain128
    # Both sweeps stay far above Baseline throughout.
    assert min(speed64 + speed128) > 5
