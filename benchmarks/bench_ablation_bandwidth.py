"""Ablation — memory-bandwidth sensitivity.

The evaluation pins 300 GB/s (TPUv2 HBM) for both NPUs.  At 52.6 GHz that
is only ~5.7 bytes/cycle for the SFQ design — this bench shows how the
headline speedup moves as the shared bandwidth assumption changes.
"""

from _bench_utils import print_table

from repro.core.sensitivity import bandwidth_sweep
from repro.workloads.models import mobilenet, resnet50, vgg16

BANDWIDTHS = (100, 300, 600, 1200)


def test_bandwidth_sensitivity(benchmark):
    workloads = [resnet50(), vgg16(), mobilenet()]
    points = benchmark(bandwidth_sweep, BANDWIDTHS, None, workloads)

    rows = [
        (
            f"{p.bandwidth_gbps:.0f} GB/s",
            f"{p.sfq_tmacs:.1f}",
            f"{p.tpu_tmacs:.1f}",
            f"{p.speedup:.1f}x",
        )
        for p in points
    ]
    print_table(
        "Bandwidth ablation: SuperNPU vs TPU mean TMAC/s",
        ("bandwidth", "SuperNPU", "TPU", "speedup"),
        rows,
    )

    by_bw = {p.bandwidth_gbps: p for p in points}
    # The headline conclusion survives every bandwidth point.
    assert all(p.speedup > 5 for p in points)
    # SuperNPU throughput is non-decreasing in bandwidth.
    series = [by_bw[b].sfq_tmacs for b in BANDWIDTHS]
    assert all(a <= b * 1.001 for a, b in zip(series, series[1:]))
    # At the paper's 300 GB/s point the speedup sits in the tens.
    assert 5 <= by_bw[300].speedup <= 60
