"""Fig. 20 — performance impact and area overhead of buffer optimizations.

Paper: psum/ofmap integration plus progressive buffer division lifts
single-batch performance ~6.3x and max-batch performance ~20x by division
64, after which performance saturates while the MUX/DEMUX tree area grows
steeply (the reason SuperNPU stops at 64).
"""

from _bench_utils import print_table

from repro.core.optimizer import buffer_sweep

DIVISIONS = (2, 4, 16, 64, 256, 1024, 4096)


def test_fig20_buffer_optimization(benchmark, workloads, rsfq):
    points = benchmark(buffer_sweep, workloads, rsfq, DIVISIONS)

    rows = [
        (
            p.label,
            f"{p.metrics['single_batch']:.2f}x",
            f"{p.metrics['max_batch']:.2f}x",
            f"{p.metrics['area']:.2f}x",
        )
        for p in points
    ]
    print_table(
        "Fig. 20: buffer integration + division (normalized to Baseline)",
        ("design", "single batch", "max batch", "area"),
        rows,
    )

    metrics = {p.label: p.metrics for p in points}
    # Integration alone already helps.
    assert metrics["+Integration (Division 2)"]["single_batch"] > 1.5
    # Division 64 is the paper's chosen operating point: large gains ...
    assert metrics["+Division 64"]["single_batch"] > 4.0
    assert metrics["+Division 64"]["max_batch"] > 10.0
    # ... and performance saturates beyond it ...
    assert (
        metrics["+Division 4096"]["single_batch"]
        < 1.35 * metrics["+Division 64"]["single_batch"]
    )
    # ... while area keeps climbing (paper: exponential MUX/DEMUX cost).
    assert metrics["+Division 64"]["area"] < 1.05
    assert metrics["+Division 4096"]["area"] > 1.3


def test_fig20_monotone_before_saturation(benchmark, workloads, rsfq):
    points = benchmark(buffer_sweep, workloads, rsfq, (2, 4, 16, 64))
    series = [p.metrics["max_batch"] for p in points]
    assert all(a <= b * 1.01 for a, b in zip(series, series[1:]))
