"""Fig. 5 — on-chip network design comparison.

Paper: the 2D splitter tree's critical-path delay grows with the PE-array
width (>800 ps at width 64) while the systolic store-and-forward chain
stays flat and smallest in both delay and area.
"""

from _bench_utils import print_table

from repro.uarch.network import compare_designs

WIDTHS = (4, 16, 64)


def run_fig05(library):
    return {width: compare_designs(width, bits=8, library=library) for width in WIDTHS}


def test_fig05_network_comparison(benchmark, rsfq):
    results = benchmark(run_fig05, rsfq)

    rows = []
    for width, designs in results.items():
        for name, metrics in designs.items():
            rows.append(
                (
                    width,
                    name,
                    f"{metrics['critical_path_delay_ps']:.1f}",
                    f"{metrics['area_mm2']:.2f}",
                )
            )
    print_table("Fig. 5: NW designs (width, design, delay ps, area mm2)",
                ("width", "design", "delay_ps", "area_mm2"), rows)

    at64 = results[64]
    # Paper: 2D tree exceeds 800 ps at width 64.
    assert at64["2d_splitter_tree"]["critical_path_delay_ps"] > 800
    # Systolic wins both metrics at every width.
    for width in WIDTHS:
        systolic = results[width]["systolic_array"]
        for other in ("2d_splitter_tree", "1d_splitter_tree"):
            assert systolic["critical_path_delay_ps"] <= results[width][other]["critical_path_delay_ps"]
            assert systolic["area_mm2"] < results[width][other]["area_mm2"]
