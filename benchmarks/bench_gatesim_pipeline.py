"""Extension — gate-level pipelining, measured on real pulse logic.

Fig. 2(a)'s claim, executed: a deeply pipelined SFQ multiplier accepts one
operation per clock regardless of its latency, and its gate inventory is
dominated by path-balancing DFFs (the structural fact behind the analytic
MAC model's DFF factor).
"""

from _bench_utils import print_table

from repro.gatesim import build_multiplier


def run_pipeline_study():
    results = {}
    for bits in (2, 4, 8):
        circuit = build_multiplier(bits)
        operations = [{"a": a % (1 << bits), "b": (a * 7 + 1) % (1 << bits)}
                      for a in range(24)]
        outputs = circuit.compute_stream(operations)
        correct = outputs == [op["a"] * op["b"] for op in operations]
        results[bits] = {
            "gates": circuit.num_gates,
            "latency": circuit.latency,
            "histogram": circuit.gate_histogram(),
            "stream_correct": correct,
        }
    return results


def test_gatesim_pipeline(benchmark):
    results = benchmark(run_pipeline_study)

    rows = []
    for bits, r in results.items():
        hist = r["histogram"]
        logic = hist.get("AND", 0) + hist.get("XOR", 0) + hist.get("OR", 0)
        rows.append(
            (
                f"{bits}x{bits}",
                r["gates"],
                r["latency"],
                f"{hist.get('DFF', 0) / logic:.1f}",
                "yes" if r["stream_correct"] else "NO",
            )
        )
    print_table(
        "Gate-level-pipelined multipliers (pulse-logic simulation)",
        ("width", "gates", "latency", "DFF/logic", "1 op/clock"),
        rows,
    )

    for bits, r in results.items():
        # Streaming correctness at full rate: the Fig. 2(a) property.
        assert r["stream_correct"], bits
        # Path-balancing DFFs dominate every width.
        hist = r["histogram"]
        logic = hist.get("AND", 0) + hist.get("XOR", 0) + hist.get("OR", 0)
        assert hist["DFF"] > 1.5 * logic
    # Latency grows with width; throughput (1/clock) does not change.
    latencies = [results[b]["latency"] for b in (2, 4, 8)]
    assert latencies == sorted(latencies)
