"""Ablation — cooling-efficiency sensitivity (Table III's 400x assumption).

Sweeps the cryocooler's specific power from the Carnot bound to pessimistic
plants, locating the break-even points behind the paper's Table III rows.
"""

from _bench_utils import print_table

from repro.core.sensitivity import cooling_sweep
from repro.workloads.models import resnet50

FACTORS = (100, 200, 400, 1000)


def test_cooling_sensitivity(benchmark):
    points = benchmark(cooling_sweep, FACTORS, True, resnet50())

    rows = [
        (
            f"{p.factor:.0f} W/W",
            f"{p.rsfq_perf_per_watt:.4f}x",
            f"{p.ersfq_perf_per_watt:.3f}x",
        )
        for p in points
    ]
    print_table(
        "Cooling ablation: perf/W vs TPU (first row = Carnot bound)",
        ("cooling", "RSFQ", "ERSFQ"),
        rows,
    )

    carnot, rest = points[0], points[1:]
    # RSFQ never reaches parity once any cooling is charged — even Carnot.
    assert all(p.rsfq_perf_per_watt < 0.1 for p in points)
    # ERSFQ wins at the Carnot bound and degrades monotonically.
    assert carnot.ersfq_perf_per_watt > 1.5
    series = [p.ersfq_perf_per_watt for p in points]
    assert series == sorted(series, reverse=True)
    # The paper's 400x point sits near ERSFQ's break-even with the TPU.
    at_400 = next(p for p in rest if p.factor == 400)
    assert 0.5 <= at_400.ersfq_perf_per_watt <= 2.5
