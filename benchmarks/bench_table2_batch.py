"""Table II — per-workload batch sizes.

Paper: batches are the largest values the on-chip buffers hold without
extra off-chip traffic (conservatively capped): TPU 3-22, Baseline 1
everywhere, SuperNPU 30 (VGG16: 7).  The published table is used verbatim
by the evaluation; this bench regenerates the capacity-derived side and
shows both.
"""

from _bench_utils import print_table

from repro.core.batching import PAPER_BATCHES, derived_batch
from repro.core.designs import all_designs
from repro.workloads.analysis import max_batch_for_buffer
from repro.baselines.scalesim import TPU_CORE


def run_table2(workloads):
    derived = {}
    for config in all_designs():
        sweep_alias = config.with_updates(name=f"{config.name} (derived)")
        derived[config.name] = {
            network.name: derived_batch(sweep_alias, network) for network in workloads
        }
    derived["TPU"] = {
        network.name: min(30, max_batch_for_buffer(network, TPU_CORE.onchip_buffer_bytes))
        for network in workloads
    }
    return derived


def test_table2_batches(benchmark, workloads):
    derived = benchmark(run_table2, workloads)

    names = [network.name for network in workloads]
    rows = []
    for design in ("TPU", "Baseline", "Buffer opt.", "Resource opt.", "SuperNPU"):
        rows.append(tuple([f"{design} (paper)"] + [PAPER_BATCHES[design][n] for n in names]))
        rows.append(tuple([f"{design} (derived)"] + [derived[design][n] for n in names]))
    print_table("Table II: batch sizes (paper vs capacity-derived)",
                tuple(["design"] + names), rows)

    # Key shapes: Baseline cannot batch; VGG-class workloads batch least;
    # the SuperNPU-class buffers support far larger batches than Baseline.
    assert all(v == 1 for v in derived["Baseline"].values())
    for design in ("Resource opt.", "SuperNPU"):
        assert derived[design]["VGG16"] == min(derived[design].values())
        assert max(derived[design].values()) >= 15
    # The TPU-side derived batch reproduces the published VGG16 value.
    assert derived["TPU"]["VGG16"] == PAPER_BATCHES["TPU"]["VGG16"] == 3
