"""Extension — single-image (batch-1) inference latency.

The paper evaluates throughput at the largest resident batch; latency-
critical serving cares about batch 1, where the 52.6 GHz clock pays off
directly.  This bench reports per-image latency for the TPU and SuperNPU.
"""

from _bench_utils import print_table

from repro.baselines.scalesim import TPU_CORE, simulate_cmos
from repro.core.designs import supernpu
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate


def run_latency(library, workloads):
    config = supernpu()
    estimate = estimate_npu(config, library)
    rows = {}
    for network in workloads:
        sfq = simulate(config, network, batch=1, estimate=estimate)
        tpu = simulate_cmos(TPU_CORE, network, batch=1)
        rows[network.name] = (sfq, tpu)
    return rows


def test_latency_extension(benchmark, rsfq, workloads):
    rows = benchmark(run_latency, rsfq, workloads)

    table = [
        (
            name,
            f"{sfq.latency_s * 1e6:.0f}",
            f"{tpu.latency_s * 1e6:.0f}",
            f"{tpu.latency_s / sfq.latency_s:.1f}x",
        )
        for name, (sfq, tpu) in rows.items()
    ]
    print_table(
        "Batch-1 inference latency (us): SuperNPU vs TPU",
        ("workload", "SuperNPU", "TPU", "speedup"),
        table,
    )

    for name, (sfq, tpu) in rows.items():
        # SuperNPU's latency win holds at batch 1 on every workload.
        assert sfq.latency_s < tpu.latency_s, name
    ratios = [tpu.latency_s / sfq.latency_s for sfq, tpu in rows.values()]
    assert sum(ratios) / len(ratios) > 3
