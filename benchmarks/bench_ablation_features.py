"""Ablation — one-factor-at-a-time feature removal from SuperNPU.

Complements Fig. 23's cumulative build-up: each optimization is removed
from the final design in isolation.  The paper's Section V bottleneck
ranking predicts buffer division dominates — and it does.
"""

from _bench_utils import print_table

from repro.core.ablate import ablation_study


def test_feature_ablation(benchmark, workloads, rsfq):
    rows = benchmark(ablation_study, workloads, rsfq)

    table = [
        (
            row.feature,
            f"{row.mean_mac_per_s / 1e12:.1f}",
            f"{row.relative_to_full:.3f}x",
            f"{row.penalty_percent:+.0f}%",
        )
        for row in rows
    ]
    print_table(
        "Remove-one-feature ablation (mean TMAC/s, vs full SuperNPU)",
        ("removed feature", "TMAC/s", "vs full", "penalty"),
        table,
    )

    by_feature = {row.feature: row for row in rows}
    # Division is the decisive optimization: removing it is catastrophic.
    assert by_feature["no_division"].relative_to_full < 0.1
    assert rows[0].feature == "no_division"
    # Registers carry a measurable share.
    assert by_feature["single_register"].relative_to_full < 0.98
    # Integration still earns double-digit percent on the six-CNN mean
    # (the deep-reduction nets pay per-tile psum moves without it), but it
    # is nowhere near division's importance — with division present the
    # moves are chunk-length, not the Baseline's 65,536 cycles.
    assert 0.5 < by_feature["no_integration"].relative_to_full < 0.98
