"""Extension — training-step cost (the paper's stated follow-up to its
inference-only "first case study").

Models one SGD step as forward + input-gradient + weight-gradient passes
plus a weight write-back, and reports the step/inference cost ratio per
workload (canonically ~3x).
"""

from _bench_utils import print_table

from repro.core.designs import supernpu
from repro.estimator.arch_level import estimate_npu
from repro.simulator.training import simulate_training_step

BATCH = 8


def run_training(library, workloads):
    config = supernpu()
    estimate = estimate_npu(config, library)
    return {
        network.name: simulate_training_step(config, network, batch=BATCH,
                                             estimate=estimate)
        for network in workloads
    }


def test_training_extension(benchmark, rsfq, workloads):
    results = benchmark(run_training, rsfq, workloads)

    rows = [
        (
            name,
            f"{r.forward.total_cycles:,}",
            f"{r.total_cycles:,}",
            f"{r.training_vs_inference_ratio:.2f}x",
            f"{r.mac_per_s / 1e12:.1f}",
        )
        for name, r in results.items()
    ]
    print_table(
        f"Training step on SuperNPU (batch {BATCH})",
        ("workload", "fwd cycles", "step cycles", "step/fwd", "TMAC/s"),
        rows,
    )

    for name, result in results.items():
        # One training step costs a small multiple of inference.
        assert 2.0 <= result.training_vs_inference_ratio <= 8.0, name
        # MAC volume: forward + dX + dW, so near 3x the forward MACs.
        assert result.total_macs >= 2.5 * result.forward.total_macs
    mean_ratio = sum(r.training_vs_inference_ratio for r in results.values()) / len(results)
    assert 2.5 <= mean_ratio <= 6.0
