"""Table III — power and power-efficiency evaluation.

Paper:
  RSFQ-SuperNPU:  964 W chip;  0.95x perf/W w/o cooling, 0.002x with.
  ERSFQ-SuperNPU: 1.9 W chip;  490x  perf/W w/o cooling, 1.23x with.
"""

from _bench_utils import print_table

from repro.core.evaluate import evaluate_suite, table3_rows


def run_table3():
    suite = evaluate_suite()
    return table3_rows(suite)


def test_table3_power_efficiency(benchmark):
    rows = benchmark(run_table3)
    reference = rows[0]

    printable = [
        (
            r.label,
            f"{r.chip_power_w:.2f}",
            f"{r.wall_power_w:.1f}",
            f"{r.normalized_to(reference):.3f}x",
        )
        for r in rows
    ]
    print_table(
        "Table III: power & perf/W vs TPU "
        "(paper: RSFQ 964 W, 0.95x/0.002x; ERSFQ 1.9 W, 490x/1.23x)",
        ("configuration", "chip W", "wall W", "perf/W"),
        printable,
    )

    by_label = {r.label: r for r in rows}
    rsfq_free = by_label["RSFQ-SuperNPU (w/o cooling)"]
    rsfq_cooled = by_label["RSFQ-SuperNPU (w/ cooling)"]
    ersfq_free = by_label["ERSFQ-SuperNPU (w/o cooling)"]
    ersfq_cooled = by_label["ERSFQ-SuperNPU (w/ cooling)"]

    # Chip-power bands.
    assert 900 <= rsfq_free.chip_power_w <= 1030  # paper: 964 W
    assert 0.5 <= ersfq_free.chip_power_w <= 3.0  # paper: 1.9 W

    # Normalized perf/W bands.
    assert 0.3 <= rsfq_free.normalized_to(reference) <= 1.5  # paper: 0.95x
    assert rsfq_cooled.normalized_to(reference) < 0.01  # paper: 0.002x
    assert 200 <= ersfq_free.normalized_to(reference) <= 900  # paper: 490x
    assert 0.8 <= ersfq_cooled.normalized_to(reference) <= 2.5  # paper: 1.23x

    # Orderings the paper's discussion rests on.
    assert ersfq_free.chip_power_w < 0.01 * rsfq_free.chip_power_w
    assert ersfq_cooled.normalized_to(reference) > 1.0
