"""Ablation — bit-serial vs bit-parallel MAC (Section VII related work).

Early SFQ processors (CORE1-beta, CORE e4) were bit-serial; the paper notes
"their throughput was quite low due to the simple but bit-serial designs".
This bench puts numbers on the claim within our calibrated cell library.
"""

from _bench_utils import print_table

from repro.uarch.bitserial import BitSerialMAC
from repro.uarch.mac import MACUnit


def run_comparison(library):
    serial = BitSerialMAC(8, 24)
    parallel = MACUnit(8, 24)
    return {
        "bit-serial": {
            "clock_ghz": serial.frequency(library).frequency_ghz,
            "mac_per_s": serial.throughput_mac_per_s(library),
            "jj": serial.jj_count(library),
            "mac_per_s_per_jj": serial.throughput_per_jj(library),
        },
        "bit-parallel": {
            "clock_ghz": parallel.frequency(library).frequency_ghz,
            "mac_per_s": parallel.frequency(library).frequency_ghz * 1e9,
            "jj": parallel.jj_count(library),
            "mac_per_s_per_jj": parallel.frequency(library).frequency_ghz
            * 1e9
            / parallel.jj_count(library),
        },
    }


def test_bitserial_ablation(benchmark, rsfq):
    results = benchmark(run_comparison, rsfq)

    rows = [
        (
            name,
            f"{r['clock_ghz']:.1f}",
            f"{r['mac_per_s'] / 1e9:.2f}",
            f"{r['jj']:.0f}",
            f"{r['mac_per_s_per_jj'] / 1e6:.2f}",
        )
        for name, r in results.items()
    ]
    print_table(
        "Bit-serial vs bit-parallel 8-bit MAC",
        ("design", "clock GHz", "GMAC/s", "JJs", "MMAC/s/JJ"),
        rows,
    )

    serial, parallel = results["bit-serial"], results["bit-parallel"]
    # The bit-serial element clocks as fast or faster ...
    assert serial["clock_ghz"] >= parallel["clock_ghz"]
    # ... yet delivers <1/30th of the throughput (bits^2 cycles per MAC) ...
    assert serial["mac_per_s"] < parallel["mac_per_s"] / 30
    # ... and loses even after normalizing by junction count.
    assert parallel["mac_per_s_per_jj"] > serial["mac_per_s_per_jj"]
