"""Extension — applicability to transformer (matmul) workloads.

The paper's closing claim: the methodology "can also be applied to other
architectures favoring the SFQ logic".  Transformers are wall-to-wall
matmuls — streaming, control-flow-free — so they are the natural second
workload class; this bench runs a BERT-base encoder block on every design.
"""

from _bench_utils import print_table

from repro.baselines.scalesim import TPU_CORE, simulate_cmos
from repro.core.batching import derived_batch
from repro.core.designs import all_designs
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.workloads.extra import bert_base_block


def run_transformer(library):
    network = bert_base_block()
    tpu = simulate_cmos(TPU_CORE, network, batch=8)
    rows = {"TPU": tpu}
    for config in all_designs():
        estimate = estimate_npu(config, library)
        batch = derived_batch(config.with_updates(name=f"{config.name}*"), network)
        rows[config.name] = simulate(config, network, batch=batch, estimate=estimate)
    return rows


def test_transformer_extension(benchmark, rsfq):
    rows = benchmark(run_transformer, rsfq)

    tpu = rows["TPU"]
    table = [
        (
            name,
            run.batch,
            f"{run.tmacs:.1f}",
            f"{run.mac_per_s / tpu.mac_per_s:.1f}x",
        )
        for name, run in rows.items()
    ]
    print_table(
        "BERT-base encoder block (seq 384) across designs",
        ("design", "batch", "TMAC/s", "vs TPU"),
        table,
    )

    # The optimization sequence carries over to matmul workloads.
    assert rows["SuperNPU"].mac_per_s > 5 * tpu.mac_per_s
    assert rows["SuperNPU"].mac_per_s > rows["Baseline"].mac_per_s * 5
    assert rows["Buffer opt."].mac_per_s > rows["Baseline"].mac_per_s
