"""Ablation — weight-stationary vs output-stationary dataflow.

DESIGN.md calls out the WS choice (paper Section III-B) as a key design
decision: the OS accumulator loop forces counter-flow clocking (52.6 ->
~31.8 GHz) and re-streams weights per output tile.  This bench quantifies
the end-to-end cost of picking OS instead.
"""

import pytest
from _bench_utils import print_table

from repro.core.batching import paper_batch
from repro.core.designs import supernpu
from repro.estimator.arch_level import estimate_npu
from repro.simulator.dataflow_ablation import estimate_os_npu, simulate_os
from repro.simulator.engine import simulate


def run_ablation(library, workloads):
    config = supernpu()
    ws_estimate = estimate_npu(config, library)
    os_estimate = estimate_os_npu(config, library)
    rows = {}
    for network in workloads:
        batch = paper_batch(config.name, network.name)
        ws = simulate(config, network, batch=batch, estimate=ws_estimate)
        os = simulate_os(config, network, batch=batch, estimate=os_estimate)
        rows[network.name] = (ws, os)
    return ws_estimate, os_estimate, rows


def test_dataflow_ablation(benchmark, rsfq, workloads):
    ws_estimate, os_estimate, rows = benchmark(run_ablation, rsfq, workloads)

    table = [
        (name, f"{ws.tmacs:.1f}", f"{os.tmacs:.1f}", f"{ws.mac_per_s / os.mac_per_s:.2f}x")
        for name, (ws, os) in rows.items()
    ]
    print_table(
        f"Ablation: WS ({ws_estimate.frequency_ghz:.1f} GHz) vs "
        f"OS ({os_estimate.frequency_ghz:.1f} GHz), TMAC/s",
        ("workload", "WS", "OS", "WS/OS"),
        table,
    )

    # Clock: the loop costs ~40% of the frequency (Fig. 7c consequence).
    assert os_estimate.frequency_ghz == pytest.approx(31.8, rel=0.02)
    assert ws_estimate.frequency_ghz == pytest.approx(52.6, rel=0.002)
    # End to end, WS wins on the conv-dominated workloads and by a wide
    # margin on average; OS stays competitive only on the FC-heavy nets
    # (AlexNet/VGG16), where output-side reuse is all there is.
    ratios = {name: ws.mac_per_s / os.mac_per_s for name, (ws, os) in rows.items()}
    for name in ("GoogLeNet", "MobileNet", "ResNet50", "FasterRCNN"):
        assert ratios[name] > 1.0, name
    assert sum(ratios.values()) / len(ratios) > 1.5
