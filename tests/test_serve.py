"""The serving layer: protocol, admission, coalescing, daemon lifecycle.

Unit tests pin the deterministic pieces (token buckets under injected
clocks, envelope rendering, the admission ladder's order); the
integration tests boot a real in-thread daemon and hold it to the
contract from docs/ROBUSTNESS.md — identical requests get bitwise-
identical bodies, sheds are structured 429/503/504/408 with
``Retry-After``, and SIGTERM-equivalent shutdown drains cleanly.
"""

import asyncio
import json
import time

import pytest

from repro.core.chaos import ChaosInjector, FaultSpec
from repro.errors import (
    CacheError,
    ConfigError,
    SimulationError,
    WorkloadError,
)
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.client import ServeClient
from repro.serve.coalesce import SingleFlight
from repro.serve.daemon import ServeConfig, daemon_in_thread
from repro.serve.engine import ENDPOINTS, ServeEngine, request_key
from repro.serve.protocol import (
    ProtocolError,
    error_envelope,
    render_response,
    split_response,
    status_for_error,
    success_envelope,
)


# -- token buckets (injected clock: no sleeping, no flakes) ---------------

def test_token_bucket_burst_then_starves():
    bucket = TokenBucket(rate_per_s=2.0, burst=3, now=0.0)
    assert all(bucket.take(now=0.0) for _ in range(3))
    assert not bucket.take(now=0.0)
    # At 2 tokens/s, half a second grows one token back.
    assert bucket.retry_after_s(now=0.0) == pytest.approx(0.5)
    assert bucket.take(now=0.5)
    assert not bucket.take(now=0.5)


def test_token_bucket_refill_caps_at_burst():
    bucket = TokenBucket(rate_per_s=100.0, burst=2, now=0.0)
    assert bucket.take(now=0.0) and bucket.take(now=0.0)
    # A long idle period refills to the cap, not beyond it.
    assert bucket.take(now=60.0) and bucket.take(now=60.0)
    assert not bucket.take(now=60.0)


def test_token_bucket_validation():
    with pytest.raises(ConfigError):
        TokenBucket(rate_per_s=0.0, burst=1)
    with pytest.raises(ConfigError):
        TokenBucket(rate_per_s=1.0, burst=0)


# -- the admission ladder -------------------------------------------------

def test_admission_ladder_order_and_release():
    admission = AdmissionController(max_inflight=2, quota_rate_per_s=1000.0,
                                    quota_burst=1000)
    assert admission.admit("a").admitted
    assert admission.admit("a").admitted
    overloaded = admission.admit("b")  # bound is shared across clients
    assert not overloaded.admitted
    assert overloaded.status == 503 and overloaded.code == "serve.overloaded"
    admission.release()
    assert admission.admit("b").admitted

    admission.draining = True  # draining outranks a free slot
    admission.release()
    drained = admission.admit("a")
    assert drained.status == 503 and drained.code == "serve.draining"
    assert drained.retry_after_s > 0


def test_admission_quota_is_per_client():
    admission = AdmissionController(max_inflight=100, quota_rate_per_s=0.001,
                                    quota_burst=1)
    assert admission.admit("greedy").admitted
    shed = admission.admit("greedy")
    assert shed.status == 429 and shed.code == "serve.quota"
    assert shed.retry_after_s > 0
    assert admission.admit("polite").admitted  # separate bucket, unharmed


# -- single flight --------------------------------------------------------

def test_single_flight_coalesces_until_forgotten():
    async def scenario():
        flights = SingleFlight()
        first, lead1 = flights.join("k1")
        second, lead2 = flights.join("k1")
        other, lead3 = flights.join("k2")
        assert lead1 and not lead2 and lead3
        assert first is second and other is not first
        assert flights.coalesced_total == 1 and len(flights) == 2
        first.set_result("done")
        flights.forget("k1")
        fresh, lead4 = flights.join("k1")  # post-completion: a new flight
        assert lead4 and fresh is not first
        fresh.set_result("done")

    asyncio.run(scenario())


# -- protocol: envelopes and the error mapping ----------------------------

def test_envelopes_are_canonical_and_stable():
    body = success_envelope("estimate", {"b": 1, "a": 2})
    assert body == '{"data":{"a":2,"b":1},"endpoint":"estimate","ok":true}'
    error = json.loads(error_envelope("serve.quota", "slow down", hint="wait"))
    assert error["ok"] is False
    assert error["error"] == {"code": "serve.quota", "message": "slow down",
                              "hint": "wait"}


def test_status_for_error_mirrors_exit_codes():
    assert status_for_error(ConfigError("bad")) == 400
    assert status_for_error(WorkloadError("bad")) == 400
    assert status_for_error(SimulationError("broke")) == 500
    assert status_for_error(CacheError("broke")) == 500
    assert status_for_error(RuntimeError("other")) == 500
    assert status_for_error(ProtocolError("slow", status=408)) == 408


def test_render_and_split_round_trip():
    raw = render_response(429, error_envelope("serve.quota", "wait"),
                          {"Retry-After": "0.500"})
    status, headers, body = split_response(raw)
    assert status == 429
    assert headers["retry-after"] == "0.500"
    assert headers["connection"] == "close"
    assert json.loads(body)["error"]["code"] == "serve.quota"


def test_request_key_is_order_insensitive_content_hash():
    a = request_key("estimate", {"design": "SuperNPU", "technology": "rsfq"})
    b = request_key("estimate", {"technology": "rsfq", "design": "SuperNPU"})
    c = request_key("estimate", {"design": "Baseline", "technology": "rsfq"})
    d = request_key("simulate", {"design": "SuperNPU", "technology": "rsfq"})
    assert a == b
    assert len({a, c, d}) == 3


# -- the engine: determinism and parameter hygiene ------------------------

def test_engine_bodies_are_bitwise_identical_cold_and_warm(tmp_path):
    """The core contract: cache temperature must not leak into bodies."""
    engine = ServeEngine(cache_dir=tmp_path / "cache", jobs=1)
    uncached = ServeEngine(cache_dir=None, jobs=1)
    for endpoint, params in (
            ("estimate", {"design": "SuperNPU"}),
            ("simulate", {"design": "Baseline", "workload": "mobilenet",
                          "batch": 2}),
            ("evaluate", {"designs": ["SuperNPU"], "workloads": ["mobilenet"]}),
    ):
        cold, _ = engine.handle(endpoint, dict(params))
        warm, _ = engine.handle(endpoint, dict(params))
        clean, _ = uncached.handle(endpoint, dict(params))
        assert cold == warm == clean, f"{endpoint} body drifted with cache heat"


def test_engine_rejects_unknown_endpoint_and_params(tmp_path):
    engine = ServeEngine(cache_dir=tmp_path / "cache")
    with pytest.raises(ConfigError) as excinfo:
        engine.handle("meditate", {})
    assert excinfo.value.code == "serve.unknown_endpoint"
    with pytest.raises(ConfigError) as excinfo:
        engine.handle("estimate", {"design": "SuperNPU", "librarry": "rsfq"})
    assert excinfo.value.code == "serve.bad_params"
    with pytest.raises(ConfigError):
        engine.handle("simulate", {"batch": -1})
    assert "plan/run" in ENDPOINTS


# -- the daemon, end to end -----------------------------------------------

def test_daemon_serves_identical_bodies_and_structured_errors(tmp_path):
    config = ServeConfig(cache_dir=tmp_path / "cache", jobs=1,
                         quota_rate_per_s=1000.0, quota_burst=1000)
    with daemon_in_thread(config) as daemon:
        client = ServeClient(port=daemon.port, client_id="t")

        health = client.health()
        assert health.ok and health.data["status"] == "ok"

        first = client.post("estimate", {"design": "SuperNPU"})
        second = client.post("estimate", {"design": "SuperNPU"})
        assert first.status == second.status == 200
        assert first.body == second.body  # cold vs warm, byte for byte
        assert first.headers["x-request-id"] != second.headers["x-request-id"]

        bad = client.post("estimate", {"design": "MegaNPU9000"})
        assert bad.status == 400 and bad.error_code  # taxonomy, not a 500

        missing = client.request("GET", "/v1/estimate")
        assert missing.status == 405
        nowhere = client.request("POST", "/v1/nothing", body={})
        assert nowhere.status == 404 and nowhere.error_code == "serve.not_found"

        stats = client.stats()
        assert stats.ok
        assert stats.data["serve"]["serve.responses_200"] >= 2
    assert not list((tmp_path / "cache").glob("*/*.tmp.*"))


def test_daemon_quota_shed_carries_retry_after(tmp_path):
    config = ServeConfig(cache_dir=tmp_path / "cache",
                         quota_rate_per_s=0.5, quota_burst=2)
    with daemon_in_thread(config) as daemon:
        greedy = ServeClient(port=daemon.port, client_id="greedy")
        statuses = [greedy.post("estimate", {"design": "SuperNPU"}).status
                    for _ in range(4)]
        assert statuses.count(200) == 2
        shed = greedy.post("estimate", {"design": "SuperNPU"})
        assert shed.status == 429 and shed.error_code == "serve.quota"
        assert float(shed.headers["retry-after"]) > 0
        # A different client's bucket is untouched.
        polite = ServeClient(port=daemon.port, client_id="polite")
        assert polite.post("estimate", {"design": "SuperNPU"}).ok


def test_daemon_deadline_sheds_waiter_but_finishes_the_work(tmp_path):
    handler_chaos = ChaosInjector(
        tmp_path / "chaos",
        {"evaluate": FaultSpec("hung_handler", times=1, hang_seconds=1.0)})
    config = ServeConfig(cache_dir=tmp_path / "cache",
                         quota_rate_per_s=1000.0, quota_burst=1000,
                         handler_chaos=handler_chaos)
    with daemon_in_thread(config) as daemon:
        client = ServeClient(port=daemon.port, client_id="t")
        params = {"designs": ["SuperNPU"], "workloads": ["mobilenet"]}
        shed = client.post("evaluate", params, deadline_s=0.2)
        assert shed.status == 504 and shed.error_code == "serve.deadline"
        assert "retry-after" in shed.headers
        # The leader computation survived the waiter; the retry is served
        # (warm, since the hung handler still wrote through to the cache)
        # and matches a clean engine's body exactly.
        retry = client.post("evaluate", params)
        assert retry.status == 200
        clean, _ = ServeEngine(cache_dir=None).handle("evaluate", dict(params))
        assert retry.body == clean


def test_daemon_sheds_slow_clients_and_drains_on_shutdown(tmp_path):
    config = ServeConfig(cache_dir=tmp_path / "cache",
                         header_timeout_s=0.3, body_timeout_s=0.3,
                         port_file=tmp_path / "daemon.port")
    with daemon_in_thread(config) as daemon:
        client = ServeClient(port=daemon.port, client_id="t")
        assert int((tmp_path / "daemon.port").read_text()) == daemon.port
        slow = client.request("GET", "/health", slow_chunk=1,
                              slow_delay_s=0.15, timeout_s=10.0)
        assert slow.status == 408 and slow.error_code == "serve.slow_client"
        assert client.health().ok  # one bad client never wedges the daemon

        daemon.trigger_shutdown()
        for _ in range(100):
            if daemon.admission.draining:
                break
            time.sleep(0.01)
        assert daemon.admission.draining
    assert not (tmp_path / "daemon.port").exists()  # removed by the drain
