"""CMOS (TPU) baseline model tests."""

import math

import pytest

from repro.baselines.scalesim import CMOSNPUConfig, TPU_CORE, simulate_cmos
from repro.workloads.models import alexnet, mobilenet, resnet50, vgg16


def test_tpu_core_matches_table1():
    assert TPU_CORE.pe_array_width == 256
    assert TPU_CORE.frequency_ghz == 0.7
    assert TPU_CORE.average_power_w == 40.0
    # Peak 45 TMAC/s (Table I).
    assert math.isclose(TPU_CORE.peak_mac_per_s, 45.9e12, rel_tol=0.02)


def test_tpu_high_utilization_on_big_convs():
    """A well-batched dense conv net keeps the TPU array fairly busy."""
    run = simulate_cmos(TPU_CORE, vgg16(), batch=3)
    assert run.mac_per_s / TPU_CORE.peak_mac_per_s > 0.2


def test_tpu_poor_on_depthwise():
    """Depthwise groups serialize on a systolic array."""
    run = simulate_cmos(TPU_CORE, mobilenet(), batch=20)
    assert run.mac_per_s / TPU_CORE.peak_mac_per_s < 0.05


def test_cycle_model_vs_hand_computation():
    """One fold: cycles = 2*rows + cols + vectors - 2 (SCALE-SIM WS)."""
    from repro.workloads.layers import ConvLayer

    layer = ConvLayer("c", 16, 8, 8, 32, 1, 1)  # one fold: 16 rows, 32 cols
    from repro.workloads.models import Network

    run = simulate_cmos(TPU_CORE, Network("one", (layer,)), batch=1)
    expected = (2 * 16 + 32 - 2) + 64
    assert run.layers[0].total_cycles >= expected  # may be DRAM-bound
    assert run.layers[0].weight_load_cycles + run.layers[0].compute_cycles == expected


def test_batching_improves_tpu_throughput():
    one = simulate_cmos(TPU_CORE, alexnet(), batch=1)
    many = simulate_cmos(TPU_CORE, alexnet(), batch=22)
    assert many.mac_per_s > 2 * one.mac_per_s


def test_no_preparation_costs_in_cmos():
    """SRAM is random-access: no shift-register rewinds or psum moves."""
    run = simulate_cmos(TPU_CORE, resnet50(), batch=8)
    assert all(l.ifmap_prep_cycles == 0 for l in run.layers)
    assert all(l.psum_move_cycles == 0 for l in run.layers)


def test_effective_tpu_performance_in_paper_band():
    """TPU effective throughput should land in the tens of TMAC/s."""
    run = simulate_cmos(TPU_CORE, resnet50(), batch=20)
    assert 5e12 < run.mac_per_s < 45.9e12


def test_invalid_configs():
    with pytest.raises(ValueError):
        CMOSNPUConfig(frequency_ghz=0)
    with pytest.raises(ValueError):
        CMOSNPUConfig(pe_array_width=0)
    with pytest.raises(ValueError):
        CMOSNPUConfig(average_power_w=0)
    with pytest.raises(ValueError):
        simulate_cmos(TPU_CORE, alexnet(), batch=0)
