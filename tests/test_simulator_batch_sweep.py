"""Throughput-vs-batch curve tests."""

import pytest

from repro.simulator.batch_sweep import BatchPoint, batch_sweep, knee_batch
from repro.workloads.models import resnet50


@pytest.fixture(scope="module")
def curve(rsfq, supernpu_config):
    return batch_sweep(supernpu_config, resnet50(), batches=(1, 2, 4, 8, 16, 30),
                       library=rsfq)


def test_throughput_rises_to_a_plateau(curve):
    """Batching multiplies throughput until residency limits bite; past
    the peak the curve may dip slightly (activations spill to DRAM)."""
    values = [p.mac_per_s for p in curve]
    peak = max(values)
    assert peak > 5 * values[0]
    # Strictly rising up to the peak...
    peak_index = values.index(peak)
    assert all(a < b for a, b in zip(values[: peak_index + 1], values[1 : peak_index + 1]))
    # ...and no collapse after it.
    assert values[-1] > 0.8 * peak


def test_latency_grows_but_sublinearly(curve):
    """Batching amortizes preparation: 30 images cost < 30x one image."""
    single = curve[0]
    full = curve[-1]
    assert full.latency_s > single.latency_s
    assert full.latency_s < 30 * single.latency_s
    assert full.latency_per_image_s < single.latency_per_image_s


def test_point_accessors(curve):
    point = curve[0]
    assert point.tmacs == pytest.approx(point.mac_per_s / 1e12)
    assert point.latency_per_image_s == point.latency_s


def test_knee_is_interior(curve):
    knee = knee_batch(curve)
    assert 1 <= knee <= 30


def test_knee_threshold_monotone(curve):
    """A stricter threshold can only push the knee later."""
    loose = knee_batch(curve, threshold=0.5)
    strict = knee_batch(curve, threshold=0.01)
    assert loose <= strict


def test_validation(rsfq, supernpu_config):
    with pytest.raises(ValueError):
        batch_sweep(supernpu_config, resnet50(), batches=(), library=rsfq)
    with pytest.raises(ValueError):
        batch_sweep(supernpu_config, resnet50(), batches=(0,), library=rsfq)
    with pytest.raises(ValueError):
        knee_batch([])
    with pytest.raises(ValueError):
        knee_batch([BatchPoint(1, 1.0, 1.0)], threshold=2.0)
