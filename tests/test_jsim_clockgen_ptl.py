"""Clock-generator and passive-transmission-line circuit tests."""

import math

import pytest

from repro.jsim.circuits import (
    build_clock_generator,
    build_ptl,
    clock_bias_for_frequency,
    clock_generator_frequency_ghz,
    ptl_delay_ps_per_mm,
    tune_clock_generator,
)


def test_unloaded_bias_formula():
    """RSJ relation: I = sqrt(Ic^2 + (f*Phi0/R)^2)."""
    bias = clock_bias_for_frequency(52.6, ic_ua=100.0, shunt_ohm=4.0)
    from repro.device.constants import PHI0_MV_PS

    excess = 1000.0 * 52.6e-3 * PHI0_MV_PS / 4.0
    assert math.isclose(bias, math.hypot(100.0, excess), rel_tol=1e-9)
    assert 100.0 < bias < 110.0


def test_bias_monotone_in_frequency():
    assert clock_bias_for_frequency(100.0) > clock_bias_for_frequency(30.0)
    with pytest.raises(ValueError):
        clock_bias_for_frequency(0)


def test_generator_silent_below_threshold():
    """With JTL loading, the analytic (unloaded) bias is not enough."""
    unloaded = clock_bias_for_frequency(52.6)
    assert clock_generator_frequency_ghz(unloaded) == 0.0


def test_tuned_generator_hits_npu_clock():
    """Bring-up: tune the source bias until the output clock is 52.6 GHz.

    This is the jsim-level existence proof for the on-chip clock source the
    paper's prototype die carries (Fig. 12(a))."""
    bias, measured = tune_clock_generator(52.6, tolerance_ghz=3.0)
    assert abs(measured - 52.6) <= 3.0
    assert bias > clock_bias_for_frequency(52.6)  # loading costs bias


def test_generator_structure():
    generator = build_clock_generator(bias_ua=150.0, buffer_stages=2)
    assert len(generator.circuit.junctions) == 3  # source + 2 buffers
    assert generator.bias_ua == 150.0
    with pytest.raises(ValueError):
        build_clock_generator(buffer_stages=0)


def test_ptl_delivers_single_pulse():
    from repro.jsim.elements import CurrentSource
    from repro.jsim.measure import switch_count
    from repro.jsim.solver import TransientSolver
    from repro.jsim.stimuli import gaussian_pulse

    ptl = build_ptl(segments=10)
    ptl.circuit.add_source(CurrentSource(ptl.driver_node, gaussian_pulse(40.0), "in"))
    result = TransientSolver(ptl.circuit).run(100.0)
    assert switch_count(result, ptl.driver_node) == 1
    assert switch_count(result, ptl.receiver_node) == 1


def test_ptl_delay_matches_architecture_constant():
    """The measured flight time cross-checks PTL_DELAY_PS_PER_MM (10.01)."""
    measured = ptl_delay_ps_per_mm()
    assert 7.0 <= measured <= 13.0


def test_ptl_delay_scales_with_length():
    short = ptl_delay_ps_per_mm(segments=10)
    long = ptl_delay_ps_per_mm(segments=20)
    # Per-mm delay is a property of the line, not its length.
    assert math.isclose(short, long, rel_tol=0.15)


def test_ptl_validation():
    with pytest.raises(ValueError):
        build_ptl(segments=1)
    with pytest.raises(ValueError):
        build_ptl(segment_length_mm=0)


class TestCoincidenceAnd:
    """Analog pulse-coincidence AND (the seed of the clocked gate model)."""

    @staticmethod
    def _run(pulse_a, pulse_b):
        from repro.jsim.circuits import build_coincidence_and
        from repro.jsim.elements import CurrentSource
        from repro.jsim.measure import switch_count
        from repro.jsim.solver import TransientSolver
        from repro.jsim.stimuli import gaussian_pulse

        gate = build_coincidence_and()
        if pulse_a is not None:
            gate.circuit.add_source(
                CurrentSource(gate.input_a, gaussian_pulse(pulse_a), "a")
            )
        if pulse_b is not None:
            gate.circuit.add_source(
                CurrentSource(gate.input_b, gaussian_pulse(pulse_b), "b")
            )
        result = TransientSolver(gate.circuit).run(90.0)
        return switch_count(result, gate.output_node)

    def test_truth_table(self):
        assert self._run(40.0, 40.0) == 1  # 1 AND 1 -> 1
        assert self._run(40.0, None) == 0  # 1 AND 0 -> 0
        assert self._run(None, 40.0) == 0  # 0 AND 1 -> 0
        assert self._run(None, None) == 0  # 0 AND 0 -> 0

    def test_inputs_are_latched_until_the_partner_arrives(self):
        """The first quantum waits — Fig. 1(d)'s stored-'1' semantics."""
        assert self._run(40.0, 48.0) == 1
        assert self._run(48.0, 40.0) == 1

    def test_single_fire_only(self):
        assert self._run(40.0, 41.0) == 1  # one output pulse, not two
