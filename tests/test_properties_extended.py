"""Extended property-based tests across module boundaries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_io import config_from_dict, config_to_dict
from repro.device.cells import rsfq_library
from repro.estimator.arch_level import estimate_npu
from repro.gatesim.circuits import build_adder
from repro.simulator.engine import simulate
from repro.simulator.trace import trace_layer, trace_summary
from repro.uarch.config import NPUConfig
from repro.workloads.layers import ConvLayer
from repro.workloads.models import Network

_LIB = rsfq_library()
_ADDERS = {}


def _adder(bits):
    if bits not in _ADDERS:
        _ADDERS[bits] = build_adder(bits)
    return _ADDERS[bits]


@given(bits=st.integers(1, 6), seed=st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_gatesim_adder_property(bits, seed):
    rng = np.random.default_rng(seed)
    a = int(rng.integers(0, 1 << bits))
    b = int(rng.integers(0, 1 << bits))
    assert _adder(bits).compute(a=a, b=b) == a + b


@st.composite
def sim_cases(draw):
    layer = ConvLayer(
        name="p",
        in_channels=draw(st.sampled_from([3, 16, 64])),
        in_height=draw(st.sampled_from([8, 14, 28])),
        in_width=draw(st.sampled_from([8, 14, 28])),
        out_channels=draw(st.sampled_from([8, 64, 300])),
        kernel_height=draw(st.sampled_from([1, 3])),
        kernel_width=draw(st.sampled_from([1, 3])),
        stride=1,
        padding=0,
    )
    config = NPUConfig(
        name="prop",
        pe_array_width=draw(st.sampled_from([32, 64, 256])),
        pe_array_height=256,
        ifmap_division=draw(st.sampled_from([1, 64])),
        output_division=draw(st.sampled_from([1, 64])),
        registers_per_pe=draw(st.sampled_from([1, 4])),
        integrated_output_buffer=draw(st.booleans()),
        psum_buffer_bytes=0,
    )
    if not config.integrated_output_buffer:
        config = config.with_updates(psum_buffer_bytes=8 * 1024 * 1024)
    batch = draw(st.sampled_from([1, 3, 8]))
    return layer, config, batch


@given(sim_cases())
@settings(max_examples=40, deadline=None)
def test_engine_invariants(case):
    """Cycle accounting is internally consistent for arbitrary configs."""
    layer, config, batch = case
    network = Network("prop-net", (layer,))
    run = simulate(config, network, batch=batch)
    result = run.layers[0]
    assert run.total_macs == layer.macs_per_image * batch
    assert result.total_cycles >= result.compute_cycles
    assert result.total_cycles >= result.dram_cycles
    assert result.compute_cycles >= layer.output_pixels * batch
    assert run.mac_per_s > 0
    breakdown = run.cycle_breakdown()
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9


@given(sim_cases())
@settings(max_examples=25, deadline=None)
def test_trace_always_matches_engine_charges(case):
    """The trace's phase totals equal the engine's, for any config/layer."""
    layer, config, batch = case
    network = Network("prop-net", (layer,))
    run = simulate(config, network, batch=batch)
    summary = trace_summary(trace_layer(layer, config, batch))
    result = run.layers[0]
    assert summary["weight_load"] == result.weight_load_cycles
    assert summary["ifmap_rewind"] == result.ifmap_prep_cycles
    assert summary["compute"] == result.compute_cycles
    assert summary["psum_move"] == result.psum_move_cycles


@given(
    width=st.sampled_from([32, 64, 128, 256]),
    buffer_mb=st.sampled_from([4, 12, 24, 48]),
)
@settings(max_examples=20, deadline=None)
def test_estimator_monotone_in_resources(width, buffer_mb):
    """More buffer means more area and static power, never less."""
    small = NPUConfig(
        name="s", pe_array_width=width,
        ifmap_buffer_bytes=buffer_mb * 2**20,
        output_buffer_bytes=buffer_mb * 2**20,
        psum_buffer_bytes=0, integrated_output_buffer=True,
    )
    big = small.with_updates(
        name="b",
        ifmap_buffer_bytes=2 * buffer_mb * 2**20,
        output_buffer_bytes=2 * buffer_mb * 2**20,
    )
    est_small = estimate_npu(small, _LIB)
    est_big = estimate_npu(big, _LIB)
    assert est_big.area_mm2 > est_small.area_mm2
    assert est_big.static_power_w > est_small.static_power_w
    assert est_big.frequency_ghz == est_small.frequency_ghz


@given(
    st.builds(
        dict,
        name=st.just("prop"),
        pe_array_width=st.sampled_from([16, 64, 256]),
        pe_array_height=st.sampled_from([64, 256]),
        registers_per_pe=st.integers(1, 8),
        ifmap_division=st.sampled_from([1, 16, 64]),
    )
)
@settings(max_examples=30, deadline=None)
def test_config_json_round_trip_property(fields):
    config = NPUConfig(**fields)
    assert config_from_dict(config_to_dict(config)) == config
