"""Coverage of API corners not exercised by the behaviour-focused suites."""

import math

import pytest

from repro.device import cells
from repro.device.cells import CellLibrary, Technology, rsfq_library
from repro.device.process import AIST_10UM


class TestCellLibraryCorners:
    def test_with_process_rebinds_areas(self, rsfq):
        shrunk = rsfq.with_process(AIST_10UM.scaled(0.5))
        assert shrunk.cell_area_um2(cells.DFF) == pytest.approx(
            rsfq.cell_area_um2(cells.DFF) / 4
        )
        # Timing and power are process-independent in the model.
        assert shrunk[cells.DFF].delay_ps == rsfq[cells.DFF].delay_ps

    def test_names_sorted(self, rsfq):
        assert list(rsfq.names) == sorted(rsfq.names)

    def test_custom_cells_constructor(self):
        custom = CellLibrary(
            Technology.RSFQ,
            cells={
                "DFF": rsfq_library()["DFF"],
            },
        )
        assert custom.names == ("DFF",)
        with pytest.raises(KeyError):
            custom["AND"]


class TestFrequencyReportCorners:
    def test_constraints_list_populated(self, rsfq):
        from repro.timing.frequency import GatePair, unit_frequency

        pairs = [GatePair(cells.DFF, cells.DFF), GatePair(cells.XOR, cells.AND)]
        report = unit_frequency(pairs, rsfq)
        assert len(report.constraints) == 2
        assert report.cycle_time_ps == max(c.cycle_time_ps for c in report.constraints)

    def test_zero_cct_frequency_rejected(self):
        from repro.timing.clocking import ClockingScheme, TimingConstraint

        broken = TimingConstraint(ClockingScheme.CONCURRENT_FLOW, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            broken.frequency_ghz


class TestResultCorners:
    @pytest.fixture(scope="class")
    def run(self, rsfq, supernpu_config, tiny_network):
        from repro.estimator.arch_level import estimate_npu
        from repro.simulator.engine import simulate

        estimate = estimate_npu(supernpu_config, rsfq)
        return simulate(supernpu_config, tiny_network, batch=4, estimate=estimate)

    def test_images_per_s(self, run):
        assert run.images_per_s == pytest.approx(4 / run.latency_s)

    def test_pe_utilization_validation(self, run):
        with pytest.raises(ValueError):
            run.pe_utilization(0)

    def test_memory_stall_nonnegative(self, run):
        assert all(layer.memory_stall_cycles >= 0 for layer in run.layers)

    def test_activity_rejects_negative(self):
        from repro.simulator.results import ActivityTrace

        trace = ActivityTrace()
        with pytest.raises(ValueError):
            trace.add("pe_array", -1.0)


class TestBaselineCorners:
    def test_tpu_resident_activations_skip_traffic(self):
        from repro.baselines.scalesim import TPU_CORE, simulate_cmos
        from repro.workloads.models import googlenet

        run = simulate_cmos(TPU_CORE, googlenet(), batch=2)
        # Mid-network layers read resident activations: weights only.
        mid = run.layers[5]
        from repro.workloads.models import googlenet as build

        layer = build().layers[5]
        assert mid.dram_traffic_bytes == layer.weight_bytes

    def test_tpu_memory_bound_fc_layer(self):
        from repro.baselines.scalesim import TPU_CORE, simulate_cmos
        from repro.workloads.layers import fc_layer
        from repro.workloads.models import Network

        fc_net = Network("fc", (fc_layer("fc", 8192, 8192),))
        run = simulate_cmos(TPU_CORE, fc_net, batch=1)
        # A batch-1 FC layer never computes: array fill/drain and the 64 MB
        # weight stream dwarf the single streamed vector per fold.
        layer = run.layers[0]
        assert layer.weight_load_cycles > 100 * layer.compute_cycles
        assert layer.dram_cycles > 100 * layer.compute_cycles


class TestGatesimCorners:
    def test_builder_zero_alignment_is_free(self):
        from repro.gatesim.builder import CircuitBuilder

        builder = CircuitBuilder()
        zero = builder.zero()
        delayed = builder.delay(zero, 5)
        assert delayed.is_zero
        assert delayed.depth == 5
        assert builder.network.num_gates == 0  # no DFFs spent on nothing

    def test_builder_not_of_zero_rejected(self):
        from repro.gatesim.builder import CircuitBuilder

        builder = CircuitBuilder()
        with pytest.raises(ValueError):
            builder.not_(builder.zero())

    def test_builder_or_with_zero_simplifies(self):
        from repro.gatesim.builder import CircuitBuilder

        builder = CircuitBuilder()
        a = builder.input("a")
        result = builder.or_(a, builder.zero())
        builder.output("p0", result)
        out = builder.run_stream([{"a": True}, {"a": False}])
        assert [o["p0"] for o in out] == [True, False]

    def test_builder_negative_delay_rejected(self):
        from repro.gatesim.builder import CircuitBuilder

        builder = CircuitBuilder()
        with pytest.raises(ValueError):
            builder.delay(builder.input("a"), -1)


class TestWorkloadCorners:
    def test_scalesim_load_from_file_object(self, tmp_path):
        from repro.workloads.models import vgg16
        from repro.workloads.scalesim_io import dump_topology, load_topology

        path = tmp_path / "vgg16.csv"
        path.write_text(dump_topology(vgg16()))
        with open(path) as handle:
            restored = load_topology(handle, name="VGG16")
        assert restored.total_weight_bytes == vgg16().total_weight_bytes

    def test_network_conv_layers_excludes_fc(self):
        from repro.workloads.models import alexnet

        net = alexnet()
        assert len(net.conv_layers) == 5
        assert all(not layer.is_fully_connected for layer in net.conv_layers)


class TestEstimateCorners:
    def test_estimate_record_serializes(self, rsfq, supernpu_config):
        import json

        from repro.core.report import estimate_record, to_json
        from repro.estimator.arch_level import estimate_npu

        record = estimate_record(estimate_npu(supernpu_config, rsfq))
        parsed = json.loads(to_json(record))
        assert parsed["units"]["ifmap_buffer"]["jj_count"] > 1e8

    def test_unit_estimate_has_frequency_flag(self, rsfq):
        from repro.estimator.uarch_level import estimate_unit
        from repro.uarch.buffers import ShiftRegisterBuffer

        estimate = estimate_unit(ShiftRegisterBuffer(64, io_width=1), rsfq)
        assert estimate.has_frequency

    def test_math_consistency_of_peaks(self, rsfq, supernpu_config):
        from repro.estimator.arch_level import estimate_npu

        estimate = estimate_npu(supernpu_config, rsfq)
        assert math.isclose(
            estimate.peak_mac_per_s,
            supernpu_config.num_pes * estimate.frequency_ghz * 1e9,
        )
