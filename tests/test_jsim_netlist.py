"""Netlist and mass-matrix tests."""

import numpy as np
import pytest

from repro.jsim.elements import Capacitor, JosephsonJunction
from repro.jsim.netlist import Circuit


def test_node_allocation_and_labels():
    circuit = Circuit()
    a = circuit.node("a")
    b = circuit.node()
    assert (a, b) == (1, 2)
    assert circuit.labeled("a") == 1
    assert circuit.num_nodes == 3  # including ground


def test_duplicate_label_rejected():
    circuit = Circuit()
    circuit.node("x")
    with pytest.raises(ValueError):
        circuit.node("x")


def test_unknown_label_rejected():
    with pytest.raises(KeyError):
        Circuit().labeled("nope")


def test_unallocated_node_rejected():
    circuit = Circuit()
    with pytest.raises(ValueError):
        circuit.add_junction(JosephsonJunction(5, 0))


def test_mass_matrix_symmetric_positive_definite():
    circuit = Circuit()
    a, b = circuit.node(), circuit.node()
    circuit.add_junction(JosephsonJunction(a, 0))
    circuit.add_junction(JosephsonJunction(b, 0))
    circuit.add_capacitor(Capacitor(a, b, 0.1))
    mass = circuit.mass_matrix()
    assert np.allclose(mass, mass.T)
    assert np.all(np.linalg.eigvalsh(mass) > 0)


def test_mass_matrix_parasitic_keeps_invertible():
    circuit = Circuit()
    circuit.node()  # floating node with no capacitance
    mass = circuit.mass_matrix()
    assert mass.shape == (1, 1)
    assert mass[0, 0] > 0


def test_bias_source_constant():
    circuit = Circuit()
    node = circuit.node()
    source = circuit.add_bias(node, 70.0)
    assert source.current_ua(0.0) == 70.0
    assert source.current_ua(1e6) == 70.0
