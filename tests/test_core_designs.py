"""Named design-point tests (Table I)."""

import pytest

from repro.core.designs import (
    DESIGN_ORDER,
    all_designs,
    baseline,
    buffer_opt,
    design_by_name,
    resource_opt,
    supernpu,
)
from repro.uarch.config import KIB, MIB


def test_design_order():
    assert [d.name for d in all_designs()] == list(DESIGN_ORDER)


def test_baseline_table1_row():
    config = baseline()
    assert config.pe_array_width == 256
    assert config.ifmap_buffer_bytes == 8 * MIB
    assert config.psum_buffer_bytes == 8 * MIB
    assert config.weight_buffer_bytes == 64 * KIB
    assert not config.integrated_output_buffer
    assert config.ifmap_division == 1
    assert config.registers_per_pe == 1


def test_buffer_opt_table1_row():
    config = buffer_opt()
    assert config.ifmap_buffer_bytes == 12 * MIB
    assert config.output_buffer_bytes == 12 * MIB
    assert config.psum_buffer_bytes == 0
    assert config.integrated_output_buffer
    assert config.ifmap_division == 64
    assert config.output_division == 64


def test_resource_opt_table1_row():
    config = resource_opt()
    assert config.pe_array_width == 64
    assert config.pe_array_height == 256
    assert config.ifmap_buffer_bytes == 24 * MIB
    assert config.weight_buffer_bytes == 16 * KIB
    assert config.output_division == 256
    assert config.registers_per_pe == 1


def test_supernpu_table1_row():
    config = supernpu()
    assert config.pe_array_width == 64
    assert config.registers_per_pe == 8
    assert config.weight_buffer_bytes == 128 * KIB
    assert config.onchip_buffer_bytes == 48 * MIB + 128 * KIB


def test_total_buffer_capacity_preserved_through_buffer_opt():
    """Section V-B1: integration re-splits the same 24 MB."""
    assert (
        baseline().ifmap_buffer_bytes
        + baseline().output_buffer_bytes
        + baseline().psum_buffer_bytes
        == buffer_opt().ifmap_buffer_bytes + buffer_opt().output_buffer_bytes
    )


@pytest.mark.parametrize(
    "alias, expected",
    [
        ("baseline", "Baseline"),
        ("Buffer opt.", "Buffer opt."),
        ("buffer_opt", "Buffer opt."),
        ("resource_opt", "Resource opt."),
        ("SuperNPU", "SuperNPU"),
        ("super", "SuperNPU"),
    ],
)
def test_design_by_name_aliases(alias, expected):
    assert design_by_name(alias).name == expected


def test_design_by_name_unknown():
    with pytest.raises(KeyError):
        design_by_name("meganpu")
