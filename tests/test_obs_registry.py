"""Run-registry tests: round-trips, damage tolerance, CLI queries."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.obs import registry as regmod
from repro.obs.registry import (
    REGISTRY_SCHEMA_VERSION,
    RunEntry,
    RunRegistry,
    record_invocation,
    registry_disabled,
)


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs")


def test_append_list_round_trip(registry):
    written = registry.append(
        "simulate", argv=["simulate", "supernpu", "alexnet"],
        exit_code=0, wall_time_s=1.25,
        manifest={"design": "SuperNPU", "workload": "AlexNet", "batch": 30},
        metrics={"counters": {"sim.cycles": 1000}},
    )
    entries, corrupt = registry.entries()
    assert corrupt == 0
    assert [e.run_id for e in entries] == [written.run_id]
    entry = entries[0]
    assert entry.command == "simulate"
    assert entry.argv == ["simulate", "supernpu", "alexnet"]
    assert entry.exit_code == 0
    assert entry.wall_time_s == 1.25
    assert entry.manifest["design"] == "SuperNPU"
    assert entry.counters == {"sim.cycles": 1000}


def test_entries_newest_first_and_limit(registry):
    ids = [registry.append("estimate", exit_code=0).run_id for _ in range(3)]
    entries, _ = registry.entries()
    assert [e.run_id for e in entries] == list(reversed(ids))
    limited, _ = registry.entries(limit=2)
    assert len(limited) == 2
    assert limited[0].run_id == entries[0].run_id


def test_get_by_exact_id_and_prefix(registry):
    written = registry.append("evaluate", exit_code=0)
    assert registry.get(written.run_id).run_id == written.run_id
    assert registry.get(written.run_id[:-2]).run_id == written.run_id


def test_get_unknown_and_ambiguous(registry):
    registry.append("evaluate", exit_code=0)
    registry.append("evaluate", exit_code=0)
    with pytest.raises(ConfigError) as excinfo:
        registry.get("nope-nothing")
    assert excinfo.value.code == "registry.unknown_run"
    with pytest.raises(ConfigError) as excinfo:
        registry.get("")  # prefix of everything
    assert excinfo.value.code == "registry.ambiguous_run"


def test_corrupt_entries_are_skipped_not_fatal(registry):
    good = registry.append("simulate", exit_code=0)
    (registry.root / "torn.json").write_text('{"schema": 1, "run_id"')
    (registry.root / "foreign.json").write_text(
        json.dumps({"schema": 999, "run_id": "x", "command": "y"}))
    (registry.root / "notdict.json").write_text("[1, 2, 3]")
    entries, corrupt = registry.entries()
    assert [e.run_id for e in entries] == [good.run_id]
    assert corrupt == 3


def test_corrupt_entry_by_id_raises_config_error(registry):
    (registry.root / "bad.json").write_text("{not json")
    with pytest.raises(ConfigError) as excinfo:
        registry.get("bad")
    assert excinfo.value.code == "registry.corrupt_entry"


def test_entry_schema_round_trip():
    entry = RunEntry(run_id="r1", command="sweep", argv=["sweep", "buffers"],
                     exit_code=0, wall_time_s=2.0, created_unix=123.0,
                     manifest={"plan": "fig20"}, metrics={"counters": {"a": 1}},
                     plans=[{"name": "fig20", "hash": "ab" * 32}])
    data = entry.to_dict()
    assert data["schema"] == REGISTRY_SCHEMA_VERSION
    restored = RunEntry.from_dict(json.loads(json.dumps(data)))
    assert restored == entry
    with pytest.raises(ValueError):
        RunEntry.from_dict({**data, "schema": REGISTRY_SCHEMA_VERSION + 1})


def test_diff_reports_fields_counters_wall(registry):
    a = registry.append("simulate", exit_code=0, wall_time_s=1.0,
                        manifest={"batch": 8, "design": "SuperNPU"},
                        metrics={"counters": {"sim.cycles": 100, "only.a": 1}})
    b = registry.append("simulate", exit_code=1, wall_time_s=3.0,
                        manifest={"batch": 30, "design": "SuperNPU"},
                        metrics={"counters": {"sim.cycles": 250}})
    difference = registry.diff(a.run_id, b.run_id)
    assert difference["fields"]["exit_code"] == {"a": 0, "b": 1}
    assert difference["fields"]["batch"] == {"a": 8, "b": 30}
    assert "design" not in difference["fields"]  # unchanged
    assert difference["counters"]["sim.cycles"] == {"a": 100, "b": 250,
                                                    "delta": 150}
    assert difference["counters"]["only.a"]["delta"] == -1
    assert difference["wall_time_delta_s"] == pytest.approx(2.0)


def test_describe_mentions_command_and_counters(registry):
    entry = registry.append("plan", argv=["plan", "run", "fig23"], exit_code=0,
                            metrics={"counters": {"sim.macs": 12345}},
                            plans=[{"name": "fig23", "hash": "cd" * 32}])
    text = registry.get(entry.run_id).describe()
    assert "plan run fig23" in text
    assert "sim.macs" in text and "12,345" in text
    assert "fig23 (cdcdcdcdcdcd)" in text


def test_registry_disabled_env(monkeypatch):
    monkeypatch.delenv(regmod.NO_REGISTRY_ENV, raising=False)
    assert not registry_disabled()
    for off in ("0", "false", "no", ""):
        monkeypatch.setenv(regmod.NO_REGISTRY_ENV, off)
        assert not registry_disabled()
    monkeypatch.setenv(regmod.NO_REGISTRY_ENV, "1")
    assert registry_disabled()


def test_record_invocation_never_raises(tmp_path, monkeypatch):
    # Unwritable runs dir: swallowed, returns None.
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a directory")
    assert record_invocation("estimate", ["estimate"], 0, 0.1,
                             runs_dir=blocked) is None
    # Disabled via env: nothing written, staged fields drained.
    monkeypatch.setenv(regmod.NO_REGISTRY_ENV, "1")
    regmod.stage(manifest={"design": "X"})
    assert record_invocation("estimate", ["estimate"], 0, 0.1,
                             runs_dir=tmp_path / "runs") is None
    assert regmod.take_staged() == {}
    assert not (tmp_path / "runs").exists()


def test_record_invocation_consumes_staged(tmp_path):
    regmod.stage(manifest={"design": "SuperNPU"},
                 metrics={"counters": {"sim.runs": 1}})
    entry = record_invocation("simulate", ["simulate", "supernpu"], 0, 0.5,
                              runs_dir=tmp_path / "runs")
    assert entry is not None
    assert entry.manifest == {"design": "SuperNPU"}
    assert entry.counters == {"sim.runs": 1}
    assert regmod.take_staged() == {}  # drained


def test_append_retries_past_reserved_names(registry, monkeypatch):
    """A name collision is survived, not overwritten: the reservation
    (O_CREAT|O_EXCL on the final path) forces a sequence-suffixed id."""
    first = registry.append("estimate", exit_code=0)
    # Freeze the id generator's entropy so the next append collides with
    # the entry already on disk until the sequence suffix kicks in.
    base = first.run_id
    monkeypatch.setattr(
        regmod, "_new_run_id",
        lambda sequence=0: base if sequence == 0 else f"{base}-{sequence}")
    second = registry.append("estimate", exit_code=0)
    assert second.run_id == f"{base}-1"
    entries, corrupt = registry.entries()
    assert corrupt == 0
    assert {e.run_id for e in entries} == {base, f"{base}-1"}


def test_concurrent_writers_never_lose_or_tear_entries(tmp_path):
    """Two processes racing record_invocation: 2N entries, zero corrupt."""
    import subprocess
    import sys

    runs = tmp_path / "runs"
    writes_per_process = 12
    script = (
        "import sys\n"
        "from repro.obs.registry import record_invocation\n"
        "for i in range(%d):\n"
        "    entry = record_invocation('simulate', ['simulate', sys.argv[1],"
        " str(i)], 0, 0.01, runs_dir=%r)\n"
        "    assert entry is not None\n" % (writes_per_process, str(runs))
    )
    processes = [
        subprocess.Popen([sys.executable, "-c", script, name],
                         env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                         cwd="/root/repo", stderr=subprocess.PIPE)
        for name in ("alpha", "beta")
    ]
    for process in processes:
        _, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr.decode()

    entries, corrupt = RunRegistry(runs).entries()
    assert corrupt == 0
    assert len(entries) == 2 * writes_per_process
    assert len({e.run_id for e in entries}) == 2 * writes_per_process
    by_writer = {name: sum(1 for e in entries if e.argv[1] == name)
                 for name in ("alpha", "beta")}
    assert by_writer == {"alpha": writes_per_process,
                         "beta": writes_per_process}
    assert not list(runs.glob("*.tmp.*"))  # no stragglers either


# -- CLI integration -------------------------------------------------------

def test_cli_invocations_are_recorded(tmp_path, capsys):
    runs = tmp_path / "runs"
    assert main(["--runs-dir", str(runs), "estimate", "supernpu"]) == 0
    assert main(["--runs-dir", str(runs), "simulate", "supernpu", "alexnet",
                 "--batch", "1"]) == 0
    capsys.readouterr()
    assert main(["--runs-dir", str(runs), "runs", "list"]) == 0
    out = capsys.readouterr().out
    assert "2 shown" in out
    assert "estimate supernpu" in out
    assert "simulate supernpu alexnet --batch 1" in out


def test_cli_runs_show_and_diff(tmp_path, capsys):
    runs = tmp_path / "runs"
    base = ["--runs-dir", str(runs)]
    for batch in ("1", "2"):
        assert main(base + ["simulate", "supernpu", "alexnet", "--batch", batch,
                            "--metrics-out", str(tmp_path / f"m{batch}.json")]) == 0
    capsys.readouterr()
    registry = RunRegistry(runs)
    entries, _ = registry.entries()
    ids = [e.run_id for e in entries]
    assert len(ids) == 2

    assert main(base + ["runs", "show", ids[0]]) == 0
    out = capsys.readouterr().out
    assert "sim.cycles" in out and "batch" in out

    assert main(base + ["runs", "diff", ids[1], ids[0]]) == 0
    out = capsys.readouterr().out
    assert "batch" in out and "1 -> 2" in out
    assert "sim.cycles" in out


def test_cli_plain_invocation_records_manifest(tmp_path, capsys):
    """Provenance lands in the registry even with instrumentation off."""
    runs = tmp_path / "runs"
    assert main(["--runs-dir", str(runs), "simulate", "supernpu", "alexnet",
                 "--batch", "4"]) == 0
    entries, _ = RunRegistry(runs).entries()
    assert len(entries) == 1
    entry = entries[0]
    assert entry.manifest["design"] == "SuperNPU"
    assert entry.manifest["workload"] == "AlexNet"
    assert entry.manifest["batch"] == 4
    assert entry.counters == {}  # obs runtime stayed off


def test_cli_runs_json_envelopes(tmp_path, capsys):
    runs = tmp_path / "runs"
    assert main(["--runs-dir", str(runs), "estimate", "supernpu"]) == 0
    capsys.readouterr()
    assert main(["--runs-dir", str(runs), "runs", "list", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["command"] == "runs"
    assert len(document["data"]["runs"]) == 1
    assert document["data"]["runs"][0]["command"] == "estimate"


def test_cli_no_registry_flag(tmp_path, capsys):
    runs = tmp_path / "runs"
    assert main(["--runs-dir", str(runs), "--no-registry",
                 "estimate", "supernpu"]) == 0
    capsys.readouterr()
    assert main(["--runs-dir", str(runs), "runs", "list"]) == 0
    assert "0 shown" in capsys.readouterr().out


def test_cli_failed_command_records_exit_code(tmp_path, capsys):
    runs = tmp_path / "runs"
    assert main(["--runs-dir", str(runs), "estimate", "meganpu"]) == 2
    capsys.readouterr()
    entries, _ = RunRegistry(runs).entries()
    assert len(entries) == 1
    assert entries[0].exit_code == 2


def test_cli_runs_query_not_recorded(tmp_path, capsys):
    runs = tmp_path / "runs"
    assert main(["--runs-dir", str(runs), "runs", "list"]) == 0
    assert main(["--runs-dir", str(runs), "runs", "list"]) == 0
    capsys.readouterr()
    entries, _ = RunRegistry(runs).entries()
    assert entries == []


def test_cli_runs_bad_queries(tmp_path, capsys):
    base = ["--runs-dir", str(tmp_path / "runs")]
    assert main(base + ["runs", "show"]) == 2
    assert "exactly one run id" in capsys.readouterr().err
    assert main(base + ["runs", "diff", "onlyone"]) == 2
    assert "two run ids" in capsys.readouterr().err
    assert main(base + ["runs", "show", "missing"]) == 2
    assert "no recorded run" in capsys.readouterr().err
