"""The daemon chaos drill as a test: survive and stay bitwise-identical.

:func:`repro.serve.drill.run_chaos_drill` boots an in-thread daemon
under worker SIGKILLs, a hung handler, mid-load cache corruption, tight
quotas, and a dribbling slow client — and raises ``DrillFailure`` the
moment any surviving response diverges from a clean single-client run
or any shed arrives unstructured.  The test simply runs it and checks
the report's evidence; the drill owns the assertions.
"""

import pytest

from repro.serve.drill import DRILL_REQUESTS, DrillFailure, clean_baseline, run_chaos_drill
from repro.serve.engine import ServeEngine, request_key


def test_clean_baseline_is_reproducible():
    """The golden run itself must be stable, or the drill proves nothing."""
    first = clean_baseline()
    second = clean_baseline()
    assert first == second
    assert set(first) == {request_key(e, p) for e, p in DRILL_REQUESTS}


def test_chaos_drill_survives_with_bitwise_identical_responses(tmp_path):
    report = run_chaos_drill(tmp_path)
    # Every 200 was checked against the clean run inside the drill; the
    # report's counts are the evidence that the checks actually ran.
    assert report.responses_200 == report.matched
    assert report.responses_200 >= len(DRILL_REQUESTS)
    assert report.shed_429 >= 1  # the greedy client was quota-shed
    assert report.deadline_504 == 1  # the hung handler shed exactly once
    assert report.slow_408 == 1
    assert not list((tmp_path / "cache").glob("*/*.tmp.*"))


def test_drill_failure_is_loud(tmp_path):
    """A diverging body must abort the drill, not be absorbed."""
    golden = clean_baseline()
    endpoint, params = DRILL_REQUESTS[0]
    engine = ServeEngine(cache_dir=None)
    body, _ = engine.handle(endpoint, dict(params))
    assert golden[request_key(endpoint, params)] == body
    with pytest.raises(DrillFailure):
        from repro.serve.drill import _match_or_die, DrillReport
        _match_or_die(DrillReport(), golden, endpoint, params,
                      body + " ", "tampered")
