"""Batch-policy tests (Table II)."""

import pytest

from repro.core.batching import (
    BATCH_CAP,
    PAPER_BATCHES,
    batch_for,
    derived_batch,
    paper_batch,
)
from repro.core.designs import baseline, supernpu
from repro.workloads.models import alexnet, vgg16


def test_table2_values_verbatim():
    assert paper_batch("TPU", "AlexNet") == 22
    assert paper_batch("TPU", "VGG16") == 3
    assert paper_batch("Baseline", "ResNet50") == 1
    assert paper_batch("Buffer opt.", "AlexNet") == 15
    assert paper_batch("Resource opt.", "MobileNet") == 30
    assert paper_batch("SuperNPU", "VGG16") == 7


def test_every_design_covers_every_workload():
    workloads = {"AlexNet", "FasterRCNN", "GoogLeNet", "MobileNet", "ResNet50", "VGG16"}
    for design, rows in PAPER_BATCHES.items():
        assert set(rows) == workloads, design


def test_baseline_runs_single_batch_everywhere():
    assert all(v == 1 for v in PAPER_BATCHES["Baseline"].values())


def test_unknown_pairs_raise():
    with pytest.raises(KeyError):
        paper_batch("MegaNPU", "AlexNet")
    with pytest.raises(KeyError):
        paper_batch("TPU", "LeNet")


def test_batch_for_uses_table_for_named_designs():
    assert batch_for(supernpu(), vgg16()) == 7
    assert batch_for(baseline(), alexnet()) == 1


def test_batch_for_falls_back_to_derived_rule():
    config = supernpu().with_updates(name="custom-sweep-point")
    batch = batch_for(config, vgg16())
    assert 1 <= batch <= BATCH_CAP


def test_derived_batch_caps_and_floors():
    assert derived_batch(supernpu(), alexnet()) <= BATCH_CAP
    tiny = supernpu().with_updates(
        name="tiny", ifmap_buffer_bytes=1024, output_buffer_bytes=1024
    )
    assert derived_batch(tiny, vgg16()) == 1


def test_derived_batch_monotone_in_capacity():
    small = supernpu().with_updates(
        name="s", ifmap_buffer_bytes=4 * 2**20, output_buffer_bytes=4 * 2**20
    )
    large = supernpu().with_updates(
        name="l", ifmap_buffer_bytes=32 * 2**20, output_buffer_bytes=32 * 2**20
    )
    assert derived_batch(small, vgg16()) <= derived_batch(large, vgg16())


def test_derived_batch_channel_slot_constraint():
    """An undivided buffer holds at most pe_array_height channels."""
    undivided = baseline().with_updates(name="u")
    divided = baseline().with_updates(name="d", ifmap_division=64)
    assert derived_batch(undivided, vgg16()) <= derived_batch(divided, vgg16())


def test_derived_batch_rejects_bad_cap():
    with pytest.raises(ValueError):
        derived_batch(supernpu(), vgg16(), cap=0)
