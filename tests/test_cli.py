"""CLI smoke tests (every command exits 0 and prints sane output)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_estimate_command(capsys):
    assert main(["estimate", "supernpu"]) == 0
    out = capsys.readouterr().out
    assert "52.6" in out and "SuperNPU" in out


def test_estimate_ersfq(capsys):
    assert main(["estimate", "baseline", "--technology", "ersfq"]) == 0
    out = capsys.readouterr().out
    assert "static power    : 0.00 W" in out


def test_simulate_command(capsys):
    assert main(["simulate", "supernpu", "mobilenet"]) == 0
    out = capsys.readouterr().out
    assert "TMAC/s" in out and "batch 30" in out


def test_simulate_custom_batch(capsys):
    assert main(["simulate", "baseline", "alexnet", "--batch", "2"]) == 0
    assert "batch 2" in capsys.readouterr().out


def test_validate_command(capsys):
    assert main(["validate"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_table1_command(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Baseline" in out and "SuperNPU" in out


def test_table2_command(capsys):
    assert main(["table", "2"]) == 0
    assert "AlexNet" in capsys.readouterr().out


def test_unknown_design_exits_2(capsys):
    assert main(["estimate", "meganpu"]) == 2
    err = capsys.readouterr().err
    assert "unknown design 'meganpu'" in err and "hint:" in err


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "VGG16" in out and "duplication" in out


def test_trace_summary_command(capsys):
    assert main(["trace", "baseline", "vgg16", "conv3_1"]) == 0
    out = capsys.readouterr().out
    assert "psum_move" in out and "mappings" in out


def test_trace_csv_command(capsys):
    assert main(["trace", "supernpu", "resnet50", "conv2_1b", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("mapping,phase,start_cycle")


def test_trace_unknown_layer_exits_3(capsys):
    assert main(["trace", "baseline", "vgg16", "conv99"]) == 3
    assert "no layer 'conv99'" in capsys.readouterr().err


def test_debug_flag_reraises():
    with pytest.raises(KeyError):
        main(["--debug", "estimate", "meganpu"])


def test_report_json_command(capsys):
    assert main(["report", "supernpu", "googlenet"]) == 0
    out = capsys.readouterr().out
    assert '"design": "SuperNPU"' in out


def test_report_csv_layers_command(capsys):
    assert main(["report", "baseline", "alexnet", "--format", "csv", "--layers"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("design,network,layer")


def test_floorplan_command(capsys):
    assert main(["floorplan", "supernpu"]) == 0
    out = capsys.readouterr().out
    assert "pe_array" in out and "implied clock: 52.6 GHz" in out


def test_energy_command(capsys):
    assert main(["energy", "mobilenet"]) == 0
    out = capsys.readouterr().out
    assert "ERSFQ-SuperNPU (free cooling)" in out


def test_evaluate_command(capsys):
    assert main(["evaluate"]) == 0
    out = capsys.readouterr().out
    assert "SuperNPU" in out and "Average" in out


def test_sweep_resources_command(capsys):
    assert main(["sweep", "resources"]) == 0
    out = capsys.readouterr().out
    assert "intensity" in out


def test_sweep_registers_command(capsys):
    assert main(["sweep", "registers"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_table3_command(capsys):
    assert main(["table", "3"]) == 0
    out = capsys.readouterr().out
    assert "RSFQ-SuperNPU (w/ cooling)" in out


def test_config_file_flow(tmp_path, capsys):
    from repro.core.config_io import save
    from repro.core.designs import supernpu

    path = tmp_path / "custom.json"
    save(supernpu().with_updates(name="my-npu", registers_per_pe=2), path)
    assert main(["estimate", "--config-file", str(path)]) == 0
    out = capsys.readouterr().out
    assert "my-npu" in out
    assert main(["simulate", "googlenet", "--config-file", str(path)]) == 0
    assert "my-npu running GoogLeNet" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main(["compare", "baseline", "supernpu", "--workloads", "mobilenet"]) == 0
    out = capsys.readouterr().out
    assert "winner (mean throughput): SuperNPU" in out


def test_profile_command(capsys):
    assert main(["profile", "supernpu", "mobilenet"]) == 0
    out = capsys.readouterr().out
    # Span-tree wall-time summary.
    assert "simulate/layer" in out and "wall ms" in out
    # Counters and the run manifest.
    assert "sim.cycles" in out
    assert "sha256:" in out and "SuperNPU" in out


def test_profile_leaves_obs_disabled(capsys):
    from repro import obs

    assert main(["profile", "baseline", "alexnet", "--batch", "1"]) == 0
    assert not obs.enabled()
    assert obs.metrics().is_empty()
    assert obs.tracer().roots == []


def test_profile_writes_trace_and_metrics(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert main(["profile", "supernpu", "mobilenet",
                 "--trace-out", str(trace_path),
                 "--metrics-out", str(metrics_path)]) == 0
    trace = json.loads(trace_path.read_text())
    names = {event["name"] for event in trace["traceEvents"]}
    assert {"simulate", "simulate/layer", "estimate", "estimate/unit"} <= names
    assert trace["metadata"]["workload"] == "MobileNet"
    metrics = json.loads(metrics_path.read_text())
    assert metrics["metrics"]["counters"]["sim.runs"] == 1
    assert metrics["manifest"]["config_hash"]


def test_simulate_metrics_out_flag(tmp_path, capsys):
    import json

    path = tmp_path / "m.json"
    assert main(["simulate", "baseline", "alexnet", "--batch", "1",
                 "--metrics-out", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"metrics written to {path}" in out
    data = json.loads(path.read_text())
    assert data["manifest"]["command"] == "simulate"
    assert data["manifest"]["design"] == "Baseline"
    assert data["metrics"]["counters"]["sim.cycles"] > 0


def test_simulate_trace_out_flag(tmp_path, capsys):
    import json

    path = tmp_path / "t.json"
    assert main(["simulate", "supernpu", "alexnet", "--batch", "1",
                 "--trace-out", str(path)]) == 0
    data = json.loads(path.read_text())
    layer_events = [e for e in data["traceEvents"] if e["name"] == "simulate/layer"]
    assert layer_events and all("layer" in e["args"] for e in layer_events)


def test_sweep_metrics_out_flag(tmp_path, capsys):
    import json

    path = tmp_path / "sweep.json"
    assert main(["sweep", "buffers", "--metrics-out", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["manifest"]["which"] == "buffers"
    assert data["metrics"]["counters"]["sim.runs"] > 0


def test_simulate_without_obs_flags_records_nothing(capsys):
    from repro import obs

    assert main(["simulate", "baseline", "alexnet", "--batch", "1"]) == 0
    assert obs.metrics().is_empty()
    assert obs.tracer().roots == []


def test_profile_prints_quantiles(capsys):
    assert main(["profile", "baseline", "alexnet", "--batch", "1"]) == 0
    out = capsys.readouterr().out
    assert "p50=" in out and "p95=" in out and "p99=" in out


def test_compare_metrics_out_flag(tmp_path, capsys):
    import json

    path = tmp_path / "compare.json"
    assert main(["compare", "baseline", "supernpu", "--workloads", "alexnet",
                 "--metrics-out", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["manifest"]["command"] == "compare"
    assert data["metrics"]["counters"]["sim.runs"] >= 2


def test_compare_shows_cycle_movement(capsys):
    assert main(["compare", "baseline", "supernpu", "--workloads", "alexnet"]) == 0
    out = capsys.readouterr().out
    assert "cycle movement vs Baseline" in out
    assert "psum_move" in out and "dram_stall" in out


def test_reproduce_metrics_out_flag(tmp_path, capsys):
    import json

    path = tmp_path / "repro.json"
    assert main(["reproduce", "--only", "fig15_cycle_breakdown",
                 "--metrics-out", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["manifest"]["command"] == "reproduce"
    assert data["metrics"]["counters"]["sim.runs"] > 0


def test_bottleneck_command(capsys):
    assert main(["bottleneck", "baseline", "alexnet", "--batch", "1"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck: Baseline running AlexNet" in out
    assert "attribution summary (cycle-weighted)" in out
    assert "critical layers" in out
    assert "roofline" in out and "MACs/byte" in out
    assert "busiest unit" in out


def test_bottleneck_json(capsys):
    import json

    assert main(["bottleneck", "baseline", "resnet50", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["design"] == "Baseline" and doc["network"] == "ResNet50"
    for layer in doc["layers"]:
        assert layer["bound"] in ("compute", "preparation", "dram")
        fractions = sum(v for k, v in layer.items() if k.startswith("frac_"))
        assert abs(fractions - 1.0) < 1e-6
    assert abs(sum(doc["summary"]["fractions"].values()) - 1.0) < 1e-6
    assert doc["roofline"]["points"]
    assert doc["critical_layers"][0]["share"] > 0


def test_bottleneck_timeline_out(tmp_path, capsys):
    import json

    path = tmp_path / "timeline.json"
    assert main(["bottleneck", "supernpu", "resnet50",
                 "--timeline-out", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"timeline written to {path}" in out
    trace = json.loads(path.read_text())
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    span_us = max(e["ts"] + e["dur"] for e in events)
    other = trace["otherData"]
    # Timestamps are simulated time: span == total_cycles / clock.
    expected_us = other["total_cycles"] / (other["clock_ghz"] * 1e3)
    assert abs(span_us - expected_us) < 1e-6 * expected_us
    assert other["time_domain"] == "simulated"
    assert trace["metadata"]["command"] == "bottleneck"
    phase_names = {e["name"] for e in events}
    assert {"compute", "weight_load", "dram"} <= phase_names


def test_bottleneck_custom_top(capsys):
    assert main(["bottleneck", "supernpu", "resnet50", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "critical layers (top 3" in out


def test_bottleneck_leaves_obs_disabled():
    from repro import obs

    assert main(["bottleneck", "baseline", "alexnet", "--batch", "1"]) == 0
    assert not obs.enabled()
    assert obs.metrics().is_empty()


# -- the JSON envelope -----------------------------------------------------

ENVELOPE_KEYS = {"command", "design", "workload", "data", "manifest"}


def _json_out(capsys):
    import json

    return json.loads(capsys.readouterr().out)


def test_estimate_json_envelope(capsys):
    assert main(["estimate", "supernpu", "--json"]) == 0
    doc = _json_out(capsys)
    assert set(doc) == ENVELOPE_KEYS
    assert doc["command"] == "estimate" and doc["design"] == "SuperNPU"
    assert doc["workload"] is None
    assert abs(doc["data"]["frequency_ghz"] - 52.6) < 0.1
    assert doc["manifest"]["command"] == "estimate"


def test_simulate_json_envelope(capsys):
    assert main(["simulate", "baseline", "alexnet", "--batch", "2", "--json"]) == 0
    doc = _json_out(capsys)
    assert set(doc) == ENVELOPE_KEYS
    assert doc["design"] == "Baseline" and doc["workload"] == "AlexNet"
    assert doc["data"]["batch"] == 2
    assert doc["data"]["total_cycles"] > 0


def test_evaluate_json_envelope(capsys):
    assert main(["evaluate", "--json"]) == 0
    doc = _json_out(capsys)
    assert set(doc) == ENVELOPE_KEYS
    assert doc["command"] == "evaluate"
    assert doc["data"]["workloads"][-1] == "Average"
    assert doc["data"]["speedups"]["SuperNPU"]["Average"] > 1


def test_compare_json_envelope(capsys):
    assert main(["compare", "baseline", "supernpu",
                 "--workloads", "alexnet", "--json"]) == 0
    doc = _json_out(capsys)
    assert set(doc) == ENVELOPE_KEYS
    assert doc["data"]["winner"] == "SuperNPU"
    assert len(doc["data"]["columns"]) == 2
    assert doc["data"]["phase_deltas"]


# -- jobs / caching flags --------------------------------------------------

def test_simulate_cache_flags(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["simulate", "baseline", "alexnet", "--batch", "1", "--cache-dir", cache]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "0 cache hits / 1 misses" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "1 cache hits / 0 misses" in warm and "0 simulated" in warm
    # Identical results, modulo the cache-summary line.
    strip = lambda s: [l for l in s.splitlines() if not l.startswith("cache [")]  # noqa: E731
    assert strip(warm) == strip(cold)


def test_simulate_no_cache_flag(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["simulate", "baseline", "alexnet", "--batch", "1",
            "--cache-dir", cache, "--no-cache"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache [" not in out
    assert not (tmp_path / "cache").exists()


def test_evaluate_parallel_matches_serial(capsys):
    assert main(["evaluate"]) == 0
    serial = capsys.readouterr().out
    assert main(["evaluate", "--jobs", "4"]) == 0
    parallel = capsys.readouterr().out
    stripped = [l for l in parallel.splitlines() if not l.startswith("jobs:")]
    assert stripped == serial.splitlines()


def test_json_keeps_stdout_clean(tmp_path, capsys):
    import json

    assert main(["evaluate", "--json", "--cache-dir", str(tmp_path / "c")]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # one parseable document, no summary lines
    assert "cache [" in captured.err


def test_cache_stats_and_clear_commands(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["simulate", "baseline", "alexnet", "--batch", "1",
                 "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "entries : 2" in out  # one simulate + one estimate entry
    assert "simulate" in out and "estimate" in out
    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    assert "removed 2 entries" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "entries : 0" in capsys.readouterr().out


def test_evaluate_metrics_report_cache_counters(tmp_path, capsys):
    import json

    cache = str(tmp_path / "cache")
    cold_metrics = tmp_path / "cold.json"
    warm_metrics = tmp_path / "warm.json"
    assert main(["evaluate", "--cache-dir", cache,
                 "--metrics-out", str(cold_metrics)]) == 0
    assert main(["evaluate", "--cache-dir", cache,
                 "--metrics-out", str(warm_metrics)]) == 0
    cold = json.loads(cold_metrics.read_text())["metrics"]["counters"]
    warm = json.loads(warm_metrics.read_text())["metrics"]["counters"]
    assert cold["jobs.cache.misses"] == cold["jobs.tasks"]
    assert warm["jobs.cache.hits"] == warm["jobs.tasks"]
    assert warm["jobs.cache.misses"] == 0
    assert warm.get("jobs.sim.executed", 0) == 0


def test_report_config_file_flag(tmp_path, capsys):
    from repro.core.config_io import save
    from repro.core.designs import supernpu

    path = tmp_path / "custom.json"
    save(supernpu().with_updates(name="my-npu"), path)
    assert main(["report", "supernpu", "alexnet", "--batch", "1",
                 "--config-file", str(path)]) == 0
    assert '"design": "my-npu"' in capsys.readouterr().out


def test_trace_config_file_flag(tmp_path, capsys):
    from repro.core.config_io import save
    from repro.core.designs import baseline

    path = tmp_path / "custom.json"
    save(baseline().with_updates(name="my-npu"), path)
    assert main(["trace", "baseline", "vgg16", "conv3_1",
                 "--config-file", str(path)]) == 0
    assert "my-npu / VGG16 / conv3_1" in capsys.readouterr().out


def test_plan_list_command(capsys):
    assert main(["plan", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig23_evaluate" in out and "batch_knee" in out


def test_plan_show_command(capsys):
    assert main(["plan", "show", "batch_knee"]) == 0
    out = capsys.readouterr().out
    assert "plan batch_knee: 6 points" in out
    assert "unique simulations" in out


def test_plan_show_without_name_exits_2(capsys):
    assert main(["plan", "show"]) == 2
    assert "known plans" in capsys.readouterr().err


def test_plan_unknown_name_exits_2(capsys):
    assert main(["plan", "show", "fig99"]) == 2
    assert "unknown plan" in capsys.readouterr().err


def test_plan_run_warm_cache_executes_nothing(tmp_path, capsys):
    import json

    cache = str(tmp_path / "cache")
    metrics = tmp_path / "metrics.json"
    assert main(["plan", "run", "batch_knee", "--cache-dir", cache]) == 0
    assert "6 points (0 cached, 6 executed)" in capsys.readouterr().out
    assert main(["plan", "run", "batch_knee", "--cache-dir", cache,
                 "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "6 points (6 cached, 0 executed)" in out
    document = json.loads(metrics.read_text())
    counters = document["metrics"]["counters"]
    assert counters["plan.points_cached"] == counters["plan.points_total"]
    assert counters["plan.points_executed"] == 0
    assert document["manifest"]["plan"] == "batch_knee"
    assert len(document["manifest"]["plan_hash"]) == 64


def test_plan_run_json_envelope(tmp_path, capsys):
    import json

    assert main(["plan", "run", "batch_knee", "--json",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["command"] == "plan"
    assert document["data"]["points_total"] == 6
    assert len(document["data"]["records"]) == 6


# -- serve / client ---------------------------------------------------------

def test_serve_parser_accepts_all_knobs():
    args = build_parser().parse_args([
        "serve", "--port", "0", "--cache-dir", "/tmp/c", "--jobs", "2",
        "--quota-rps", "4", "--quota-burst", "8", "--max-inflight", "3",
        "--deadline", "10", "--header-timeout", "2", "--drain-timeout", "5",
        "--chaos", "worker:sigkill:1", "--chaos", "handler:reject:2:0.5",
    ])
    assert args.command == "serve"
    assert args.jobs == 2 and args.quota_burst == 8
    assert args.chaos == ["worker:sigkill:1", "handler:reject:2:0.5"]


def test_client_request_against_live_daemon(tmp_path, capsys):
    import json

    from repro.serve.daemon import ServeConfig, daemon_in_thread

    config = ServeConfig(cache_dir=tmp_path / "cache",
                         port_file=tmp_path / "daemon.port",
                         quota_rate_per_s=1000.0, quota_burst=1000)
    with daemon_in_thread(config):
        assert main(["client", "request", "/health",
                     "--port-file", str(tmp_path / "daemon.port")]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["ok"] is True and body["data"]["status"] == "ok"

        assert main(["client", "request", "/v1/estimate",
                     "--port-file", str(tmp_path / "daemon.port"),
                     "--data", '{"design": "supernpu"}']) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["data"]["design"] == "SuperNPU"

        # An error response surfaces as exit 1 with the envelope printed.
        assert main(["client", "request", "/v1/estimate",
                     "--port-file", str(tmp_path / "daemon.port"),
                     "--data", '{"design": "nope"}']) == 1
        body = json.loads(capsys.readouterr().out)
        assert body["ok"] is False and body["error"]["code"]


def test_client_request_without_port_exits_2(capsys):
    assert main(["client", "request", "/health"]) == 2
    assert "no daemon port" in capsys.readouterr().err
