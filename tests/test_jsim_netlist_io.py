"""Netlist deck parsing / serialization tests."""

import pytest

from repro.jsim.measure import switch_count
from repro.jsim.netlist_io import NetlistError, parse_netlist, serialize_netlist
from repro.jsim.solver import TransientSolver

DECK = """
* two-stage test circuit
B1 in  0 ic=100 rshunt=4 cap=0.2
B2 out 0 ic=100
L1 in out 6.0      ; coupling inductor
IB1 in 0 dc 70
IB2 out 0 dc 70
IP1 in 0 pulse 40 300 1
.end
"""


def test_parse_deck_structure():
    circuit, nodes = parse_netlist(DECK)
    assert set(nodes) == {"in", "out"}
    assert len(circuit.junctions) == 2
    assert len(circuit.inductors) == 1
    assert len(circuit.sources) == 3
    assert circuit.junctions[0].critical_current_ua == 100
    assert circuit.junctions[0].shunt_resistance_ohm == 4
    assert circuit.inductors[0].inductance_ph == 6.0


def test_parsed_circuit_simulates():
    """The deck above is a 2-stage JTL; the pulse must reach both JJs."""
    circuit, nodes = parse_netlist(DECK)
    result = TransientSolver(circuit).run(80.0)
    assert switch_count(result, nodes["in"]) == 1
    assert switch_count(result, nodes["out"]) == 1


def test_ground_aliases():
    circuit, _ = parse_netlist("B1 a gnd ic=100\nB2 b GND ic=100\n")
    assert all(j.node_minus == 0 for j in circuit.junctions)


def test_comments_and_end_are_ignored():
    circuit, _ = parse_netlist("* comment\nB1 a 0 ic=50\n.end\nB2 b 0 ic=50\n")
    assert len(circuit.junctions) == 1  # everything after .end dropped


def test_rlc_elements():
    circuit, _ = parse_netlist("R1 a 0 4.0\nC1 a 0 0.1\nL1 a b 10\n")
    assert circuit.resistors[0].resistance_ohm == 4.0
    assert circuit.capacitors[0].capacitance_pf == 0.1


@pytest.mark.parametrize(
    "bad",
    [
        "X1 a 0 1.0",  # unknown element
        "B1 a 0 ic",  # malformed key=value
        "L1 a 0",  # missing value
        "I1 a 0 sine 1 2 3",  # unknown source mode
    ],
)
def test_malformed_decks_rejected(bad):
    with pytest.raises(NetlistError):
        parse_netlist(bad)


def test_serialize_round_trip():
    circuit, _ = parse_netlist(DECK)
    text = serialize_netlist(circuit, title="round trip")
    reparsed, _ = parse_netlist(text)
    assert len(reparsed.junctions) == len(circuit.junctions)
    assert len(reparsed.inductors) == len(circuit.inductors)
    # Bias sources survive as DC stubs (the pulse is sampled at t=0 ~ 0).
    assert len(reparsed.sources) == len(circuit.sources)
    assert "* round trip" in text
    assert text.strip().endswith(".end")
