"""Duplication / intensity / batch-rule analysis tests (Figs. 8 and 17)."""

import pytest

from repro.workloads.analysis import (
    duplication_report,
    intensity_report,
    max_batch_for_buffer,
    per_layer_intensity,
    summarize,
)
from repro.workloads.models import alexnet, mobilenet, resnet50, vgg16


def test_fig8_duplication_over_85_percent():
    """Fig. 8: AlexNet / ResNet50 / VGG16 waste most buffered pixels.

    The paper plots >90%; our layer tables land at 88-91% (ResNet50 sits
    lower because of its many duplication-free 1x1 convolutions) — same
    conclusion, recorded in EXPERIMENTS.md.
    """
    for build, floor in ((alexnet, 0.90), (resnet50, 0.50), (vgg16, 0.88)):
        report = duplication_report(build())
        assert report.duplication_ratio >= floor


def test_duplication_report_arithmetic():
    report = duplication_report(vgg16())
    assert report.duplicated_pixels == report.streamed_pixels - report.unique_pixels
    assert 0.0 <= report.duplication_ratio < 1.0


def test_vgg_duplication_close_to_eight_ninths():
    """All-3x3 networks duplicate ~ (9-1)/9 of streamed pixels."""
    assert duplication_report(vgg16()).duplication_ratio == pytest.approx(8 / 9, abs=0.02)


def test_intensity_scales_with_batch():
    one = intensity_report(vgg16(), batch=1)
    eight = intensity_report(vgg16(), batch=8)
    assert eight.macs_per_weight_byte == pytest.approx(8 * one.macs_per_weight_byte)


def test_roofline_is_min_of_peak_and_bandwidth():
    report = intensity_report(alexnet(), batch=1)
    bw = 300e9
    low = report.roofline_mac_per_s(1e20, bw)
    assert low == pytest.approx(report.macs_per_weight_byte * bw)
    capped = report.roofline_mac_per_s(1e9, bw)
    assert capped == 1e9


def test_single_batch_roofline_below_2pct_of_peak():
    """Fig. 17: single-batch PE utilization bound is under ~2% on average."""
    peak = 3447e12  # Baseline peak MAC/s
    utils = [
        intensity_report(build(), 1).roofline_mac_per_s(peak, 300e9) / peak
        for build in (alexnet, vgg16, resnet50, mobilenet)
    ]
    assert sum(utils) / len(utils) < 0.02


def test_per_layer_intensity_is_output_pixels():
    values = per_layer_intensity(vgg16(), batch=2)
    assert values["conv1_1"] == 224 * 224 * 2
    assert values["fc8"] == 2


def test_max_batch_for_buffer():
    net = vgg16()
    assert max_batch_for_buffer(net, 24 * 2**20) == 3
    assert max_batch_for_buffer(net, 0) == 1
    assert max_batch_for_buffer(net, net.max_layer_footprint_bytes - 1) == 1


def test_intensity_requires_positive_batch():
    with pytest.raises(ValueError):
        intensity_report(vgg16(), 0)


def test_summarize_rows():
    rows = summarize([alexnet(), vgg16()])
    assert [r["network"] for r in rows] == ["AlexNet", "VGG16"]
    assert all(r["gmacs"] > 0 for r in rows)
