"""Physical-constant sanity checks."""

import math

from repro.device.constants import (
    PHI0_BAR_MV_PS,
    PHI0_MV_PS,
    PHI0_WB,
    jj_switch_energy_aj,
    thermal_energy_aj,
)


def test_flux_quantum_value():
    assert math.isclose(PHI0_WB, 2.067833848e-15, rel_tol=1e-9)


def test_flux_quantum_unit_conversion():
    # 1 V*s = 1e3 mV * 1e12 ps.
    assert math.isclose(PHI0_MV_PS, PHI0_WB * 1e15, rel_tol=1e-12)


def test_reduced_flux_quantum():
    assert math.isclose(PHI0_BAR_MV_PS * 2 * math.pi, PHI0_MV_PS, rel_tol=1e-12)


def test_switch_energy_70ua_matches_paper_order():
    # The paper quotes ~1e-19 J per switching; a 70 uA JJ gives 0.145 aJ.
    energy = jj_switch_energy_aj(70.0)
    assert math.isclose(energy, 0.1447, rel_tol=1e-3)


def test_switch_energy_linear_in_current():
    assert math.isclose(jj_switch_energy_aj(140.0), 2 * jj_switch_energy_aj(70.0))


def test_thermal_energy_far_below_switch_energy():
    # Bit energies must sit far above k_B * T at 4.2 K for reliability.
    assert thermal_energy_aj() < 0.01 * jj_switch_energy_aj(70.0)
