"""Golden equivalence: vectorized hot paths vs their scalar references.

Three vectorized kernels replaced per-step / per-cycle Python loops, and
each keeps its original implementation alive as a golden reference:

* ``TransientSolver`` (batched RK4 array-program) vs
  ``ScalarReferenceSolver`` (the original per-step scatter/gather loop) —
  equal within ``RK4_ATOL``: the incidence-folded matmuls regroup the
  same floating-point sums, so bitwise identity is not expected, but the
  divergence is pure rounding (measured worst case ~6e-15 over 1200
  steps; the bound below leaves many orders of magnitude of margin while
  still catching any real math change).
* ``TransientSolver.run_batch`` vs a loop of scalar ``run()`` calls —
  **bitwise** identical: the stage operators are applied with ``einsum``,
  whose per-row reduction order does not depend on the batch size.
* ``SystolicArray.run`` / ``OSSystolicArray.run`` (skew-cancelled integer
  matmul) vs ``run_stepped`` (cycle-accurate emulation) — **bitwise**
  identical including int64 wraparound, because integer addition is
  associative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.functional.dau import aligned_streams
from repro.functional.os_systolic import OSSystolicArray
from repro.functional.systolic import SystolicArray
from repro.jsim import (
    Circuit,
    CurrentSource,
    Inductor,
    JosephsonJunction,
    Resistor,
    TransientSolver,
    build_jtl,
    drive_jtl,
    gaussian_pulse,
    pulse_train,
    ramped_bias,
    reference_run,
    switch_count,
)

#: Documented tolerance for vectorized-vs-scalar RK4 (see module docstring).
RK4_ATOL = 1e-9


def _random_circuit(seed: int, nodes: int = 6) -> Circuit:
    """A seeded random Josephson circuit exercising every element kind.

    Every node carries a junction so the mass matrix stays dominated by
    real junction capacitance (pure-parasitic nodes would be stiff for
    the fixed step and explode identically in both solvers — a vacuous
    comparison).
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit()
    ids = [circuit.node() for _ in range(nodes)]
    for node in ids:
        circuit.add_junction(
            JosephsonJunction(node, 0, critical_current_ua=float(rng.uniform(80, 250)))
        )
        circuit.add_source(
            CurrentSource(node, ramped_bias(float(rng.uniform(50, 150)), 20.0))
        )
    for a, b in zip(ids, ids[1:]):
        circuit.add_inductor(Inductor(a, b, float(rng.uniform(2, 12))))
    for _ in range(nodes // 2):
        a, b = rng.choice(ids, size=2, replace=False)
        circuit.add_resistor(Resistor(int(a), int(b), float(rng.uniform(1.0, 8.0))))
    circuit.add_source(
        CurrentSource(ids[0], gaussian_pulse(float(rng.uniform(5, 15)), 300.0))
    )
    circuit.add_source(
        CurrentSource(ids[-1], pulse_train(20.0, 8.0, 3, amplitude_ua=250.0))
    )
    return circuit


# -- RK4: vectorized vs scalar reference -----------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_vectorized_solver_matches_scalar_reference(seed):
    circuit = _random_circuit(seed)
    fast = TransientSolver(circuit).run(30.0)
    golden = reference_run(circuit, 30.0)
    np.testing.assert_array_equal(fast.time_ps, golden.time_ps)
    np.testing.assert_allclose(fast.phases, golden.phases, atol=RK4_ATOL, rtol=0)
    np.testing.assert_allclose(fast.rates, golden.rates, atol=RK4_ATOL, rtol=0)


def test_jtl_pulse_propagation_matches_reference():
    jtl = build_jtl(6)
    drive_jtl(jtl, 25.0)
    fast = TransientSolver(jtl.circuit).run(60.0)
    golden = reference_run(jtl.circuit, 60.0)
    np.testing.assert_allclose(fast.phases, golden.phases, atol=RK4_ATOL, rtol=0)
    # The physics, not just the numbers: the pulse traverses either way.
    last = jtl.nodes[-1]
    assert switch_count(fast, last) == switch_count(golden, last) >= 1


def test_scalar_reference_respects_initial_phases_and_sampling():
    circuit = _random_circuit(3)
    initial = np.zeros(circuit.num_nodes)
    initial[1:] = np.linspace(0.1, 0.5, circuit.num_nodes - 1)
    fast = TransientSolver(circuit).run(12.0, sample_every=4, initial_phases=initial)
    golden = reference_run(circuit, 12.0, sample_every=4, initial_phases=initial)
    np.testing.assert_array_equal(fast.time_ps, golden.time_ps)
    np.testing.assert_allclose(fast.phases, golden.phases, atol=RK4_ATOL, rtol=0)


# -- run_batch vs looped run: bitwise ---------------------------------------

def test_run_batch_bitwise_identical_to_looped_runs():
    circuit = _random_circuit(4)
    solver = TransientSolver(circuit)
    rng = np.random.default_rng(7)
    initial = np.zeros((3, circuit.num_nodes))
    initial[:, 1:] = rng.uniform(-0.3, 0.3, size=(3, circuit.num_nodes - 1))
    batched = solver.run_batch(20.0, initial_phases=initial)
    assert batched.batch == len(batched) == 3
    for i in range(3):
        solo = solver.run(20.0, initial_phases=initial[i])
        member = batched.member(i)
        np.testing.assert_array_equal(member.time_ps, solo.time_ps)
        np.testing.assert_array_equal(member.phases, solo.phases)
        np.testing.assert_array_equal(member.rates, solo.rates)


def test_run_batch_shared_sources_members_identical():
    circuit = _random_circuit(5)
    solver = TransientSolver(circuit)
    batched = solver.run_batch(15.0, batch=4)
    solo = solver.run(15.0)
    for member in batched:
        np.testing.assert_array_equal(member.phases, solo.phases)
        np.testing.assert_array_equal(member.rates, solo.rates)


def test_run_batch_per_member_sources_bitwise():
    circuit = _random_circuit(6)
    solver = TransientSolver(circuit)
    base = list(circuit.sources)
    variants = [
        None,  # keep the circuit's own sources
        base + [CurrentSource(1, gaussian_pulse(8.0, 280.0))],
        base + [CurrentSource(2, pulse_train(5.0, 6.0, 2))],
    ]
    batched = solver.run_batch(18.0, sources=variants)
    for i, member_sources in enumerate(variants):
        circuit.sources = base if member_sources is None else list(member_sources)
        try:
            solo = solver.run(18.0)
        finally:
            circuit.sources = base
        np.testing.assert_array_equal(batched.member(i).phases, solo.phases)
        np.testing.assert_array_equal(batched.member(i).rates, solo.rates)


def test_run_batch_sampling_decimates_exactly():
    circuit = _random_circuit(8)
    solver = TransientSolver(circuit)
    dense = solver.run_batch(10.0, batch=2)
    sparse = solver.run_batch(10.0, sample_every=3, batch=2)
    steps = int(round(10.0 / solver.step_ps))
    assert sparse.phases.shape[1] == steps // 3 + 1
    np.testing.assert_array_equal(sparse.time_ps, dense.time_ps[::3])
    np.testing.assert_array_equal(sparse.phases, dense.phases[:, ::3])
    np.testing.assert_array_equal(sparse.rates, dense.rates[:, ::3])


def test_run_batch_validates_inconsistent_sizes():
    circuit = _random_circuit(9)
    solver = TransientSolver(circuit)
    with pytest.raises(ValueError, match="inconsistent batch sizes"):
        solver.run_batch(
            5.0,
            batch=3,
            initial_phases=np.zeros((2, circuit.num_nodes)),
        )
    with pytest.raises(ValueError, match="batch must be >= 1"):
        solver.run_batch(5.0, batch=0)


# -- systolic arrays: matmul vs cycle-stepped, bitwise ----------------------

@pytest.mark.parametrize("seed", [0, 1])
def test_ws_systolic_run_bitwise_equals_stepped(seed):
    rng = np.random.default_rng(seed)
    array = SystolicArray(5, 4)
    weights = rng.integers(-128, 128, size=(5, 4))
    streams = rng.integers(-128, 128, size=(4, 9))  # fewer streams than rows
    array.load_weights(weights)
    stepped = array.run_stepped(streams)
    array.load_weights(weights)
    fast = array.run(streams)
    assert fast.dtype == stepped.dtype == np.int64
    np.testing.assert_array_equal(fast, stepped)


def test_ws_systolic_bitwise_under_int64_wraparound():
    # Products near 2**62 force wrapping partial sums; integer addition is
    # associative, so the matmul and the stepped grid wrap identically.
    array = SystolicArray(3, 2)
    weights = np.full((3, 2), 2 ** 31, dtype=np.int64)
    streams = np.full((3, 4), 2 ** 31, dtype=np.int64)
    array.load_weights(weights)
    stepped = array.run_stepped(streams)
    array.load_weights(weights)
    with np.errstate(over="ignore"):
        fast = array.run(streams)
    np.testing.assert_array_equal(fast, stepped)


@pytest.mark.parametrize("seed", [0, 1])
def test_os_systolic_run_bitwise_equals_stepped(seed):
    rng = np.random.default_rng(seed)
    array = OSSystolicArray(4, 5)
    x_streams = rng.integers(-128, 128, size=(3, 11))
    w_streams = rng.integers(-128, 128, size=(5, 11))
    stepped = array.run_stepped(x_streams, w_streams)
    fast = array.run(x_streams, w_streams)
    assert fast.dtype == stepped.dtype == np.int64
    np.testing.assert_array_equal(fast, stepped)


# -- DAU gather vs per-index loop -------------------------------------------

def _aligned_streams_loop(ifmap, reduction_indices, kernel_h, kernel_w,
                          stride, padding):
    """Scalar semantics of aligned_streams, written as the obvious loop."""
    channels, height, width = ifmap.shape
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    streams = np.zeros((len(reduction_indices), out_h * out_w),
                       dtype=ifmap.dtype)
    for row, index in enumerate(reduction_indices):
        channel, rest = divmod(index, kernel_h * kernel_w)
        r, s = divmod(rest, kernel_w)
        k = 0
        for oy in range(out_h):
            for ox in range(out_w):
                y = oy * stride - padding + r
                x = ox * stride - padding + s
                if 0 <= y < height and 0 <= x < width:
                    streams[row, k] = ifmap[channel, y, x]
                k += 1
    return streams


@pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
def test_aligned_streams_matches_loop_reference(stride, padding):
    rng = np.random.default_rng(11)
    ifmap = rng.integers(-50, 50, size=(3, 7, 8))
    kernel_h, kernel_w = 3, 2
    indices = list(range(3 * kernel_h * kernel_w))
    fast = aligned_streams(ifmap, indices, kernel_h, kernel_w, stride, padding)
    golden = _aligned_streams_loop(ifmap, indices, kernel_h, kernel_w,
                                   stride, padding)
    np.testing.assert_array_equal(fast, golden)


# -- stimuli: array evaluation equals the scalar closure --------------------

@pytest.mark.parametrize("factory", [
    lambda: gaussian_pulse(10.0, 300.0, sigma_ps=1.5),
    lambda: pulse_train(5.0, 7.0, 3, amplitude_ua=200.0),
    lambda: ramped_bias(120.0, ramp_ps=20.0),
])
def test_stimuli_array_contract(factory):
    waveform = factory()
    times = np.linspace(0.0, 40.0, 37)
    vector = waveform(times)
    assert isinstance(vector, np.ndarray) and vector.shape == times.shape
    scalars = np.array([waveform(float(t)) for t in times])
    np.testing.assert_array_equal(vector, scalars)
    assert isinstance(waveform(3.0), float)
