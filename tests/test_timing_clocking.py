"""Clocking-scheme tests, anchored to the paper's Fig. 7c measurements."""

import math

import pytest

from repro.device import cells
from repro.device.cells import rsfq_library
from repro.timing.clocking import (
    ClockingScheme,
    concurrent_flow_cct,
    counter_flow_cct,
)


@pytest.fixture(scope="module")
def lib():
    return rsfq_library()


def test_concurrent_flow_basic_formula():
    constraint = concurrent_flow_cct(setup_ps=3.0, hold_ps=4.0, skew_residual_ps=1.0)
    # delta_t below hold time: CCT = setup + hold.
    assert constraint.cycle_time_ps == 7.0
    assert constraint.scheme is ClockingScheme.CONCURRENT_FLOW


def test_concurrent_flow_large_mismatch_dominates():
    constraint = concurrent_flow_cct(setup_ps=3.0, hold_ps=4.0, skew_residual_ps=10.0)
    assert constraint.cycle_time_ps == 13.0


def test_negative_skew_clamped_to_zero():
    constraint = concurrent_flow_cct(setup_ps=3.0, hold_ps=4.0, skew_residual_ps=-5.0)
    assert constraint.delta_t_ps == 0.0
    assert constraint.cycle_time_ps == 7.0


def test_counter_flow_pays_data_and_clock_path():
    constraint = counter_flow_cct(
        setup_ps=3.0, hold_ps=4.0, data_path_delay_ps=5.0, clock_hop_ps=2.0
    )
    assert constraint.cycle_time_ps == 14.0
    assert constraint.scheme is ClockingScheme.COUNTER_FLOW


def test_frequency_conversion():
    constraint = concurrent_flow_cct(setup_ps=5.0, hold_ps=5.0)
    assert math.isclose(constraint.frequency_ghz, 100.0)


def test_shift_register_fig7c_anchor(lib):
    """SR: 133 GHz concurrent-flow, 71 GHz counter-flow (Fig. 7c)."""
    dff = lib[cells.DFF]
    fast = concurrent_flow_cct(dff.setup_ps, dff.hold_ps)
    assert math.isclose(fast.frequency_ghz, 133.3, rel_tol=0.01)
    loop_path = dff.delay_ps + 1.6  # register delay + feedback wire
    slow = counter_flow_cct(dff.setup_ps, dff.hold_ps, loop_path)
    assert math.isclose(slow.frequency_ghz, 71.4, rel_tol=0.01)


def test_full_adder_fig7c_anchor(lib):
    """FA: 66 GHz concurrent-flow; ~30 GHz with the accumulator loop."""
    and_gate = lib[cells.AND]
    fast = concurrent_flow_cct(and_gate.setup_ps, and_gate.hold_ps)
    assert math.isclose(fast.frequency_ghz, 66.7, rel_tol=0.01)
    # Feedback loop: adder output -> wire -> register -> wire back.
    loop_path = and_gate.delay_ps + 1.6 + lib[cells.DFF].delay_ps + 1.6
    slow = counter_flow_cct(and_gate.setup_ps, and_gate.hold_ps, loop_path)
    assert 29.0 <= slow.frequency_ghz <= 33.0


def test_feedback_loop_halves_frequency(lib):
    """The qualitative Fig. 7 claim: loops roughly halve the clock."""
    for name in (cells.AND, cells.DFF):
        cell = lib[name]
        fast = concurrent_flow_cct(cell.setup_ps, cell.hold_ps)
        slow = counter_flow_cct(cell.setup_ps, cell.hold_ps, cell.delay_ps + 3.2)
        assert slow.frequency_ghz < 0.65 * fast.frequency_ghz
