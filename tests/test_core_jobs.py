"""The job layer: content-addressed caching + parallel execution.

The two load-bearing guarantees:

* any change to any cache-key component (config, workload content,
  batch, library, schema version) is a miss — never a stale hit;
* serial, parallel, and warm-cache runs produce bitwise-identical
  results.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.baselines.scalesim import TPU_CORE
from repro.core.evaluate import evaluate_suite
from repro.core.jobs import (
    CACHE_SCHEMA_VERSION,
    JobRunner,
    ResultCache,
    SimTask,
    estimate_key,
    estimate_from_dict,
    estimate_to_dict,
    get_runner,
    result_from_dict,
    result_to_dict,
    session,
    use_runner,
)
from repro.device.cells import ersfq_library
from repro.simulator.engine import simulate
from repro.workloads.models import Network


# -- cache keys ------------------------------------------------------------

def test_key_is_stable(supernpu_config, tiny_network, rsfq):
    task = SimTask(supernpu_config, tiny_network, 4, rsfq)
    same = SimTask(supernpu_config, tiny_network, 4, rsfq)
    assert task.key() == same.key()
    assert len(task.key()) == 64  # sha256 hex


def test_key_changes_with_config(supernpu_config, tiny_network, rsfq):
    base = SimTask(supernpu_config, tiny_network, 4, rsfq).key()
    tweaked = supernpu_config.with_updates(registers_per_pe=2)
    assert SimTask(tweaked, tiny_network, 4, rsfq).key() != base


def test_key_changes_with_batch(supernpu_config, tiny_network, rsfq):
    assert (SimTask(supernpu_config, tiny_network, 4, rsfq).key()
            != SimTask(supernpu_config, tiny_network, 8, rsfq).key())


def test_key_changes_with_workload_content(supernpu_config, tiny_network, rsfq):
    base = SimTask(supernpu_config, tiny_network, 4, rsfq).key()
    # Same network name, one layer edited: must still be a different key.
    edited_layers = (
        dataclasses.replace(tiny_network.layers[0], out_channels=4),
    ) + tiny_network.layers[1:]
    edited = Network(tiny_network.name, edited_layers)
    assert SimTask(supernpu_config, edited, 4, rsfq).key() != base


def test_key_changes_with_library(supernpu_config, tiny_network, rsfq):
    assert (SimTask(supernpu_config, tiny_network, 4, rsfq).key()
            != SimTask(supernpu_config, tiny_network, 4, ersfq_library()).key())


def test_cmos_and_sfq_kinds_never_collide(supernpu_config, tiny_network, rsfq):
    sfq = SimTask(supernpu_config, tiny_network, 1, rsfq)
    cmos = SimTask(TPU_CORE, tiny_network, 1)
    assert sfq.key() != cmos.key()
    assert cmos.is_cmos and not sfq.is_cmos


def test_estimate_key_distinct_from_sim_key(supernpu_config, tiny_network, rsfq):
    assert (estimate_key(supernpu_config, rsfq)
            != SimTask(supernpu_config, tiny_network, 1, rsfq).key())


def test_rejects_nonpositive_batch(supernpu_config, tiny_network):
    with pytest.raises(ValueError, match="batch"):
        SimTask(supernpu_config, tiny_network, 0)


# -- payload codecs --------------------------------------------------------

def test_result_roundtrip_is_exact(supernpu_config, tiny_network, rsfq):
    from repro.estimator.arch_level import estimate_npu

    run = simulate(supernpu_config, tiny_network, batch=2,
                   estimate=estimate_npu(supernpu_config, rsfq))
    restored = result_from_dict(json.loads(json.dumps(result_to_dict(run))))
    assert restored == run


def test_estimate_roundtrip_is_exact(supernpu_config, rsfq):
    from repro.estimator.arch_level import estimate_npu

    est = estimate_npu(supernpu_config, rsfq)
    restored = estimate_from_dict(json.loads(json.dumps(estimate_to_dict(est))))
    assert restored == est


# -- the on-disk cache -----------------------------------------------------

def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get("ab" * 32) is None
    cache.put("ab" * 32, {"x": 1}, kind="simulate")
    assert cache.get("ab" * 32) == {"x": 1}


def test_cache_ignores_other_schema_versions(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = "cd" * 32
    cache.put(key, {"x": 1})
    path = cache._path(key)
    document = json.loads(path.read_text())
    document["schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(document))
    assert cache.get(key) is None


def test_cache_quarantines_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = "ef" * 32
    cache.put(key, {"x": 1})
    cache._path(key).write_text("not json{")
    assert cache.get(key) is None
    # The damaged entry is moved aside, not silently re-missed forever.
    assert not cache._path(key).exists()
    stats = cache.stats()
    assert stats.entries == 0 and stats.quarantined == 1


def test_cache_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put("11" * 32, {"a": 1}, kind="simulate")
    cache.put("22" * 32, {"b": 2}, kind="estimate")
    stats = cache.stats()
    assert stats.entries == 2 and stats.bytes > 0
    assert stats.by_kind == {"simulate": 1, "estimate": 1}
    assert cache.clear() == 2
    assert cache.stats().entries == 0


def test_sweep_removes_tmp_files_of_dead_processes(tmp_path):
    """A SIGKILLed writer's tmp file is cleaned up by any later process."""
    import os

    cache = ResultCache(tmp_path / "c")
    cache.put("11" * 32, {"a": 1})
    bucket = cache._path("11" * 32).parent
    # PID 1 is never us; a pid far beyond pid_max never exists.
    dead = bucket / f"{'aa' * 32}.tmp.99999999"
    dead.write_text("{torn")
    live = bucket / f"{'bb' * 32}.tmp.{os.getpid()}"
    live.write_text("{in progress")
    assert cache.sweep_orphan_tmp() == 1
    assert not dead.exists()
    assert live.exists()  # a live writer's file is never touched young
    # A live pid's tmp file older than the age cap is an orphan too
    # (the writer moved on long ago; replace() would have consumed it).
    old = time.time() - 7200
    os.utime(live, (old, old))
    assert cache.sweep_orphan_tmp(max_age_s=3600.0) == 1
    assert not live.exists()


def test_sweep_runs_on_startup_and_reports_in_stats(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put("11" * 32, {"a": 1})
    orphan = cache._path("11" * 32).parent / f"{'cc' * 32}.tmp.99999999"
    orphan.write_text("{torn")
    # A fresh handle on the same directory sweeps the orphan on init.
    reopened = ResultCache(tmp_path / "c")
    assert not orphan.exists()
    orphan.write_text("{torn again")
    stats = reopened.stats()
    assert stats.tmp_swept == 1
    assert not orphan.exists()
    assert stats.entries == 1  # real entries are untouched


# -- the runner ------------------------------------------------------------

def test_runner_counts_hits_and_misses(tmp_path, supernpu_config, tiny_network, rsfq):
    tasks = [SimTask(supernpu_config, tiny_network, b, rsfq) for b in (1, 2)]
    runner = JobRunner(cache=ResultCache(tmp_path / "c"))
    cold = runner.run(tasks)
    assert runner.stats.misses == 2 and runner.stats.hits == 0
    assert runner.stats.executed == 2

    warm = runner.run(tasks)
    assert runner.stats.hits == 2 and runner.stats.executed == 2  # no new sims
    assert warm == cold


def test_warm_run_skips_simulation_entirely(tmp_path, supernpu_config,
                                            tiny_network, rsfq):
    tasks = [SimTask(supernpu_config, tiny_network, b, rsfq) for b in (1, 2, 4)]
    JobRunner(cache=ResultCache(tmp_path / "c")).run(tasks)

    fresh = JobRunner(cache=ResultCache(tmp_path / "c"))
    fresh.run(tasks)
    assert fresh.stats.executed == 0
    assert fresh.stats.hit_rate == 1.0


def test_cacheless_runner_always_simulates(supernpu_config, tiny_network, rsfq):
    task = SimTask(supernpu_config, tiny_network, 1, rsfq)
    runner = JobRunner()
    runner.run([task])
    runner.run([task])
    assert runner.stats.executed == 2


def test_runner_preserves_task_order(tmp_path, supernpu_config, tiny_network, rsfq):
    batches = (4, 1, 2)
    tasks = [SimTask(supernpu_config, tiny_network, b, rsfq) for b in batches]
    cache = ResultCache(tmp_path / "c")
    JobRunner(cache=cache).run([tasks[1]])  # pre-warm the middle task only
    runs = JobRunner(cache=cache).run(tasks)
    assert [run.batch for run in runs] == list(batches)


def test_runner_estimate_memoizes(tmp_path, supernpu_config, rsfq):
    cache = ResultCache(tmp_path / "c")
    runner = JobRunner(cache=cache)
    first = runner.estimate(supernpu_config, rsfq)
    assert runner.estimate(supernpu_config, rsfq) is first  # in-process memo

    other = JobRunner(cache=cache)
    assert other.estimate(supernpu_config, rsfq) == first  # disk round-trip


def test_rejects_nonpositive_jobs():
    with pytest.raises(ValueError, match="jobs"):
        JobRunner(jobs=0)


# -- determinism: serial == parallel == warm cache -------------------------

def _suite_fingerprint(suite):
    """Every float of the Fig. 23 suite, exactly."""
    return json.dumps({
        "tpu": {name: result_to_dict(run) for name, run in suite.tpu_runs.items()},
        "designs": [
            {
                "name": ev.config.name,
                "runs": {n: result_to_dict(r) for n, r in ev.runs.items()},
                "speedups": ev.speedup_vs(suite.tpu_runs),
            }
            for ev in suite.designs
        ],
    }, sort_keys=True)


def test_parallel_suite_is_bitwise_identical_to_serial(tmp_path):
    serial = _suite_fingerprint(evaluate_suite())

    with session(jobs=4, cache_dir=tmp_path / "cache") as runner:
        parallel = _suite_fingerprint(evaluate_suite())
        assert runner.stats.executed == runner.stats.tasks  # all cold
    assert parallel == serial

    with session(jobs=4, cache_dir=tmp_path / "cache") as runner:
        warm = _suite_fingerprint(evaluate_suite())
        assert runner.stats.executed == 0  # pure cache
        assert runner.stats.hit_rate == 1.0
    assert warm == serial


# -- the ambient runner ----------------------------------------------------

def test_get_runner_defaults_to_shared_serial():
    runner = get_runner()
    assert runner.jobs == 1 and runner.cache is None
    assert get_runner() is runner


def test_use_runner_nests():
    outer, inner = JobRunner(), JobRunner()
    with use_runner(outer):
        assert get_runner() is outer
        with use_runner(inner):
            assert get_runner() is inner
        assert get_runner() is outer
    assert get_runner() is not outer


def test_session_builds_cache(tmp_path):
    with session(jobs=2, cache_dir=tmp_path / "c") as runner:
        assert runner.jobs == 2
        assert runner.cache is not None
        assert runner.cache.root == tmp_path / "c"
    with session() as runner:
        assert runner.jobs == 1 and runner.cache is None


# -- obs integration -------------------------------------------------------

def test_runner_exports_obs_counters(tmp_path, obs_enabled,
                                     supernpu_config, tiny_network, rsfq):
    tasks = [SimTask(supernpu_config, tiny_network, b, rsfq) for b in (1, 2)]
    runner = JobRunner(cache=ResultCache(tmp_path / "c"))
    runner.run(tasks)
    runner.run(tasks)
    snapshot = obs_enabled.metrics().snapshot()
    assert snapshot["counters"]["jobs.tasks"] == 4
    assert snapshot["counters"]["jobs.cache.hits"] == 2
    assert snapshot["counters"]["jobs.cache.misses"] == 2
    assert snapshot["counters"]["jobs.sim.executed"] == 2
    assert snapshot["gauges"]["jobs.workers"] == 1
