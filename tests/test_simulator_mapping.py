"""Weight-mapping (tiling) tests."""

import pytest

from repro.simulator.mapping import MappingTile, map_layer, utilization
from repro.uarch.config import NPUConfig
from repro.workloads.layers import ConvLayer, depthwise_layer, fc_layer


def _config(width=256, height=256, regs=1):
    return NPUConfig(
        name="t", pe_array_width=width, pe_array_height=height,
        registers_per_pe=regs,
        psum_buffer_bytes=0 if regs else 0,
        integrated_output_buffer=False,
    )


def _conv(cin=64, size=14, cout=128, k=3):
    return ConvLayer("c", cin, size, size, cout, k, k, padding=k // 2)


def test_exact_fit_single_tile():
    layer = ConvLayer("c", 256, 8, 8, 256, 1, 1)
    mapping = map_layer(layer, _config())
    assert mapping.total_mappings == 1
    tile = mapping.tiles[0]
    assert tile.rows_used == 256 and tile.cols_used == 256
    assert not tile.accumulates


def test_row_tiling_marks_accumulation():
    layer = _conv(cin=64, cout=128, k=3)  # reduction 576 -> 3 row tiles
    mapping = map_layer(layer, _config())
    assert mapping.row_tiles == 3
    accumulating = [t for t in mapping.tiles if t.accumulates]
    final = [t for t in mapping.tiles if not t.accumulates]
    assert sum(t.count for t in accumulating) == 2
    assert sum(t.count for t in final) == 1


def test_column_tiling():
    layer = ConvLayer("c", 128, 8, 8, 600, 1, 1)
    mapping = map_layer(layer, _config())
    assert mapping.col_tiles == 3  # 2 full 256-wide + 1 remainder of 88
    remainder = mapping.tiles[-1]
    assert remainder.cols_used == 88


def test_registers_shrink_column_tiles():
    layer = ConvLayer("c", 128, 8, 8, 512, 1, 1)
    flat = map_layer(layer, _config(width=64, regs=1))
    stacked = map_layer(layer, _config(width=64, regs=8))
    assert flat.col_tiles == 8
    assert stacked.col_tiles == 1
    assert stacked.tiles[0].regs_used == 8


def test_register_remainder_spreads_over_columns():
    layer = ConvLayer("c", 128, 8, 8, 100, 1, 1)
    mapping = map_layer(layer, _config(width=64, regs=8))
    tile = mapping.tiles[0]
    # 100 filters over 64 columns need 2 register planes, 50 columns.
    assert tile.regs_used == 2
    assert tile.cols_used == 50
    assert tile.cols_used * tile.regs_used >= 100


def test_depthwise_aggregates_groups():
    layer = depthwise_layer("dw", channels=512, in_size=14)
    mapping = map_layer(layer, _config())
    assert mapping.total_mappings == 512
    assert len(mapping.tiles) == 1  # aggregated, not 512 records
    assert mapping.tiles[0].count == 512
    assert mapping.tiles[0].rows_used == 9
    assert mapping.tiles[0].cols_used == 1


def test_fc_layer_mapping():
    layer = fc_layer("fc", 4096, 1000)
    mapping = map_layer(layer, _config())
    assert mapping.row_tiles == 16
    assert mapping.col_tiles == 4


def test_tiles_cover_all_weights():
    layer = _conv(cin=100, cout=300, k=3)
    config = _config(width=64, regs=4)
    mapping = map_layer(layer, config)
    covered = sum(t.count * t.weights for t in mapping.tiles)
    assert covered >= layer.weight_count
    # Padding waste is bounded by one tile's worth.
    assert covered <= layer.weight_count + 256 * 64 * 4


def test_macs_accounting():
    layer = ConvLayer("c", 256, 8, 8, 256, 1, 1)
    mapping = map_layer(layer, _config())
    vectors = layer.output_pixels
    assert sum(t.count * t.macs(vectors) for t in mapping.tiles) == layer.macs_per_image


def test_utilization_bounds():
    config = _config(width=64, regs=8)
    layer = ConvLayer("c", 256, 8, 8, 512, 1, 1)
    for tile in map_layer(layer, config).tiles:
        assert 0.0 < utilization(tile, config) <= 1.0


def test_invalid_tile_rejected():
    with pytest.raises(ValueError):
        MappingTile(rows_used=0, cols_used=1, regs_used=1)
