"""The examples must actually run (they are documentation that executes)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_workload.py",
    "gate_level_pipeline.py",
    "cosim_tiny_cnn.py",
    "jsim_pulse_demo.py",
    "cooling_study.py",
    "paper_walkthrough.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script  # every example narrates its results
    assert "Traceback" not in out


def test_quickstart_reports_speedup(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "TMAC/s" in out


def test_example_inventory_matches_readme():
    """Every example on disk is runnable Python with a docstring."""
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith('"""'), script.name
        assert "__main__" in text, script.name
