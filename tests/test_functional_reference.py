"""Reference-convolution tests (hand-computed cases)."""

import numpy as np
import pytest

from repro.functional.reference import conv2d_reference, depthwise_reference


def test_identity_kernel():
    ifmap = np.arange(9, dtype=np.int64).reshape(1, 3, 3)
    kernel = np.array([[[[1]]]], dtype=np.int64)
    assert np.array_equal(conv2d_reference(ifmap, kernel), ifmap)


def test_hand_computed_3x3():
    ifmap = np.ones((1, 3, 3), dtype=np.int64)
    kernel = np.ones((1, 1, 3, 3), dtype=np.int64)
    out = conv2d_reference(ifmap, kernel)
    assert out.shape == (1, 1, 1)
    assert out[0, 0, 0] == 9


def test_padding_adds_zero_border():
    ifmap = np.ones((1, 2, 2), dtype=np.int64)
    kernel = np.ones((1, 1, 3, 3), dtype=np.int64)
    out = conv2d_reference(ifmap, kernel, padding=1)
    assert out.shape == (1, 2, 2)
    # Every window sees the same four ones.
    assert np.all(out == 4)


def test_stride_subsamples():
    ifmap = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
    kernel = np.array([[[[1]]]], dtype=np.int64)
    out = conv2d_reference(ifmap, kernel, stride=2)
    assert np.array_equal(out[0], np.array([[0, 2], [8, 10]]))


def test_multi_channel_sums_over_channels():
    ifmap = np.stack([np.ones((2, 2)), 2 * np.ones((2, 2))]).astype(np.int64)
    kernel = np.ones((1, 2, 1, 1), dtype=np.int64)
    out = conv2d_reference(ifmap, kernel)
    assert np.all(out == 3)


def test_multiple_filters_independent():
    ifmap = np.ones((1, 2, 2), dtype=np.int64)
    kernel = np.stack([np.ones((1, 1, 1)), 5 * np.ones((1, 1, 1))]).astype(np.int64)
    out = conv2d_reference(ifmap, kernel)
    assert np.all(out[0] == 1)
    assert np.all(out[1] == 5)


def test_depthwise_keeps_channels_separate():
    ifmap = np.stack([np.ones((3, 3)), 10 * np.ones((3, 3))]).astype(np.int64)
    weights = np.ones((2, 3, 3), dtype=np.int64)
    out = depthwise_reference(ifmap, weights, padding=1)
    assert out.shape == (2, 3, 3)
    assert out[0, 1, 1] == 9
    assert out[1, 1, 1] == 90


def test_shape_validation():
    ifmap = np.ones((1, 3, 3), dtype=np.int64)
    with pytest.raises(ValueError):
        conv2d_reference(np.ones((3, 3)), np.ones((1, 1, 1, 1)))
    with pytest.raises(ValueError):
        conv2d_reference(ifmap, np.ones((1, 2, 1, 1)))  # channel mismatch
    with pytest.raises(ValueError):
        conv2d_reference(ifmap, np.ones((1, 1, 5, 5)))  # kernel too large
    with pytest.raises(ValueError):
        conv2d_reference(ifmap, np.ones((1, 1, 1, 1)), stride=0)
    with pytest.raises(ValueError):
        depthwise_reference(ifmap, np.ones((2, 3, 3)))
