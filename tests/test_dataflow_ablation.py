"""Output-stationary ablation tests (why the paper chose WS)."""

import pytest

from repro.estimator.arch_level import estimate_npu
from repro.simulator.dataflow_ablation import estimate_os_npu, simulate_os
from repro.simulator.engine import simulate
from repro.workloads.models import resnet50, vgg16


def test_os_clock_is_counter_flow_bound(rsfq, supernpu_config):
    os_estimate = estimate_os_npu(supernpu_config, rsfq)
    ws_estimate = estimate_npu(supernpu_config, rsfq)
    assert os_estimate.frequency_ghz == pytest.approx(31.8, rel=0.02)
    assert os_estimate.frequency_ghz < 0.65 * ws_estimate.frequency_ghz
    assert "OS accumulator" in os_estimate.critical_path


def test_os_loses_end_to_end(rsfq, supernpu_config):
    """The architectural verdict: WS beats OS on a real workload."""
    network = resnet50()
    ws = simulate(supernpu_config, network, batch=30,
                  estimate=estimate_npu(supernpu_config, rsfq))
    os = simulate_os(supernpu_config, network, batch=30,
                     estimate=estimate_os_npu(supernpu_config, rsfq))
    assert ws.mac_per_s > 1.5 * os.mac_per_s


def test_os_has_no_psum_movement(rsfq, baseline_config):
    run = simulate_os(baseline_config, vgg16(), batch=1,
                      estimate=estimate_os_npu(baseline_config, rsfq))
    assert all(layer.psum_move_cycles == 0 for layer in run.layers)


def test_os_weight_traffic_explodes_on_large_maps(rsfq, supernpu_config):
    """OS re-streams weights once per output tile, so layers with many
    output pixels (early convs) amplify weight traffic by orders of
    magnitude relative to the layer's actual weight volume."""
    network = vgg16()
    os = simulate_os(supernpu_config, network, batch=7,
                     estimate=estimate_os_npu(supernpu_config, rsfq))
    conv1_1 = network.layers[0]
    os_first = os.layers[0]
    # WS streams conv1_1's 1.7 KB of weights once; OS streams a tile per
    # 256-output group of the 224x224x7 output volume.
    assert os_first.dram_traffic_bytes > 100 * conv1_1.weight_bytes


def test_os_macs_match_ws(rsfq, supernpu_config, tiny_network):
    ws = simulate(supernpu_config, tiny_network, batch=2,
                  estimate=estimate_npu(supernpu_config, rsfq))
    os = simulate_os(supernpu_config, tiny_network, batch=2,
                     estimate=estimate_os_npu(supernpu_config, rsfq))
    assert ws.total_macs == os.total_macs


def test_os_design_label(rsfq, supernpu_config, tiny_network):
    run = simulate_os(supernpu_config, tiny_network, batch=1,
                      estimate=estimate_os_npu(supernpu_config, rsfq))
    assert run.design.endswith("(OS)")


def test_os_batch_validation(supernpu_config, tiny_network):
    with pytest.raises(ValueError):
        simulate_os(supernpu_config, tiny_network, batch=0)


def test_os_default_library(supernpu_config, tiny_network):
    run = simulate_os(supernpu_config, tiny_network, batch=1)
    assert run.frequency_ghz == pytest.approx(31.8, rel=0.02)
