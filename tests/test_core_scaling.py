"""Process-scaling projection tests (paper footnote 2)."""

import pytest

from repro.core.designs import supernpu
from repro.core.scaling import project, scaling_sweep


def test_identity_projection(rsfq, supernpu_config):
    base = project(supernpu_config, 1.0, rsfq)
    assert base.frequency_ghz == pytest.approx(52.6, rel=0.002)
    assert base.peak_tmacs == pytest.approx(862, rel=0.02)


def test_linear_frequency_scaling(rsfq, supernpu_config):
    half = project(supernpu_config, 0.5, rsfq)
    assert half.frequency_ghz == pytest.approx(2 * 52.6, rel=0.01)
    assert half.peak_tmacs == pytest.approx(2 * 862, rel=0.02)


def test_frequency_clamped_below_02um(rsfq, supernpu_config):
    """Kadin's rule is only validated down to 0.2 um."""
    at_02 = project(supernpu_config, 0.2, rsfq)
    at_01 = project(supernpu_config, 0.1, rsfq)
    assert at_01.frequency_ghz == at_02.frequency_ghz
    assert at_01.area_mm2 < at_02.area_mm2  # area keeps shrinking


def test_quadratic_area_scaling(rsfq, supernpu_config):
    full = project(supernpu_config, 1.0, rsfq)
    quarter = project(supernpu_config, 0.5, rsfq)
    assert quarter.area_mm2 == pytest.approx(full.area_mm2 / 4, rel=0.01)


def test_static_power_conservatively_constant(rsfq, supernpu_config):
    assert (
        project(supernpu_config, 0.25, rsfq).static_power_w
        == project(supernpu_config, 1.0, rsfq).static_power_w
    )


def test_sweep_monotone(rsfq):
    projections = scaling_sweep(supernpu(), (1.0, 0.5, 0.25, 0.2), rsfq)
    freqs = [p.frequency_ghz for p in projections]
    areas = [p.area_mm2 for p in projections]
    assert freqs == sorted(freqs)
    assert areas == sorted(areas, reverse=True)


def test_28nm_parity_point(rsfq, supernpu_config):
    """At 28 nm-equivalent area, the clamped clock still reaches 263 GHz."""
    p = project(supernpu_config, 0.028, rsfq)
    assert p.frequency_ghz == pytest.approx(5 * 52.6, rel=0.01)
    assert p.area_mm2 < 400
