"""SCALE-SIM topology CSV interop tests."""

import pytest

from repro.workloads.models import alexnet, all_workloads, vgg16
from repro.workloads.scalesim_io import dump_topology, load_topology, round_trip

SAMPLE = """Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
Conv1, 227, 227, 11, 11, 3, 96, 4,
Conv2, 27, 27, 5, 5, 96, 256, 1,
FC, 1, 1, 1, 1, 4096, 1000, 1,
"""


def test_load_sample_topology():
    network = load_topology(SAMPLE, name="sample")
    assert network.name == "sample"
    assert len(network.layers) == 3
    conv1 = network.layers[0]
    assert conv1.in_height == 227 and conv1.kernel_height == 11
    assert conv1.stride == 4 and conv1.padding == 0  # strided: no inference
    conv2 = network.layers[1]
    assert conv2.padding == 2  # stride-1 odd kernel -> same padding inferred


def test_padding_inference_can_be_disabled():
    network = load_topology(SAMPLE, infer_same_padding=False)
    assert network.layers[1].padding == 0


def test_fc_row_is_fully_connected():
    network = load_topology(SAMPLE)
    assert network.layers[2].is_fully_connected


def test_dump_contains_header_and_rows():
    text = dump_topology(vgg16())
    lines = text.strip().splitlines()
    assert lines[0].startswith("Layer name")
    assert len(lines) == 1 + len(vgg16().layers)
    assert "conv1_1, 224, 224, 3, 3, 3, 64, 1," in text


def test_round_trip_preserves_macs():
    """Same-padded stride-1 networks round-trip exactly."""
    original = vgg16()
    restored = round_trip(original)
    assert restored.total_macs == original.total_macs
    assert restored.total_weight_bytes == original.total_weight_bytes


def test_round_trip_all_workloads_weight_exact():
    """Weight volumes never depend on padding, so they always round-trip."""
    for network in all_workloads():
        if any(layer.groups > 1 for layer in network.layers):
            continue  # SCALE-SIM CSVs carry no groups column
        restored = round_trip(network)
        assert restored.total_weight_bytes == network.total_weight_bytes


def test_alexnet_round_trip_geometry():
    restored = round_trip(alexnet())
    assert [l.out_height for l in restored.layers] == [
        l.out_height for l in alexnet().layers
    ]


@pytest.mark.parametrize(
    "bad",
    [
        "",  # empty
        "Conv1, 227, 227, 11, 11, 3, 96\n",  # too few columns
        "Conv1, a, 227, 11, 11, 3, 96, 4,\n",  # non-integer
    ],
)
def test_malformed_topologies_rejected(bad):
    with pytest.raises(ValueError):
        load_topology(bad)
