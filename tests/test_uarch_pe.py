"""Processing-element structure tests."""

import pytest

from repro.device import cells
from repro.uarch.pe import ProcessingElement


def test_pipeline_depth_matches_mac():
    pe = ProcessingElement(bits=8, psum_bits=24)
    assert pe.pipeline_stages == 15


def test_weight_registers_use_ndro():
    one = ProcessingElement(registers=1).gate_counts()
    eight = ProcessingElement(registers=8).gate_counts()
    assert one[cells.NDRO] == 8
    assert eight[cells.NDRO] == 64


def test_multi_register_pe_adds_select_ring():
    one = ProcessingElement(registers=1).gate_counts()
    eight = ProcessingElement(registers=8).gate_counts()
    assert one[cells.TFF] == 0
    assert eight[cells.TFF] == 8


def test_systolic_latches_present():
    counts = ProcessingElement(bits=8, psum_bits=24).gate_counts()
    # Ifmap (8) + psum (24) forwarding DFFs on top of the MAC's internal ones.
    mac_dffs = ProcessingElement(bits=8, psum_bits=24).mac.gate_counts()[cells.DFF]
    assert counts[cells.DFF] == mac_dffs + 32


def test_registers_add_area_not_speed(rsfq):
    lean = ProcessingElement(registers=1)
    fat = ProcessingElement(registers=8)
    assert fat.area_mm2(rsfq) > lean.area_mm2(rsfq)
    assert fat.frequency(rsfq).frequency_ghz == lean.frequency(rsfq).frequency_ghz


def test_invalid_register_count():
    with pytest.raises(ValueError):
        ProcessingElement(registers=0)


def test_pe_frequency_bounded_by_mac(rsfq):
    pe = ProcessingElement()
    assert pe.frequency(rsfq).frequency_ghz <= pe.mac.frequency(rsfq).frequency_ghz
