"""Host-time hotspot profiling: determinism, math, serialization, join.

The load-bearing guarantees:

* tracing mode is deterministic — a fixed workload yields the same call
  counts and the same stack set on every run;
* self/cum accounting is exact (recursion counted once per stack);
* profiles survive a JSON round-trip and merge losslessly (the worker
  sidecar path depends on both);
* the cycle-domain join groups attribution phases correctly whether it
  gets raw per-phase fractions or pre-grouped ones.
"""

from __future__ import annotations

import json
import re
import time

from repro.obs.hotspot import (
    HotspotProfile,
    HotspotProfiler,
    absorb,
    active_profiler,
    classify_frame,
    group_phase_fractions,
    join_with_phases,
)

RAW_FRACTIONS = {
    "weight_load": 0.05,
    "ifmap_prep": 0.10,
    "psum_move": 0.03,
    "activation_transfer": 0.02,
    "compute": 0.60,
    "dram_stall": 0.20,
}


def _leaf(n: int) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def _middle(n: int) -> int:
    return _leaf(n) + _leaf(n)


def _workload() -> int:
    acc = 0
    for _ in range(5):
        acc += _middle(200)
    return acc


def _trace_workload() -> HotspotProfile:
    profiler = HotspotProfiler(mode="tracing")
    profiler.start()
    try:
        _workload()
    finally:
        profile = profiler.stop()
    return profile


# -- tracing determinism ---------------------------------------------------

def test_tracing_profile_is_stable_across_runs():
    first = _trace_workload()
    second = _trace_workload()
    assert first.calls == second.calls
    assert set(first.stack_counts) == set(second.stack_counts)
    assert first.stack_counts == second.stack_counts


def test_tracing_counts_calls_exactly():
    profile = _trace_workload()
    by_name = {key[0]: count for key, count in profile.calls.items()}
    assert by_name["_workload"] == 1
    assert by_name["_middle"] == 5
    assert by_name["_leaf"] == 10


def test_tracing_excludes_profiler_internals():
    from repro.obs import hotspot as hotspot_mod

    profile = _trace_workload()
    assert all(key[1] != hotspot_mod.__file__ for key in profile.calls)


# -- self / cumulative accounting ------------------------------------------

def test_self_and_cum_seconds():
    a = ("a", "f.py", 1)
    b = ("b", "f.py", 10)
    profile = HotspotProfile(mode="tracing", interval_s=0.0)
    profile.add((a,), 0.5, 1)
    profile.add((a, b), 0.25, 1)
    stats = {stat.key: stat for stat in profile.function_stats()}
    assert stats[a].self_s == 0.5
    assert stats[a].cum_s == 0.75
    assert stats[b].self_s == 0.25
    assert stats[b].cum_s == 0.25
    assert profile.total_seconds() == 0.75


def test_recursion_counted_once_per_stack():
    a = ("a", "f.py", 1)
    profile = HotspotProfile(mode="tracing", interval_s=0.0)
    profile.add((a, a), 1.0, 1)
    stats = {stat.key: stat for stat in profile.function_stats()}
    assert stats[a].cum_s == 1.0  # not 2.0


# -- collapsed-stack export ------------------------------------------------

def test_collapsed_format_and_determinism():
    profile = _trace_workload()
    collapsed = profile.collapsed()
    lines = collapsed.strip().splitlines()
    assert lines
    for line in lines:
        assert re.fullmatch(r".+ \d+", line), line
    assert lines == sorted(lines)


# -- serialization ---------------------------------------------------------

def test_profile_json_roundtrip_is_exact():
    profile = _trace_workload()
    restored = HotspotProfile.from_dict(
        json.loads(json.dumps(profile.to_dict())))
    assert restored.mode == profile.mode
    assert restored.calls == profile.calls
    assert restored.stack_counts == profile.stack_counts
    assert restored.stack_seconds == profile.stack_seconds
    assert restored.samples == profile.samples


def test_merge_adds_counts_and_seconds():
    a = ("a", "f.py", 1)
    one = HotspotProfile(mode="tracing", interval_s=0.0)
    one.add((a,), 0.5, 1)
    two = HotspotProfile(mode="tracing", interval_s=0.0)
    two.add((a,), 0.25, 2)
    one.merge(two)
    assert one.stack_seconds[(a,)] == 0.75
    assert one.stack_counts[(a,)] == 3


def test_absorb_requires_active_profiler():
    donor = HotspotProfile(mode="tracing", interval_s=0.0)
    donor.add((("a", "f.py", 1),), 0.5, 1)
    assert absorb(donor.to_dict()) is False  # nothing running

    profiler = HotspotProfiler(mode="tracing")
    profiler.start()
    try:
        assert active_profiler() is profiler
        assert absorb(donor.to_dict()) is True
    finally:
        profile = profiler.stop()
    assert active_profiler() is None
    assert (("a", "f.py", 1),) in profile.stack_seconds


# -- cycle-domain join -----------------------------------------------------

def test_group_phase_fractions_collapses_preparation():
    grouped = group_phase_fractions(RAW_FRACTIONS)
    assert grouped["compute"] == 0.60
    assert abs(grouped["preparation"] - 0.20) < 1e-12
    assert grouped["dram"] == 0.20


def test_classify_frame_maps_simulator_files():
    engine = ("simulate_layer", "/x/src/repro/simulator/engine.py", 74)
    mapping = ("map_layer", "/x/src/repro/simulator/mapping.py", 96)
    memory = ("transfer_cycles", "/x/src/repro/simulator/memory.py", 39)
    stdlib = ("deepcopy", "/usr/lib/python3.11/copy.py", 128)
    assert classify_frame(engine) == ("simulator", "compute")
    assert classify_frame(mapping) == ("simulator", "preparation")
    assert classify_frame(memory) == ("simulator", "dram")
    assert classify_frame(stdlib) == ("other", None)


def test_join_with_phases_attributes_host_time():
    engine = ("simulate_layer", "/x/src/repro/simulator/engine.py", 74)
    mapping = ("map_layer", "/x/src/repro/simulator/mapping.py", 96)
    other = ("deepcopy", "/usr/lib/python3.11/copy.py", 128)
    profile = HotspotProfile(mode="tracing", interval_s=0.0)
    profile.add((engine,), 0.4, 1)
    profile.add((mapping,), 0.1, 1)
    profile.add((other,), 0.2, 1)
    rows = {row["phase"]: row for row in join_with_phases(profile, RAW_FRACTIONS)}
    assert rows["compute"]["cycle_fraction"] == 0.60
    assert rows["compute"]["host_self_s"] == 0.4
    assert "simulate_layer" in rows["compute"]["frames"][0]
    assert abs(rows["preparation"]["cycle_fraction"] - 0.20) < 1e-12
    assert rows["preparation"]["host_self_s"] == 0.1
    assert rows["dram"]["host_self_s"] == 0.0
    assert rows["unattributed"]["host_self_s"] == 0.2


def test_report_renders_join_table():
    profile = _trace_workload()
    text = profile.report(phase_fractions=RAW_FRACTIONS)
    assert "hotspot [tracing]" in text
    assert "cycle-domain join" in text
    assert "preparation" in text


def test_report_explains_empty_profile():
    profile = HotspotProfile(mode="sampling", interval_s=0.01)
    assert "no samples" in profile.report()


# -- sampling mode ---------------------------------------------------------

def test_sampling_collects_stacks_of_busy_loop():
    profiler = HotspotProfiler(mode="sampling", sample_hz=400.0)
    profiler.start()
    try:
        deadline = time.perf_counter() + 0.1
        while time.perf_counter() < deadline:
            _leaf(500)
    finally:
        profile = profiler.stop()
    assert profile.samples >= 1
    assert profile.total_seconds() > 0.0
    assert profile.duration_s > 0.0


def test_profiler_stop_is_idempotent():
    profiler = HotspotProfiler(mode="tracing")
    profiler.start()
    _leaf(10)
    first = profiler.stop()
    second = profiler.stop()
    assert first is second
    assert active_profiler() is None


def test_summary_is_json_serializable():
    profile = _trace_workload()
    summary = json.loads(json.dumps(profile.summary()))
    assert summary["mode"] == "tracing"
    assert summary["functions"] > 0
    assert summary["top"]
    assert {"function", "file", "line", "self_s", "cum_s"} <= set(summary["top"][0])
