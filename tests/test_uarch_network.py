"""On-chip network design tests (paper Fig. 5 comparison)."""

import pytest

from repro.uarch.network import (
    SplitterTree1D,
    SplitterTree2D,
    SystolicChain,
    compare_designs,
)


@pytest.mark.parametrize("width", [4, 16, 64])
def test_systolic_has_smallest_delay_and_area(rsfq, width):
    """Fig. 5: the systolic chain wins both metrics at every width."""
    results = compare_designs(width, bits=8, library=rsfq)
    systolic = results["systolic_array"]
    for name in ("2d_splitter_tree", "1d_splitter_tree"):
        assert systolic["critical_path_delay_ps"] <= results[name]["critical_path_delay_ps"]
        assert systolic["area_mm2"] < results[name]["area_mm2"]


def test_2d_tree_delay_grows_linearly_with_width(rsfq):
    """Fig. 5(a): the shared-clock race makes delay proportional to width."""
    d4 = SplitterTree2D(4, 8).critical_path_delay_ps(rsfq)
    d16 = SplitterTree2D(16, 8).critical_path_delay_ps(rsfq)
    d64 = SplitterTree2D(64, 8).critical_path_delay_ps(rsfq)
    assert d16 / d4 == pytest.approx(4.0, rel=0.1)
    assert d64 / d16 == pytest.approx(4.0, rel=0.1)


def test_2d_tree_exceeds_800ps_at_width_64(rsfq):
    """Fig. 5(a): 'reaches above 800 ps in 64x64 PE array'."""
    assert SplitterTree2D(64, 8).critical_path_delay_ps(rsfq) > 800.0


def test_systolic_delay_independent_of_width(rsfq):
    d4 = SystolicChain(4, 8).critical_path_delay_ps(rsfq)
    d64 = SystolicChain(64, 8).critical_path_delay_ps(rsfq)
    assert d4 == d64


def test_tree_areas_comparable(rsfq):
    """Section III-A: the 1D tree's area is 'high as the same' as the 2D."""
    a1 = SplitterTree1D(64, 8).area_mm2(rsfq)
    a2 = SplitterTree2D(64, 8).area_mm2(rsfq)
    assert 0.5 <= a2 / a1 <= 2.0


def test_area_scales_with_bits(rsfq):
    narrow = SystolicChain(16, 4).area_mm2(rsfq)
    wide = SystolicChain(16, 8).area_mm2(rsfq)
    assert wide == pytest.approx(2 * narrow)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        SystolicChain(0, 8)
    with pytest.raises(ValueError):
        SystolicChain(4, 0)


def test_1d_tree_slower_than_systolic_but_far_below_2d(rsfq):
    d1 = SplitterTree1D(64, 8).critical_path_delay_ps(rsfq)
    dsys = SystolicChain(64, 8).critical_path_delay_ps(rsfq)
    d2 = SplitterTree2D(64, 8).critical_path_delay_ps(rsfq)
    assert dsys <= d1 < 0.1 * d2
