"""Training-step extension tests."""

import pytest

from repro.core.designs import supernpu
from repro.simulator.training import (
    gradient_layer,
    gradient_network,
    simulate_training_step,
)
from repro.workloads.layers import ConvLayer
from repro.workloads.models import mobilenet, resnet50


def test_gradient_layer_swaps_channels():
    layer = ConvLayer("c", 64, 28, 28, 128, 3, 3, padding=1)
    grad = gradient_layer(layer)
    assert grad.in_channels == 128
    assert grad.out_channels == 64
    assert grad.kernel_height == 3
    assert grad.padding == 2  # full correlation
    assert grad.in_height == layer.out_height


def test_gradient_layer_macs_match_forward_for_unit_stride():
    """For stride-1 same-padded layers, dX costs the same MACs as forward."""
    layer = ConvLayer("c", 64, 28, 28, 128, 3, 3, padding=1)
    grad = gradient_layer(layer)
    # Full padding grows the gradient map slightly; volumes stay comparable.
    assert grad.macs_per_image == pytest.approx(layer.macs_per_image, rel=0.2)


def test_gradient_network_skips_input_layer():
    net = resnet50()
    grad = gradient_network(net)
    assert len(grad.layers) == len(net.layers) - 1
    assert grad.layers[0].name.endswith("_dgrad")


def test_training_step_phases(rsfq, supernpu_config):
    result = simulate_training_step(supernpu_config, resnet50(), batch=4)
    phases = result.phase_cycles()
    assert set(phases) == {"forward", "input_gradient", "weight_gradient", "weight_update"}
    assert all(v > 0 for v in phases.values())
    assert result.total_cycles == sum(phases.values())


def test_training_costs_about_three_forward_passes():
    """The canonical rule of thumb: one step ~ 3x inference compute."""
    result = simulate_training_step(supernpu(), mobilenet(), batch=8)
    assert 2.0 <= result.training_vs_inference_ratio <= 6.0


def test_training_macs_accounting():
    net = mobilenet()
    result = simulate_training_step(supernpu(), net, batch=2)
    forward_macs = net.total_macs * 2
    assert result.forward.total_macs == forward_macs
    assert result.weight_gradient.total_macs == forward_macs
    assert result.total_macs > 2.5 * forward_macs


def test_training_throughput_positive():
    result = simulate_training_step(supernpu(), mobilenet(), batch=2)
    assert result.mac_per_s > 0
    assert result.step_latency_s > 0


def test_training_batch_validation():
    with pytest.raises(ValueError):
        simulate_training_step(supernpu(), mobilenet(), batch=0)
