"""Property-based physics checks on the RCSJ simulator.

Each example runs a transient simulation (~0.1-0.5 s), so example counts
are kept small; the properties are the physical invariants that must hold
for *any* parameters, not statistical coverage.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.constants import PHI0_MV_PS
from repro.jsim.circuits import build_jtl, drive_jtl
from repro.jsim.elements import CurrentSource, JosephsonJunction
from repro.jsim.measure import switch_count, switching_times_ps
from repro.jsim.netlist import Circuit
from repro.jsim.solver import TransientSolver
from repro.jsim.stimuli import ramped_bias


@given(stages=st.integers(3, 10))
@settings(max_examples=5, deadline=None)
def test_fluxon_number_is_conserved_along_a_jtl(stages):
    """One pulse in -> exactly one 2*pi slip at every junction."""
    jtl = build_jtl(stages)
    drive_jtl(jtl, pulse_time_ps=40.0)
    result = TransientSolver(jtl.circuit).run(50.0 + 4.0 * stages)
    assert all(switch_count(result, node) == 1 for node in jtl.nodes)


@given(stages=st.integers(3, 8))
@settings(max_examples=5, deadline=None)
def test_jtl_is_causal(stages):
    """Arrival times increase monotonically along the line."""
    jtl = build_jtl(stages)
    drive_jtl(jtl, pulse_time_ps=40.0)
    result = TransientSolver(jtl.circuit).run(50.0 + 4.0 * stages)
    arrivals = [switching_times_ps(result, node)[0] for node in jtl.nodes]
    assert arrivals == sorted(arrivals)


@given(bias_fraction=st.floats(0.2, 0.85))
@settings(max_examples=6, deadline=None)
def test_subcritical_junction_never_switches(bias_fraction):
    """Any DC bias below Ic leaves the junction superconducting."""
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0, critical_current_ua=100.0))
    circuit.add_source(CurrentSource(node, ramped_bias(bias_fraction * 100.0)))
    result = TransientSolver(circuit).run(80.0)
    assert switch_count(result, node) == 0
    # Rest phase obeys arcsin(I/Ic).
    final = result.node_phase(node)[-1]
    assert math.isclose(final, math.asin(bias_fraction), abs_tol=0.1)


@given(overdrive=st.floats(1.3, 2.5))
@settings(max_examples=5, deadline=None)
def test_josephson_relation_holds_for_any_overdrive(overdrive):
    """f = <V>/Phi0 in the running state, whatever the bias."""
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0, critical_current_ua=100.0))
    circuit.add_source(CurrentSource(node, ramped_bias(overdrive * 100.0)))
    result = TransientSolver(circuit).run(150.0)
    mask = result.time_ps > 80.0
    mean_voltage = float(np.mean(result.node_voltage_mv(node)[mask]))
    phase = result.node_phase(node)
    slips = (phase[-1] - phase[mask][0]) / (2 * math.pi)
    duration = result.time_ps[-1] - result.time_ps[mask][0]
    assert slips / duration == pytest.approx(mean_voltage / PHI0_MV_PS, rel=0.1)


@given(stages=st.integers(3, 7))
@settings(max_examples=4, deadline=None)
def test_pulse_area_quantization_along_the_line(stages):
    """Every junction's time-integrated voltage is one flux quantum."""
    jtl = build_jtl(stages)
    drive_jtl(jtl, pulse_time_ps=40.0)
    result = TransientSolver(jtl.circuit).run(50.0 + 4.0 * stages)
    mask = result.time_ps > 30.0
    for node in jtl.nodes:
        area = float(
            np.trapezoid(result.node_voltage_mv(node)[mask], result.time_ps[mask])
        )
        assert area == pytest.approx(PHI0_MV_PS, rel=0.12)
