"""Cross-module integration tests: the full paper pipeline end to end."""

import math


from repro.baselines.scalesim import TPU_CORE, simulate_cmos
from repro.cooling.cryocooler import PAPER_COOLER
from repro.core.batching import paper_batch
from repro.core.designs import baseline, supernpu
from repro.core.metrics import efficiency_row, roofline_point
from repro.device.cells import ersfq_library, rsfq_library
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.workloads.models import all_workloads, mobilenet, resnet50


def test_headline_speedup_pipeline():
    """The paper's headline: SuperNPU ~23x the TPU on average."""
    library = rsfq_library()
    config = supernpu()
    estimate = estimate_npu(config, library)
    ratios = []
    for network in all_workloads():
        sfq = simulate(config, network,
                       batch=paper_batch("SuperNPU", network.name), estimate=estimate)
        tpu = simulate_cmos(TPU_CORE, network, batch=paper_batch("TPU", network.name))
        ratios.append(sfq.mac_per_s / tpu.mac_per_s)
    average = sum(ratios) / len(ratios)
    assert 10 <= average <= 50  # paper: 23x
    assert all(r > 1 for r in ratios)  # SuperNPU wins everywhere


def test_baseline_loses_to_tpu():
    """Fig. 23: the naive SFQ design underperforms the TPU (paper: 0.4x)."""
    library = rsfq_library()
    config = baseline()
    estimate = estimate_npu(config, library)
    ratios = []
    for network in all_workloads():
        sfq = simulate(config, network, batch=1, estimate=estimate)
        tpu = simulate_cmos(TPU_CORE, network, batch=paper_batch("TPU", network.name))
        ratios.append(sfq.mac_per_s / tpu.mac_per_s)
    assert sum(ratios) / len(ratios) < 1.0


def test_table3_pipeline_end_to_end():
    """ERSFQ free-cooling perf/W lands in the hundreds-x band (paper 490x)."""
    config = supernpu()
    network = resnet50()
    tpu = simulate_cmos(TPU_CORE, network, batch=20)
    tpu_row = efficiency_row("TPU", 40.0, tpu.mac_per_s, cooler=None)

    library = ersfq_library()
    estimate = estimate_npu(config, library)
    run = simulate(config, network, batch=30, estimate=estimate)
    power = power_report(run, estimate)
    free = efficiency_row("ERSFQ", power.total_w, run.mac_per_s,
                          cooler=PAPER_COOLER, free_cooling=True)
    cooled = efficiency_row("ERSFQ+cool", power.total_w, run.mac_per_s,
                            cooler=PAPER_COOLER)
    assert free.normalized_to(tpu_row) > 100
    assert cooled.normalized_to(tpu_row) > 0.5


def test_roofline_consistency_with_simulator():
    """Measured throughput never exceeds the analytic roofline peak."""
    library = rsfq_library()
    config = supernpu()
    estimate = estimate_npu(config, library)
    network = mobilenet()
    run = simulate(config, network, batch=30, estimate=estimate)
    point = roofline_point(network, 30, estimate.peak_mac_per_s,
                           config.memory_bandwidth_gbps, measured=run)
    assert point.measured_mac_per_s <= point.peak_mac_per_s


def test_frequency_consistent_across_apis():
    library = rsfq_library()
    config = supernpu()
    estimate = estimate_npu(config, library)
    run = simulate(config, resnet50(), batch=1, estimate=estimate)
    assert math.isclose(run.frequency_ghz, estimate.frequency_ghz)


def test_ersfq_and_rsfq_same_performance_different_power():
    """Technology changes power, not cycles (same timing per IV-A1)."""
    config = supernpu()
    network = resnet50()
    runs = {}
    powers = {}
    for name, library in (("rsfq", rsfq_library()), ("ersfq", ersfq_library())):
        estimate = estimate_npu(config, library)
        run = simulate(config, network, batch=30, estimate=estimate)
        runs[name] = run.total_cycles
        powers[name] = power_report(run, estimate).total_w
    assert runs["rsfq"] == runs["ersfq"]
    assert powers["ersfq"] < 0.01 * powers["rsfq"]
