"""Shared datapath-construction tests (engine and trace use one builder)."""

from repro.simulator.datapath import Datapath, build_datapath
from repro.uarch.buffers import IntegratedOutputBuffer, ShiftRegisterBuffer


def test_integrated_design_has_no_psum_buffer(supernpu_config):
    datapath = build_datapath(supernpu_config)
    assert isinstance(datapath, Datapath)
    assert isinstance(datapath.output_buffer, IntegratedOutputBuffer)
    assert datapath.psum_buffer is None


def test_non_integrated_design_builds_psum_buffer(baseline_config):
    datapath = build_datapath(baseline_config)
    assert type(datapath.output_buffer) is ShiftRegisterBuffer
    assert datapath.psum_buffer is not None
    assert datapath.psum_buffer.capacity_bytes == baseline_config.psum_buffer_bytes


def test_dimensions_follow_config(supernpu_config):
    datapath = build_datapath(supernpu_config)
    assert datapath.ifmap_buffer.io_width == supernpu_config.pe_array_height
    assert datapath.output_buffer.io_width == supernpu_config.pe_array_width
    assert datapath.ifmap_buffer.division == supernpu_config.ifmap_division
    assert datapath.pe.registers == supernpu_config.registers_per_pe


def test_engine_and_trace_share_the_builder():
    """Both call sites import the one helper (no hand-built duplicates)."""
    import inspect

    from repro.simulator import engine, trace

    assert "build_datapath" in inspect.getsource(engine.simulate)
    assert "build_datapath" in inspect.getsource(trace.trace_layer)
    assert "build_datapath" in inspect.getsource(trace.verify_against_engine)
