"""Generated pipelined arithmetic circuits — exhaustive correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatesim.builder import CircuitBuilder
from repro.gatesim.circuits import (
    build_adder,
    build_frequency_divider,
    build_mac,
    build_multiplier,
    full_adder,
)


@pytest.fixture(scope="module")
def adder4():
    return build_adder(4)


@pytest.fixture(scope="module")
def multiplier4():
    return build_multiplier(4)


def test_full_adder_exhaustive():
    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                builder = CircuitBuilder()
                sa, sb, sc = (builder.input(n) for n in "abc")
                total, carry = full_adder(builder, sa, sb, sc)
                builder.output("p0", total)
                builder.output("p1", carry)
                out = builder.run_stream([{"a": bool(a), "b": bool(b), "c": bool(c)}])[0]
                value = int(out["p0"]) + 2 * int(out["p1"])
                assert value == a + b + c


def test_adder_exhaustive_4bit(adder4):
    assert all(
        adder4.compute(a=a, b=b) == a + b for a in range(16) for b in range(16)
    )


def test_adder_is_fully_pipelined(adder4):
    """One addition per clock — the gate-level-pipelining payoff."""
    operations = [{"a": a, "b": 15 - a} for a in range(16)]
    assert adder4.compute_stream(operations) == [15] * 16


def test_multiplier_exhaustive_4bit(multiplier4):
    assert all(
        multiplier4.compute(a=a, b=b) == a * b for a in range(16) for b in range(16)
    )


def test_multiplier_streaming(multiplier4):
    operations = [{"a": a % 16, "b": (a * 7 + 3) % 16} for a in range(40)]
    expected = [op["a"] * op["b"] for op in operations]
    assert multiplier4.compute_stream(operations) == expected


def test_mac_matches_formula():
    mac = build_mac(4)
    cases = [(7, 13, 55), (15, 15, 0), (0, 9, 31), (1, 1, 510)]
    for a, b, c in cases:
        assert mac.compute(a=a, b=b, c=c) == a * b + c


def test_mac_accumulator_wraps_at_width():
    """A fixed-width accumulator wraps modulo 2**bits, like hardware."""
    mac = build_mac(4)  # 9-bit accumulator
    assert mac.compute(a=1, b=1, c=511) == (1 + 511) % 512


def test_mac_streams_like_a_pe():
    """Back-to-back MACs with a carried accumulator value, as the PE's
    psum chain does."""
    mac = build_mac(4)
    accumulator = 0
    for a, b in [(3, 5), (2, 7), (15, 15), (1, 0)]:
        accumulator = mac.compute(a=a, b=b, c=accumulator)
    assert accumulator == 3 * 5 + 2 * 7 + 15 * 15 + 0


@given(a=st.integers(0, 255), b=st.integers(0, 255))
@settings(max_examples=15, deadline=None)
def test_multiplier_8bit_property(a, b):
    circuit = _cached_mul8()
    assert circuit.compute(a=a, b=b) == a * b


_MUL8 = []


def _cached_mul8():
    if not _MUL8:
        _MUL8.append(build_multiplier(8))
    return _MUL8[0]


def test_path_balancing_dffs_dominate(multiplier4):
    """Section II-B1's hidden cost, observed on a real netlist: the
    retiming DFFs far outnumber the logic gates."""
    histogram = multiplier4.gate_histogram()
    logic = histogram["AND"] + histogram["XOR"] + histogram["OR"]
    assert histogram["DFF"] > 2 * logic


def test_gate_count_order_matches_uarch_model():
    """The analytic MAC model and the generated netlist agree on scale.

    Microarchitectures differ (carry-save vs shift-add), so only the
    order of magnitude is comparable."""
    from repro.uarch.mac import MACUnit

    generated = build_mac(8).num_gates
    modeled = MACUnit(8, 24).gate_counts().total()
    assert 0.2 <= generated / modeled <= 5.0


def test_latency_grows_with_width():
    assert build_multiplier(2).latency < build_multiplier(4).latency


def test_frequency_divider_chain():
    divider = build_frequency_divider(2)
    pulses = [{"clk": True}] * 16
    outputs = divider.run_stream(pulses)
    assert sum(int(o["out"]) for o in outputs) == 4  # 16 / 2**2


def test_width_validation():
    with pytest.raises(ValueError):
        build_adder(0)
    with pytest.raises(ValueError):
        build_multiplier(0)
    with pytest.raises(ValueError):
        build_mac(4, accumulator_bits=4)
    with pytest.raises(ValueError):
        build_frequency_divider(0)


def test_operand_range_validation(adder4):
    with pytest.raises(ValueError):
        adder4.compute(a=16, b=0)


def test_relu_passes_positive_values():
    from repro.gatesim.circuits import build_relu

    relu = build_relu(4)
    for value in (0, 1, 7, 15):
        assert relu.compute(a=value, sign=0) == value


def test_relu_zeroes_negative_values():
    from repro.gatesim.circuits import build_relu

    relu = build_relu(4)
    for value in (1, 7, 15):
        assert relu.compute(a=value, sign=1) == 0


def test_relu_streams():
    from repro.gatesim.circuits import build_relu

    relu = build_relu(4)
    operations = [{"a": v, "sign": v % 2} for v in range(8)]
    expected = [0 if v % 2 else v for v in range(8)]
    assert relu.compute_stream(operations) == expected


def test_relu_validation():
    from repro.gatesim.circuits import build_relu

    with pytest.raises(ValueError):
        build_relu(0)


def test_max_exhaustive_3bit():
    from repro.gatesim.circuits import build_max

    circuit = build_max(3)
    assert all(
        circuit.compute(a=a, b=b) == max(a, b) for a in range(8) for b in range(8)
    )


def test_max_streams_one_comparison_per_clock():
    from repro.gatesim.circuits import build_max

    circuit = build_max(4)
    operations = [{"a": a % 16, "b": (a * 5 + 2) % 16} for a in range(20)]
    expected = [max(op["a"], op["b"]) for op in operations]
    assert circuit.compute_stream(operations) == expected


def test_max_equal_operands():
    from repro.gatesim.circuits import build_max

    circuit = build_max(4)
    for value in (0, 7, 15):
        assert circuit.compute(a=value, b=value) == value


def test_max_validation():
    from repro.gatesim.circuits import build_max

    with pytest.raises(ValueError):
        build_max(0)
