"""Bit-true systolic-array tests: the dataflow really computes convolutions."""

import numpy as np
import pytest

from repro.functional.reference import conv2d_reference
from repro.functional.systolic import SystolicArray, conv2d_systolic


def _random_case(rng, channels, size, filters, kernel):
    ifmap = rng.integers(-8, 8, size=(channels, size, size)).astype(np.int64)
    weights = rng.integers(-4, 4, size=(filters, channels, kernel, kernel)).astype(np.int64)
    return ifmap, weights


def test_single_pe_multiplies():
    array = SystolicArray(1, 1)
    array.load_weights(np.array([[3]], dtype=np.int64))
    out = array.run(np.array([[1, 2, 4]], dtype=np.int64))
    assert np.array_equal(out, np.array([[3, 6, 12]]))


def test_column_accumulates_down_rows():
    array = SystolicArray(2, 1)
    array.load_weights(np.array([[2], [5]], dtype=np.int64))
    streams = np.array([[1, 1], [10, 20]], dtype=np.int64)
    out = array.run(streams)
    assert np.array_equal(out, np.array([[2 + 50, 2 + 100]]))


def test_weight_tile_padding():
    array = SystolicArray(4, 4)
    array.load_weights(np.ones((2, 2), dtype=np.int64))
    assert np.all(array.weights[2:, :] == 0)
    assert np.all(array.weights[:, 2:] == 0)


def test_load_validation():
    array = SystolicArray(2, 2)
    with pytest.raises(ValueError):
        array.load_weights(np.ones((3, 2), dtype=np.int64))
    with pytest.raises(ValueError):
        array.load_weights(np.ones(4, dtype=np.int64))
    with pytest.raises(ValueError):
        SystolicArray(0, 1)


def test_step_input_validation():
    array = SystolicArray(2, 2)
    with pytest.raises(ValueError):
        array.step(np.zeros(3, dtype=np.int64))


@pytest.mark.parametrize(
    "channels,size,filters,kernel,stride,padding,rows,cols",
    [
        (3, 6, 5, 3, 1, 1, 8, 4),
        (3, 6, 5, 3, 2, 0, 16, 16),
        (2, 5, 3, 1, 1, 0, 4, 2),
        (4, 7, 7, 3, 1, 1, 5, 3),
        (1, 8, 2, 5, 1, 2, 25, 2),
        (6, 4, 9, 2, 1, 0, 7, 2),
    ],
)
def test_systolic_equals_reference(channels, size, filters, kernel, stride, padding, rows, cols):
    rng = np.random.default_rng(channels * size + filters)
    ifmap, weights = _random_case(rng, channels, size, filters, kernel)
    expected = conv2d_reference(ifmap, weights, stride, padding)
    actual = conv2d_systolic(ifmap, weights, rows, cols, stride, padding)
    assert np.array_equal(expected, actual)


def test_tiling_is_invisible():
    """Any tiling must produce the same answer (psum accumulation works)."""
    rng = np.random.default_rng(7)
    ifmap, weights = _random_case(rng, 4, 6, 6, 3)
    expected = conv2d_reference(ifmap, weights, 1, 1)
    for rows, cols in [(36, 6), (8, 2), (5, 3), (36, 1), (1, 6)]:
        assert np.array_equal(
            expected, conv2d_systolic(ifmap, weights, rows, cols, 1, 1)
        ), (rows, cols)


def test_channel_mismatch_rejected():
    with pytest.raises(ValueError):
        conv2d_systolic(
            np.ones((2, 4, 4), dtype=np.int64),
            np.ones((1, 3, 1, 1), dtype=np.int64),
            4,
            4,
        )
