"""Energy-per-image metric tests."""

import pytest

from repro.core.energy import (
    EnergyRow,
    best_by_wall_energy,
    inference_energy_table,
    relative_energy,
)
from repro.workloads.models import resnet50


@pytest.fixture(scope="module")
def table():
    return inference_energy_table(resnet50())


def test_table_covers_all_scenarios(table):
    labels = [row.label for row in table]
    assert labels[0] == "TPU"
    assert any("RSFQ" in l and "free" in l for l in labels)
    assert any("ERSFQ" in l and "w/ cooling" in l for l in labels)
    assert len(table) == 5


def test_ersfq_free_cooling_wins_by_far(table):
    rel = relative_energy(table)
    ersfq_free = rel["ERSFQ-SuperNPU (free cooling)"]
    assert ersfq_free < 0.01  # hundreds of times less energy than the TPU


def test_cooled_rsfq_is_energy_hog(table):
    rel = relative_energy(table)
    assert rel["RSFQ-SuperNPU (w/ cooling)"] > 10


def test_best_row(table):
    assert "ERSFQ" in best_by_wall_energy(table).label
    with pytest.raises(ValueError):
        best_by_wall_energy([])


def test_energy_arithmetic():
    row = EnergyRow("x", images_per_s=100.0, chip_power_w=2.0, wall_power_w=802.0)
    assert row.chip_joules_per_image == pytest.approx(0.02)
    assert row.wall_joules_per_image == pytest.approx(8.02)


def test_zero_throughput_rejected():
    row = EnergyRow("x", images_per_s=0.0, chip_power_w=1.0, wall_power_w=1.0)
    with pytest.raises(ValueError):
        row.chip_joules_per_image


def test_relative_requires_reference(table):
    with pytest.raises(KeyError):
        relative_energy(table, reference_label="GPU")
