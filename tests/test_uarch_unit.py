"""GateCounts algebra and clock-tree augmentation tests."""

import math

import pytest

from repro.device import cells
from repro.timing.frequency import GatePair
from repro.uarch.unit import GateCounts, Unit


def test_gatecounts_add_and_get():
    counts = GateCounts().add(cells.AND, 3).add(cells.AND, 2).add(cells.DFF, 1)
    assert counts[cells.AND] == 5
    assert counts[cells.DFF] == 1
    assert counts["missing"] == 0


def test_gatecounts_merge_with_multiplier():
    a = GateCounts({cells.AND: 2})
    b = GateCounts({cells.AND: 1, cells.XOR: 3})
    a.merge(b, times=4)
    assert a[cells.AND] == 6
    assert a[cells.XOR] == 12


def test_gatecounts_scaled_returns_new_object():
    a = GateCounts({cells.DFF: 2})
    b = a.scaled(3)
    assert b[cells.DFF] == 6
    assert a[cells.DFF] == 2


def test_gatecounts_total():
    assert GateCounts({cells.AND: 2, cells.DFF: 3}).total() == 5


def test_gatecounts_equality_and_repr():
    assert GateCounts({cells.AND: 1}) == GateCounts({cells.AND: 1})
    assert GateCounts({cells.AND: 1}) != GateCounts({cells.AND: 2})
    assert "AND=1" in repr(GateCounts({cells.AND: 1}))


def test_gatecounts_rejects_negative():
    with pytest.raises(ValueError):
        GateCounts({cells.AND: -1})
    with pytest.raises(ValueError):
        GateCounts().add(cells.AND, -2)
    with pytest.raises(ValueError):
        GateCounts({cells.AND: 1}).scaled(-1)


class _FakeUnit(Unit):
    kind = "fake"

    def __init__(self, counts):
        self._counts = counts

    def gate_counts(self):
        return GateCounts(self._counts)

    def gate_pairs(self):
        return [GatePair(cells.DFF, cells.DFF)]


def test_clock_tree_adds_splitter_per_clocked_gate():
    unit = _FakeUnit({cells.AND: 10, cells.JTL: 5})
    full = unit.full_gate_counts()
    # 10 clocked AND gates -> 10 clock splitters; JTLs are unclocked.
    assert full[cells.SPLITTER] == 10
    assert full[cells.AND] == 10
    assert full[cells.JTL] == 5


def test_clock_tree_exempts_srcell():
    unit = _FakeUnit({cells.SRCELL: 100})
    assert unit.full_gate_counts()[cells.SPLITTER] == 0


def test_derived_metrics_use_full_counts(rsfq):
    bare = _FakeUnit({cells.AND: 10})
    expected = (10 * 3.6 + 10 * 1.0) * 1e-6  # AND + clock splitters
    assert math.isclose(bare.static_power_w(rsfq), expected)


def test_area_and_jj_count_consistent(rsfq):
    unit = _FakeUnit({cells.AND: 4})
    jj = unit.jj_count(rsfq)
    assert math.isclose(unit.area_mm2(rsfq), jj * rsfq.process.jj_area_um2 * 1e-6)


def test_base_class_is_abstract(rsfq):
    with pytest.raises(NotImplementedError):
        Unit().gate_counts()
    with pytest.raises(NotImplementedError):
        Unit().gate_pairs()
