"""Quantizer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional.quantize import (
    QuantParams,
    calibrate,
    dequantize,
    quantization_error,
    quantize,
)


def test_params_validation():
    with pytest.raises(ValueError):
        QuantParams(scale=0)
    with pytest.raises(ValueError):
        QuantParams(scale=1.0, bits=1)


def test_quant_range():
    params = QuantParams(scale=1.0, bits=8)
    assert params.qmax == 127
    assert params.qmin == -128


def test_calibrate_covers_peak():
    tensor = np.array([-2.0, 0.5, 4.0])
    params = calibrate(tensor)
    assert quantize(tensor, params).max() == 127


def test_calibrate_zero_tensor():
    params = calibrate(np.zeros(4))
    assert params.scale > 0
    assert np.all(quantize(np.zeros(4), params) == 0)


def test_round_trip_error_small():
    rng = np.random.default_rng(0)
    tensor = rng.normal(0, 1, size=1000)
    assert quantization_error(tensor, bits=8) < 0.02
    assert quantization_error(tensor, bits=4) < 0.2


def test_more_bits_less_error():
    rng = np.random.default_rng(1)
    tensor = rng.normal(0, 1, size=500)
    assert quantization_error(tensor, 8) < quantization_error(tensor, 4)


def test_dequantize_inverse_scale():
    params = QuantParams(scale=0.5)
    assert np.allclose(dequantize(np.array([2, -4]), params), [1.0, -2.0])


@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_quantize_stays_in_range(values):
    tensor = np.array(values)
    params = calibrate(tensor)
    q = quantize(tensor, params)
    assert q.max() <= params.qmax
    assert q.min() >= params.qmin
