"""Gate-network engine tests."""

import pytest

from repro.gatesim.network import GateNetwork


def _xor_network():
    net = GateNetwork()
    net.add_input("a")
    net.add_input("b")
    net.add_gate("x", "XOR")
    net.connect_input("a", "x", "a")
    net.connect_input("b", "x", "b")
    net.add_output("out", "x")
    return net


def test_single_gate_cycle():
    net = _xor_network()
    assert net.step({"a": True, "b": False}) == {"out": True}
    assert net.step({"a": True, "b": True}) == {"out": False}
    assert net.step({}) == {"out": False}


def test_pipeline_stage_latency():
    """A two-gate chain shows the one-cycle-per-stage pipeline timing."""
    net = GateNetwork()
    net.add_input("a")
    net.add_gate("d1", "DFF")
    net.add_gate("d2", "DFF")
    net.connect_input("a", "d1", "a")
    net.connect("d1", "d2", "a")
    net.add_output("out", "d2")
    assert net.step({"a": True}) == {"out": False}
    assert net.step({}) == {"out": True}
    assert net.step({}) == {"out": False}


def test_fanout_to_multiple_ports():
    net = GateNetwork()
    net.add_input("a")
    net.add_gate("g", "AND")
    net.connect_input("a", "g", "a")
    net.connect_input("a", "g", "b")  # splitter: one pulse feeds both ports
    net.add_output("out", "g")
    assert net.step({"a": True}) == {"out": True}


def test_feedback_wire():
    """A gate may feed itself: pulses arrive for the *next* clock."""
    net = GateNetwork()
    net.add_input("seed")
    net.add_gate("osc", "OR")
    net.connect_input("seed", "osc", "a")
    net.connect("osc", "osc", "b")  # regenerative loop
    net.add_output("out", "osc")
    assert net.step({"seed": True}) == {"out": True}
    # The loop now sustains itself without further input.
    assert net.step({}) == {"out": True}
    assert net.step({}) == {"out": True}


def test_run_with_flush():
    net = _xor_network()
    trace = net.run([{"a": True}], extra_cycles=2)
    assert [t["out"] for t in trace] == [True, False, False]
    with pytest.raises(ValueError):
        net.run([], extra_cycles=-1)


def test_construction_validation():
    net = GateNetwork()
    net.add_gate("g", "AND")
    with pytest.raises(ValueError):
        net.add_gate("g", "AND")
    net.add_input("a")
    with pytest.raises(ValueError):
        net.add_input("a")
    with pytest.raises(KeyError):
        net.connect("missing", "g", "a")
    with pytest.raises(KeyError):
        net.connect_input("nope", "g", "a")
    with pytest.raises(KeyError):
        net.step({"nope": True})
    net.add_output("o", "g")
    with pytest.raises(ValueError):
        net.add_output("o", "g")


def test_gate_kind_counts():
    net = _xor_network()
    net.add_gate("d", "DFF")
    assert net.gate_kind_counts() == {"XOR": 1, "DFF": 1}
