"""Cell-library tests, including the published calibration anchors."""

import math

import pytest

from repro.device import cells
from repro.device.cells import (
    CLOCK_SELF_CONTAINED_CELLS,
    ERSFQ_ENERGY_FACTOR,
    UNCLOCKED_CELLS,
    Technology,
    ersfq_library,
    library_for,
    rsfq_library,
)


@pytest.fixture(scope="module")
def lib():
    return rsfq_library()


def test_paper_and_gate_parameters(lib):
    """The Fig. 10 sample table: AND 8.3 ps / 3.6 uW / 1.4 aJ."""
    and_gate = lib[cells.AND]
    assert and_gate.delay_ps == 8.3
    assert and_gate.static_power_uw == 3.6
    assert and_gate.switch_energy_aj == 1.4


def test_paper_xor_gate_parameters(lib):
    xor_gate = lib[cells.XOR]
    assert xor_gate.delay_ps == 6.5
    assert xor_gate.static_power_uw == 3.0
    assert xor_gate.switch_energy_aj == 1.4


def test_all_cells_present(lib):
    expected = {
        cells.DFF, cells.SRCELL, cells.DFF_BYPASS, cells.NDRO, cells.AND,
        cells.OR, cells.XOR, cells.NOT, cells.TFF, cells.SPLITTER,
        cells.MERGER, cells.JTL, cells.MUX, cells.DEMUX,
    }
    assert expected == set(lib.names)


def test_unclocked_cells_have_no_setup_hold(lib):
    for name in UNCLOCKED_CELLS:
        cell = lib[name]
        assert cell.setup_ps == 0.0
        assert cell.hold_ps == 0.0
        assert not cell.is_clocked


def test_clocked_cells_have_positive_timing(lib):
    for name in lib.names:
        cell = lib[name]
        if cell.is_clocked:
            assert cell.setup_ps > 0
            assert cell.hold_ps > 0
        assert cell.delay_ps > 0


def test_ersfq_has_zero_static_power():
    ersfq = ersfq_library()
    assert all(ersfq[name].static_power_uw == 0.0 for name in ersfq.names)


def test_ersfq_doubles_switch_energy(lib):
    ersfq = ersfq_library()
    for name in lib.names:
        assert math.isclose(
            ersfq[name].switch_energy_aj,
            ERSFQ_ENERGY_FACTOR * lib[name].switch_energy_aj,
        )


def test_ersfq_keeps_timing_and_area(lib):
    """Section IV-A1: same timing and JJ count as RSFQ."""
    ersfq = ersfq_library()
    for name in lib.names:
        assert ersfq[name].delay_ps == lib[name].delay_ps
        assert ersfq[name].setup_ps == lib[name].setup_ps
        assert ersfq[name].jj_count == lib[name].jj_count


def test_library_for_dispatch():
    assert library_for(Technology.RSFQ).technology is Technology.RSFQ
    assert library_for(Technology.ERSFQ).technology is Technology.ERSFQ


def test_unknown_cell_raises(lib):
    with pytest.raises(KeyError, match="unknown SFQ cell"):
        lib["FLUXCAP"]


def test_contains_and_iter(lib):
    assert cells.DFF in lib
    assert "FLUXCAP" not in lib
    assert set(iter(lib)) == set(lib.names)


def test_static_power_aggregation(lib):
    counts = {cells.AND: 10, cells.DFF: 5}
    expected = (10 * 3.6 + 5 * lib[cells.DFF].static_power_uw) * 1e-6
    assert math.isclose(lib.static_power_w(counts), expected)


def test_area_aggregation_uses_jj_counts(lib):
    counts = {cells.JTL: 3}
    expected = 3 * 2 * lib.process.jj_area_um2
    assert math.isclose(lib.total_area_um2(counts), expected)


def test_access_energy_split_partitions_total(lib):
    counts = {cells.AND: 4, cells.SPLITTER: 7, cells.JTL: 2, cells.DFF: 1}
    clocked, wire = lib.access_energy_split_j(counts)
    assert math.isclose(clocked + wire, lib.access_energy_j(counts), rel_tol=1e-12)
    # Wire share is exactly the splitter + JTL energy.
    expected_wire = (7 * lib[cells.SPLITTER].switch_energy_aj
                     + 2 * lib[cells.JTL].switch_energy_aj) * 1e-18
    assert math.isclose(wire, expected_wire, rel_tol=1e-12)


def test_srcell_is_clock_self_contained():
    assert cells.SRCELL in CLOCK_SELF_CONTAINED_CELLS
    assert cells.DFF not in CLOCK_SELF_CONTAINED_CELLS


def test_switch_energy_physically_plausible(lib):
    """Each gate op should cost a few JJ switchings (~0.145 aJ each)."""
    from repro.device.constants import jj_switch_energy_aj

    per_jj = jj_switch_energy_aj(lib.process.bias_current_ua)
    for name in lib.names:
        cell = lib[name]
        switches = cell.switch_energy_aj / per_jj
        assert 1 <= switches <= cell.jj_count + 2
