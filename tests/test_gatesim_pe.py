"""Gate-level weight-stationary PE tests (Fig. 6(a), executed)."""

import pytest

from repro.gatesim.pe import WeightStationaryPE


@pytest.fixture(scope="module")
def pe():
    return WeightStationaryPE(4)


def test_single_mac(pe):
    pe.load_weight(6)
    assert pe.mac(5, 10) == 6 * 5 + 10


def test_weight_stays_resident_across_stream(pe):
    """The weight-stationary property: load once, MAC forever."""
    pe.load_weight(7)
    pairs = [(i, i * 2) for i in range(8)]
    assert pe.stream(pairs) == [7 * a + c for a, c in pairs]


def test_weight_reload(pe):
    pe.load_weight(15)
    assert pe.mac(15, 0) == 225
    pe.load_weight(0)
    assert pe.mac(15, 100) == 100


def test_exhaustive_small_pe():
    small = WeightStationaryPE(2)
    for weight in range(4):
        small.load_weight(weight)
        for a in range(4):
            for c in range(8):
                assert small.mac(a, c) == weight * a + c, (weight, a, c)


def test_streaming_throughput_is_one_mac_per_clock(pe):
    """Depth never throttles rate: N MACs take N injection cycles."""
    pe.load_weight(3)
    results = pe.stream([(a, 0) for a in range(16)])
    assert results == [3 * a for a in range(16)]


def test_operand_validation(pe):
    with pytest.raises(ValueError):
        pe.load_weight(16)
    with pytest.raises(ValueError):
        pe.mac(16, 0)
    with pytest.raises(ValueError):
        pe.mac(0, 1 << 9)
    with pytest.raises(ValueError):
        WeightStationaryPE(0)
    with pytest.raises(ValueError):
        WeightStationaryPE(4, psum_bits=4)


def test_structure_reports(pe):
    assert pe.num_gates > 100
    assert pe.latency > 4
