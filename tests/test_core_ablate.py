"""One-factor ablation tests."""

import pytest

from repro.core.ablate import AblationRow, ablated_configs, ablation_study
from repro.workloads.models import mobilenet, resnet50


def test_ablated_configs_cover_all_features():
    configs = ablated_configs()
    assert set(configs) == {
        "SuperNPU", "no_integration", "no_division", "wide_array", "single_register",
    }


def test_each_ablation_removes_exactly_its_feature():
    configs = ablated_configs()
    full = configs["SuperNPU"]
    assert not configs["no_integration"].integrated_output_buffer
    assert configs["no_division"].ifmap_division == 1
    assert configs["wide_array"].pe_array_width == 256
    assert configs["single_register"].registers_per_pe == 1
    # Everything else stays put (spot-check the register ablation).
    assert configs["single_register"].pe_array_width == full.pe_array_width
    assert configs["single_register"].ifmap_division == full.ifmap_division


def test_no_integration_preserves_total_capacity():
    configs = ablated_configs()
    split = configs["no_integration"]
    assert (
        split.output_buffer_bytes + split.psum_buffer_bytes
        == configs["SuperNPU"].output_buffer_bytes
    )


@pytest.fixture(scope="module")
def study(rsfq):
    return ablation_study(workloads=[resnet50(), mobilenet()], library=rsfq)


def test_rows_sorted_worst_first(study):
    values = [row.relative_to_full for row in study]
    assert values == sorted(values)


def test_division_dominates(study):
    assert study[0].feature == "no_division"
    assert study[0].relative_to_full < 0.1


def test_penalty_arithmetic():
    row = AblationRow("x", "y", mean_mac_per_s=80.0, relative_to_full=0.8)
    assert row.penalty_percent == pytest.approx(20.0)
