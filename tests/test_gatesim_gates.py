"""Pulse-logic gate semantics tests (Fig. 1 behaviour, per gate type)."""

import pytest

from repro.gatesim.gates import (
    AndGate,
    DFFGate,
    NDROGate,
    NotGate,
    OrGate,
    TFFGate,
    XorGate,
    make_gate,
)


@pytest.mark.parametrize(
    "gate_cls,a,b,expected",
    [
        (AndGate, 0, 0, 0), (AndGate, 1, 0, 0), (AndGate, 0, 1, 0), (AndGate, 1, 1, 1),
        (OrGate, 0, 0, 0), (OrGate, 1, 0, 1), (OrGate, 0, 1, 1), (OrGate, 1, 1, 1),
        (XorGate, 0, 0, 0), (XorGate, 1, 0, 1), (XorGate, 0, 1, 1), (XorGate, 1, 1, 0),
    ],
)
def test_binary_truth_tables(gate_cls, a, b, expected):
    gate = gate_cls()
    if a:
        gate.receive("a")
    if b:
        gate.receive("b")
    assert gate.clock() is bool(expected)


def test_clock_clears_state():
    """Fig. 1(d): the stored quantum is consumed by the clock pulse."""
    gate = AndGate()
    gate.receive("a")
    gate.receive("b")
    assert gate.clock() is True
    assert gate.clock() is False  # nothing stored anymore


def test_not_gate_emits_on_absence():
    gate = NotGate()
    assert gate.clock() is True  # logical 0 in -> 1 out
    gate.receive("a")
    assert gate.clock() is False


def test_dff_is_one_cycle_delay():
    gate = DFFGate()
    gate.receive("a")
    assert gate.clock() is True
    assert gate.clock() is False


def test_ndro_persists_until_reset():
    gate = NDROGate()
    gate.receive("set")
    assert gate.clock() is True
    # Non-destructive: repeated clocks keep reading '1'.
    assert gate.clock() is True
    gate.receive("reset")
    assert gate.clock() is False
    assert gate.clock() is False


def test_ndro_reset_dominates_simultaneous_set():
    gate = NDROGate()
    gate.receive("set")
    gate.receive("reset")
    assert gate.clock() is False


def test_tff_divides_by_two():
    gate = TFFGate()
    outputs = []
    for _ in range(8):
        gate.receive("a")
        outputs.append(gate.clock())
    assert outputs == [False, True] * 4


def test_tff_holds_between_pulses():
    gate = TFFGate()
    gate.receive("a")
    assert gate.clock() is False
    assert gate.clock() is False  # no input: no output
    gate.receive("a")
    assert gate.clock() is True


def test_unknown_port_rejected():
    with pytest.raises(ValueError, match="no port"):
        AndGate().receive("q")


def test_factory():
    assert make_gate("XOR").name == "XOR"
    with pytest.raises(ValueError):
        make_gate("NAND")
