"""Output-stationary functional array tests (Fig. 6(b) dataflow)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional.os_systolic import OSSystolicArray, conv2d_os
from repro.functional.reference import conv2d_reference
from repro.functional.systolic import conv2d_systolic


def test_single_pe_dot_product():
    array = OSSystolicArray(1, 1)
    out = array.run(
        np.array([[1, 2, 3]], dtype=np.int64),
        np.array([[4, 5, 6]], dtype=np.int64),
    )
    assert out[0, 0] == 4 + 10 + 18


def test_grid_outer_structure():
    array = OSSystolicArray(2, 3)
    x = np.array([[1, 0], [0, 1]], dtype=np.int64)
    w = np.array([[2, 3], [5, 7], [11, 13]], dtype=np.int64)
    out = array.run(x, w)
    # out[r, c] = dot(x[r], w[c]).
    assert np.array_equal(out, x @ w.T)


def test_stream_validation():
    array = OSSystolicArray(2, 2)
    with pytest.raises(ValueError):
        array.run(np.zeros((3, 4), dtype=np.int64), np.zeros((1, 4), dtype=np.int64))
    with pytest.raises(ValueError):
        array.run(np.zeros((1, 4), dtype=np.int64), np.zeros((1, 5), dtype=np.int64))
    with pytest.raises(ValueError):
        OSSystolicArray(0, 1)


@pytest.mark.parametrize(
    "rows,cols,stride,padding",
    [(8, 4, 1, 1), (16, 2, 2, 0), (3, 3, 1, 1), (50, 5, 1, 0)],
)
def test_os_conv_equals_reference(rows, cols, stride, padding):
    rng = np.random.default_rng(rows * cols)
    ifmap = rng.integers(-8, 8, size=(3, 6, 6)).astype(np.int64)
    weights = rng.integers(-4, 4, size=(5, 3, 3, 3)).astype(np.int64)
    expected = conv2d_reference(ifmap, weights, stride, padding)
    actual = conv2d_os(ifmap, weights, rows, cols, stride, padding)
    assert np.array_equal(expected, actual)


def test_both_dataflows_agree():
    """WS and OS must compute identical results (Fig. 6: same math,
    different movement)."""
    rng = np.random.default_rng(9)
    ifmap = rng.integers(-8, 8, size=(2, 5, 5)).astype(np.int64)
    weights = rng.integers(-4, 4, size=(3, 2, 3, 3)).astype(np.int64)
    ws = conv2d_systolic(ifmap, weights, 18, 3, 1, 1)
    os = conv2d_os(ifmap, weights, 9, 2, 1, 1)
    assert np.array_equal(ws, os)


@given(seed=st.integers(0, 500), rows=st.integers(1, 12), cols=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_os_conv_property(seed, rows, cols):
    rng = np.random.default_rng(seed)
    ifmap = rng.integers(-5, 6, size=(2, 4, 4)).astype(np.int64)
    weights = rng.integers(-3, 4, size=(3, 2, 2, 2)).astype(np.int64)
    expected = conv2d_reference(ifmap, weights, 1, 0)
    actual = conv2d_os(ifmap, weights, rows, cols, 1, 0)
    assert np.array_equal(expected, actual)
