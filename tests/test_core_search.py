"""Design-space search tests — the Section V narrative, rediscovered."""

import pytest

from repro.core.search import AREA_BUDGET_MM2, best, search
from repro.workloads.models import mobilenet, resnet50


@pytest.fixture(scope="module")
def results():
    return search(
        widths=(256, 128, 64),
        divisions=(1, 64, 256),
        registers=(1, 8),
        workloads=[resnet50(), mobilenet()],
    )


def test_all_candidates_within_budget(results):
    assert results
    assert all(c.area_mm2_28nm <= AREA_BUDGET_MM2 for c in results)
    assert all(c.within_budget for c in results)


def test_ranking_is_descending(results):
    values = [c.mean_mac_per_s for c in results]
    assert values == sorted(values, reverse=True)
    assert best(results) is results[0]


def test_winner_is_supernpu_class(results):
    """The search must rediscover the paper's design direction: a narrowed
    array with divided buffers and multiple registers per PE."""
    winner = best(results).config
    assert winner.pe_array_width in (64, 128)
    assert winner.ifmap_division >= 64
    assert winner.integrated_output_buffer


def test_undivided_designs_rank_last(results):
    """Division is the decisive optimization (Fig. 20's message)."""
    tail = results[-3:]
    assert all(c.config.ifmap_division == 1 for c in tail)
    assert best(results).mean_mac_per_s > 50 * tail[-1].mean_mac_per_s


def test_registers_break_ties_upward(results):
    """Among otherwise-equal configs, more registers never hurt."""
    by_name = {c.config.name: c for c in results}
    for width in (64, 128):
        lean = by_name.get(f"w{width}-d256-r1")
        fat = by_name.get(f"w{width}-d256-r8")
        if lean and fat:
            assert fat.mean_mac_per_s >= 0.95 * lean.mean_mac_per_s


def test_best_requires_candidates():
    with pytest.raises(ValueError):
        best([])


def test_budget_validation():
    with pytest.raises(ValueError):
        search(area_budget_mm2=0, workloads=[mobilenet()])
