"""ReLU / max-pool unit tests."""

import pytest

from repro.device import cells
from repro.uarch.activation import MaxPoolUnit, ReLUUnit


def test_relu_gate_counts_scale_with_lanes():
    small = ReLUUnit(lanes=8, bits=24).gate_counts()
    large = ReLUUnit(lanes=64, bits=24).gate_counts()
    assert large[cells.AND] == 8 * small[cells.AND]
    assert small[cells.NOT] == 8
    assert small[cells.AND] == 8 * 24


def test_maxpool_has_readable_register():
    counts = MaxPoolUnit(lanes=4, bits=8).gate_counts()
    assert counts[cells.NDRO] == 32  # running max must be re-readable
    assert counts[cells.MUX] == 32


def test_activation_units_do_not_bound_clock(rsfq):
    """They sit on the output path and must not drag the 52.6 GHz clock."""
    relu = ReLUUnit(lanes=64, bits=24)
    pool = MaxPoolUnit(lanes=64, bits=8)
    assert relu.frequency(rsfq).frequency_ghz > 52.6
    assert pool.frequency(rsfq).frequency_ghz > 52.6


def test_activation_units_are_negligible_overhead(rsfq, supernpu_config):
    """<0.1% of chip power and area — which is why Fig. 3 omits them."""
    from repro.estimator.arch_level import estimate_npu

    estimate = estimate_npu(supernpu_config, rsfq)
    overhead_power = (
        estimate.units["relu"].static_power_w + estimate.units["maxpool"].static_power_w
    )
    overhead_area = estimate.units["relu"].area_mm2 + estimate.units["maxpool"].area_mm2
    assert overhead_power < 1e-3 * estimate.static_power_w
    assert overhead_area < 1e-3 * estimate.area_mm2


def test_validation():
    with pytest.raises(ValueError):
        ReLUUnit(lanes=0)
    with pytest.raises(ValueError):
        MaxPoolUnit(lanes=4, bits=0)
