"""Gate-pair frequency-model tests (paper Eq. 1)."""

import math

import pytest

from repro.device import cells
from repro.timing.clocking import ClockingScheme
from repro.timing.frequency import (
    FrequencyReport,
    GatePair,
    combine_frequencies,
    unit_frequency,
)


def test_concurrent_pair_resolution(rsfq):
    pair = GatePair(cells.DFF, cells.DFF)
    constraint = pair.resolve(rsfq)
    # setup 3.5 + max(hold 4.0, default residual 1.0) = 7.5 ps.
    assert math.isclose(constraint.cycle_time_ps, 7.5)


def test_counter_flow_pair_resolution(rsfq):
    pair = GatePair(cells.DFF, cells.DFF, scheme=ClockingScheme.COUNTER_FLOW)
    constraint = pair.resolve(rsfq)
    # setup + hold + (delay + wire) + clock hop = 3.5+4.0+(3.3+1.6)+1.6.
    assert math.isclose(constraint.cycle_time_ps, 14.0)


def test_feedback_extra_delay_lengthens_period(rsfq):
    short = GatePair(cells.AND, cells.AND, scheme=ClockingScheme.COUNTER_FLOW)
    long = GatePair(
        cells.AND, cells.AND, scheme=ClockingScheme.COUNTER_FLOW,
        feedback_extra_delay_ps=5.0,
    )
    assert long.resolve(rsfq).cycle_time_ps == short.resolve(rsfq).cycle_time_ps + 5.0


def test_unclocked_destination_rejected(rsfq):
    pair = GatePair(cells.DFF, cells.SPLITTER)
    with pytest.raises(ValueError, match="unclocked"):
        pair.resolve(rsfq)


def test_unit_frequency_takes_worst_pair(rsfq):
    pairs = [
        GatePair(cells.DFF, cells.DFF),  # 7.5 ps
        GatePair(cells.XOR, cells.AND, skew_residual_ps=20.0),  # 26 ps
    ]
    report = unit_frequency(pairs, rsfq)
    assert math.isclose(report.cycle_time_ps, 26.0)
    assert report.critical_pair is pairs[1]
    assert len(report.constraints) == 2


def test_unit_frequency_empty_raises(rsfq):
    with pytest.raises(ValueError, match="no gate pairs"):
        unit_frequency([], rsfq)


def test_combine_frequencies_picks_slowest():
    fast = FrequencyReport(cycle_time_ps=10.0, frequency_ghz=100.0, critical_pair=None)
    slow = FrequencyReport(cycle_time_ps=25.0, frequency_ghz=40.0, critical_pair=None)
    assert combine_frequencies([fast, slow]) is slow


def test_combine_frequencies_empty_raises():
    with pytest.raises(ValueError):
        combine_frequencies([])


def test_frequency_monotone_in_skew_residual(rsfq):
    previous = None
    for residual in (1.0, 5.0, 10.0, 50.0):
        freq = GatePair(cells.DFF, cells.DFF, skew_residual_ps=residual).resolve(rsfq)
        if previous is not None:
            assert freq.cycle_time_ps >= previous
        previous = freq.cycle_time_ps
