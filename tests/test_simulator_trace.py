"""Execution-trace tests."""

import pytest

from repro.core.designs import baseline, supernpu
from repro.simulator.trace import (
    PHASES,
    TraceEvent,
    trace_layer,
    trace_summary,
    trace_to_csv,
    verify_against_engine,
)
from repro.workloads.models import resnet50, vgg16


@pytest.fixture(scope="module")
def multi_mapping_layer():
    # conv3_1 of VGG16: reduction 1152 -> several row tiles on 256 rows.
    return vgg16().layers[4]


def test_events_are_contiguous_and_ordered(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    assert events[0].start_cycle == 0
    for previous, current in zip(events, events[1:]):
        assert current.start_cycle == previous.end_cycle
        assert current.mapping_index >= previous.mapping_index


def test_phases_follow_mapping_structure(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    # Baseline: first mapping has no rewind; accumulating tiles move psums.
    first = [e.phase for e in events if e.mapping_index == 0]
    assert first[0] == "weight_load"
    assert "ifmap_rewind" not in first
    second = [e.phase for e in events if e.mapping_index == 1]
    assert "ifmap_rewind" in second
    assert any(e.phase == "psum_move" for e in events)


def test_integrated_design_has_no_psum_moves(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, supernpu(), batch=1)
    assert all(e.phase != "psum_move" for e in events)


def test_trace_matches_engine_baseline(multi_mapping_layer):
    assert verify_against_engine(multi_mapping_layer, baseline(), batch=1)


def test_trace_matches_engine_supernpu(multi_mapping_layer):
    assert verify_against_engine(multi_mapping_layer, supernpu(), batch=4)


def test_trace_matches_engine_on_depthwise():
    from repro.workloads.models import mobilenet

    dw_layer = next(l for l in mobilenet().layers if l.is_depthwise)
    assert verify_against_engine(dw_layer, supernpu(), batch=2)


def test_summary_totals(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    summary = trace_summary(events)
    assert set(summary) == set(PHASES) | {"total"}
    assert summary["total"] == events[-1].end_cycle
    assert sum(summary[p] for p in PHASES) == summary["total"]


def test_csv_rendering(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, supernpu(), batch=1)
    text = trace_to_csv(events)
    lines = text.strip().splitlines()
    assert lines[0] == "mapping,phase,start_cycle,end_cycle,duration"
    assert len(lines) == len(events) + 1


def test_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(0, "siesta", 0, 1)
    with pytest.raises(ValueError):
        TraceEvent(0, "compute", 5, 4)
    with pytest.raises(ValueError):
        trace_layer(vgg16().layers[0], baseline(), batch=0)
