"""Execution-trace tests."""

import pytest

from repro.core.designs import baseline, supernpu
from repro.simulator.trace import (
    PHASES,
    TraceEvent,
    trace_layer,
    trace_summary,
    trace_to_csv,
    verify_against_engine,
)
from repro.workloads.models import vgg16


@pytest.fixture(scope="module")
def multi_mapping_layer():
    # conv3_1 of VGG16: reduction 1152 -> several row tiles on 256 rows.
    return vgg16().layers[4]


def test_events_are_contiguous_and_ordered(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    assert events[0].start_cycle == 0
    for previous, current in zip(events, events[1:]):
        assert current.start_cycle == previous.end_cycle
        assert current.mapping_index >= previous.mapping_index


def test_phases_follow_mapping_structure(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    # Baseline: first mapping has no rewind; accumulating tiles move psums.
    first = [e.phase for e in events if e.mapping_index == 0]
    assert first[0] == "weight_load"
    assert "ifmap_rewind" not in first
    second = [e.phase for e in events if e.mapping_index == 1]
    assert "ifmap_rewind" in second
    assert any(e.phase == "psum_move" for e in events)


def test_integrated_design_has_no_psum_moves(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, supernpu(), batch=1)
    assert all(e.phase != "psum_move" for e in events)


def test_trace_matches_engine_baseline(multi_mapping_layer):
    assert verify_against_engine(multi_mapping_layer, baseline(), batch=1)


def test_trace_matches_engine_supernpu(multi_mapping_layer):
    assert verify_against_engine(multi_mapping_layer, supernpu(), batch=4)


def test_trace_matches_engine_on_depthwise():
    from repro.workloads.models import mobilenet

    dw_layer = next(l for l in mobilenet().layers if l.is_depthwise)
    assert verify_against_engine(dw_layer, supernpu(), batch=2)


def test_summary_totals(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    summary = trace_summary(events)
    assert set(summary) == set(PHASES) | {"total"}
    assert summary["total"] == events[-1].end_cycle
    assert sum(summary[p] for p in PHASES) == summary["total"]


def test_csv_rendering(multi_mapping_layer):
    events = trace_layer(multi_mapping_layer, supernpu(), batch=1)
    text = trace_to_csv(events)
    lines = text.strip().splitlines()
    assert lines[0] == "mapping,phase,start_cycle,end_cycle,duration"
    assert len(lines) == len(events) + 1


def test_csv_round_trip(multi_mapping_layer):
    """The CSV text parses back into the exact event list."""
    events = trace_layer(multi_mapping_layer, baseline(), batch=1)
    lines = trace_to_csv(events).strip().splitlines()
    parsed = []
    for line in lines[1:]:
        mapping, phase, start, end, duration = line.split(",")
        parsed.append(TraceEvent(int(mapping), phase, int(start), int(end)))
        assert int(duration) == parsed[-1].duration
    assert parsed == list(events)


@pytest.mark.parametrize("config_factory", [baseline, supernpu],
                         ids=["non-integrated", "integrated"])
def test_summary_totals_match_engine(config_factory, multi_mapping_layer):
    """Per-phase totals equal the engine's charges on both buffer styles."""
    from repro.simulator.datapath import build_datapath
    from repro.simulator.engine import simulate_layer
    from repro.simulator.memory import MemoryModel
    from repro.simulator.results import ActivityTrace
    from repro.device.cells import rsfq_library
    from repro.estimator.arch_level import estimate_npu

    config = config_factory()
    estimate = estimate_npu(config, rsfq_library())
    memory = MemoryModel(config.memory_bandwidth_gbps, estimate.frequency_ghz)
    datapath = build_datapath(config)
    result, _ = simulate_layer(
        multi_mapping_layer, config, 1, memory, datapath.ifmap_buffer,
        datapath.output_buffer, datapath.psum_buffer, datapath.pe,
        ActivityTrace(), input_resident=True, is_last_layer=True,
    )
    summary = trace_summary(trace_layer(multi_mapping_layer, config, batch=1))
    assert summary["weight_load"] == result.weight_load_cycles
    assert summary["ifmap_rewind"] == result.ifmap_prep_cycles
    assert summary["compute"] == result.compute_cycles
    assert summary["psum_move"] == result.psum_move_cycles
    assert verify_against_engine(multi_mapping_layer, config, batch=1)


def test_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(0, "siesta", 0, 1)
    with pytest.raises(ValueError):
        TraceEvent(0, "compute", 5, 4)
    with pytest.raises(ValueError):
        trace_layer(vgg16().layers[0], baseline(), batch=0)
