"""Functional shift-register buffer tests — the cost model, executed."""

import pytest

from repro.functional.shift_buffer import (
    FunctionalChunkedBuffer,
    FunctionalShiftRegister,
)
from repro.uarch.buffers import ShiftRegisterBuffer


def test_write_then_rewind_then_read_round_trip():
    register = FunctionalShiftRegister(8)
    register.write_stream([10, 20, 30])
    register.rewind()
    assert register.read_stream(3) == [10, 20, 30]


def test_every_access_costs_one_cycle_per_entry():
    register = FunctionalShiftRegister(16)
    register.write_stream(list(range(10)))
    assert register.cycles == 10
    register.rewind()
    register.read_stream(10)
    assert register.cycles == 10 + 6 + 10  # write + rewind remainder + read


def test_rewind_cost_is_ring_remainder():
    register = FunctionalShiftRegister(12)
    register.write_stream(list(range(5)))
    assert register.rewind() == 7  # 12 - 5
    assert register.rewind() == 0  # already at the head


def test_serial_access_no_random_reads():
    """Reading entry k always costs k+1 shifts from the head — the
    Section II-B3 limitation."""
    register = FunctionalShiftRegister(8)
    register.write_stream(list(range(8)))
    register.rewind()
    before = register.cycles
    values = register.read_stream(5)
    assert values[-1] == 4
    assert register.cycles - before == 5


def test_read_past_data_raises():
    register = FunctionalShiftRegister(4)
    register.write_stream([1])
    register.rewind()
    register.read_stream(1)
    with pytest.raises(LookupError):
        register.read_stream(1)


def test_overfill_rejected():
    with pytest.raises(ValueError):
        FunctionalShiftRegister(2).write_stream([1, 2, 3])
    with pytest.raises(ValueError):
        FunctionalShiftRegister(0)


def test_chunked_buffer_select_is_free():
    buffer = FunctionalChunkedBuffer(64, division=4)
    buffer.select(0)
    buffer.write_stream([1, 2])
    buffer.select(3)
    buffer.write_stream([9])
    # Selection changed chunks without a single shift beyond the writes.
    assert buffer.total_cycles == 3
    buffer.select(0)
    buffer.rewind()
    assert buffer.read_stream(2) == [1, 2]


def test_division_shortens_rewind_like_the_model():
    flat = FunctionalChunkedBuffer(256, division=1)
    divided = FunctionalChunkedBuffer(256, division=16)
    assert flat.worst_case_rewind() == 256
    assert divided.worst_case_rewind() == 16
    # And the analytic unit agrees (io_width 1 row for the comparison).
    model = ShiftRegisterBuffer(256, io_width=1, entry_bits=8, division=16)
    assert divided.worst_case_rewind() == model.chunk_length_entries


def test_functional_rewind_never_exceeds_model_bound():
    model = ShiftRegisterBuffer(1024, io_width=1, entry_bits=8, division=8)
    functional = FunctionalChunkedBuffer(1024, division=8)
    functional.write_stream(list(range(100)))
    assert functional.rewind() <= model.chunk_length_entries


def test_chunk_bounds():
    buffer = FunctionalChunkedBuffer(16, division=4)
    with pytest.raises(ValueError):
        buffer.select(4)
    with pytest.raises(ValueError):
        FunctionalChunkedBuffer(16, division=0)
    with pytest.raises(ValueError):
        FunctionalChunkedBuffer(4, division=8)
