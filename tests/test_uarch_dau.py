"""Data alignment unit structure tests."""

import pytest

from repro.device import cells
from repro.uarch.dau import DataAlignmentUnit


def test_paper_delay_example():
    """Fig. 9: with 3-stage PEs the second row is delayed 2 cycles."""
    dau = DataAlignmentUnit(rows=4, bits=8, pe_pipeline_stages=3)
    assert dau.delay_stages(0) == 0
    assert dau.delay_stages(1) == 2
    assert dau.delay_stages(2) == 4


def test_delay_stages_validation():
    dau = DataAlignmentUnit(rows=4)
    with pytest.raises(ValueError):
        dau.delay_stages(4)
    with pytest.raises(ValueError):
        dau.delay_stages(-1)


def test_total_delay_cells_quadratic_in_rows():
    small = DataAlignmentUnit(rows=8, bits=1, pe_pipeline_stages=15)
    large = DataAlignmentUnit(rows=16, bits=1, pe_pipeline_stages=15)
    # sum over r of r*(stages-1): 28*14 vs 120*14.
    assert small.total_delay_cells == 28 * 14
    assert large.total_delay_cells == 120 * 14


def test_bypassable_dffs_in_gate_counts():
    dau = DataAlignmentUnit(rows=4, bits=8, pe_pipeline_stages=3)
    counts = dau.gate_counts()
    assert counts[cells.DFF_BYPASS] == dau.total_delay_cells
    # Selection tree: rows^2 splitter leaves per bit.
    assert counts[cells.SPLITTER] == 4 * 4 * 8


def test_selector_and_controller_per_row():
    dau = DataAlignmentUnit(rows=4, bits=8)
    counts = dau.gate_counts()
    assert counts[cells.AND] >= 4 * 8  # selector AND per bit per row
    assert counts[cells.TFF] == 24 * 4  # controller counters


def test_invalid_parameters():
    with pytest.raises(ValueError):
        DataAlignmentUnit(rows=0)
    with pytest.raises(ValueError):
        DataAlignmentUnit(rows=4, pe_pipeline_stages=0)


def test_dau_does_not_bound_npu_clock(rsfq):
    dau = DataAlignmentUnit(rows=64, bits=8)
    assert dau.frequency(rsfq).frequency_ghz > 52.6
