"""Metrics registry tests: instruments, snapshots, and the no-op path."""

import json

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


def test_counter_accumulates(registry):
    counter = registry.counter("sim.cycles")
    counter.inc()
    counter.add(41)
    assert registry.counter("sim.cycles") is counter
    assert counter.value == 42


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_tracks_last_value(registry):
    gauge = registry.gauge("search.progress")
    gauge.set(0.25)
    gauge.inc(0.25)
    gauge.dec(0.1)
    assert gauge.value == pytest.approx(0.4)


def test_histogram_summary(registry):
    histogram = registry.histogram("lat")
    for value in (1.0, 3.0, 2.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 3
    assert summary["min"] == 1.0
    assert summary["max"] == 3.0
    assert summary["mean"] == pytest.approx(2.0)


def test_empty_histogram_summary():
    assert Histogram("h").summary() == {
        "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


def test_histogram_quantiles_log_buckets():
    """p50/p95/p99 come from bounded log-spaced buckets (~±7.5% error)."""
    histogram = Histogram("q")
    for value in range(1, 1001):  # 1..1000, uniform
        histogram.observe(float(value))
    assert histogram.quantile(0.50) == pytest.approx(500.0, rel=0.10)
    assert histogram.quantile(0.95) == pytest.approx(950.0, rel=0.10)
    assert histogram.quantile(0.99) == pytest.approx(990.0, rel=0.10)
    # Extremes are exact: clamped to the observed envelope.
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 1000.0
    summary = histogram.summary()
    assert summary["p50"] == histogram.quantile(0.50)
    assert summary["p95"] == histogram.quantile(0.95)
    assert summary["p99"] == histogram.quantile(0.99)


def test_histogram_quantile_memory_is_bounded():
    """Many observations grow no per-sample state."""
    from repro.obs.metrics import _LOG_BUCKETS

    histogram = Histogram("m")
    for i in range(100_000):
        histogram.observe(1e-7 * (1 + i % 971))
    assert len(histogram.buckets) == _LOG_BUCKETS + 2
    assert sum(histogram.buckets) == histogram.count == 100_000


def test_histogram_quantile_single_value():
    histogram = Histogram("s")
    histogram.observe(42.0)
    assert histogram.quantile(0.5) == pytest.approx(42.0, rel=0.10)
    assert histogram.summary()["p99"] <= 42.0


def test_histogram_quantile_rejects_out_of_range():
    histogram = Histogram("r")
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        histogram.quantile(-0.1)


def test_histogram_quantile_underflow_values():
    """Zero / negative observations clamp to the observed minimum."""
    histogram = Histogram("u")
    for value in (-1.0, 0.0, 2.0):
        histogram.observe(value)
    assert histogram.quantile(0.0) == -1.0
    assert histogram.quantile(1.0) == 2.0


def test_histogram_timer(registry):
    histogram = registry.histogram("t")
    with histogram.time():
        pass
    assert histogram.count == 1
    assert histogram.sum >= 0


def test_snapshot_shape_and_json(registry):
    registry.counter("a").inc(2)
    registry.gauge("b").set(7)
    registry.histogram("c").observe(1.5)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a": 2}
    assert snapshot["gauges"] == {"b": 7}
    assert snapshot["histograms"]["c"]["count"] == 1
    assert json.loads(registry.to_json()) == snapshot


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry()  # disabled by default
    registry.counter("x").inc(100)
    registry.gauge("y").set(5)
    registry.histogram("z").observe(1.0)
    with registry.histogram("z").time():
        pass
    assert registry.is_empty()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_disabled_accessors_return_shared_noop():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.histogram("b")


def test_reset_clears_but_keeps_enabled(registry):
    registry.counter("a").inc()
    registry.reset()
    assert registry.is_empty()
    assert registry.enabled
    registry.counter("a").inc()
    assert registry.snapshot()["counters"] == {"a": 1}


def test_global_runtime_disabled_by_default_in_simulate(baseline_config, tiny_network):
    """The acceptance check: with obs off, simulate() records nothing."""
    from repro import obs
    from repro.simulator.engine import simulate

    assert not obs.enabled()
    simulate(baseline_config, tiny_network, batch=1)
    assert obs.metrics().is_empty()
    assert obs.tracer().roots == []


def test_global_runtime_enabled_records_simulation(obs_enabled, supernpu_config,
                                                   tiny_network):
    from repro.simulator.engine import simulate

    run = simulate(supernpu_config, tiny_network, batch=2)
    snapshot = obs_enabled.metrics().snapshot()
    assert snapshot["counters"]["sim.runs"] == 1
    assert snapshot["counters"]["sim.layers_simulated"] == len(tiny_network.layers)
    assert snapshot["counters"]["sim.cycles"] == run.total_cycles
    assert snapshot["counters"]["sim.macs"] == run.total_macs
    assert snapshot["histograms"]["sim.simulate_seconds"]["count"] == 1


def test_search_counters_and_progress(obs_enabled, tiny_network):
    from repro.core.search import search

    search(widths=(256,), divisions=(1,), registers=(1, 2),
           workloads=[tiny_network])
    snapshot = obs_enabled.metrics().snapshot()
    assert snapshot["counters"]["search.candidates_evaluated"] == 2
    assert snapshot["gauges"]["search.progress"] == 1.0


def test_jsim_solver_counters(obs_enabled):
    from repro.jsim.elements import JosephsonJunction
    from repro.jsim.netlist import Circuit
    from repro.jsim.solver import TransientSolver

    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0))
    solver = TransientSolver(circuit, step_ps=0.5)
    solver.run(duration_ps=5.0)
    snapshot = obs_enabled.metrics().snapshot()
    assert snapshot["counters"]["jsim.runs"] == 1
    assert snapshot["counters"]["jsim.steps"] == 11
    assert snapshot["histograms"]["jsim.run_seconds"]["count"] == 1
    assert snapshot["histograms"]["jsim.sim_ps_per_wall_s"]["count"] == 1
