"""Roofline and power-efficiency metric tests."""

import math

import pytest

from repro.cooling.cryocooler import PAPER_COOLER
from repro.core.metrics import EfficiencyRow, efficiency_row, roofline_point
from repro.workloads.models import alexnet, vgg16


def test_roofline_point_bandwidth_bound():
    point = roofline_point(alexnet(), batch=1, peak_mac_per_s=3447e12, bandwidth_gbps=300)
    assert point.attainable_mac_per_s == pytest.approx(
        point.intensity_mac_per_byte * 300e9
    )
    assert point.max_pe_utilization < 0.02


def test_roofline_point_peak_bound():
    point = roofline_point(vgg16(), batch=1000, peak_mac_per_s=1e12, bandwidth_gbps=300)
    assert point.attainable_mac_per_s == 1e12
    assert point.max_pe_utilization == 1.0


def test_roofline_includes_measured_when_given(rsfq, supernpu_config):
    from repro.estimator.arch_level import estimate_npu
    from repro.simulator.engine import simulate

    estimate = estimate_npu(supernpu_config, rsfq)
    run = simulate(supernpu_config, vgg16(), batch=7, estimate=estimate)
    point = roofline_point(vgg16(), 7, estimate.peak_mac_per_s, 300, measured=run)
    assert point.measured_mac_per_s == pytest.approx(run.mac_per_s)
    assert point.measured_mac_per_s <= point.peak_mac_per_s


def test_efficiency_row_room_temperature():
    row = efficiency_row("TPU", 40.0, 16e12, cooler=None)
    assert row.wall_power_w == 40.0
    assert math.isclose(row.mac_per_joule, 16e12 / 40)


def test_efficiency_row_with_cooling():
    row = efficiency_row("RSFQ", 964.0, 80e12, cooler=PAPER_COOLER)
    assert math.isclose(row.wall_power_w, 964 * 401)


def test_efficiency_row_free_cooling():
    row = efficiency_row("ERSFQ", 1.9, 370e12, cooler=PAPER_COOLER, free_cooling=True)
    assert row.wall_power_w == 1.9


def test_normalization_matches_table3_shape():
    """ERSFQ free-cooling beats TPU by hundreds of times."""
    tpu = efficiency_row("TPU", 40.0, 16e12, cooler=None)
    ersfq = efficiency_row("ERSFQ", 1.9, 370e12, cooler=PAPER_COOLER, free_cooling=True)
    assert ersfq.normalized_to(tpu) > 100


def test_zero_wall_power_rejected():
    row = EfficiencyRow("x", 0.0, 0.0, 1e12)
    with pytest.raises(ValueError):
        row.mac_per_joule
