"""Off-chip memory model tests."""

import math

import pytest

from repro.simulator.memory import MemoryModel


def test_bytes_per_cycle_at_paper_operating_point():
    """300 GB/s at 52.6 GHz is only ~5.7 B/cycle — the starvation figure."""
    memory = MemoryModel(bandwidth_gbps=300.0, frequency_ghz=52.6)
    assert math.isclose(memory.bytes_per_cycle, 300 / 52.6, rel_tol=1e-9)
    assert 5.5 < memory.bytes_per_cycle < 6.0


def test_tpu_gets_far_more_bytes_per_cycle():
    tpu = MemoryModel(bandwidth_gbps=300.0, frequency_ghz=0.7)
    sfq = MemoryModel(bandwidth_gbps=300.0, frequency_ghz=52.6)
    assert tpu.bytes_per_cycle > 70 * sfq.bytes_per_cycle


def test_transfer_cycles_rounds_up():
    memory = MemoryModel(bandwidth_gbps=300.0, frequency_ghz=52.6)
    assert memory.transfer_cycles(0) == 0
    assert memory.transfer_cycles(1) == 1
    assert memory.transfer_cycles(570) == math.ceil(570 / (300 / 52.6))


def test_transfer_scales_linearly():
    memory = MemoryModel(bandwidth_gbps=100.0, frequency_ghz=1.0)
    assert memory.transfer_cycles(2_000_000) == 2 * memory.transfer_cycles(1_000_000)


@pytest.mark.parametrize("kwargs", [
    {"bandwidth_gbps": 0, "frequency_ghz": 1.0},
    {"bandwidth_gbps": 100.0, "frequency_ghz": 0},
])
def test_invalid_memory_model(kwargs):
    with pytest.raises(ValueError):
        MemoryModel(**kwargs)


def test_negative_transfer_rejected():
    with pytest.raises(ValueError):
        MemoryModel(300.0, 1.0).transfer_cycles(-1)
