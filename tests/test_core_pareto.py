"""Pareto-frontier tests over search candidates."""


from repro.core.search import Candidate, pareto_frontier, search
from repro.core.designs import supernpu
from repro.workloads.models import mobilenet


def _candidate(name, perf, area):
    return Candidate(
        config=supernpu().with_updates(name=name),
        mean_mac_per_s=perf,
        area_mm2_28nm=area,
        peak_tmacs=1.0,
    )


def test_dominated_points_removed():
    good = _candidate("good", perf=100.0, area=10.0)
    dominated = _candidate("bad", perf=50.0, area=20.0)
    frontier = pareto_frontier([good, dominated])
    assert frontier == [good]


def test_tradeoff_points_kept():
    small = _candidate("small", perf=50.0, area=5.0)
    big = _candidate("big", perf=100.0, area=20.0)
    frontier = pareto_frontier([small, big])
    assert frontier == [small, big]  # sorted by area


def test_frontier_sorted_by_area():
    points = [
        _candidate("a", 100.0, 30.0),
        _candidate("b", 60.0, 10.0),
        _candidate("c", 80.0, 20.0),
    ]
    frontier = pareto_frontier(points)
    areas = [c.area_mm2_28nm for c in frontier]
    assert areas == sorted(areas)
    perfs = [c.mean_mac_per_s for c in frontier]
    assert perfs == sorted(perfs)  # along a frontier, perf rises with area


def test_empty_frontier():
    assert pareto_frontier([]) == []


def test_real_search_frontier_contains_best():
    results = search(
        widths=(128, 64), divisions=(64, 256), registers=(1, 8),
        workloads=[mobilenet()],
    )
    frontier = pareto_frontier(results)
    assert frontier
    assert results[0] in frontier  # the throughput winner is never dominated
    assert len(frontier) <= len(results)
