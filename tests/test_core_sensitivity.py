"""Bandwidth / cooling sensitivity tests."""

import pytest

from repro.core.sensitivity import bandwidth_sweep, cooling_sweep
from repro.workloads.models import mobilenet, resnet50


@pytest.fixture(scope="module")
def small_workloads():
    return [resnet50(), mobilenet()]


def test_bandwidth_sweep_speedup_holds(small_workloads):
    points = bandwidth_sweep((100, 300, 1200), workloads=small_workloads)
    assert [p.bandwidth_gbps for p in points] == [100, 300, 1200]
    # SuperNPU keeps a large lead at every bandwidth (paper operates at 300).
    for point in points:
        assert point.speedup > 5


def test_sfq_gains_more_from_bandwidth(small_workloads):
    """The SFQ design is the bandwidth-starved one: extra bandwidth helps it
    at least as much as the (already well-fed) TPU."""
    low, high = bandwidth_sweep((100, 1200), workloads=small_workloads)
    sfq_gain = high.sfq_tmacs / low.sfq_tmacs
    tpu_gain = high.tpu_tmacs / low.tpu_tmacs
    assert sfq_gain >= tpu_gain * 0.95
    assert high.sfq_tmacs >= low.sfq_tmacs


def test_cooling_sweep_shape():
    points = cooling_sweep(factors=(200, 400, 1000), include_carnot=True,
                           network=resnet50())
    # First point is the Carnot bound (~70 W/W), then the requested ladder.
    assert points[0].factor == pytest.approx(70.4, rel=0.01)
    ersfq = [p.ersfq_perf_per_watt for p in points]
    rsfq = [p.rsfq_perf_per_watt for p in points]
    # Efficiency falls monotonically as cooling worsens.
    assert ersfq == sorted(ersfq, reverse=True)
    assert rsfq == sorted(rsfq, reverse=True)
    # ERSFQ dominates RSFQ at every cooling point.
    assert all(e > r for e, r in zip(ersfq, rsfq))


def test_cooling_carnot_bound_makes_ersfq_dominant():
    points = cooling_sweep(factors=(), include_carnot=True, network=resnet50())
    assert points[0].ersfq_perf_per_watt > 2.0
