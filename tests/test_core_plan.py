"""The declarative experiment IR: lowering, execution, and equivalence.

The three load-bearing guarantees:

* lowering is deterministic — the same plan content always produces the
  same plan hash and the same ordered task keys;
* drivers that lower onto plans are bitwise-identical to the hand-rolled
  loops they replaced (direct ``simulate`` calls);
* a killed run resumes: re-executing a plan over a warm cache runs only
  the points the first run did not complete.
"""

from __future__ import annotations

import pytest

from repro.core.ablate import ablated_configs, ablation_plan, ablation_study
from repro.core.batching import derived_batch
from repro.core.designs import baseline, supernpu
from repro.core.jobs import JobRunner, ResultCache, session, use_runner
from repro.core.plan import (
    AxisSpec,
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    lower,
    named_plans,
    param_axis,
    plan_by_name,
    recent_plans,
    workload_axis,
)
from repro.errors import ConfigError
from repro.estimator.arch_level import estimate_npu
from repro.simulator.batch_sweep import batch_plan, batch_sweep
from repro.simulator.engine import simulate


def _tiny_plan(tiny_network, rsfq, batches=(1, 2)):
    grid = Grid("curve", (
        config_axis((supernpu(),)),
        workload_axis((tiny_network,)),
        batch_axis(tuple(batches)),
        library_axis((rsfq,)),
    ))
    return ExperimentPlan("tiny", (grid,), description="test grid")


# -- axis / grid / plan validation ----------------------------------------

def test_axis_rejects_unknown_kind():
    with pytest.raises(ConfigError):
        AxisSpec("x", "flavor", (1,))


def test_axis_rejects_empty_values():
    with pytest.raises(ConfigError):
        param_axis("x", ())


def test_axis_rejects_duplicate_labels(supernpu_config):
    swept = (supernpu_config.with_updates(memory_bandwidth_gbps=100.0),
             supernpu_config.with_updates(memory_bandwidth_gbps=200.0))
    with pytest.raises(ConfigError):  # both values keep the name "SuperNPU"
        config_axis(swept)
    axis = config_axis(swept, name="bandwidth", labels=("100", "200"))
    assert axis.labels == ("100", "200")


def test_batch_axis_rejects_bad_values():
    for bad in (0, -1, True, "weird"):
        with pytest.raises(ConfigError):
            batch_axis((bad,))
    batch_axis((1, 30, "derived", "paper", "auto"))  # all valid


def test_grid_requires_one_config_axis(tiny_network):
    with pytest.raises(ConfigError):
        Grid("g", (workload_axis((tiny_network,)),))


def test_simulate_grid_requires_workload_axis(supernpu_config):
    with pytest.raises(ConfigError):
        Grid("g", (config_axis((supernpu_config,)),))
    Grid("g", (config_axis((supernpu_config,)),), kind="estimate")  # fine


def test_plan_rejects_duplicate_grid_names(supernpu_config, tiny_network):
    grid = Grid("g", (config_axis((supernpu_config,)),
                      workload_axis((tiny_network,))))
    with pytest.raises(ConfigError):
        ExperimentPlan("p", (grid, grid))


# -- deterministic lowering ------------------------------------------------

def test_same_plan_lowers_identically(tiny_network, rsfq):
    first = lower(_tiny_plan(tiny_network, rsfq))
    second = lower(_tiny_plan(tiny_network, rsfq))
    assert first.plan_hash == second.plan_hash
    assert first.task_keys() == second.task_keys()
    assert [p.coords for p in first.points] == [p.coords for p in second.points]


def test_plan_hash_tracks_content(tiny_network, rsfq):
    base = _tiny_plan(tiny_network, rsfq).plan_hash()
    assert _tiny_plan(tiny_network, rsfq, batches=(1, 4)).plan_hash() != base
    assert len(base) == 64  # sha256 hex


def test_lowering_order_is_last_axis_fastest(tiny_network, rsfq):
    lowered = lower(_tiny_plan(tiny_network, rsfq, batches=(1, 2, 4)))
    assert [p.batch for p in lowered.points] == [1, 2, 4]
    assert [p.coord("batch") for p in lowered.points] == ["1", "2", "4"]


def test_duplicate_tasks_dedupe_in_first_seen_order(tiny_network, rsfq):
    grid_a = Grid("a", (config_axis((supernpu(),)),
                        workload_axis((tiny_network,)), batch_axis((1, 2))))
    grid_b = Grid("b", (config_axis((supernpu(),)),
                        workload_axis((tiny_network,)), batch_axis((2, 4))))
    lowered = lower(ExperimentPlan("dup", (grid_a, grid_b)))
    unique = lowered.sim_tasks()
    assert len(lowered.points) == 4
    assert len(unique) == 3  # batch 2 appears in both grids, submitted once
    assert list(unique) == [lowered.points[0].key, lowered.points[1].key,
                            lowered.points[3].key]


def test_batch_policies_resolve(tiny_network):
    config = supernpu()
    grid = Grid("g", (config_axis((config,)), workload_axis((tiny_network,)),
                      batch_axis(("derived",))))
    lowered = lower(ExperimentPlan("p", (grid,)))
    assert lowered.points[0].batch == derived_batch(config, tiny_network)


# -- execution through the job engine -------------------------------------

def test_execute_returns_results_in_point_order(tiny_network, rsfq):
    resultset = execute(_tiny_plan(tiny_network, rsfq))
    assert resultset.points_total == 2
    assert [r.run.batch for r in resultset] == [1, 2]
    assert all(r.plan == "tiny" for r in resultset)
    assert all(len(r.plan_hash) == 64 for r in resultset)


def test_select_and_one(tiny_network, rsfq):
    resultset = execute(_tiny_plan(tiny_network, rsfq))
    assert len(resultset.select(grid="curve")) == 2
    assert resultset.one(grid="curve", batch="2").run.batch == 2
    with pytest.raises(ConfigError):
        resultset.one(grid="curve")  # two matches


def test_execute_emits_counters_and_recent_plans(tiny_network, rsfq, obs_enabled):
    resultset = execute(_tiny_plan(tiny_network, rsfq))
    snapshot = obs_enabled.metrics().snapshot()
    assert snapshot["counters"]["plan.points_total"] == 2
    assert snapshot["counters"]["plan.points_executed"] == 2
    # The bounded recent-plan log (for manifests) ends with this execution.
    assert recent_plans()[-1] == ("tiny", resultset.plan_hash)


def test_estimate_grid_executes_via_runner(rsfq):
    grid = Grid("nodes", (config_axis((supernpu(),)), library_axis((rsfq,)),
                          param_axis("feature_um", (1.0, 0.5))),
                kind="estimate")
    resultset = execute(ExperimentPlan("est", (grid,)))
    direct = estimate_npu(supernpu(), rsfq)
    assert [r.param("feature_um") for r in resultset] == [1.0, 0.5]
    for result in resultset:
        assert result.estimate.frequency_ghz == direct.frequency_ghz


# -- bitwise-identical driver goldens --------------------------------------

def test_batch_sweep_matches_hand_rolled_loop(tiny_network, rsfq):
    config = supernpu()
    estimate = estimate_npu(config, rsfq)
    points = batch_sweep(config, tiny_network, batches=(1, 2, 4), library=rsfq)
    for point, batch in zip(points, (1, 2, 4)):
        golden = simulate(config, tiny_network, batch=batch, estimate=estimate)
        assert point.mac_per_s == golden.mac_per_s
        assert point.latency_s == golden.latency_s


def test_ablation_matches_hand_rolled_loop(tiny_network, rsfq):
    rows = ablation_study(workloads=[tiny_network], library=rsfq)
    by_feature = {row.feature: row for row in rows}

    def golden_mac_per_s(config):
        return simulate(config, tiny_network,
                        batch=derived_batch(config, tiny_network),
                        estimate=estimate_npu(config, rsfq)).mac_per_s

    configs = ablated_configs()
    full = golden_mac_per_s(configs["SuperNPU"])
    for feature, config in configs.items():
        if feature == "SuperNPU":
            continue  # the full design is the reference, not a row
        golden = golden_mac_per_s(config)
        assert by_feature[feature].mean_mac_per_s == golden
        assert by_feature[feature].relative_to_full == golden / full


def test_fig15_matches_hand_rolled_loop(tiny_network, rsfq):
    from repro.core.experiments import fig15_plan

    resultset = execute(fig15_plan(rsfq, [tiny_network]))
    config = baseline()
    golden = simulate(config, tiny_network, batch=1,
                      estimate=estimate_npu(config, rsfq))
    assert resultset.one().run.cycle_breakdown() == golden.cycle_breakdown()


# -- resume: a warm cache executes only the remaining points ---------------

def test_resume_executes_only_remaining_points(tiny_network, rsfq, tmp_path):
    config = supernpu()
    cache_dir = tmp_path / "cache"

    # First run dies after covering batches 1 and 2 (simulated by running
    # the sub-plan to completion against the shared cache).
    with session(cache_dir=cache_dir):
        execute(batch_plan(config, tiny_network, batches=(1, 2), library=rsfq))

    # The retry covers the full plan; only batch 4 is new work.
    with session(cache_dir=cache_dir) as runner:
        resultset = execute(
            batch_plan(config, tiny_network, batches=(1, 2, 4), library=rsfq),
            runner=runner,
        )
    assert resultset.points_total == 3
    assert resultset.points_cached == 2
    assert resultset.points_executed == 1
    assert runner.stats.hits == 2
    assert runner.stats.executed == 1


def test_warm_cache_reexecutes_nothing(tiny_network, rsfq, tmp_path):
    plan = batch_plan(supernpu(), tiny_network, batches=(1, 2), library=rsfq)
    with session(cache_dir=tmp_path / "cache"):
        cold = execute(plan)
    with session(cache_dir=tmp_path / "cache") as runner:
        warm = execute(plan, runner=runner)
    assert warm.points_cached == warm.points_total
    assert warm.points_executed == 0
    assert runner.stats.executed == 0
    # Warm results are bitwise-identical to the cold run.
    for a, b in zip(cold, warm):
        assert a.run.mac_per_s == b.run.mac_per_s
        assert a.run.total_cycles == b.run.total_cycles


# -- the named registry ----------------------------------------------------

def test_every_named_plan_builds_and_hashes():
    for name in named_plans():
        plan = plan_by_name(name)
        assert plan.num_points > 0
        assert len(plan.plan_hash()) == 64
        assert plan.describe()  # renders without error


def test_unknown_plan_is_a_config_error():
    with pytest.raises(ConfigError) as excinfo:
        plan_by_name("fig99")
    assert excinfo.value.code == "config.unknown_plan"


def test_ablation_plan_covers_all_features(tiny_network, rsfq):
    plan = ablation_plan(workloads=[tiny_network], library=rsfq)
    assert plan.grids[0].num_points == len(ablated_configs())
