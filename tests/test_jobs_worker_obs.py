"""Cross-process worker observability: sidecar capture + parent merge.

The guarantee under test: running a sweep with ``--jobs N`` loses no
telemetry relative to a serial run.  Worker processes write their
counters / spans / hotspot samples into per-task sidecars; the parent
merges them under the ``jobs.worker.`` prefix and into one Chrome trace
with one lane per worker PID.
"""

from __future__ import annotations

import json

from repro.core.jobs import JobRunner, SimTask


def _tasks(config, network, library, batches=(1, 2, 3)):
    return [SimTask(config, network, b, library) for b in batches]


def _sim_counters(snapshot, prefix="sim."):
    return {name: value for name, value in snapshot["counters"].items()
            if name.startswith(prefix)}


def _worker_counters(snapshot):
    prefix = "jobs.worker."
    return {name[len(prefix):]: value
            for name, value in snapshot["counters"].items()
            if name.startswith(prefix + "sim.")}


def test_parallel_worker_counters_match_serial_totals(
        obs_enabled, supernpu_config, tiny_network, rsfq):
    serial_results = JobRunner().run(_tasks(supernpu_config, tiny_network, rsfq))
    serial = _sim_counters(obs_enabled.metrics().snapshot())
    assert serial  # the simulator does count things

    obs_enabled.reset()
    obs_enabled.enable()
    parallel_results = JobRunner(jobs=2).run(
        _tasks(supernpu_config, tiny_network, rsfq))
    snapshot = obs_enabled.metrics().snapshot()

    assert [r.total_cycles for r in parallel_results] == \
        [r.total_cycles for r in serial_results]
    assert _worker_counters(snapshot) == serial
    assert snapshot["counters"]["jobs.worker.sidecars"] == 3


def test_merged_trace_has_one_lane_per_worker_pid(
        tmp_path, obs_enabled, supernpu_config, tiny_network, rsfq):
    JobRunner(jobs=2).run(_tasks(supernpu_config, tiny_network, rsfq))
    foreign = obs_enabled.tracer().foreign_pids()
    assert foreign  # at least one worker contributed spans

    out = tmp_path / "trace.json"
    obs_enabled.write_trace(out)
    document = json.loads(out.read_text(encoding="utf-8"))
    events = document["traceEvents"]
    pids = {event["pid"] for event in events}
    assert set(foreign) <= pids
    lanes = {event["args"]["name"] for event in events
             if event.get("ph") == "M" and event.get("name") == "process_name"}
    assert any(name.startswith("worker-") for name in lanes)
    # Worker spans carry real durations in the parent's clock domain.
    worker_spans = [event for event in events
                    if event.get("ph") == "X" and event["pid"] != 1]
    assert worker_spans
    assert all(event["dur"] >= 0 and event["ts"] >= 0 for event in worker_spans)


def test_zero_task_sweep_produces_valid_empty_trace(
        tmp_path, obs_enabled):
    assert JobRunner(jobs=4).run([]) == []
    assert obs_enabled.tracer().foreign_pids() == []
    out = tmp_path / "trace.json"
    obs_enabled.write_trace(out)
    document = json.loads(out.read_text(encoding="utf-8"))
    assert isinstance(document["traceEvents"], list)


def test_single_task_sweep_takes_serial_path(
        tmp_path, obs_enabled, supernpu_config, tiny_network, rsfq):
    results = JobRunner(jobs=4).run(
        _tasks(supernpu_config, tiny_network, rsfq, batches=(2,)))
    assert len(results) == 1
    # One pending task short-circuits to in-process execution: counters
    # land directly (no worker prefix), and the trace stays parent-only.
    snapshot = obs_enabled.metrics().snapshot()
    assert _sim_counters(snapshot)
    assert not _worker_counters(snapshot)
    assert obs_enabled.tracer().foreign_pids() == []
    out = tmp_path / "trace.json"
    obs_enabled.write_trace(out)
    document = json.loads(out.read_text(encoding="utf-8"))
    assert all(event["pid"] == 1 for event in document["traceEvents"])


def test_worker_hotspot_samples_reach_parent_profiler(
        obs_enabled, supernpu_config, tiny_network, rsfq):
    from repro.obs.hotspot import HotspotProfiler

    profiler = HotspotProfiler(mode="tracing")
    profiler.start()
    try:
        JobRunner(jobs=2).run(_tasks(supernpu_config, tiny_network, rsfq))
    finally:
        profile = profiler.stop()
    # Deterministic worker tracing must surface the simulator's inner
    # loop in the parent's merged profile.
    assert any(key[0] == "simulate_layer" for key in profile.calls)


def test_retried_tasks_contribute_sidecars_once(
        obs_enabled, supernpu_config, tiny_network, rsfq):
    # Sidecars are keyed by the task's content hash, so re-running the
    # same tasks merges fresh sidecars each run (same totals twice).
    tasks = _tasks(supernpu_config, tiny_network, rsfq, batches=(1, 2))
    JobRunner(jobs=2).run(tasks)
    first = _worker_counters(obs_enabled.metrics().snapshot())
    JobRunner(jobs=2).run(tasks)
    second = _worker_counters(obs_enabled.metrics().snapshot())
    assert first
    assert second == {name: 2 * value for name, value in first.items()}
