"""Fig. 13 model-validation tests."""

import pytest

from repro.estimator.validation import (
    MAX_AREA_ERROR,
    MAX_FREQUENCY_ERROR,
    MAX_POWER_ERROR,
    REFERENCES,
    all_within_envelope,
    prototype_mac_unit,
    prototype_npu_config,
    prototype_sr_mem,
    validate,
)


def test_validation_covers_all_prototypes():
    rows = validate()
    assert set(rows) == {"mac_unit", "sr_mem", "nw_unit", "npu_2x2"}


def test_all_errors_within_paper_envelope():
    """The headline Fig. 13 claim: model matches measurement closely."""
    assert all_within_envelope()


def test_per_prototype_error_bounds():
    for row in validate().values():
        if row.frequency_error is not None:
            assert row.frequency_error <= MAX_FREQUENCY_ERROR
        assert row.power_error <= MAX_POWER_ERROR
        assert row.area_error <= MAX_AREA_ERROR


def test_nw_unit_has_no_frequency_reference():
    """The paper notes the NW unit alone reports no frequency."""
    assert REFERENCES["nw_unit"].frequency_ghz is None
    assert validate()["nw_unit"].frequency_error is None


def test_prototype_shapes():
    assert prototype_mac_unit().bits == 4
    assert prototype_sr_mem().total_entries == 8
    config = prototype_npu_config()
    assert config.num_pes == 4
    assert config.data_bits == 4


def test_npu_prototype_error_profile():
    """The paper reports 4.7% / 2.3% / 9.5% for the 2x2 NPU."""
    row = validate()["npu_2x2"]
    assert row.frequency_error == pytest.approx(0.047, abs=0.005)
    assert row.power_error == pytest.approx(0.023, abs=0.005)
    assert row.area_error == pytest.approx(0.095, abs=0.01)
