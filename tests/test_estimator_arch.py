"""Architecture-level estimator tests (Table I anchors)."""

import math


from repro.estimator.arch_level import (
    INTERFACE_DISTANCE_MM,
    build_units,
    estimate_npu,
    interface_gate_pairs,
)


def test_npu_clock_matches_table1(rsfq, baseline_config):
    """Table I: every SFQ design runs at 52.6 GHz."""
    estimate = estimate_npu(baseline_config, rsfq)
    assert math.isclose(estimate.frequency_ghz, 52.6, rel_tol=0.002)


def test_all_designs_share_the_clock(rsfq, baseline_config, supernpu_config):
    f1 = estimate_npu(baseline_config, rsfq).frequency_ghz
    f2 = estimate_npu(supernpu_config, rsfq).frequency_ghz
    assert f1 == f2


def test_interface_pair_is_critical(rsfq, baseline_config):
    estimate = estimate_npu(baseline_config, rsfq)
    assert "inter-unit" in estimate.critical_path


def test_shorter_interface_raises_clock(rsfq, baseline_config):
    near = estimate_npu(baseline_config, rsfq, interface_distance_mm=0.3)
    far = estimate_npu(baseline_config, rsfq, interface_distance_mm=2.0)
    assert near.frequency_ghz > far.frequency_ghz


def test_peak_performance_table1(rsfq, baseline_config, supernpu_config):
    """Table I peaks: ~3.4 PMAC/s for 256x256, ~0.86 for 64x256."""
    big = estimate_npu(baseline_config, rsfq)
    small = estimate_npu(supernpu_config, rsfq)
    assert 3300 <= big.peak_tmacs <= 3500
    assert 820 <= small.peak_tmacs <= 880
    assert math.isclose(big.peak_tmacs / small.peak_tmacs, 4.0, rel_tol=1e-6)


def test_area_scaled_to_28nm_within_tpu_budget(rsfq, baseline_config, supernpu_config):
    """Table I: both designs land under the TPU's <330 mm2 at 28 nm."""
    for config in (baseline_config, supernpu_config):
        area = estimate_npu(config, rsfq).area_mm2_scaled()
        assert 250 <= area <= 330


def test_supernpu_static_power_near_paper(rsfq, supernpu_config):
    """Table III: RSFQ-SuperNPU dissipates ~964 W of bias power."""
    estimate = estimate_npu(supernpu_config, rsfq)
    assert 900 <= estimate.static_power_w <= 1030


def test_ersfq_static_power_is_zero(ersfq, supernpu_config):
    assert estimate_npu(supernpu_config, ersfq).static_power_w == 0.0


def test_build_units_composition(baseline_config, supernpu_config):
    units = build_units(baseline_config)
    assert {"pe_array", "network", "dau", "ifmap_buffer", "weight_buffer",
            "output_buffer", "psum_buffer", "relu", "maxpool"} == set(units)
    integrated = build_units(supernpu_config)
    assert "psum_buffer" not in integrated
    assert integrated["output_buffer"].kind == "integrated-output-buffer"


def test_interface_pairs_resolve(rsfq):
    pairs = interface_gate_pairs(INTERFACE_DISTANCE_MM)
    assert len(pairs) == 1
    constraint = pairs[0].resolve(rsfq)
    assert math.isclose(constraint.cycle_time_ps, 19.013, rel_tol=1e-3)


def test_estimate_includes_wiring(rsfq, baseline_config):
    estimate = estimate_npu(baseline_config, rsfq)
    assert estimate.wiring_area_mm2 > 0
    assert estimate.wiring_static_power_w > 0
    assert estimate.area_mm2 > sum(u.area_mm2 for u in estimate.units.values())


def test_buffers_dominate_supernpu_power(rsfq, supernpu_config):
    """The shift-register buffers are the static-power hogs."""
    estimate = estimate_npu(supernpu_config, rsfq)
    buffers = (
        estimate.units["ifmap_buffer"].static_power_w
        + estimate.units["output_buffer"].static_power_w
    )
    assert buffers > 0.75 * estimate.static_power_w
