"""End-to-end evaluation-suite tests (Fig. 23 / Table III shapes)."""

import pytest

from repro.core.evaluate import evaluate_design, evaluate_suite, table3_rows
from repro.core.designs import supernpu
from repro.workloads.models import by_name


@pytest.fixture(scope="module")
def suite():
    return evaluate_suite()


def test_suite_covers_all_designs_and_workloads(suite):
    assert [d.config.name for d in suite.designs] == [
        "Baseline", "Buffer opt.", "Resource opt.", "SuperNPU",
    ]
    assert len(suite.tpu_runs) == 6


def test_fig23_progression(suite):
    """Average speedups rise along the optimization sequence."""
    speedups = suite.speedups()
    averages = [speedups[d]["Average"] for d in
                ("Baseline", "Buffer opt.", "Resource opt.", "SuperNPU")]
    assert averages[0] < 1.0  # Baseline loses to the TPU (paper: 0.4x)
    assert averages[0] < averages[1] < averages[2] < averages[3]


def test_fig23_supernpu_headline(suite):
    """SuperNPU beats the TPU by tens of times (paper: 23x average)."""
    speedups = suite.speedups()["SuperNPU"]
    assert 10 <= speedups["Average"] <= 50
    # MobileNet shows the largest gain (paper: ~42x).
    workloads_only = {k: v for k, v in speedups.items() if k != "Average"}
    assert max(workloads_only, key=workloads_only.get) == "MobileNet"


def test_every_design_beats_baseline(suite):
    speedups = suite.speedups()
    for design in ("Buffer opt.", "Resource opt.", "SuperNPU"):
        assert speedups[design]["Average"] > speedups["Baseline"]["Average"]


def test_design_lookup(suite):
    assert suite.design("SuperNPU").config.name == "SuperNPU"
    with pytest.raises(KeyError):
        suite.design("MegaNPU")


def test_evaluate_design_single(rsfq):
    evaluation = evaluate_design(supernpu(), workloads=[by_name("resnet50")], library=rsfq)
    assert set(evaluation.runs) == {"ResNet50"}
    assert evaluation.mean_mac_per_s > 0
    assert evaluation.power["ResNet50"].total_w > 0


def test_table3_shape(suite):
    rows = table3_rows(suite)
    labels = [r.label for r in rows]
    assert labels[0] == "TPU"
    assert any("RSFQ" in l for l in labels)
    assert any("ERSFQ" in l for l in labels)
    reference = rows[0]
    by_label = {r.label: r for r in rows}
    # RSFQ with cooling is catastrophically inefficient (paper: 0.002x).
    assert by_label["RSFQ-SuperNPU (w/ cooling)"].normalized_to(reference) < 0.01
    # ERSFQ with free cooling wins by hundreds of times (paper: 490x).
    assert by_label["ERSFQ-SuperNPU (w/o cooling)"].normalized_to(reference) > 100
    # ERSFQ including cooling still edges out the TPU (paper: 1.23x).
    assert by_label["ERSFQ-SuperNPU (w/ cooling)"].normalized_to(reference) > 1.0


def test_table3_chip_power_bands(suite):
    rows = {r.label: r for r in table3_rows(suite)}
    assert 900 <= rows["RSFQ-SuperNPU (w/ cooling)"].chip_power_w <= 1030
    assert rows["ERSFQ-SuperNPU (w/ cooling)"].chip_power_w < 3.0
