"""Fabrication-process model tests."""

import math

import pytest

from repro.device.process import AIST_10UM, CMOS_28NM_UM


def test_aist_process_parameters():
    assert AIST_10UM.feature_size_um == 1.0
    assert AIST_10UM.critical_current_density_ka_cm2 == 10.0
    assert AIST_10UM.bias_voltage_mv == 2.5
    assert AIST_10UM.bias_current_ua == 70.0


def test_jj_static_power_matches_paper():
    # 2.5 mV * 70 uA = 0.175 uW per resistor-biased junction (Section VI-C).
    assert math.isclose(AIST_10UM.jj_static_power_uw, 0.175, rel_tol=1e-9)


def test_area_scaling_is_quadratic():
    assert math.isclose(AIST_10UM.area_scale_factor(0.5), 0.25)
    assert math.isclose(AIST_10UM.area_scale_factor(2.0), 4.0)


def test_area_scale_to_28nm():
    factor = AIST_10UM.area_scale_factor(CMOS_28NM_UM)
    assert math.isclose(factor, 0.028**2, rel_tol=1e-12)


def test_frequency_scaling_linear_until_clamp():
    # Kadin et al.: frequency scales with 1/feature down to 0.2 um.
    assert math.isclose(AIST_10UM.frequency_scale_factor(0.5), 2.0)
    assert math.isclose(AIST_10UM.frequency_scale_factor(0.2), 5.0)
    # Below the clamp no further gain is credited.
    assert math.isclose(AIST_10UM.frequency_scale_factor(0.05), 5.0)


def test_scaled_process_shrinks_area():
    scaled = AIST_10UM.scaled(0.5)
    assert scaled.feature_size_um == 0.5
    assert math.isclose(scaled.jj_area_um2, AIST_10UM.jj_area_um2 * 0.25)


def test_scaled_process_custom_name():
    assert AIST_10UM.scaled(0.5, name="half").name == "half"


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_invalid_target_feature_rejected(bad):
    with pytest.raises(ValueError):
        AIST_10UM.area_scale_factor(bad)
    with pytest.raises(ValueError):
        AIST_10UM.frequency_scale_factor(bad)


def test_switch_energy_property():
    assert AIST_10UM.jj_switch_energy_aj > 0
