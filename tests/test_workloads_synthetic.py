"""Synthetic workload generator tests + fuzzing the simulator with them."""

import pytest

from repro.core.designs import supernpu
from repro.simulator.engine import simulate
from repro.workloads.synthetic import synthetic_conv_net, synthetic_suite


def test_deterministic_in_seed():
    a = synthetic_conv_net(42)
    b = synthetic_conv_net(42)
    assert a.layers == b.layers
    assert a.name == "synthetic-42"


def test_different_seeds_differ():
    nets = synthetic_suite(8, seed=100)
    signatures = {tuple(l.name for l in n.layers) + (n.total_macs,) for n in nets}
    assert len(signatures) > 1


def test_generated_networks_are_valid():
    for net in synthetic_suite(10, seed=7):
        assert net.layers[-1].is_fully_connected
        for layer in net.layers:
            assert layer.macs_per_image > 0
            assert layer.out_height >= 1


@pytest.mark.parametrize("seed", range(6))
def test_simulator_digests_synthetic_networks(rsfq, seed):
    """Fuzz the engine: any generated network must simulate cleanly."""
    net = synthetic_conv_net(seed)
    run = simulate(supernpu(), net, batch=2, library=rsfq)
    assert run.total_macs == 2 * net.total_macs
    assert run.total_cycles > 0
    breakdown = run.cycle_breakdown()
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9


def test_generator_validation():
    with pytest.raises(ValueError):
        synthetic_conv_net(0, num_layers=1)
    with pytest.raises(ValueError):
        synthetic_conv_net(0, max_channels=2)
    with pytest.raises(ValueError):
        synthetic_conv_net(0, input_size=4)
    with pytest.raises(ValueError):
        synthetic_suite(0)
