"""Run-manifest and file-export tests."""

import json

from repro.obs import (
    RunManifest,
    config_content_hash,
    metrics_document,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def test_config_hash_is_content_addressed(supernpu_config, baseline_config):
    assert config_content_hash(supernpu_config) == config_content_hash(supernpu_config)
    assert config_content_hash(supernpu_config) != config_content_hash(baseline_config)
    # Same content, different provenance -> same hash.
    clone = supernpu_config.with_updates()
    assert config_content_hash(clone) == config_content_hash(supernpu_config)
    # Any field change -> different hash.
    tweaked = supernpu_config.with_updates(registers_per_pe=2)
    assert config_content_hash(tweaked) != config_content_hash(supernpu_config)


def test_capture_from_live_objects(supernpu_config, tiny_network):
    manifest = RunManifest.capture(
        "simulate",
        config=supernpu_config,
        workload=tiny_network,
        batch=4,
        technology="rsfq",
        wall_time_s=1.25,
        suite="unit-test",
    )
    data = manifest.to_dict()
    assert data["command"] == "simulate"
    assert data["design"] == "SuperNPU"
    assert data["config_hash"] == config_content_hash(supernpu_config)
    assert data["workload"] == "TinyNet"
    assert data["batch"] == 4
    assert data["technology"] == "rsfq"
    assert data["wall_time_s"] == 1.25
    assert data["suite"] == "unit-test"
    import repro

    assert data["package_version"] == repro.__version__
    assert json.loads(manifest.to_json()) == data


def test_capture_minimal():
    manifest = RunManifest.capture("evaluate")
    data = manifest.to_dict()
    assert data["design"] is None and data["workload"] is None
    assert data["created_unix"] > 0


def test_describe_lines(supernpu_config):
    manifest = RunManifest.capture("profile", config=supernpu_config, batch=2)
    text = manifest.describe()
    assert "command" in text and "profile" in text
    assert "sha256:" in text and "batch" in text


def test_write_metrics_document(tmp_path, supernpu_config):
    registry = MetricsRegistry(enabled=True)
    registry.counter("sim.runs").inc()
    manifest = RunManifest.capture("simulate", config=supernpu_config)
    path = write_metrics(tmp_path / "out" / "metrics.json", registry, manifest)
    data = json.loads(path.read_text())
    assert data["metrics"]["counters"]["sim.runs"] == 1
    assert data["manifest"]["design"] == "SuperNPU"
    assert metrics_document(registry, manifest)["metrics"] == data["metrics"]


def test_write_trace_embeds_manifest(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("simulate"):
        pass
    manifest = RunManifest.capture("profile")
    path = write_trace(tmp_path / "trace.json", tracer, manifest)
    data = json.loads(path.read_text())
    assert data["traceEvents"][0]["name"] == "simulate"
    assert data["metadata"]["command"] == "profile"


def test_write_defaults_to_global_runtime(tmp_path, obs_enabled):
    obs_enabled.counter("a").inc(3)
    with obs_enabled.trace_span("root"):
        pass
    metrics_data = json.loads(write_metrics(tmp_path / "m.json").read_text())
    trace_data = json.loads(write_trace(tmp_path / "t.json").read_text())
    assert metrics_data["metrics"]["counters"] == {"a": 3}
    assert metrics_data["manifest"] is None
    assert [e["name"] for e in trace_data["traceEvents"]] == ["root"]
