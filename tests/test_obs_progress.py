"""Progress-streaming tests: reporter mechanics, runner integration,
determinism under chaos, and the CLI stderr contract."""

import io

import pytest

from repro import api, obs
from repro.cli import main
from repro.core.chaos import ANY_TASK, ChaosInjector, FaultSpec
from repro.core.jobs import JobRunner, SimTask, session
from repro.core.resilience import RetryPolicy
from repro.obs.progress import (
    EVENT_KINDS,
    ProgressEvent,
    ProgressReporter,
    auto_reporter,
)

FAST_RETRY = RetryPolicy(max_retries=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def tasks():
    design = api.design("supernpu")
    network = api.workload("mobilenet")
    return [SimTask(design, network, batch=b) for b in (1, 2, 4, 8)]


@pytest.fixture(scope="module")
def clean(tasks):
    return JobRunner(jobs=1).run(tasks)


# -- reporter mechanics ----------------------------------------------------

def test_event_counts_and_completed():
    reporter = ProgressReporter()
    reporter.begin(4)
    reporter.emit("cached", "k1")
    reporter.emit("queued", "k2")
    reporter.emit("started", "k2")
    reporter.emit("retried", "k2")
    reporter.emit("finished", "k2")
    reporter.done()
    assert reporter.total == 4
    assert reporter.cached == 1
    assert reporter.finished == 1
    assert reporter.completed == 2
    assert reporter.retried == 1
    assert [e.kind for e in reporter.events] == [
        "cached", "queued", "started", "retried", "finished", "done"]
    assert all(e.kind in EVENT_KINDS for e in reporter.events)


def test_begin_resets_per_sweep_state():
    reporter = ProgressReporter()
    reporter.begin(2)
    reporter.emit("cached", "a")
    reporter.emit("timeout", "b")
    reporter.begin(3)
    assert reporter.total == 3
    assert reporter.completed == 0 and reporter.cached == 0
    assert reporter.timeouts == 0


def test_eta_uses_executed_rate_not_cache_hits():
    reporter = ProgressReporter()
    reporter.begin(10)
    assert reporter.eta_s(elapsed_s=1.0) is None  # no finished task yet
    for _ in range(4):
        reporter.emit("cached")
    assert reporter.eta_s(elapsed_s=1.0) is None  # cache hits carry no rate
    reporter.finished = 2
    reporter.completed = 6
    # 4 remaining at 1.0s / 2 executed = 2.0s
    assert reporter.eta_s(elapsed_s=1.0) == pytest.approx(2.0)
    reporter.completed = 10
    assert reporter.eta_s(elapsed_s=1.0) == 0.0


def test_event_dict_round_trip():
    event = ProgressEvent(kind="finished", key="abc", attempt=1,
                          completed=3, total=5, elapsed_s=1.5, eta_s=0.9)
    data = event.to_dict()
    assert data["kind"] == "finished" and data["completed"] == 3
    assert data["eta_s"] == 0.9


def test_status_line_mentions_counts():
    reporter = ProgressReporter()
    reporter.begin(10)
    reporter.completed = 3
    reporter.cached = 2
    reporter.retried = 1
    line = reporter.status_line()
    assert "sweep 3/10 (30%)" in line
    assert "2 cached" in line and "1 retried" in line and "ETA" in line


def test_renders_plain_lines_on_non_tty():
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, interval_s=0.0)
    reporter.begin(3)
    for key in ("a", "b", "c"):
        reporter.emit("finished", key)
    reporter.done()
    lines = stream.getvalue().splitlines()
    assert lines, "non-tty rendering must emit plain lines"
    assert "\r" not in stream.getvalue()
    assert any("sweep 3/3 (100%)" in line for line in lines)


def test_small_sweeps_stay_silent():
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, min_tasks=2, interval_s=0.0)
    reporter.begin(1)
    reporter.emit("finished", "only")
    reporter.done()
    assert stream.getvalue() == ""


def test_auto_reporter_policy():
    assert auto_reporter(False) is None
    forced = auto_reporter(True)
    assert isinstance(forced, ProgressReporter)
    assert auto_reporter(None, stream=io.StringIO()) is None  # not a tty


def test_events_surface_in_obs(obs_enabled):
    reporter = ProgressReporter()
    reporter.begin(2)
    reporter.emit("finished", "ab" * 32)
    reporter.emit("finished", "cd" * 32)
    reporter.done()
    counters = obs.metrics().snapshot()["counters"]
    assert counters["progress.finished"] == 2
    assert counters["progress.done"] == 1
    instants = [span.name for span in obs.tracer().roots]
    assert instants.count("progress/finished") == 2


# -- runner integration ----------------------------------------------------

def test_serial_runner_emits_lifecycle(tasks, clean):
    reporter = ProgressReporter()
    runner = JobRunner(jobs=1, progress=reporter)
    assert runner.run(tasks) == clean
    kinds = [e.kind for e in reporter.events]
    assert kinds.count("queued") == len(tasks)
    assert kinds.count("started") == len(tasks)
    assert kinds.count("finished") == len(tasks)
    assert kinds[-1] == "done"
    assert reporter.completed == reporter.total == len(tasks)
    assert reporter.events[-1].eta_s == 0.0


def test_parallel_runner_emits_lifecycle(tasks, clean):
    reporter = ProgressReporter()
    runner = JobRunner(jobs=2, progress=reporter)
    assert runner.run(tasks) == clean
    kinds = [e.kind for e in reporter.events]
    assert kinds.count("started") == len(tasks)
    assert kinds.count("finished") == len(tasks)
    assert reporter.completed == len(tasks)


def test_cache_hits_reported_as_cached(tmp_path, tasks, clean):
    with session(cache_dir=tmp_path / "cache") as runner:
        assert runner.run(tasks) == clean
    reporter = ProgressReporter()
    with session(cache_dir=tmp_path / "cache", progress=reporter) as runner:
        assert runner.run(tasks) == clean
    kinds = [e.kind for e in reporter.events]
    assert kinds.count("cached") == len(tasks)
    assert kinds.count("started") == 0
    assert reporter.cached == len(tasks)


def test_progress_never_changes_results_serial_chaos(tmp_path, tasks, clean):
    """Under injected transient failures, progress-on == progress-off."""
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[0].key(): FaultSpec("exception", times=2)})
    reporter = ProgressReporter(stream=io.StringIO(), interval_s=0.0)
    runner = JobRunner(jobs=1, chaos=chaos, retry=FAST_RETRY, progress=reporter)
    assert runner.run(tasks) == clean
    kinds = [e.kind for e in reporter.events]
    assert kinds.count("retried") == runner.stats.retries == 2
    assert kinds.count("finished") == len(tasks)


def test_progress_never_changes_results_parallel_chaos(tmp_path, tasks, clean):
    """A SIGKILLed worker surfaces as pool_restart; results stay identical."""
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[1].key(): FaultSpec("sigkill", times=1)})
    reporter = ProgressReporter(stream=io.StringIO(), interval_s=0.0)
    runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY, progress=reporter)
    assert runner.run(tasks) == clean
    kinds = [e.kind for e in reporter.events]
    assert kinds.count("pool_restart") == runner.stats.pool_restarts >= 1
    assert kinds.count("finished") == len(tasks)
    assert reporter.completed == len(tasks)


def test_degraded_sweep_still_completes_events(tmp_path, tasks, clean):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {ANY_TASK: FaultSpec("sigkill", times=3)})
    reporter = ProgressReporter(stream=io.StringIO(), interval_s=0.0)
    runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY, progress=reporter)
    assert runner.run(tasks) == clean
    kinds = [e.kind for e in reporter.events]
    assert kinds.count("degraded") == 1
    assert kinds.count("finished") == len(tasks)
    assert reporter.degraded
    assert "degraded to serial" in reporter.status_line()


# -- CLI contract ----------------------------------------------------------

def test_cli_progress_streams_to_stderr_only(capsys):
    assert main(["evaluate", "--progress"]) == 0
    with_progress = capsys.readouterr()
    assert "sweep" in with_progress.err and "ETA" in with_progress.err
    assert "sweep" not in with_progress.out

    assert main(["evaluate", "--no-progress"]) == 0
    without = capsys.readouterr()
    assert "sweep" not in without.err
    # The load-bearing invariant: stdout is bitwise-identical either way.
    assert with_progress.out == without.out


def test_cli_sweep_summary_line_on_stderr(capsys):
    assert main(["evaluate", "--no-progress"]) == 0
    captured = capsys.readouterr()
    assert "summary:" in captured.err
    assert "cache hit-rate" in captured.err
    assert "summary:" not in captured.out


def test_cli_single_simulation_has_no_summary(capsys):
    assert main(["simulate", "supernpu", "alexnet", "--batch", "1",
                 "--no-progress"]) == 0
    assert "summary:" not in capsys.readouterr().err
