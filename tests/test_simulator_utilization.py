"""Per-unit utilization report tests."""

import pytest

from repro.core.designs import baseline, supernpu
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.utilization import compare_utilization, utilization_report
from repro.workloads.models import resnet50


@pytest.fixture(scope="module")
def runs(rsfq):
    out = []
    for config, batch in ((baseline(), 1), (supernpu(), 30)):
        estimate = estimate_npu(config, rsfq)
        out.append(simulate(config, resnet50(), batch=batch, estimate=estimate))
    return out


def test_utilization_bounds(runs):
    for run in runs:
        report = utilization_report(run)
        assert all(0.0 <= value <= 1.0 for value in report.per_unit.values())


def test_pe_utilization_matches_throughput_definition(runs, rsfq):
    """The report's PE figure equals effective/peak throughput."""
    run = runs[1]
    estimate = estimate_npu(supernpu(), rsfq)
    report = utilization_report(run)
    assert report.pe_utilization == pytest.approx(
        run.pe_utilization(estimate.peak_mac_per_s), rel=1e-6
    )


def test_optimizations_raise_pe_utilization(runs):
    """The Section V story: Baseline idles, SuperNPU computes."""
    baseline_report = utilization_report(runs[0])
    supernpu_report = utilization_report(runs[1])
    assert baseline_report.pe_utilization < 0.01
    assert supernpu_report.pe_utilization > 0.3


def test_busiest_unit(runs):
    report = utilization_report(runs[1])
    assert report.busiest_unit() in report.per_unit


def test_compare_keys(runs):
    reports = compare_utilization(runs)
    assert set(reports) == {"Baseline", "SuperNPU"}


def test_zero_cycle_run_rejected():
    from repro.simulator.results import ActivityTrace, SimulationResult

    empty = SimulationResult("d", "n", 1, 52.6, [], ActivityTrace())
    with pytest.raises(ValueError):
        utilization_report(empty)


# -- hand-computed ActivityTrace ----------------------------------------

def _run_with_activity(activity, total_cycles=1000):
    """A synthetic run: one layer carrying the cycle total, given activity."""
    from repro.simulator.results import LayerResult, SimulationResult

    layer = LayerResult(
        name="l", mappings=1, weight_load_cycles=0, ifmap_prep_cycles=0,
        psum_move_cycles=0, activation_transfer_cycles=0,
        compute_cycles=total_cycles, dram_traffic_bytes=0, dram_cycles=0,
        total_cycles=total_cycles, macs=0,
    )
    return SimulationResult("d", "n", 1, 52.6, [layer], activity)


def test_hand_computed_percentages():
    """250/1000 -> 25%, 1000/1000 -> 100%, overshoot clamps to 100%."""
    from repro.simulator.results import ActivityTrace

    activity = ActivityTrace()
    activity.add("pe_array", 250.0)
    activity.add("dau", 1000.0)
    activity.add("network", 1500.0)  # effective cycles can exceed the total
    report = utilization_report(_run_with_activity(activity))
    assert report.per_unit == {
        "pe_array": pytest.approx(0.25),
        "dau": pytest.approx(1.0),
        "network": pytest.approx(1.0),  # clamped
    }
    assert report.pe_utilization == pytest.approx(0.25)


def test_activity_accumulates_across_adds():
    from repro.simulator.results import ActivityTrace

    activity = ActivityTrace()
    activity.add("pe_array", 100.0)
    activity.add("pe_array", 150.0)
    report = utilization_report(_run_with_activity(activity))
    assert report.per_unit["pe_array"] == pytest.approx(0.25)


def test_activity_rejects_negative_cycles():
    from repro.simulator.results import ActivityTrace

    with pytest.raises(ValueError):
        ActivityTrace().add("pe_array", -1.0)


def test_busiest_unit_tie_breaks_lexicographically():
    """Equal utilization -> smallest name wins, whatever the insert order."""
    from repro.simulator.results import ActivityTrace

    first = ActivityTrace()
    first.add("zeta", 500.0)
    first.add("alpha", 500.0)
    second = ActivityTrace()
    second.add("alpha", 500.0)
    second.add("zeta", 500.0)
    assert utilization_report(_run_with_activity(first)).busiest_unit() == "alpha"
    assert utilization_report(_run_with_activity(second)).busiest_unit() == "alpha"


def test_busiest_unit_prefers_strictly_higher_value():
    from repro.simulator.results import ActivityTrace

    activity = ActivityTrace()
    activity.add("alpha", 100.0)
    activity.add("zeta", 900.0)
    assert utilization_report(_run_with_activity(activity)).busiest_unit() == "zeta"


def test_to_dict_is_json_ready(runs):
    import json

    report = utilization_report(runs[1])
    document = report.to_dict()
    assert document["design"] == "SuperNPU"
    assert document["busiest_unit"] == report.busiest_unit()
    assert list(document["per_unit"]) == sorted(document["per_unit"])
    json.dumps(document)
