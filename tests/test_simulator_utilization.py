"""Per-unit utilization report tests."""

import pytest

from repro.core.designs import baseline, supernpu
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.utilization import compare_utilization, utilization_report
from repro.workloads.models import resnet50


@pytest.fixture(scope="module")
def runs(rsfq):
    out = []
    for config, batch in ((baseline(), 1), (supernpu(), 30)):
        estimate = estimate_npu(config, rsfq)
        out.append(simulate(config, resnet50(), batch=batch, estimate=estimate))
    return out


def test_utilization_bounds(runs):
    for run in runs:
        report = utilization_report(run)
        assert all(0.0 <= value <= 1.0 for value in report.per_unit.values())


def test_pe_utilization_matches_throughput_definition(runs, rsfq):
    """The report's PE figure equals effective/peak throughput."""
    run = runs[1]
    estimate = estimate_npu(supernpu(), rsfq)
    report = utilization_report(run)
    assert report.pe_utilization == pytest.approx(
        run.pe_utilization(estimate.peak_mac_per_s), rel=1e-6
    )


def test_optimizations_raise_pe_utilization(runs):
    """The Section V story: Baseline idles, SuperNPU computes."""
    baseline_report = utilization_report(runs[0])
    supernpu_report = utilization_report(runs[1])
    assert baseline_report.pe_utilization < 0.01
    assert supernpu_report.pe_utilization > 0.3


def test_busiest_unit(runs):
    report = utilization_report(runs[1])
    assert report.busiest_unit() in report.per_unit


def test_compare_keys(runs):
    reports = compare_utilization(runs)
    assert set(reports) == {"Baseline", "SuperNPU"}


def test_zero_cycle_run_rejected():
    from repro.simulator.results import ActivityTrace, SimulationResult

    empty = SimulationResult("d", "n", 1, 52.6, [], ActivityTrace())
    with pytest.raises(ValueError):
        utilization_report(empty)
