"""Bit-serial MAC ablation tests (the Section VII related-work claim)."""

import pytest

from repro.uarch.bitserial import BitSerialMAC
from repro.uarch.mac import MACUnit


def test_cycles_per_mac():
    assert BitSerialMAC(8, 24).cycles_per_mac == 64
    assert BitSerialMAC(4, 8).cycles_per_mac == 16


def test_bit_serial_is_tiny(rsfq):
    serial = BitSerialMAC(8, 24)
    parallel = MACUnit(8, 24)
    assert serial.jj_count(rsfq) < 0.1 * parallel.jj_count(rsfq)


def test_bit_serial_clocks_at_least_as_fast(rsfq):
    serial = BitSerialMAC(8, 24)
    parallel = MACUnit(8, 24)
    assert serial.frequency(rsfq).frequency_ghz >= parallel.frequency(rsfq).frequency_ghz


def test_throughput_gap_is_dramatic(rsfq):
    """The paper's related-work observation: bit-serial throughput is low
    despite high clock speed."""
    serial = BitSerialMAC(8, 24)
    parallel = MACUnit(8, 24)
    parallel_tput = parallel.frequency(rsfq).frequency_ghz * 1e9  # 1 MAC/cycle
    assert serial.throughput_mac_per_s(rsfq) < parallel_tput / 30


def test_bit_parallel_wins_even_per_junction(rsfq):
    """Normalized by area (JJ count), bit-parallel still comes out ahead —
    the reason SuperNPU is a bit-parallel design."""
    serial = BitSerialMAC(8, 24)
    parallel = MACUnit(8, 24)
    parallel_per_jj = parallel.frequency(rsfq).frequency_ghz * 1e9 / parallel.jj_count(rsfq)
    assert parallel_per_jj > serial.throughput_per_jj(rsfq)


def test_validation():
    with pytest.raises(ValueError):
        BitSerialMAC(1, 8)
    with pytest.raises(ValueError):
        BitSerialMAC(8, 10)
