"""Simulated-cycle timeline tests (time-domain semantics + trace export)."""

import json

import pytest

from repro.estimator.arch_level import estimate_npu
from repro.obs.timeline import PHASES, TRACKS, CounterSample, CycleTimeline, TimelineEvent
from repro.simulator.engine import simulate
from repro.simulator.results import LayerResult
from repro.workloads.models import resnet50


def _layer_result(
    name="conv",
    weight_load=10,
    ifmap_prep=20,
    psum_move=30,
    activation_transfer=5,
    compute=100,
    dram_cycles=40,
):
    on_chip = weight_load + ifmap_prep + psum_move + activation_transfer + compute
    return LayerResult(
        name=name,
        mappings=2,
        weight_load_cycles=weight_load,
        ifmap_prep_cycles=ifmap_prep,
        psum_move_cycles=psum_move,
        activation_transfer_cycles=activation_transfer,
        compute_cycles=compute,
        dram_traffic_bytes=4096,
        dram_cycles=dram_cycles,
        total_cycles=max(on_chip, dram_cycles),
        macs=1000,
    )


def test_time_domain_conversion():
    timeline = CycleTimeline(frequency_ghz=50.0)
    assert timeline.cycle_ps == pytest.approx(20.0)  # 50 GHz -> 20 ps
    assert timeline.cycles_to_ps(5) == pytest.approx(100.0)
    assert timeline.cycles_to_us(50_000) == pytest.approx(1.0)


def test_rejects_nonpositive_clock():
    with pytest.raises(ValueError):
        CycleTimeline(frequency_ghz=0.0)


def test_record_layer_lays_out_phases_sequentially():
    timeline = CycleTimeline(frequency_ghz=50.0)
    timeline.record_layer(_layer_result())
    on_chip = [e for e in timeline.events if e.track == "on_chip"]
    assert [e.name for e in on_chip] == list(PHASES)
    # Phases tile the on-chip region back to back.
    cursor = 0
    for event in on_chip:
        assert event.start_cycle == cursor
        cursor = event.end_cycle
    assert cursor == 165  # sum of the phase charges


def test_zero_cycle_phases_are_skipped():
    timeline = CycleTimeline(frequency_ghz=50.0)
    timeline.record_layer(_layer_result(psum_move=0, ifmap_prep=0))
    names = [e.name for e in timeline.events if e.track == "on_chip"]
    assert "psum_move" not in names and "ifmap_prep" not in names


def test_dram_runs_in_parallel_from_layer_start():
    timeline = CycleTimeline(frequency_ghz=50.0)
    timeline.record_layer(_layer_result(dram_cycles=40))
    timeline.record_layer(_layer_result(name="conv2", dram_cycles=500))
    dram = [e for e in timeline.events if e.track == "dram"]
    layers = [e for e in timeline.events if e.track == "layer"]
    assert dram[0].start_cycle == layers[0].start_cycle == 0
    # Second layer starts where the first layer's max(on_chip, dram) ended.
    assert layers[1].start_cycle == layers[0].end_cycle == 165
    assert dram[1].start_cycle == 165
    # The dram-bound second layer's span equals its dram transfer.
    assert layers[1].duration_cycles == 500
    assert timeline.total_cycles == 165 + 500


def test_occupancy_samples_become_counters():
    timeline = CycleTimeline(frequency_ghz=50.0)
    timeline.record_layer(_layer_result(), occupancy={"ifmap_buffer_bytes": 123.0})
    assert timeline.counters == [CounterSample("ifmap_buffer_bytes", 0, 123.0)]


def test_event_validation():
    with pytest.raises(ValueError):
        TimelineEvent("x", "nonexistent-track", 0, 1)
    with pytest.raises(ValueError):
        TimelineEvent("x", "layer", -1, 1)
    with pytest.raises(ValueError):
        TimelineEvent("x", "layer", 0, -1)


def test_chrome_trace_timestamps_are_simulated_time():
    """The exported span equals total_cycles / clock (acceptance criterion)."""
    timeline = CycleTimeline(frequency_ghz=50.0, design="D", network="N")
    timeline.record_layer(_layer_result())
    timeline.record_layer(_layer_result(name="conv2"))
    trace = timeline.to_chrome_trace()
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    span_us = max(e["ts"] + e["dur"] for e in complete)
    assert span_us == pytest.approx(timeline.total_cycles / (50.0 * 1e3))
    assert trace["otherData"]["time_domain"] == "simulated"
    assert trace["otherData"]["clock_ghz"] == 50.0
    assert trace["otherData"]["total_cycles"] == timeline.total_cycles
    # Track metadata labels every tid.
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert {e["tid"] for e in meta} == set(TRACKS.values())
    json.loads(timeline.to_chrome_trace_json())  # round-trips as JSON


def test_engine_populates_timeline(supernpu_config, rsfq):
    estimate = estimate_npu(supernpu_config, rsfq)
    timeline = CycleTimeline(
        estimate.frequency_ghz,
        design=supernpu_config.name,
        network="ResNet50",
    )
    run = simulate(
        supernpu_config, resnet50(), batch=30, estimate=estimate, timeline=timeline
    )
    assert timeline.total_cycles == run.total_cycles
    layer_events = [e for e in timeline.events if e.track == "layer"]
    assert [e.name for e in layer_events] == [l.name for l in run.layers]
    # Every layer contributed buffer-occupancy samples.
    counter_names = {c.name for c in timeline.counters}
    assert counter_names == {
        "ifmap_buffer_bytes", "output_buffer_bytes", "weight_buffer_bytes",
    }
    # Occupancy never exceeds the configured capacities.
    for sample in timeline.counters:
        if sample.name == "ifmap_buffer_bytes":
            assert sample.value <= supernpu_config.ifmap_buffer_bytes


def test_engine_without_timeline_unchanged(baseline_config, rsfq, tiny_network):
    """The timeline hook is opt-in; results are identical without it."""
    estimate = estimate_npu(baseline_config, rsfq)
    plain = simulate(baseline_config, tiny_network, batch=1, estimate=estimate)
    timeline = CycleTimeline(estimate.frequency_ghz)
    timed = simulate(
        baseline_config, tiny_network, batch=1, estimate=estimate, timeline=timeline
    )
    assert plain.total_cycles == timed.total_cycles
    assert plain.layers == timed.layers


def test_write_timeline_embeds_manifest(tmp_path, supernpu_config, rsfq, tiny_network):
    from repro import obs

    estimate = estimate_npu(supernpu_config, rsfq)
    timeline = CycleTimeline(estimate.frequency_ghz)
    simulate(supernpu_config, tiny_network, batch=1, estimate=estimate,
             timeline=timeline)
    manifest = obs.RunManifest.capture("bottleneck", config=supernpu_config)
    path = obs.write_timeline(tmp_path / "t.json", timeline, manifest=manifest)
    trace = json.loads(path.read_text())
    assert trace["metadata"]["command"] == "bottleneck"
    assert trace["metadata"]["design"] == supernpu_config.name
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
