"""Cryocooler model tests (Table III cooling scenarios)."""

import math

import pytest

from repro.cooling.cryocooler import (
    PAPER_COOLER,
    PAPER_COOLING_FACTOR,
    Cryocooler,
    carnot_cooling_factor,
)


def test_paper_factor_is_400():
    assert PAPER_COOLING_FACTOR == 400.0
    assert PAPER_COOLER.factor == 400.0


def test_carnot_bound_at_4k():
    # (300 - 4.2) / 4.2 ~ 70.4 wall watts per cold watt, ideally.
    assert math.isclose(carnot_cooling_factor(4.2), (300 - 4.2) / 4.2)


def test_paper_cooler_is_physical():
    """400x is ~18% of Carnot — a realistic large cryoplant."""
    assert 0.1 < PAPER_COOLER.percent_of_carnot < 0.3


def test_sub_carnot_cooler_rejected():
    with pytest.raises(ValueError, match="Carnot"):
        Cryocooler(factor=10.0)


def test_cooling_power_table3_example():
    """RSFQ-SuperNPU: 964 W at 4 K -> ~3.8e5 W wall (Table III)."""
    wall = PAPER_COOLER.wall_power_w(964.0)
    assert math.isclose(wall, 964 * 401, rel_tol=1e-9)
    assert 3.5e5 < wall < 4.2e5


def test_free_cooling_scenario():
    assert PAPER_COOLER.wall_power_w(964.0, free_cooling=True) == 964.0


def test_ersfq_cooling_cost():
    """ERSFQ-SuperNPU: 1.9 W chip -> ~751 W wall (Table III)."""
    wall = PAPER_COOLER.wall_power_w(1.9)
    assert math.isclose(wall, 1.9 * 401, rel_tol=1e-9)
    assert 700 < wall < 800


def test_negative_chip_power_rejected():
    with pytest.raises(ValueError):
        PAPER_COOLER.cooling_power_w(-1.0)


def test_invalid_temperatures():
    with pytest.raises(ValueError):
        carnot_cooling_factor(0.0)
    with pytest.raises(ValueError):
        carnot_cooling_factor(300.0, 4.0)
