"""Cryocooler model tests (Table III cooling scenarios + the ladder)."""

import math

import pytest

from repro.cooling.cryocooler import (
    PAPER_COOLER,
    PAPER_COOLING_FACTOR,
    Cryocooler,
    carnot_cooling_factor,
)
from repro.cooling.ladder import (
    PAPER_77K_FACTOR,
    PAPER_LADDER,
    CoolingLadder,
    CoolingStage,
)
from repro.errors import ConfigError


def test_paper_factor_is_400():
    assert PAPER_COOLING_FACTOR == 400.0
    assert PAPER_COOLER.factor == 400.0


def test_carnot_bound_at_4k():
    # (300 - 4.2) / 4.2 ~ 70.4 wall watts per cold watt, ideally.
    assert math.isclose(carnot_cooling_factor(4.2), (300 - 4.2) / 4.2)


def test_paper_cooler_is_physical():
    """400x is ~18% of Carnot — a realistic large cryoplant."""
    assert 0.1 < PAPER_COOLER.percent_of_carnot < 0.3


def test_sub_carnot_cooler_rejected():
    with pytest.raises(ValueError, match="Carnot"):
        Cryocooler(factor=10.0)


def test_cooling_power_table3_example():
    """RSFQ-SuperNPU: 964 W at 4 K -> ~3.8e5 W wall (Table III)."""
    wall = PAPER_COOLER.wall_power_w(964.0)
    assert math.isclose(wall, 964 * 401, rel_tol=1e-9)
    assert 3.5e5 < wall < 4.2e5


def test_free_cooling_scenario():
    assert PAPER_COOLER.wall_power_w(964.0, free_cooling=True) == 964.0


def test_ersfq_cooling_cost():
    """ERSFQ-SuperNPU: 1.9 W chip -> ~751 W wall (Table III)."""
    wall = PAPER_COOLER.wall_power_w(1.9)
    assert math.isclose(wall, 1.9 * 401, rel_tol=1e-9)
    assert 700 < wall < 800


def test_negative_chip_power_rejected():
    with pytest.raises(ValueError):
        PAPER_COOLER.cooling_power_w(-1.0)


def test_invalid_temperatures():
    with pytest.raises(ValueError):
        carnot_cooling_factor(0.0)
    with pytest.raises(ValueError):
        carnot_cooling_factor(300.0, 4.0)


# -- the multi-stage ladder -------------------------------------------------

def test_ladder_stage_carnot_rejection():
    """A 77 K stage cannot beat its own Carnot bound (~2.9x)."""
    with pytest.raises(ConfigError, match="Carnot"):
        CoolingStage(temperature_k=77.0, factor=1.0)


def test_ladder_stage_percent_of_carnot():
    stage = CoolingStage(temperature_k=4.2, factor=PAPER_COOLING_FACTOR)
    assert math.isclose(stage.percent_of_carnot,
                        PAPER_COOLER.percent_of_carnot)
    assert PAPER_LADDER.stage_for(300.0).percent_of_carnot == 0.0


def test_ladder_ambient_stage_must_be_free():
    with pytest.raises(ConfigError, match="ambient"):
        CoolingStage(temperature_k=300.0, factor=5.0)


def test_ladder_stages_must_be_ordered():
    with pytest.raises(ConfigError, match="cold-to-hot"):
        CoolingLadder(stages=(
            CoolingStage(temperature_k=77.0, factor=PAPER_77K_FACTOR),
            CoolingStage(temperature_k=4.2, factor=400.0),
        ))


def test_degenerate_single_stage_ladder_matches_paper_cooler():
    """A one-stage 4.2K/400x ladder is exactly the paper's cooler."""
    ladder = CoolingLadder(stages=(
        CoolingStage(temperature_k=4.2, factor=PAPER_COOLING_FACTOR),))
    for chip_w in (0.0, 1.9, 964.0):
        assert ladder.wall_power_w({4.2: chip_w}) == \
            PAPER_COOLER.wall_power_w(chip_w)
        assert ladder.cooling_power_w({4.2: chip_w}) == \
            PAPER_COOLER.cooling_power_w(chip_w)


def test_ladder_free_cooling_wall_power():
    dissipation = {4.2: 10.0, 77.0: 100.0, 300.0: 5.0}
    assert PAPER_LADDER.wall_power_w(dissipation, free_cooling=True) == 115.0


def test_paper_ladder_charges_each_stage_at_its_factor():
    dissipation = {4.2: 2.0, 77.0: 10.0, 300.0: 50.0}
    cooling = PAPER_LADDER.cooling_power_w(dissipation)
    assert math.isclose(cooling, 2.0 * 400.0 + 10.0 * PAPER_77K_FACTOR)
    wall = PAPER_LADDER.wall_power_w(dissipation)
    assert math.isclose(wall, 62.0 + cooling)
    breakdown = PAPER_LADDER.breakdown_w(dissipation)
    assert math.isclose(sum(breakdown.values()), wall)
    assert breakdown[300.0] == 50.0  # ambient heat is rejected for free


def test_ladder_unknown_stage_and_negative_power():
    with pytest.raises(ConfigError, match="no cooling stage"):
        PAPER_LADDER.factor_at(10.0)
    with pytest.raises(ConfigError, match="non-negative"):
        PAPER_LADDER.cooling_power_w({4.2: -1.0})
