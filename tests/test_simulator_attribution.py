"""Bottleneck attribution and roofline tests."""

import pytest

from repro.core.designs import baseline, supernpu
from repro.estimator.arch_level import estimate_npu
from repro.simulator.attribution import (
    BOUNDS,
    PHASE_ORDER,
    attribute,
    attribute_layer,
    attribution_records,
    phase_cycle_totals,
    roofline,
    roofline_records,
)
from repro.simulator.engine import simulate
from repro.simulator.results import LayerResult
from repro.workloads.models import resnet50


def _layer(weight_load=0, ifmap_prep=0, psum_move=0, activation=0, compute=0,
           dram_cycles=0, traffic=1024, macs=1000, name="l"):
    on_chip = weight_load + ifmap_prep + psum_move + activation + compute
    return LayerResult(
        name=name,
        mappings=1,
        weight_load_cycles=weight_load,
        ifmap_prep_cycles=ifmap_prep,
        psum_move_cycles=psum_move,
        activation_transfer_cycles=activation,
        compute_cycles=compute,
        dram_traffic_bytes=traffic,
        dram_cycles=dram_cycles,
        total_cycles=max(on_chip, dram_cycles),
        macs=macs,
    )


@pytest.fixture(scope="module")
def runs(rsfq):
    out = {}
    for config, batch in ((baseline(), 1), (supernpu(), 30)):
        estimate = estimate_npu(config, rsfq)
        out[config.name] = (
            simulate(config, resnet50(), batch=batch, estimate=estimate),
            estimate,
            config,
        )
    return out


# -- layer classification (hand-computed) -------------------------------

def test_compute_bound_layer():
    attribution = attribute_layer(_layer(compute=100, weight_load=10))
    assert attribution.bound == "compute"
    assert attribution.dominant_phase == "compute"
    assert attribution.fractions["compute"] == pytest.approx(100 / 110)


def test_preparation_bound_layer():
    attribution = attribute_layer(_layer(compute=10, psum_move=100))
    assert attribution.bound == "preparation"
    assert attribution.dominant_phase == "psum_move"


def test_dram_bound_layer_from_max_rule():
    """DRAM wins exactly when dram_cycles exceed the on-chip serial sum."""
    attribution = attribute_layer(_layer(compute=50, dram_cycles=200))
    assert attribution.bound == "dram"
    assert attribution.total_cycles == 200
    assert attribution.fractions["compute"] == pytest.approx(0.25)
    assert attribution.fractions["dram_stall"] == pytest.approx(0.75)


def test_dram_tie_goes_on_chip():
    attribution = attribute_layer(_layer(compute=100, dram_cycles=100))
    assert attribution.bound == "compute"
    assert attribution.fractions["dram_stall"] == 0.0


def test_fractions_partition_total_exactly():
    attribution = attribute_layer(
        _layer(weight_load=7, ifmap_prep=11, psum_move=13, activation=17,
               compute=19, dram_cycles=100)
    )
    assert sum(attribution.fractions.values()) == pytest.approx(1.0, abs=1e-9)
    assert set(attribution.fractions) == set(PHASE_ORDER)


def test_zero_cycle_layer_is_harmless():
    attribution = attribute_layer(_layer())
    assert attribution.total_cycles == 0
    assert all(value == 0.0 for value in attribution.fractions.values())


# -- whole-run reports ---------------------------------------------------

def test_every_layer_gets_a_bound(runs):
    for run, _, _ in runs.values():
        report = attribute(run)
        assert len(report.layers) == len(run.layers)
        for layer in report.layers:
            assert layer.bound in BOUNDS
            assert sum(layer.fractions.values()) == pytest.approx(1.0, abs=1e-6)


def test_summary_fractions_sum_to_one(runs):
    for run, _, _ in runs.values():
        report = attribute(run)
        assert sum(report.summary_fractions.values()) == pytest.approx(1.0, abs=1e-6)
        assert sum(report.bound_counts.values()) == len(run.layers)


def test_baseline_is_preparation_dominated(runs):
    """Fig. 15: the Baseline drowns in psum movement + ifmap rewinds."""
    report = attribute(runs["Baseline"][0])
    fractions = report.summary_fractions
    prep = (fractions["weight_load"] + fractions["ifmap_prep"]
            + fractions["psum_move"] + fractions["activation_transfer"])
    assert prep > 0.9
    assert report.bound_counts["preparation"] > report.bound_counts["compute"]


def test_supernpu_mostly_compute_bound(runs):
    """Fig. 19: the optimizations make compute the common bound."""
    report = attribute(runs["SuperNPU"][0])
    assert report.summary_fractions["compute"] > 0.5


def test_critical_layers_ranked_by_cycles(runs):
    report = attribute(runs["Baseline"][0])
    top = report.critical_layers(5)
    assert len(top) == 5
    shares = [share for _, share in top]
    assert shares == sorted(shares, reverse=True)
    cycles = [layer.total_cycles for layer, _ in top]
    assert cycles == sorted(cycles, reverse=True)
    assert sum(shares) <= 1.0
    with pytest.raises(ValueError):
        report.critical_layers(0)


def test_phase_cycle_totals_partition_run(runs):
    for run, _, _ in runs.values():
        totals = phase_cycle_totals(run)
        assert totals["total"] == run.total_cycles
        assert sum(v for k, v in totals.items() if k != "total") == run.total_cycles


def test_attribution_records_are_flat(runs):
    report = attribute(runs["SuperNPU"][0])
    records = attribution_records(report)
    assert len(records) == len(report.layers)
    for record in records:
        assert record["bound"] in BOUNDS
        total = sum(v for k, v in record.items() if k.startswith("frac_"))
        assert total == pytest.approx(1.0, abs=1e-6)


# -- roofline ------------------------------------------------------------

def test_roofline_points(runs):
    run, estimate, config = runs["SuperNPU"]
    report = roofline(run, estimate.peak_mac_per_s, config.memory_bandwidth_gbps)
    assert report.compute_roof_gops == pytest.approx(
        2 * estimate.peak_mac_per_s / 1e9
    )
    assert report.ridge_macs_per_byte == pytest.approx(
        estimate.peak_mac_per_s / (config.memory_bandwidth_gbps * 1e9)
    )
    assert len(report.points) == len(run.layers)
    for point in report.points:
        assert point.attainable_gops <= report.compute_roof_gops + 1e-9
        # Nothing exceeds its roof.
        assert point.achieved_gops <= point.attainable_gops * (1 + 1e-9)
        expected = "bandwidth" if point.intensity_macs_per_byte < \
            report.ridge_macs_per_byte else "compute"
        assert point.limiter == expected


def test_roofline_records_shape(runs):
    run, estimate, config = runs["Baseline"]
    report = roofline(run, estimate.peak_mac_per_s, config.memory_bandwidth_gbps)
    records = roofline_records(report)
    assert len(records) == len(report.points)
    assert {"layer", "intensity_macs_per_byte", "achieved_gops",
            "attainable_gops", "limiter"} <= set(records[0])


def test_roofline_rejects_bad_roofs(runs):
    run = runs["Baseline"][0]
    with pytest.raises(ValueError):
        roofline(run, 0.0, 300.0)
    with pytest.raises(ValueError):
        roofline(run, 1e12, 0.0)
