"""Result-export (JSON/CSV) tests."""

import csv
import io
import json

import pytest

from repro.core.report import (
    estimate_record,
    layer_records,
    simulation_record,
    to_csv,
    to_json,
)
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report


@pytest.fixture(scope="module")
def run_and_estimate(rsfq, supernpu_config, tiny_network):
    estimate = estimate_npu(supernpu_config, rsfq)
    run = simulate(supernpu_config, tiny_network, batch=2, estimate=estimate)
    return run, estimate


def test_estimate_record_fields(run_and_estimate):
    _, estimate = run_and_estimate
    record = estimate_record(estimate)
    assert record["design"] == "SuperNPU"
    assert record["frequency_ghz"] == pytest.approx(52.6, rel=0.002)
    assert "pe_array" in record["units"]
    assert record["area_mm2_28nm"] < record["area_mm2_native"]


def test_simulation_record_fields(run_and_estimate):
    run, estimate = run_and_estimate
    record = simulation_record(run, power_report(run, estimate))
    assert record["network"] == "TinyNet"
    assert record["batch"] == 2
    assert record["total_power_w"] == pytest.approx(
        record["static_power_w"] + record["dynamic_power_w"]
    )
    shares = record["preparation_share"] + record["computation_share"] + record["memory_share"]
    assert shares == pytest.approx(1.0)


def test_simulation_record_without_power(run_and_estimate):
    run, _ = run_and_estimate
    record = simulation_record(run)
    assert "total_power_w" not in record


def test_layer_records_cover_network(run_and_estimate):
    run, _ = run_and_estimate
    records = layer_records(run)
    assert [r["layer"] for r in records] == ["conv1", "conv2", "fc"]
    assert sum(r["macs"] for r in records) == run.total_macs


def test_json_round_trip(run_and_estimate):
    run, estimate = run_and_estimate
    text = to_json(simulation_record(run))
    assert json.loads(text)["design"] == "SuperNPU"
    text = to_json(estimate_record(estimate))
    assert json.loads(text)["technology"] == "rsfq"


def test_csv_round_trip(run_and_estimate):
    run, _ = run_and_estimate
    text = to_csv(layer_records(run))
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 3
    assert rows[0]["layer"] == "conv1"


def test_csv_rejects_empty():
    with pytest.raises(ValueError):
        to_csv([])
