"""Multi-register (multi-kernel) PE functional tests (Section V-B3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional.multikernel import MultiKernelArray, conv2d_multikernel
from repro.functional.reference import conv2d_reference


def _case(seed, channels=3, size=6, filters=17, kernel=3):
    rng = np.random.default_rng(seed)
    ifmap = rng.integers(-8, 8, size=(channels, size, size)).astype(np.int64)
    weights = rng.integers(-4, 4, size=(filters, channels, kernel, kernel)).astype(np.int64)
    return ifmap, weights


def test_filters_per_mapping():
    array = MultiKernelArray(8, 4, registers=8)
    assert array.filters_per_mapping == 32


def test_register_planes_partition_filters():
    array = MultiKernelArray(2, 2, registers=2)
    tile = np.arange(8, dtype=np.int64).reshape(2, 4)
    array.load_weights(tile)
    streams = np.array([[1, 0], [0, 1]], dtype=np.int64)
    out = array.run(streams)
    # 4 filters: columns 0-1 are register 0, columns 2-3 register 1.
    assert out.shape == (4, 2)
    assert np.array_equal(out[0], streams[0] * tile[0, 0] + streams[1] * tile[1, 0])
    assert np.array_equal(out[2], streams[0] * tile[0, 2] + streams[1] * tile[1, 2])


def test_invalid_parameters():
    with pytest.raises(ValueError):
        MultiKernelArray(2, 2, registers=0)
    array = MultiKernelArray(2, 2, registers=2)
    with pytest.raises(ValueError):
        array.load_weights(np.ones((2, 5), dtype=np.int64))
    with pytest.raises(ValueError):
        conv2d_multikernel(
            np.ones((2, 4, 4), dtype=np.int64),
            np.ones((1, 3, 1, 1), dtype=np.int64),
            4, 2, 2,
        )


@pytest.mark.parametrize("registers", [1, 2, 4, 8])
def test_multikernel_equals_reference(registers):
    ifmap, weights = _case(seed=registers)
    expected = conv2d_reference(ifmap, weights, 1, 1)
    actual = conv2d_multikernel(ifmap, weights, 8, 2, registers, 1, 1)
    assert np.array_equal(expected, actual)


def test_registers_reduce_mappings_not_results():
    """SuperNPU's claim: 8 registers change the schedule, not the math."""
    ifmap, weights = _case(seed=42, filters=16)
    flat = conv2d_multikernel(ifmap, weights, 27, 2, 1, 1, 1)
    stacked = conv2d_multikernel(ifmap, weights, 27, 2, 8, 1, 1)
    assert np.array_equal(flat, stacked)


@given(
    seed=st.integers(0, 1000),
    registers=st.integers(1, 4),
    cols=st.integers(1, 4),
    filters=st.integers(1, 10),
)
@settings(max_examples=20, deadline=None)
def test_multikernel_property(seed, registers, cols, filters):
    ifmap, weights = _case(seed=seed, channels=2, size=5, filters=filters, kernel=2)
    expected = conv2d_reference(ifmap, weights, 1, 0)
    actual = conv2d_multikernel(ifmap, weights, 8, cols, registers, 1, 0)
    assert np.array_equal(expected, actual)
