"""Generated-netlist MAC unit tests (the analytic model, cross-checked)."""

import pytest

from repro.uarch.generated import GeneratedMACUnit
from repro.uarch.mac import MACUnit


@pytest.fixture(scope="module")
def generated():
    return GeneratedMACUnit(8, 24)


@pytest.fixture(scope="module")
def analytic():
    return MACUnit(8, 24)


def test_netlist_still_computes(generated):
    assert generated.verify(samples=6)


def test_generated_counts_upper_bound_analytic(rsfq, generated, analytic):
    """The naive shift-add netlist must cost more than the carry-save
    model, but stay within a small constant factor."""
    gen_total = generated.gate_counts().total()
    ana_total = analytic.gate_counts().total()
    assert ana_total < gen_total < 5 * ana_total


def test_generated_is_dff_dominated(generated):
    counts = generated.gate_counts()
    from repro.device import cells

    logic = counts[cells.AND] + counts[cells.XOR] + counts[cells.OR]
    assert counts[cells.DFF] > 2 * logic


def test_generated_pipeline_deeper_than_carry_save(generated, analytic):
    assert generated.pipeline_stages > analytic.pipeline_stages


def test_same_clock_as_analytic(rsfq, generated, analytic):
    """Depth costs latency, not clock rate: both run at the AND-pair bound."""
    assert generated.frequency(rsfq).frequency_ghz == pytest.approx(
        analytic.frequency(rsfq).frequency_ghz
    )


def test_fanout_splitters_charged(generated):
    from repro.device import cells

    assert generated.gate_counts()[cells.SPLITTER] > 0


def test_psum_width_validation():
    with pytest.raises(ValueError):
        GeneratedMACUnit(8, 8)
