"""Gate- and microarchitecture-level estimator tests."""

import math


from repro.device import cells
from repro.estimator.gate_level import gate_table
from repro.estimator.uarch_level import estimate_unit
from repro.uarch.buffers import ShiftRegisterBuffer
from repro.uarch.mac import MACUnit
from repro.uarch.network import SystolicChain


def test_gate_table_covers_library(rsfq):
    table = gate_table(rsfq)
    assert set(table) == set(rsfq.names)


def test_gate_table_row_contents(rsfq):
    row = gate_table(rsfq)[cells.AND]
    assert row.delay_ps == 8.3
    assert row.static_power_uw == 3.6
    assert math.isclose(row.area_um2, 11 * rsfq.process.jj_area_um2)


def test_estimate_unit_fields(rsfq):
    estimate = estimate_unit(MACUnit(8, 24), rsfq, name="mac8")
    assert estimate.name == "mac8"
    assert estimate.kind == "mac"
    assert estimate.gate_count > 0
    assert estimate.jj_count > estimate.gate_count  # several JJs per gate
    assert estimate.has_frequency
    assert 60.0 <= estimate.frequency_ghz <= 66.7
    assert estimate.static_power_w > 0
    assert estimate.area_mm2 > 0
    assert "XOR->AND" in estimate.critical_pair or "carry" in estimate.critical_pair


def test_estimate_unit_energy_split_consistent(rsfq):
    estimate = estimate_unit(MACUnit(8, 24), rsfq)
    assert math.isclose(
        estimate.access_energy_clocked_j + estimate.access_energy_wire_j,
        estimate.access_energy_j,
        rel_tol=1e-12,
    )


def test_ersfq_unit_has_no_static_power(ersfq):
    estimate = estimate_unit(MACUnit(8, 24), ersfq)
    assert estimate.static_power_w == 0.0
    assert estimate.access_energy_j > 0


def test_ersfq_doubles_unit_energy(rsfq, ersfq):
    unit = ShiftRegisterBuffer(1024, io_width=4)
    e_rsfq = estimate_unit(unit, rsfq).access_energy_j
    e_ersfq = estimate_unit(unit, ersfq).access_energy_j
    assert math.isclose(e_ersfq, 2 * e_rsfq, rel_tol=1e-12)


def test_network_unit_reports_frequency(rsfq):
    estimate = estimate_unit(SystolicChain(16, 8), rsfq)
    assert estimate.has_frequency  # the DFF-DFF hop is clocked


def test_timing_independent_of_replication(rsfq):
    from repro.estimator.arch_level import ReplicatedUnit

    one = estimate_unit(MACUnit(8, 24), rsfq)
    many = estimate_unit(ReplicatedUnit(MACUnit(8, 24), 100), rsfq)
    assert many.frequency_ghz == one.frequency_ghz
    assert math.isclose(many.static_power_w, 100 * one.static_power_w, rel_tol=1e-9)
