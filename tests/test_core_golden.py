"""Golden-number regression tests — the headline metrics, pinned."""

import pytest

from repro.core.golden import GOLDEN, check, current_record


@pytest.fixture(scope="module")
def record():
    return current_record()


def test_all_goldens_hold(record):
    violations = check(record)
    assert not violations, "\n".join(violations)


def test_record_covers_every_golden(record):
    assert set(GOLDEN) <= set(record)


def test_check_flags_drift(record):
    drifted = dict(record)
    drifted["supernpu_speedup"] = record["supernpu_speedup"] * 2
    violations = check(drifted)
    assert any("supernpu_speedup" in violation for violation in violations)


def test_check_flags_missing_metric(record):
    partial = {k: v for k, v in record.items() if k != "npu_frequency_ghz"}
    violations = check(partial)
    assert any("missing" in violation for violation in violations)


def test_goldens_track_the_paper():
    """The stored goldens themselves sit in the paper's bands."""
    assert GOLDEN["npu_frequency_ghz"][0] == 52.6  # Table I
    assert 10 <= GOLDEN["supernpu_speedup"][0] <= 50  # paper: 23x
    assert 900 <= GOLDEN["rsfq_chip_power_w"][0] <= 1030  # paper: 964 W
    assert 200 <= GOLDEN["ersfq_perf_per_watt_free"][0] <= 900  # paper: 490x
