"""Shift-register buffer geometry and structure tests."""

import pytest

from repro.device import cells
from repro.uarch.buffers import IntegratedOutputBuffer, ShiftRegisterBuffer

MIB = 1024 * 1024


def test_paper_65536_cycle_movement():
    """Section V-A2: moving 16 MB through 256 B/cycle takes 65,536 cycles."""
    psum = ShiftRegisterBuffer(8 * MIB, io_width=256)
    ofmap = ShiftRegisterBuffer(8 * MIB, io_width=256)
    assert psum.row_length_entries + ofmap.row_length_entries == 65536


def test_row_length_is_capacity_over_width():
    buf = ShiftRegisterBuffer(8 * MIB, io_width=256)
    assert buf.row_length_entries == 8 * MIB // 256


def test_division_shortens_chunks():
    undivided = ShiftRegisterBuffer(12 * MIB, io_width=256, division=1)
    divided = ShiftRegisterBuffer(12 * MIB, io_width=256, division=64)
    assert divided.chunk_length_entries == undivided.chunk_length_entries // 64
    assert divided.rewind_cycles() < undivided.rewind_cycles()


def test_chunk_capacity():
    buf = ShiftRegisterBuffer(24 * MIB, io_width=256, division=256)
    # Fig. 19: the integrated output buffer is 256 chunks of 96 KB.
    assert buf.chunk_capacity_bytes == 96 * 1024


def test_drain_cycles_default_full_capacity():
    buf = ShiftRegisterBuffer(1024, io_width=4)
    assert buf.drain_cycles() == 256
    assert buf.drain_cycles(512) == 128
    assert buf.drain_cycles(0) == 0


def test_storage_uses_dense_sr_cells():
    buf = ShiftRegisterBuffer(1024, io_width=4)
    counts = buf.gate_counts()
    assert counts[cells.SRCELL] == 1024 * 8
    assert counts[cells.DFF] == 0


def test_division_adds_mux_demux_trees():
    flat = ShiftRegisterBuffer(1 * MIB, io_width=64, division=1).gate_counts()
    chunked = ShiftRegisterBuffer(1 * MIB, io_width=64, division=8).gate_counts()
    assert flat[cells.MUX] == 0
    assert chunked[cells.MUX] == 7 * 64 * 8
    assert chunked[cells.DEMUX] == chunked[cells.MUX]


def test_integrated_buffer_doubles_select_trees():
    plain = ShiftRegisterBuffer(1 * MIB, io_width=64, division=8).gate_counts()
    integrated = IntegratedOutputBuffer(1 * MIB, io_width=64, division=8).gate_counts()
    assert integrated[cells.MUX] == 2 * plain[cells.MUX]


def test_integrated_buffer_moves_for_free():
    buf = IntegratedOutputBuffer(12 * MIB, io_width=256, division=64)
    assert buf.inter_buffer_move_cycles() == 0


def test_counter_flow_bounds_buffer_clock(rsfq):
    """The feedback loop forces counter-flow: ~71 GHz (Fig. 7c)."""
    buf = ShiftRegisterBuffer(1024, io_width=4)
    assert buf.frequency(rsfq).frequency_ghz == pytest.approx(71.4, rel=0.01)


def test_mux_overhead_grows_superlinearly(rsfq):
    """Fig. 20: 'further division incurs exponentially increasing area'."""
    areas = [
        ShiftRegisterBuffer(12 * MIB, io_width=256, division=d).area_mm2(rsfq)
        for d in (64, 1024, 4096)
    ]
    assert areas[0] < areas[1] < areas[2]
    assert areas[2] - areas[1] > areas[1] - areas[0]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"capacity_bytes": -1, "io_width": 1},
        {"capacity_bytes": 64, "io_width": 0},
        {"capacity_bytes": 64, "io_width": 1, "entry_bits": 0},
        {"capacity_bytes": 64, "io_width": 1, "division": 0},
    ],
)
def test_invalid_buffer_parameters(kwargs):
    with pytest.raises(ValueError):
        ShiftRegisterBuffer(**kwargs)


def test_drain_negative_rejected():
    with pytest.raises(ValueError):
        ShiftRegisterBuffer(64, io_width=1).drain_cycles(-1)
