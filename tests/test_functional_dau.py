"""Functional DAU tests: stream selection, bubbles, delay schedule."""

import numpy as np
import pytest

from repro.functional.dau import (
    aligned_streams,
    delay_schedule,
    reduction_index_to_weight,
    row_stream,
)


def test_reduction_index_decomposition():
    # 2 channels, 3x3 kernel: index = c*9 + r*3 + s.
    assert reduction_index_to_weight(0, 2, 3, 3) == (0, 0, 0)
    assert reduction_index_to_weight(4, 2, 3, 3) == (0, 1, 1)
    assert reduction_index_to_weight(9, 2, 3, 3) == (1, 0, 0)
    assert reduction_index_to_weight(17, 2, 3, 3) == (1, 2, 2)
    with pytest.raises(ValueError):
        reduction_index_to_weight(18, 2, 3, 3)


def test_row_stream_matches_im2col():
    """Each row's stream must equal the corresponding im2col row."""
    rng = np.random.default_rng(1)
    ifmap = rng.integers(1, 9, size=(2, 5, 5)).astype(np.int64)
    kernel_h = kernel_w = 3
    for index in range(2 * 9):
        channel, r, s = reduction_index_to_weight(index, 2, 3, 3)
        stream = row_stream(ifmap, index, kernel_h, kernel_w, stride=1, padding=0)
        expected = np.array(
            [ifmap[channel, e + r, f + s] for e in range(3) for f in range(3)]
        )
        assert np.array_equal(stream, expected)


def test_bubbles_inserted_at_padding():
    """Fig. 9: zero 'bubbles' fill positions that fall into the padding."""
    ifmap = np.ones((1, 3, 3), dtype=np.int64)
    stream = row_stream(ifmap, 0, 3, 3, stride=1, padding=1)
    # Weight (0,0,0): the window's top-left corner misses the image for the
    # entire first output row and first output column.
    grid = stream.reshape(3, 3)
    assert np.all(grid[0, :] == 0)
    assert np.all(grid[:, 0] == 0)
    assert np.all(grid[1:, 1:] == 1)


def test_stride_selects_alternate_pixels():
    ifmap = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
    stream = row_stream(ifmap, 0, 1, 1, stride=2, padding=0)
    assert np.array_equal(stream, np.array([0, 2, 8, 10]))


def test_aligned_streams_stacking():
    ifmap = np.arange(8, dtype=np.int64).reshape(2, 2, 2)
    streams = aligned_streams(ifmap, [0, 1], 1, 1)
    assert streams.shape == (2, 4)
    assert np.array_equal(streams[0], ifmap[0].ravel())
    assert np.array_equal(streams[1], ifmap[1].ravel())


def test_delay_schedule_paper_example():
    """Fig. 9: 3-stage PEs delay the second row by 2 cycles."""
    assert delay_schedule(4, 3) == [0, 2, 4, 6]
    assert delay_schedule(3, 15) == [0, 14, 28]
    with pytest.raises(ValueError):
        delay_schedule(0, 3)
