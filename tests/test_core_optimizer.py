"""Design-space sweep tests (Figs. 20-22 shapes).

The sweeps run all six workloads per point; to keep the unit suite fast we
sweep a reduced set here and leave the full-span runs to the benchmarks.
"""

import pytest

from repro.core.optimizer import (
    balanced_buffer_bytes,
    buffer_sweep,
    register_sweep,
    resource_config,
    resource_sweep,
)
from repro.uarch.config import MIB
from repro.workloads.models import alexnet, mobilenet, resnet50


@pytest.fixture(scope="module")
def workloads():
    return [alexnet(), resnet50(), mobilenet()]


def test_fig20_shape(workloads):
    points = buffer_sweep(workloads=workloads, divisions=(2, 16, 64, 1024))
    labels = [p.label for p in points]
    assert labels[0] == "Baseline"
    assert labels[1] == "+Integration (Division 2)"
    single = [p.metrics["single_batch"] for p in points]
    max_batch = [p.metrics["max_batch"] for p in points]
    area = [p.metrics["area"] for p in points]
    # Performance rises with division and integration...
    assert single[1] > 1.5
    assert single[-1] > single[1]
    assert max_batch[-1] >= single[-1]
    # ...but high division costs area (Fig. 20's right side).
    assert area[-1] > area[1]
    assert max(max_batch) > 10  # paper: ~20x at division 64


def test_fig20_single_batch_saturates(workloads):
    points = buffer_sweep(workloads=workloads, divisions=(16, 64, 4096))
    single = {p.label: p.metrics["single_batch"] for p in points}
    # 64-fold more division past 64 buys almost nothing (paper saturates
    # at division 64); allow a generous 35% residual.
    assert single["+Division 4096"] < 1.35 * single["+Division 64"]
    assert single["+Division 64"] >= single["+Division 16"]


def test_balanced_buffer_bytes_matches_fig21():
    """Fig. 21 x-axis: (256, 24 MB) ... (64, ~46 MB) ... (16, ~51 MB)."""
    assert balanced_buffer_bytes(256) == 24 * MIB
    b64 = balanced_buffer_bytes(64) / MIB
    b16 = balanced_buffer_bytes(16) / MIB
    assert 40 <= b64 <= 55
    assert b16 > b64
    assert b16 <= 60


def test_balanced_buffer_rejects_wider_than_reference():
    with pytest.raises(ValueError):
        balanced_buffer_bytes(512)


def test_resource_config_keeps_chunk_length_constant():
    """Section V-B2: division scales so chunk lengths stay put."""
    from repro.uarch.buffers import ShiftRegisterBuffer

    lengths = set()
    for width in (256, 128, 64):
        config = resource_config(width)
        buf = ShiftRegisterBuffer(
            config.output_buffer_bytes,
            io_width=config.pe_array_width,
            division=config.output_division,
        )
        lengths.add(buf.chunk_length_entries)
    # Division degrees are rounded to powers of the 64-chunk reference, so
    # chunk lengths stay within a narrow band rather than exactly equal.
    assert max(lengths) < 1.5 * min(lengths)


def test_fig21_added_buffer_beats_fixed(workloads):
    points = resource_sweep(workloads=workloads, widths=(128, 64))
    for point in points:
        assert (
            point.metrics["max_batch_added_buffer"]
            >= point.metrics["max_batch_fixed_buffer"] * 0.95
        )
        assert point.metrics["max_batch_added_buffer"] > 5  # far above Baseline


def test_fig22_registers_help_width64(workloads):
    rows = register_sweep(workloads=workloads, widths=(64,), registers=(1, 8))
    one, eight = rows[64]
    assert eight.metrics["speedup"] > one.metrics["speedup"]


def test_fig22_width64_scales_better_with_registers(workloads):
    """Fig. 22: the 128-wide array 'cannot improve its performance further
    due to its lower computational intensity', while the 64-wide one keeps
    gaining from extra registers."""
    rows = register_sweep(workloads=workloads, widths=(64, 128), registers=(1, 8))
    gain64 = rows[64][1].metrics["speedup"] / rows[64][0].metrics["speedup"]
    gain128 = rows[128][1].metrics["speedup"] / rows[128][0].metrics["speedup"]
    assert gain64 > gain128
    assert gain64 > 1.1
