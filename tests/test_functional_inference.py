"""End-to-end quantized inference on the functional systolic NPU."""

import numpy as np
import pytest

from repro.functional.inference import (
    FunctionalNPU,
    QuantConvLayer,
    QuantFCLayer,
    TinyQuantCNN,
    max_pool2d,
    top1_agreement,
)


@pytest.fixture(scope="module")
def npu():
    return FunctionalNPU(array_rows=16, array_cols=4)


@pytest.fixture(scope="module")
def model():
    return TinyQuantCNN.random(seed=1)


def test_max_pool():
    activation = np.arange(16, dtype=float).reshape(1, 4, 4)
    pooled = max_pool2d(activation)
    assert pooled.shape == (1, 2, 2)
    assert pooled[0, 0, 0] == 5
    assert pooled[0, 1, 1] == 15


def test_conv_layer_close_to_float(npu):
    rng = np.random.default_rng(0)
    layer = QuantConvLayer(rng.normal(0, 0.5, size=(4, 2, 3, 3)), padding=1, relu=False)
    activation = rng.normal(0, 1, size=(2, 8, 8))
    from repro.functional.reference import conv2d_reference

    quantized = npu.run_conv(layer, activation)
    reference = conv2d_reference(activation, layer.weights, 1, 1)
    rel_err = np.linalg.norm(quantized - reference) / np.linalg.norm(reference)
    assert rel_err < 0.05


def test_relu_applied(npu):
    rng = np.random.default_rng(2)
    layer = QuantConvLayer(rng.normal(0, 0.5, size=(4, 2, 3, 3)), padding=1, relu=True)
    output = npu.run_conv(layer, rng.normal(0, 1, size=(2, 8, 8)))
    assert output.min() >= 0.0


def test_fc_layer_close_to_float(npu):
    rng = np.random.default_rng(3)
    layer = QuantFCLayer(rng.normal(0, 0.5, size=(10, 32)))
    activation = rng.normal(0, 1, size=(2, 4, 4))
    quantized = npu.run_fc(layer, activation)
    reference = layer.weights @ activation.reshape(-1)
    rel_err = np.linalg.norm(quantized - reference) / np.linalg.norm(reference)
    assert rel_err < 0.05
    assert quantized.shape == (10,)


def test_full_network_top1_agreement(model, npu):
    """Int8 systolic inference agrees with the float reference on argmax."""
    rng = np.random.default_rng(4)
    images = rng.normal(0, 1, size=(10, 1, 12, 12))
    assert top1_agreement(model, npu, images) >= 0.9


def test_full_network_numeric_error(model, npu):
    rng = np.random.default_rng(5)
    image = rng.normal(0, 1, size=(1, 12, 12))
    quantized = model.forward_systolic(image, npu)
    reference = model.forward_reference(image)
    rel_err = np.linalg.norm(quantized - reference) / np.linalg.norm(reference)
    assert rel_err < 0.12  # three quantized stages compound error


def test_agreement_validates_shape(model, npu):
    with pytest.raises(ValueError):
        top1_agreement(model, npu, np.zeros((1, 12, 12)))
