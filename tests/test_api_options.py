"""The redesigned execution surface of ``repro.api``.

Covers the two API-unification pieces of the batched-solver redesign:

* :class:`repro.api.RunOptions` — one options bundle shared by every
  verb, replacing the per-verb ``runner=`` keyword (which still works
  but warns exactly once per verb);
* :func:`repro.api.evaluate_grid` — the grid-shaped plan verb, proven
  point-for-point identical to :func:`repro.api.run_plan`.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import api
from repro.core.designs import supernpu
from repro.core.jobs import JobRunner
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    library_axis,
    workload_axis,
)
from repro.errors import ConfigError


@pytest.fixture()
def tiny_plan(tiny_network, rsfq):
    grid = Grid("curve", (
        config_axis((supernpu(),)),
        workload_axis((tiny_network,)),
        batch_axis((1, 2, 4)),
        library_axis((rsfq,)),
    ))
    return ExperimentPlan("tiny", (grid,), description="options test grid")


# -- RunOptions -------------------------------------------------------------

def test_run_options_defaults_and_frozen():
    options = api.RunOptions()
    assert options.jobs == 1
    assert options.cache_dir is None
    assert not options.no_cache
    assert options.retries == 2
    assert options.timeout_s is None
    assert not options.hotspot
    with pytest.raises(AttributeError):
        options.jobs = 4  # frozen: one immutable bundle, safely shareable


def test_options_and_runner_conflict(supernpu_config):
    with pytest.raises(ConfigError) as err:
        api.estimate(supernpu_config,
                     options=api.RunOptions(),
                     runner=JobRunner())
    assert err.value.code == "api.options_conflict"


def test_estimate_with_options_matches_plain(supernpu_config):
    plain = api.estimate(supernpu_config)
    scoped = api.estimate(supernpu_config, options=api.RunOptions())
    assert scoped.frequency_ghz == plain.frequency_ghz
    assert scoped.static_power_w == plain.static_power_w


def test_simulate_with_options_matches_plain(supernpu_config, tiny_network):
    plain = api.simulate(supernpu_config, tiny_network, batch=2)
    scoped = api.simulate(supernpu_config, tiny_network, batch=2,
                          options=api.RunOptions())
    assert scoped.total_cycles == plain.total_cycles
    assert scoped.mac_per_s == plain.mac_per_s


def test_options_cache_dir_caches_results(tmp_path, supernpu_config,
                                          tiny_network):
    options = api.RunOptions(cache_dir=tmp_path / "cache")
    first = api.simulate(supernpu_config, tiny_network, batch=2,
                         options=options)
    second = api.simulate(supernpu_config, tiny_network, batch=2,
                          options=options)
    assert second.total_cycles == first.total_cycles
    assert any((tmp_path / "cache").iterdir())  # something was persisted


def test_options_no_cache_overrides_cache_dir(tmp_path, supernpu_config,
                                              tiny_network):
    options = api.RunOptions(cache_dir=tmp_path / "cache", no_cache=True)
    api.simulate(supernpu_config, tiny_network, batch=1, options=options)
    assert not (tmp_path / "cache").exists()


def test_options_hotspot_writes_collapsed_stacks(tmp_path, supernpu_config,
                                                 tiny_network):
    out = tmp_path / "hotspot.collapsed"
    api.simulate(supernpu_config, tiny_network, batch=1,
                 options=api.RunOptions(hotspot=True, hotspot_out=out))
    assert out.exists()


# -- the deprecated runner= keyword -----------------------------------------

def test_runner_kwarg_warns_once_per_verb(supernpu_config):
    api._RUNNER_DEPRECATION_WARNED.discard("estimate")
    runner = JobRunner()
    with pytest.warns(DeprecationWarning, match="runner= keyword"):
        api.estimate(supernpu_config, runner=runner)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        api.estimate(supernpu_config, runner=runner)


def test_runner_kwarg_still_executes(supernpu_config):
    api._RUNNER_DEPRECATION_WARNED.add("estimate")  # silence, not the point
    plain = api.estimate(supernpu_config)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = api.estimate(supernpu_config, runner=JobRunner())
    assert legacy.frequency_ghz == plain.frequency_ghz


# -- evaluate_grid ----------------------------------------------------------

def test_evaluate_grid_matches_run_plan_pointwise(tiny_plan):
    resultset = api.run_plan(tiny_plan)
    evaluation = api.evaluate_grid(tiny_plan)
    assert evaluation.plan_hash == resultset.plan_hash
    flat = list(evaluation.grid().results.ravel())
    assert len(flat) == len(resultset.results) == 3
    for grid_point, plan_point in zip(flat, resultset.results):
        assert grid_point.run.total_cycles == plan_point.run.total_cycles
        assert grid_point.run.mac_per_s == plan_point.run.mac_per_s


def test_evaluated_grid_shape_and_metric_array(tiny_plan):
    grid = api.evaluate_grid(tiny_plan).grid()
    assert grid.shape == (1, 1, 3, 1)
    assert grid.axis_names == ("config", "workload", "batch", "library")
    throughput = grid.array("mac_per_s")
    assert throughput.shape == (1, 1, 3, 1)
    assert np.isfinite(throughput).all()
    # Larger batches never lower throughput on this tiny workload.
    flat = throughput.ravel()
    assert flat[2] >= flat[0]


def test_evaluated_grid_label_lookup(tiny_plan):
    grid = api.evaluate_grid(tiny_plan).grid()
    point = grid.result(config="SuperNPU", workload="TinyNet",
                        batch="2", library="rsfq")
    assert point.run.batch == 2
    with pytest.raises(ConfigError) as err:
        grid.result(config="SuperNPU", workload="TinyNet", library="rsfq")
    assert err.value.code == "plan.missing_axis"
    with pytest.raises(ConfigError) as err:
        grid.result(config="SuperNPU", workload="TinyNet",
                    batch="99", library="rsfq")
    assert err.value.code == "plan.unknown_label"


def test_grid_evaluation_unknown_grid(tiny_plan):
    evaluation = api.evaluate_grid(tiny_plan)
    assert [g.name for g in evaluation] == ["curve"]
    with pytest.raises(ConfigError) as err:
        evaluation["nope"]
    assert err.value.code == "plan.unknown_grid"


def test_evaluate_grid_with_options_and_cache(tmp_path, tiny_plan):
    options = api.RunOptions(cache_dir=tmp_path / "cache")
    first = api.evaluate_grid(tiny_plan, options=options)
    second = api.evaluate_grid(tiny_plan, options=options)
    np.testing.assert_array_equal(first.grid().array("total_cycles"),
                                  second.grid().array("total_cycles"))
