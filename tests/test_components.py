"""Component-estimator registry tests.

Covers the registry itself, the registry-backed memory-model factory,
technology wiring through ``NPUConfig``, the cross-temperature energy
report, the golden bitwise-invariance contract (default technologies
reproduce every pre-registry hash), and the end-to-end technology
plan-axis sweep.
"""

import math

import pytest

from repro import api
from repro.components import (
    DEFAULT_LINK_TECHNOLOGY,
    DEFAULT_MEMORY_TECHNOLOGY,
    ComponentEstimator,
    all_components,
    component_by_name,
    component_names,
    cross_temperature_report,
    register,
    unregister,
)
from repro.components.study import TECHNOLOGY_PAIRS, memory_technology_plan
from repro.core.designs import supernpu
from repro.core.jobs import (
    SimTask,
    _canonical_hash,
    config_signature,
    estimate_key,
    estimate_to_dict,
    result_to_dict,
)
from repro.core.plan import execute, plan_by_name, technology_axis
from repro.device.cells import rsfq_library
from repro.errors import ConfigError
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.memory import MemoryModel, memory_model_for
from repro.uarch.config import NPUConfig
from repro.workloads.models import resnet50


# -- the registry -----------------------------------------------------------

def test_builtin_components_registered():
    names = component_names()
    for required in ("dram-300k", "dram-77k", "cryo-sram-4k",
                     "4k-300k-link", "4k-77k-link", "chip2chip-ptl"):
        assert required in names
    assert all(c.kind == "memory" for c in all_components(kind="memory"))
    assert all(c.kind == "link" for c in all_components(kind="link"))


def test_unknown_component_error_lists_registry():
    with pytest.raises(ConfigError) as excinfo:
        component_by_name("sram-from-the-future")
    assert excinfo.value.code == "components.unknown"
    assert "dram-300k" in (excinfo.value.hint or "")


def test_wrong_kind_lookup_rejected():
    with pytest.raises(ConfigError) as excinfo:
        component_by_name("dram-300k", kind="link")
    assert excinfo.value.code == "components.wrong_kind"


def test_duplicate_registration_rejected():
    spare = ComponentEstimator(name="test-spare-ram", kind="memory",
                               stage_k=4.2)
    register(spare)
    try:
        with pytest.raises(ConfigError) as excinfo:
            register(spare)
        assert excinfo.value.code == "components.duplicate"
    finally:
        unregister("test-spare-ram")


def test_component_validation():
    with pytest.raises(ConfigError, match="kind"):
        ComponentEstimator(name="x", kind="fpga", stage_k=4.2)
    with pytest.raises(ConfigError, match="stage"):
        ComponentEstimator(name="x", kind="memory", stage_k=10.0)
    with pytest.raises(ConfigError, match="action"):
        ComponentEstimator(name="x", kind="memory", stage_k=4.2,
                           action_energy_pj_per_byte={"jump": 1.0})
    with pytest.raises(ConfigError, match="bandwidth"):
        ComponentEstimator(name="x", kind="memory", stage_k=4.2,
                           bandwidth_gbps=0.0)


def test_action_energy_math():
    dram = component_by_name("dram-300k")
    assert math.isclose(dram.action_energy_j("read", 1e12), 31.0)
    assert dram.action_energy_j("transfer", 100) == 0.0  # undeclared
    with pytest.raises(ConfigError):
        dram.action_energy_j("jump")
    sram = component_by_name("cryo-sram-4k")
    assert math.isclose(sram.area_mm2(2 * 1024 * 1024), 3.2)


# -- the memory-model factory ----------------------------------------------

def test_default_factory_matches_legacy_construction():
    config = supernpu()
    model = memory_model_for(config, 52.6)
    assert model == MemoryModel(config.memory_bandwidth_gbps, 52.6)


def test_factory_uses_component_bandwidth():
    config = supernpu().with_updates(memory_technology="cryo-sram-4k")
    assert memory_model_for(config, 52.6).bandwidth_gbps == 1100.0


def test_factory_caps_at_link_bandwidth():
    config = supernpu().with_updates(memory_technology="cryo-sram-4k",
                                     link_technology="chip2chip-ptl")
    assert memory_model_for(config, 52.6).bandwidth_gbps == 500.0


def test_factory_handles_configs_without_technology_fields():
    class Bare:
        memory_bandwidth_gbps = 300.0

    model = memory_model_for(Bare(), 1.0)
    assert model.bandwidth_gbps == 300.0


def test_memory_model_validates_inputs():
    with pytest.raises(ConfigError) as excinfo:
        MemoryModel(0.0, 52.6)
    assert excinfo.value.code == "config.invalid_value"
    with pytest.raises(ConfigError):
        MemoryModel(300.0, -1.0)
    # ConfigError subclasses ValueError: legacy callers keep working.
    with pytest.raises(ValueError):
        MemoryModel(-5.0, 52.6)


# -- technology wiring through NPUConfig -----------------------------------

def test_config_defaults_are_registry_defaults():
    config = NPUConfig(name="x")
    assert config.memory_technology == DEFAULT_MEMORY_TECHNOLOGY
    assert config.link_technology == DEFAULT_LINK_TECHNOLOGY


def test_config_rejects_unknown_technology():
    with pytest.raises(ConfigError) as excinfo:
        NPUConfig(name="x", memory_technology="stone-tablet")
    assert excinfo.value.code == "components.unknown"
    with pytest.raises(ConfigError):
        NPUConfig(name="x", link_technology="dram-300k")  # wrong kind


def test_estimate_components_lookup():
    est = estimate_npu(supernpu(), rsfq_library())
    parts = est.components()
    assert parts["memory"].name == DEFAULT_MEMORY_TECHNOLOGY
    assert parts["link"].name == DEFAULT_LINK_TECHNOLOGY
    assert est.off_chip_access_energy_j(1e12) == pytest.approx(31.0)


def test_unknown_unit_error_is_structured():
    est = estimate_npu(supernpu(), rsfq_library())
    with pytest.raises(ConfigError) as excinfo:
        est.unit_access_energy_j("flux_capacitor")
    assert excinfo.value.code == "estimator.unknown_unit"
    assert "pe_array" in (excinfo.value.hint or "")


# -- key invariance + distinctness -----------------------------------------

#: Pre-refactor golden values (captured on the seed of this PR).  With
#: default technologies every key, payload, and plan hash MUST stay
#: bitwise-identical to these — the refactor's central invariant.
GOLDEN_TASK_KEY = \
    "efb93a6dd775275fd45dc2090cf85e14e4a98a4f3f3cfab741beb1c6c72b4b79"
GOLDEN_ESTIMATE_KEY = \
    "c845524b4b24c4191e80d93b6c9d2ca775cf31da5918703e85c41af212102ca7"
GOLDEN_ESTIMATE_PAYLOAD = \
    "95fd7ba492bb4672f7a2ac06144a35ef8b1c6ba80d2221a6b23475b446e201ca"
GOLDEN_SIMULATE_PAYLOAD = \
    "9c6c82004b4eedbe00d0ffef801c4ed895575ad24c35f925eb52e60e0ad20fa3"
GOLDEN_PLAN_HASHES = {
    "fig21_resources":
        "9d1b1822dab2c66d58135e69fdee9602a1eb81986623dea17d8f744aeb416ee4",
    "fig20_buffers":
        "4ee6678162473160eb42e744306d1c7eb81547bdaf305d8e23238eb39db6b43f",
}


def test_golden_default_technology_keys_unchanged():
    config, network, library = supernpu(), resnet50(), rsfq_library()
    assert SimTask(config, network, 30, library).key() == GOLDEN_TASK_KEY
    assert estimate_key(config, library) == GOLDEN_ESTIMATE_KEY


def test_golden_default_technology_payloads_unchanged():
    config, library = supernpu(), rsfq_library()
    est = estimate_npu(config, library)
    assert _canonical_hash(estimate_to_dict(est)) == GOLDEN_ESTIMATE_PAYLOAD
    run = simulate(config, resnet50(), 30, estimate=est)
    assert _canonical_hash(result_to_dict(run)) == GOLDEN_SIMULATE_PAYLOAD


def test_golden_plan_hashes_unchanged():
    for name, expected in GOLDEN_PLAN_HASHES.items():
        assert plan_by_name(name).plan_hash() == expected, name


def test_config_signature_omits_only_default_technologies():
    default = config_signature(supernpu())
    assert "memory_technology" not in default
    assert "link_technology" not in default
    swept = config_signature(
        supernpu().with_updates(memory_technology="dram-77k"))
    assert swept["memory_technology"] == "dram-77k"
    assert "link_technology" not in swept


def test_non_default_technology_changes_every_key():
    network, library = resnet50(), rsfq_library()
    base = supernpu()
    swept = base.with_updates(memory_technology="cryo-sram-4k")
    assert SimTask(base, network, 30, library).key() != \
        SimTask(swept, network, 30, library).key()
    assert estimate_key(base, library) != estimate_key(swept, library)


def test_estimate_payload_roundtrip_preserves_technology():
    from repro.core.jobs import estimate_from_dict

    config = supernpu().with_updates(memory_technology="dram-77k",
                                     link_technology="4k-77k-link")
    est = estimate_npu(config, rsfq_library())
    restored = estimate_from_dict(estimate_to_dict(est))
    assert restored.config.memory_technology == "dram-77k"
    assert restored.config.link_technology == "4k-77k-link"
    # And a default-technology payload restores defaults.
    est0 = estimate_npu(supernpu(), rsfq_library())
    restored0 = estimate_from_dict(estimate_to_dict(est0))
    assert restored0.config.memory_technology == DEFAULT_MEMORY_TECHNOLOGY


# -- cross-temperature accounting ------------------------------------------

def test_cross_temperature_default_matches_single_stage_cooler():
    """Default technologies: chip heat at 4.2 K, DRAM heat at 300 K."""
    from repro.cooling import PAPER_COOLER
    from repro.simulator.power import power_report

    config = supernpu()
    est = estimate_npu(config, rsfq_library())
    run = simulate(config, resnet50(), 30, estimate=est)
    report = cross_temperature_report(run, est)
    chip = power_report(run, est).total_w
    assert report.dissipation_by_stage_w[4.2] == chip
    # DRAM heat lands at 300 K where cooling is free, so the wall power
    # is the paper's 401x chip charge plus the DRAM watts themselves.
    dram_w = report.dissipation_by_stage_w[300.0]
    assert dram_w > 0
    assert report.wall_power_w == pytest.approx(
        PAPER_COOLER.wall_power_w(chip) + dram_w)
    assert report.free_cooling_wall_power_w == pytest.approx(chip + dram_w)


def test_cross_temperature_cold_memory_pays_cooling():
    """The same joules cost ~401x more when dissipated at 4.2 K."""
    config = supernpu().with_updates(memory_technology="cryo-sram-4k",
                                     link_technology="chip2chip-ptl")
    est = estimate_npu(config, rsfq_library())
    run = simulate(config, resnet50(), 30, estimate=est)
    report = cross_temperature_report(run, est)
    assert report.dissipation_by_stage_w[300.0] == 0.0
    assert report.dissipation_by_stage_w[77.0] == 0.0
    assert report.wall_power_w == pytest.approx(
        report.dissipation_by_stage_w[4.2] * 401.0)


# -- the plan axis, end to end ---------------------------------------------

def test_technology_axis_labels_and_signature():
    axis = technology_axis(supernpu(), ("dram-300k", "dram-77k"))
    assert axis.labels == ("dram-300k", "dram-77k")
    sig_default, sig_77k = (axis.value_signature(v) for v in axis.values)
    assert "memory_technology" not in sig_default["fields"]
    assert sig_77k["fields"]["memory_technology"] == "dram-77k"
    with pytest.raises(ConfigError):
        technology_axis(supernpu(), ("dram-300k",), field_name="psum_bits")


def test_memory_technology_plan_registered():
    assert "memory_technologies" in api.plans()
    plan = plan_by_name("memory_technologies")
    assert plan.num_points == len(TECHNOLOGY_PAIRS) * 3


def test_technology_sweep_distinct_cached_reproducible(tmp_path):
    """Sweeping ≥3 memory technologies end-to-end through the cached job
    engine yields distinct results per technology, all cache hits on the
    second run, and bitwise-identical records both times."""
    from repro.core import jobs

    tiny = resnet50().__class__(
        name="tiny", layers=resnet50().layers[:2])
    plan = memory_technology_plan(workloads=(tiny,), widths=(64,))
    assert plan.num_points == len(TECHNOLOGY_PAIRS) == 3

    with jobs.session(cache_dir=tmp_path) as runner:
        cold = execute(plan, runner=runner)
        assert cold.points_executed == 3 and cold.points_cached == 0
    with jobs.session(cache_dir=tmp_path) as runner:
        warm = execute(plan, runner=runner)
        assert warm.points_cached == 3 and warm.points_executed == 0

    assert cold.plan_hash == warm.plan_hash
    cycles = {r.coord("config"): r.run.total_cycles for r in cold}
    assert len(set(cycles.values())) > 1  # technologies actually differ
    for cold_r, warm_r in zip(cold, warm):
        assert result_to_dict(cold_r.run) == result_to_dict(warm_r.run)
