"""Activity-driven power aggregation tests (Table III behaviour)."""

import pytest

from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.workloads.models import resnet50


def _power(config, library, network, batch):
    estimate = estimate_npu(config, library)
    run = simulate(config, network, batch=batch, estimate=estimate)
    return power_report(run, estimate)


def test_rsfq_power_dominated_by_static(rsfq, supernpu_config):
    report = _power(supernpu_config, rsfq, resnet50(), 30)
    assert report.static_w > 100 * report.dynamic_w
    assert report.total_w == pytest.approx(report.static_w + report.dynamic_w)


def test_ersfq_is_dynamic_only(ersfq, supernpu_config):
    report = _power(supernpu_config, ersfq, resnet50(), 30)
    assert report.static_w == 0.0
    assert report.dynamic_w > 0.0


def test_ersfq_supernpu_lands_near_paper_2w(ersfq, supernpu_config):
    """Table III: ERSFQ-SuperNPU consumes ~1.9 W while running."""
    report = _power(supernpu_config, ersfq, resnet50(), 30)
    assert 0.5 <= report.total_w <= 3.0


def test_rsfq_supernpu_lands_near_paper_964w(rsfq, supernpu_config):
    report = _power(supernpu_config, rsfq, resnet50(), 30)
    assert 900 <= report.total_w <= 1030


def test_ersfq_dynamic_roughly_double_rsfq_dynamic(rsfq, ersfq, supernpu_config):
    """Section IV-A1: ERSFQ doubles switching energy."""
    net = resnet50()
    d_rsfq = _power(supernpu_config, rsfq, net, 30).dynamic_w
    d_ersfq = _power(supernpu_config, ersfq, net, 30).dynamic_w
    assert d_ersfq == pytest.approx(2 * d_rsfq, rel=1e-6)


def test_pe_array_is_largest_dynamic_consumer(ersfq, supernpu_config):
    report = _power(supernpu_config, ersfq, resnet50(), 30)
    assert max(report.dynamic_by_unit, key=report.dynamic_by_unit.get) == "pe_array"


def test_data_activity_bounds(rsfq, supernpu_config, tiny_network):
    estimate = estimate_npu(supernpu_config, rsfq)
    run = simulate(supernpu_config, tiny_network, batch=1, estimate=estimate)
    with pytest.raises(ValueError):
        power_report(run, estimate, data_activity=1.5)
    with pytest.raises(ValueError):
        power_report(run, estimate, data_activity=-0.1)


def test_higher_activity_means_more_power(rsfq, supernpu_config, tiny_network):
    estimate = estimate_npu(supernpu_config, rsfq)
    run = simulate(supernpu_config, tiny_network, batch=1, estimate=estimate)
    low = power_report(run, estimate, data_activity=0.1)
    high = power_report(run, estimate, data_activity=0.9)
    assert high.dynamic_w > low.dynamic_w
