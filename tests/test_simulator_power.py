"""Activity-driven power aggregation tests (Table III behaviour)."""

import pytest

from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.workloads.models import resnet50


def _power(config, library, network, batch):
    estimate = estimate_npu(config, library)
    run = simulate(config, network, batch=batch, estimate=estimate)
    return power_report(run, estimate)


def test_rsfq_power_dominated_by_static(rsfq, supernpu_config):
    report = _power(supernpu_config, rsfq, resnet50(), 30)
    assert report.static_w > 100 * report.dynamic_w
    assert report.total_w == pytest.approx(report.static_w + report.dynamic_w)


def test_ersfq_is_dynamic_only(ersfq, supernpu_config):
    report = _power(supernpu_config, ersfq, resnet50(), 30)
    assert report.static_w == 0.0
    assert report.dynamic_w > 0.0


def test_ersfq_supernpu_lands_near_paper_2w(ersfq, supernpu_config):
    """Table III: ERSFQ-SuperNPU consumes ~1.9 W while running."""
    report = _power(supernpu_config, ersfq, resnet50(), 30)
    assert 0.5 <= report.total_w <= 3.0


def test_rsfq_supernpu_lands_near_paper_964w(rsfq, supernpu_config):
    report = _power(supernpu_config, rsfq, resnet50(), 30)
    assert 900 <= report.total_w <= 1030


def test_ersfq_dynamic_roughly_double_rsfq_dynamic(rsfq, ersfq, supernpu_config):
    """Section IV-A1: ERSFQ doubles switching energy."""
    net = resnet50()
    d_rsfq = _power(supernpu_config, rsfq, net, 30).dynamic_w
    d_ersfq = _power(supernpu_config, ersfq, net, 30).dynamic_w
    assert d_ersfq == pytest.approx(2 * d_rsfq, rel=1e-6)


def test_pe_array_is_largest_dynamic_consumer(ersfq, supernpu_config):
    report = _power(supernpu_config, ersfq, resnet50(), 30)
    assert max(report.dynamic_by_unit, key=report.dynamic_by_unit.get) == "pe_array"


def test_data_activity_bounds(rsfq, supernpu_config, tiny_network):
    estimate = estimate_npu(supernpu_config, rsfq)
    run = simulate(supernpu_config, tiny_network, batch=1, estimate=estimate)
    with pytest.raises(ValueError):
        power_report(run, estimate, data_activity=1.5)
    with pytest.raises(ValueError):
        power_report(run, estimate, data_activity=-0.1)


def test_higher_activity_means_more_power(rsfq, supernpu_config, tiny_network):
    estimate = estimate_npu(supernpu_config, rsfq)
    run = simulate(supernpu_config, tiny_network, batch=1, estimate=estimate)
    low = power_report(run, estimate, data_activity=0.1)
    high = power_report(run, estimate, data_activity=0.9)
    assert high.dynamic_w > low.dynamic_w


# -- hand-computed ActivityTrace ----------------------------------------

def _synthetic_run_and_estimate(baseline_config):
    """A fully hand-specified run + estimate for arithmetic checks.

    50 GHz, 50,000 cycles -> 1 µs runtime.  ``pe_array`` is active for
    10,000 effective cycles at 1 aJ clocked + 2 aJ wire per cycle.
    """
    from repro.estimator.arch_level import NPUEstimate
    from repro.estimator.uarch_level import UnitEstimate
    from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult

    def unit(name, static_w, clocked_j, wire_j):
        return UnitEstimate(
            name=name, kind="logic", gate_count=1, jj_count=1,
            frequency_ghz=50.0, cycle_time_ps=20.0, critical_pair="x",
            static_power_w=static_w, access_energy_j=clocked_j + wire_j,
            access_energy_clocked_j=clocked_j, access_energy_wire_j=wire_j,
            area_mm2=1.0,
        )

    estimate = NPUEstimate(
        config=baseline_config,
        technology="rsfq",
        frequency_ghz=50.0,
        cycle_time_ps=20.0,
        critical_path="x",
        units={
            "pe_array": unit("pe_array", 0.5, 1e-18, 2e-18),
            "dau": unit("dau", 0.25, 4e-18, 0.0),
        },
        wiring_static_power_w=0.25,
    )
    activity = ActivityTrace()
    activity.add("pe_array", 10_000.0)
    activity.add("dau", 5_000.0)
    activity.add("mystery_unit", 1e9)  # no estimate -> must be ignored
    layer = LayerResult(
        name="l", mappings=1, weight_load_cycles=0, ifmap_prep_cycles=0,
        psum_move_cycles=0, activation_transfer_cycles=0,
        compute_cycles=50_000, dram_traffic_bytes=0, dram_cycles=0,
        total_cycles=50_000, macs=0,
    )
    run = SimulationResult("d", "n", 1, 50.0, [layer], activity)
    return run, estimate


def test_hand_computed_static_dynamic_split(baseline_config):
    run, estimate = _synthetic_run_and_estimate(baseline_config)
    report = power_report(run, estimate, data_activity=0.5)
    # Static: 0.5 + 0.25 unit W + 0.25 wiring W.
    assert report.static_w == pytest.approx(1.0)
    # pe_array: 10,000 cycles * (1 aJ + 0.5 * 2 aJ) = 2e-14 J over 1 µs.
    assert report.dynamic_by_unit["pe_array"] == pytest.approx(2e-8)
    # dau: 5,000 cycles * 4 aJ (no wire energy) = 2e-14 J over 1 µs.
    assert report.dynamic_by_unit["dau"] == pytest.approx(2e-8)
    assert report.dynamic_w == pytest.approx(4e-8)
    assert report.total_w == pytest.approx(1.0 + 4e-8)


def test_units_without_estimates_are_skipped(baseline_config):
    run, estimate = _synthetic_run_and_estimate(baseline_config)
    report = power_report(run, estimate)
    assert "mystery_unit" not in report.dynamic_by_unit


def test_data_activity_scales_wire_energy_only(baseline_config):
    run, estimate = _synthetic_run_and_estimate(baseline_config)
    zero = power_report(run, estimate, data_activity=0.0)
    full = power_report(run, estimate, data_activity=1.0)
    # pe_array wire energy doubles the clocked floor at full activity.
    assert zero.dynamic_by_unit["pe_array"] == pytest.approx(1e-8)
    assert full.dynamic_by_unit["pe_array"] == pytest.approx(3e-8)
    # dau has no wire cells: activity must not change it.
    assert zero.dynamic_by_unit["dau"] == full.dynamic_by_unit["dau"]
