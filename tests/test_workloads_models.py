"""Benchmark-network definition tests against published totals."""

import pytest

from repro.workloads.models import (
    WORKLOAD_NAMES,
    all_workloads,
    alexnet,
    by_name,
    faster_rcnn,
    googlenet,
    mobilenet,
    resnet50,
    vgg16,
)


def test_workload_roster():
    networks = all_workloads()
    assert [n.name for n in networks] == list(WORKLOAD_NAMES)


def test_by_name_is_case_insensitive():
    assert by_name("ResNet50").name == "ResNet50"
    assert by_name("resnet50").name == "ResNet50"
    assert by_name("faster-rcnn").name == "FasterRCNN"
    with pytest.raises(KeyError):
        by_name("lenet")


def test_alexnet_totals():
    net = alexnet()
    assert len(net.layers) == 8
    # ~1.07 GMACs of convolution + ~58.6 M of FC.
    conv_macs = sum(l.macs_per_image for l in net.conv_layers)
    assert 1.0e9 <= conv_macs <= 1.2e9
    assert 58e6 <= net.total_macs - conv_macs <= 60e6


def test_vgg16_totals():
    net = vgg16()
    assert len(net.conv_layers) == 13
    assert net.total_macs == pytest.approx(15.47e9, rel=0.01)
    assert net.total_weight_bytes == pytest.approx(138.3e6, rel=0.01)


def test_resnet50_totals():
    net = resnet50()
    assert net.total_macs == pytest.approx(4.1e9, rel=0.03)
    assert net.total_weight_bytes == pytest.approx(25.5e6, rel=0.03)


def test_googlenet_totals():
    net = googlenet()
    assert net.total_macs == pytest.approx(1.58e9, rel=0.05)
    assert net.total_weight_bytes < 8e6  # famously compact


def test_mobilenet_totals():
    net = mobilenet()
    assert net.total_macs == pytest.approx(0.569e9, rel=0.02)
    depthwise = [l for l in net.layers if l.is_depthwise]
    assert len(depthwise) == 13


def test_faster_rcnn_contains_vgg_backbone():
    rcnn = faster_rcnn()
    backbone = [l.name for l in rcnn.layers[:13]]
    assert backbone == [l.name for l in vgg16().layers[:13]]
    assert any(l.name.startswith("rpn") for l in rcnn.layers)


def test_layer_spatial_sizes_plausible():
    """Every layer's spatial size must be one of the sizes the standard
    224/227 pipelines produce — catches typos in the hand-written tables.
    (Branching topologies preclude strict predecessor chaining.)"""
    plausible = {227, 224, 112, 56, 55, 28, 27, 14, 13, 7, 6, 1}
    for net in all_workloads():
        for layer in net.layers:
            assert layer.in_height in plausible, (net.name, layer.name)
            assert layer.out_height in plausible, (net.name, layer.name)


def test_mobilenet_depthwise_pointwise_alternation():
    net = mobilenet()
    body = net.layers[1:-1]
    for dw, pw in zip(body[0::2], body[1::2]):
        assert dw.is_depthwise
        assert pw.kernel_height == 1 and pw.groups == 1
        assert pw.in_channels == dw.out_channels


def test_max_layer_footprint_vgg_matches_paper_batch_rule():
    """VGG's largest layer is conv1_2 (~6.1 MiB in+out), giving the TPU a
    Table II batch of 3 in 24 MB."""
    net = vgg16()
    assert net.max_layer_footprint_bytes == pytest.approx(6.125 * 2**20, rel=0.01)
    assert (24 * 2**20) // net.max_layer_footprint_bytes == 3


def test_network_requires_layers():
    from repro.workloads.models import Network

    with pytest.raises(ValueError):
        Network("empty", tuple())
