"""Span tracer tests: nesting, Chrome export, summary table, no-op path."""

import json

from repro.obs.tracing import Tracer, _NOOP_SPAN


def make_tracer():
    return Tracer(enabled=True)


def test_spans_nest():
    tracer = make_tracer()
    with tracer.span("outer"):
        with tracer.span("inner", layer="conv1"):
            pass
        with tracer.span("inner", layer="conv2"):
            pass
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.name == "outer"
    assert [c.attrs["layer"] for c in outer.children] == ["conv1", "conv2"]
    assert outer.end_s is not None
    assert all(c.duration_s <= outer.duration_s for c in outer.children)


def test_annotate_adds_attrs():
    tracer = make_tracer()
    with tracer.span("s", a=1) as span:
        span.annotate(b=2)
    assert tracer.roots[0].attrs == {"a": 1, "b": 2}


def test_disabled_tracer_records_nothing():
    tracer = Tracer()  # disabled by default
    with tracer.span("s", key="value"):
        pass
    assert tracer.roots == []
    assert tracer.span("again") is _NOOP_SPAN


def test_chrome_trace_export():
    tracer = make_tracer()
    with tracer.span("simulate", design="SuperNPU"):
        with tracer.span("simulate/layer", layer="conv1"):
            pass
    trace = tracer.to_chrome_trace(metadata={"command": "profile"})
    events = trace["traceEvents"]
    assert [e["name"] for e in events] == ["simulate", "simulate/layer"]
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert {"pid", "tid", "args"} <= set(event)
    # The child starts no earlier and ends no later than its parent.
    parent, child = events
    assert child["ts"] >= parent["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6
    assert trace["metadata"] == {"command": "profile"}
    assert events[0]["args"] == {"design": "SuperNPU"}
    # The JSON form round-trips.
    assert json.loads(tracer.to_chrome_trace_json())["traceEvents"]


def test_summary_table_merges_siblings():
    tracer = make_tracer()
    with tracer.span("run"):
        for name in ("a", "a", "b"):
            with tracer.span(name):
                pass
    table = tracer.summary_table()
    lines = table.splitlines()
    assert "span" in lines[0] and "wall ms" in lines[0]
    body = "\n".join(lines[1:])
    assert body.count("  a ") == 1  # two 'a' spans merged into one row
    a_row = next(line for line in lines if line.lstrip().startswith("a "))
    assert " 2 " in a_row  # call count


def test_summary_table_empty():
    assert "(no spans recorded)" in Tracer(enabled=True).summary_table()


def test_reset():
    tracer = make_tracer()
    with tracer.span("s"):
        pass
    tracer.reset()
    assert tracer.roots == [] and tracer.enabled


def test_exception_unwinds_stack():
    tracer = make_tracer()
    try:
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer._stack == []
    assert tracer.roots[0].end_s is not None
    with tracer.span("next"):
        pass
    assert [r.name for r in tracer.roots] == ["outer", "next"]


def test_simulate_produces_nested_layer_spans(obs_enabled, supernpu_config,
                                              tiny_network):
    from repro.simulator.engine import simulate

    simulate(supernpu_config, tiny_network, batch=1)
    roots = obs_enabled.tracer().roots
    sim_root = next(r for r in roots if r.name == "simulate")
    layer_spans = [c for c in sim_root.children if c.name == "simulate/layer"]
    assert [c.attrs["layer"] for c in layer_spans] == [
        l.name for l in tiny_network.layers
    ]
    assert all("cycles" in c.attrs for c in layer_spans)
    # estimate_npu ran inside simulate(), so its span nests under it.
    estimate_spans = [c for c in sim_root.children if c.name == "estimate"]
    assert estimate_spans and estimate_spans[0].children


def test_estimate_unit_spans(obs_enabled, baseline_config, rsfq):
    from repro.estimator.arch_level import estimate_npu

    estimate_npu(baseline_config, rsfq)
    root = obs_enabled.tracer().roots[0]
    assert root.name == "estimate"
    units = {c.attrs["unit"] for c in root.children if c.name == "estimate/unit"}
    assert {"pe_array", "ifmap_buffer", "output_buffer"} <= units
