"""Circuit-element tests for the RCSJ simulator."""

import math

import pytest

from repro.jsim.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    JosephsonJunction,
    Resistor,
)


def test_junction_defaults_are_reasonably_damped():
    jj = JosephsonJunction(1, 0)
    # Near-critical damping for clean SFQ pulses.
    assert 0.3 < jj.stewart_mccumber < 5.0


def test_supercurrent_follows_sine():
    jj = JosephsonJunction(1, 0, critical_current_ua=100.0)
    assert math.isclose(jj.supercurrent_ua(math.pi / 2), 100.0)
    assert math.isclose(jj.supercurrent_ua(0.0), 0.0)
    assert math.isclose(jj.supercurrent_ua(-math.pi / 2), -100.0)


def test_normal_current_ohms_law():
    jj = JosephsonJunction(1, 0, shunt_resistance_ohm=4.0)
    # V = PhiBar * dtheta; I = 1000 * V / R.
    from repro.device.constants import PHI0_BAR_MV_PS

    rate = 2.0  # rad/ps
    expected = 1000.0 * PHI0_BAR_MV_PS * rate / 4.0
    assert math.isclose(jj.normal_current_ua(rate), expected)


def test_inductor_flux_quantization_current():
    """A 2*pi phase drop across 10 pH carries ~207 uA (one flux quantum)."""
    inductor = Inductor(1, 0, inductance_ph=10.0)
    assert math.isclose(inductor.current_ua(2 * math.pi), 206.8, rel_tol=0.01)


def test_resistor_current():
    from repro.device.constants import PHI0_BAR_MV_PS

    resistor = Resistor(1, 0, resistance_ohm=2.0)
    assert math.isclose(resistor.current_ua(3.0), 1000 * PHI0_BAR_MV_PS * 3.0 / 2.0)


def test_current_source_waveform():
    source = CurrentSource(1, lambda t: 5.0 * t)
    assert source.current_ua(2.0) == 10.0


@pytest.mark.parametrize(
    "factory",
    [
        lambda: JosephsonJunction(1, 0, critical_current_ua=0),
        lambda: JosephsonJunction(1, 0, shunt_resistance_ohm=0),
        lambda: JosephsonJunction(1, 0, capacitance_pf=0),
        lambda: Inductor(1, 0, inductance_ph=0),
        lambda: Resistor(1, 0, resistance_ohm=-1),
        lambda: Capacitor(1, 0, capacitance_pf=0),
    ],
)
def test_invalid_elements_rejected(factory):
    with pytest.raises(ValueError):
        factory()
