"""Extra-workload tests (applicability beyond the paper's six CNNs)."""

import pytest

from repro.workloads.extra import (
    bert_base_block,
    matmul_layer,
    resnet18,
    transformer_block,
    vgg19,
)


def test_matmul_layer_mac_count():
    layer = matmul_layer("mm", m=384, k=768, n=768)
    assert layer.macs_per_image == 384 * 768 * 768
    assert layer.output_pixels == 384
    assert layer.weight_bytes == 768 * 768


def test_resnet18_totals():
    net = resnet18()
    # Published: ~1.8 GMACs, ~11.7 M parameters.
    assert net.total_macs == pytest.approx(1.8e9, rel=0.05)
    assert net.total_weight_bytes == pytest.approx(11.7e6, rel=0.05)


def test_vgg19_totals():
    net = vgg19()
    assert net.total_macs == pytest.approx(19.6e9, rel=0.02)
    assert len(net.conv_layers) == 16


def test_bert_block_totals():
    net = bert_base_block()
    # Per-encoder-block forward MACs at seq 384: ~3.2 G (QKV + attention +
    # output projection + FFN).
    assert net.total_macs == pytest.approx(3.1e9, rel=0.1)
    assert any(layer.name.startswith("scores") for layer in net.layers)


def test_transformer_block_head_geometry():
    net = transformer_block(seq_len=128, hidden=256, heads=4)
    scores = [l for l in net.layers if l.name.startswith("scores")]
    assert len(scores) == 4
    assert scores[0].in_channels == 64  # head_dim
    assert scores[0].out_channels == 128  # seq_len
    with pytest.raises(ValueError):
        transformer_block(hidden=100, heads=3)


def test_transformer_runs_on_supernpu():
    """The applicability claim: matmul workloads simulate end to end."""
    from repro.baselines.scalesim import TPU_CORE, simulate_cmos
    from repro.core.designs import supernpu
    from repro.simulator.engine import simulate

    net = bert_base_block()
    sfq = simulate(supernpu(), net, batch=1)
    tpu = simulate_cmos(TPU_CORE, net, batch=1)
    assert sfq.mac_per_s > 3 * tpu.mac_per_s
    assert sfq.total_macs == net.total_macs


def test_extra_networks_have_plausible_shapes():
    for net in (resnet18(), vgg19()):
        for layer in net.layers:
            assert layer.out_height >= 1
            assert layer.macs_per_image > 0
