"""One-command reproduction runner tests."""

import json

import pytest

from repro.core.experiments import EXPERIMENTS, reproduce_all
from repro.workloads.models import mobilenet, resnet50


@pytest.fixture(scope="module")
def small_workloads():
    return [resnet50(), mobilenet()]


def test_registry_covers_every_figure_and_table():
    expected = {
        "fig05_network", "fig07_feedback", "fig08_duplication",
        "fig13_validation", "fig15_cycle_breakdown", "fig17_roofline",
        "fig20_buffer_opt", "fig21_resource_balancing", "fig22_registers",
        "fig23_performance", "table1_setup", "table2_batches", "table3_power",
    }
    assert set(EXPERIMENTS) == expected


def test_subset_run(small_workloads):
    results = reproduce_all(
        workloads=small_workloads,
        only=["fig07_feedback", "table1_setup"],
    )
    assert set(results) == {"fig07_feedback", "table1_setup"}
    assert results["fig07_feedback"]["ws_ghz"] > results["fig07_feedback"]["os_ghz"]
    assert results["table1_setup"]["SuperNPU"]["frequency_ghz"] == pytest.approx(52.6, rel=0.002)


def test_json_artifacts_written(tmp_path, small_workloads):
    reproduce_all(
        out_dir=tmp_path,
        workloads=small_workloads,
        only=["fig08_duplication", "fig15_cycle_breakdown"],
    )
    files = sorted(p.name for p in tmp_path.glob("*.json"))
    assert files == ["fig08_duplication.json", "fig15_cycle_breakdown.json"]
    payload = json.loads((tmp_path / "fig15_cycle_breakdown.json").read_text())
    assert payload["ResNet50"]["preparation"] > 0.9


def test_unknown_experiment_rejected(small_workloads):
    with pytest.raises(KeyError, match="unknown experiments"):
        reproduce_all(workloads=small_workloads, only=["fig99"])


def test_full_run_results_are_consistent(small_workloads):
    results = reproduce_all(workloads=small_workloads)
    assert len(results) == len(EXPERIMENTS)
    # Fig. 23's averages rise along the optimization sequence.
    speedups = results["fig23_performance"]
    order = ["Baseline", "Buffer opt.", "Resource opt.", "SuperNPU"]
    values = [speedups[d]["Average"] for d in order]
    assert values[0] < values[-1]
    # Table III's ERSFQ free-cooling headline is present.
    table3 = results["table3_power"]
    ersfq = table3["ERSFQ-SuperNPU (w/o cooling)"]["perf_per_watt_vs_tpu"]
    assert ersfq > 100


def test_extension_registry(small_workloads):
    from repro.core.experiments import EXTENSIONS

    assert set(EXTENSIONS) == {
        "ext_feature_ablation", "ext_process_scaling",
        "ext_bandwidth_sensitivity", "ext_cooling_sensitivity",
        "ext_dataflow_ablation", "ext_training_step",
    }
    results = reproduce_all(
        workloads=small_workloads,
        only=["ext_process_scaling", "ext_dataflow_ablation"],
    )
    scaling = results["ext_process_scaling"]
    assert scaling[0]["feature_um"] == 1.0
    dataflow = results["ext_dataflow_ablation"]
    assert dataflow["ResNet50"]["ws_tmacs"] > dataflow["ResNet50"]["os_tmacs"]


def test_extensions_join_default_set(small_workloads):
    results = reproduce_all(
        workloads=small_workloads,
        only=None,
        include_extensions=True,
    )
    from repro.core.experiments import EXTENSIONS

    assert set(EXTENSIONS) <= set(results)
    assert len(results) == len(EXPERIMENTS) + len(EXTENSIONS)


def test_cli_reproduce_command(tmp_path, capsys):
    from repro.cli import main

    assert main(["reproduce", "--out", str(tmp_path), "--only", "fig07_feedback"]) == 0
    out = capsys.readouterr().out
    assert "fig07_feedback" in out
    assert (tmp_path / "fig07_feedback.json").exists()
