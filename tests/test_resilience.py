"""The chaos suite: every recovery path must reproduce the clean serial run.

Exercises the resilient execution layer end to end — the error taxonomy,
retry/timeout/degradation in :class:`repro.core.jobs.JobRunner`, sweep
checkpointing, and cache quarantine — under failures injected by
:mod:`repro.core.chaos` (worker exceptions, hangs, SIGKILLed workers,
corrupted cache entries).  The invariant throughout: recovered results
are *equal* to a clean serial run's, and an interrupted sweep resumes
executing only the remaining tasks.
"""

import pickle

import pytest

from repro import api
from repro.core.chaos import (
    ANY_TASK,
    ChaosFailure,
    ChaosInjector,
    FaultSpec,
    corrupt_cache_entry,
)
from repro.core.jobs import JobRunner, ResultCache, SimTask, session
from repro.core.resilience import NO_RETRY, RetryPolicy, SweepCheckpoint
from repro.errors import (
    CacheError,
    ConfigError,
    ReproError,
    UnknownDesignError,
    UnknownWorkloadError,
    WorkerError,
    WorkloadError,
)

#: A retry policy that never sleeps, so chaos tests stay fast.
FAST_RETRY = RetryPolicy(max_retries=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def tasks():
    design = api.design("supernpu")
    network = api.workload("mobilenet")
    return [SimTask(design, network, batch=b) for b in (1, 2, 4, 8)]


@pytest.fixture(scope="module")
def clean(tasks):
    """The golden results: a clean serial, cache-less run."""
    return JobRunner(jobs=1).run(tasks)


# -- the taxonomy ---------------------------------------------------------

def test_taxonomy_keeps_builtin_types():
    assert issubclass(ConfigError, ValueError)
    assert issubclass(UnknownDesignError, KeyError)
    assert issubclass(WorkloadError, ValueError)
    assert issubclass(UnknownWorkloadError, KeyError)
    assert issubclass(WorkerError, ReproError)


def test_taxonomy_exit_codes():
    assert ConfigError("x").exit_code == 2
    assert WorkloadError("x").exit_code == 3
    assert WorkerError("x").exit_code == 4
    assert CacheError("x").exit_code == 5


def test_error_carries_code_hint_context():
    error = ConfigError("bad batch", code="config.invalid_batch",
                        hint="use a positive batch", batch=-2)
    assert error.code == "config.invalid_batch"
    assert error.context == {"batch": -2}
    assert "hint" in error.describe()
    assert error.to_dict()["exit_code"] == 2


def test_error_survives_pickling():
    """Workers hand errors back through the process pool; nothing may drop."""
    original = WorkerError("boom", code="worker.retries_exhausted",
                           hint="see --retries", task="ab" * 32, attempts=3)
    copy = pickle.loads(pickle.dumps(original))
    assert type(copy) is WorkerError
    assert copy.message == "boom"
    assert copy.code == "worker.retries_exhausted"
    assert copy.context["attempts"] == 3


def test_raise_sites_speak_taxonomy():
    with pytest.raises(UnknownDesignError):
        api.design("meganpu")
    with pytest.raises(UnknownWorkloadError):
        api.workload("meganet")
    with pytest.raises(ConfigError):
        api.library("cmos9000")
    with pytest.raises(ConfigError):
        api.design("supernpu").with_updates(pe_array_width=0)


# -- retry policy and checkpoint primitives -------------------------------

def test_retry_policy_backoff_is_bounded():
    policy = RetryPolicy(max_retries=5, base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
    delays = [policy.delay_s(n) for n in range(1, 6)]
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert max(delays) <= 0.5
    assert NO_RETRY.delay_s(1) == 0.0


def test_retry_policy_jitter_is_seeded_rng_deterministic():
    """Backoff draws from the module RNG: seeding it pins the schedule."""
    import random

    policy = RetryPolicy(max_retries=4, base_delay_s=0.1, max_delay_s=2.0,
                         jitter=0.25)
    random.seed(1234)
    first = [policy.delay_s(n) for n in range(1, 5)]
    random.seed(1234)
    second = [policy.delay_s(n) for n in range(1, 5)]
    assert first == second  # bit-for-bit, not approx
    # And every draw respects the jitter envelope around pure backoff.
    for failures, delay in enumerate(first, start=1):
        base = min(2.0, 0.1 * (2 ** (failures - 1)))
        assert base <= delay <= base * 1.25


def test_retry_policy_zero_jitter_is_pure_exponential():
    policy = RetryPolicy(max_retries=6, base_delay_s=0.05, max_delay_s=0.4,
                         jitter=0.0)
    assert [policy.delay_s(n) for n in range(1, 6)] == \
        [0.05, 0.1, 0.2, 0.4, 0.4]
    assert policy.delay_s(0) == 0.0


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=2.0)


def test_checkpoint_round_trip(tmp_path):
    journal = tmp_path / "sweep.journal"
    ckpt = SweepCheckpoint(journal)
    keys = ["ab" * 32, "cd" * 32]
    for key in keys:
        ckpt.mark(key)
    ckpt.mark(keys[0])  # idempotent
    reloaded = SweepCheckpoint(journal)
    assert len(reloaded) == 2 and all(k in reloaded for k in keys)
    reloaded.clear()
    assert not journal.exists() and len(SweepCheckpoint(journal)) == 0


def test_checkpoint_drops_torn_line(tmp_path):
    """A writer killed mid-append leaves a partial line; it must be ignored."""
    journal = tmp_path / "sweep.journal"
    good = "ab" * 32
    journal.write_text(good + "\n" + "cd" * 16)  # torn: only half a key
    ckpt = SweepCheckpoint(journal)
    assert len(ckpt) == 1 and good in ckpt
    ckpt.mark("ef" * 32)  # the repair must not splice onto the torn line
    assert len(SweepCheckpoint(journal)) == 2


# -- chaos: transient failures, retry, exhaustion -------------------------

def test_transient_exceptions_are_retried(tmp_path, tasks, clean):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[0].key(): FaultSpec("exception", times=2)})
    runner = JobRunner(jobs=1, chaos=chaos, retry=FAST_RETRY)
    assert runner.run(tasks) == clean
    assert runner.stats.retries == 2


def test_retries_exhausted_raises_worker_error(tmp_path, tasks):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[0].key(): FaultSpec("exception", times=10)})
    runner = JobRunner(jobs=1, chaos=chaos,
                       retry=RetryPolicy(max_retries=1, base_delay_s=0.0, jitter=0.0))
    with pytest.raises(WorkerError) as excinfo:
        runner.run(tasks)
    assert excinfo.value.code == "worker.retries_exhausted"
    assert excinfo.value.context["attempts"] == 2


def test_deterministic_errors_are_never_retried(tmp_path):
    with pytest.raises(ConfigError):
        SimTask(api.design("supernpu"), api.workload("mobilenet"), batch=0)


def test_parallel_retry_matches_serial(tmp_path, tasks, clean):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {ANY_TASK: FaultSpec("exception", times=2)})
    runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY)
    assert runner.run(tasks) == clean
    assert runner.stats.retries >= 1


# -- chaos: SIGKILLed workers, pool death, degradation --------------------

def test_sigkilled_worker_recovers(tmp_path, tasks, clean):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[1].key(): FaultSpec("sigkill", times=1)})
    runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY)
    assert runner.run(tasks) == clean
    assert runner.stats.pool_restarts >= 1


def test_pool_dying_twice_degrades_to_serial(tmp_path, tasks, clean):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {ANY_TASK: FaultSpec("sigkill", times=3)})
    runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY)
    assert runner.run(tasks) == clean
    assert runner.stats.degraded == 1
    assert runner.stats.pool_restarts == 2
    assert "[degraded to serial]" in runner.stats.describe()


def test_degrade_counters_transition_in_order(tmp_path, tasks, clean,
                                              obs_enabled):
    """The ladder is restart → restart → degrade, and the counters say so."""
    chaos = ChaosInjector(tmp_path / "chaos",
                          {ANY_TASK: FaultSpec("sigkill", times=3)})
    runner = JobRunner(jobs=2, chaos=chaos, retry=FAST_RETRY)
    assert runner.run(tasks) == clean
    counters = obs_enabled.metrics().snapshot()["counters"]
    assert counters.get("jobs.pool_restarts") == 2
    assert counters.get("jobs.degraded") == 1
    # A single kill only restarts: no degrade counter appears.
    obs_enabled.reset()
    chaos_single = ChaosInjector(tmp_path / "chaos-single",
                                 {ANY_TASK: FaultSpec("sigkill", times=1)})
    healthy = JobRunner(jobs=2, chaos=chaos_single, retry=FAST_RETRY)
    assert healthy.run(tasks) == clean
    counters = obs_enabled.metrics().snapshot()["counters"]
    assert counters.get("jobs.pool_restarts") == 1
    assert "jobs.degraded" not in counters


# -- chaos: hangs and per-task timeouts -----------------------------------

def test_hung_task_is_timed_out_and_retried(tmp_path, tasks, clean):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[1].key(): FaultSpec("hang", times=1,
                                                     hang_seconds=30.0)})
    runner = JobRunner(jobs=2, chaos=chaos, timeout_s=1.5, retry=FAST_RETRY)
    assert runner.run(tasks) == clean
    assert runner.stats.timeouts >= 1


# -- checkpointed sweeps ---------------------------------------------------

def test_interrupted_sweep_resumes_remaining_tasks(tmp_path, tasks, clean):
    cache = ResultCache(tmp_path / "cache")
    journal = tmp_path / "sweep.journal"
    # A fatal fault on the last task interrupts the sweep after 3 completions.
    chaos = ChaosInjector(tmp_path / "chaos",
                          {tasks[3].key(): FaultSpec("exception", times=10)})
    broken = JobRunner(jobs=1, cache=cache, checkpoint=SweepCheckpoint(journal),
                       chaos=chaos, retry=NO_RETRY)
    with pytest.raises(WorkerError):
        broken.run(tasks)
    assert len(SweepCheckpoint(journal)) == 3

    resumed = JobRunner(jobs=1, cache=cache, checkpoint=SweepCheckpoint(journal))
    assert resumed.run(tasks) == clean
    assert resumed.stats.executed == 1  # only the task that never finished
    assert resumed.stats.resumed == 3


def test_session_clears_checkpoint_only_on_clean_exit(tmp_path, tasks):
    journal = tmp_path / "ckpt.journal"
    with pytest.raises(RuntimeError):
        with session(cache_dir=tmp_path / "cache", checkpoint_path=journal) as runner:
            runner.run(tasks[:2])
            raise RuntimeError("killed mid-sweep")
    assert journal.exists()  # kept: there is something to resume

    with session(cache_dir=tmp_path / "cache", checkpoint_path=journal) as runner:
        runner.run(tasks[:2])
        assert runner.stats.resumed == 2
    assert not journal.exists()  # cleared: the sweep completed


# -- corrupted caches ------------------------------------------------------

@pytest.mark.parametrize("mode", ["truncate", "garbage", "wrong_schema",
                                  "poisoned_payload"])
def test_corrupt_cache_entry_is_quarantined_and_reexecuted(
        tmp_path, tasks, clean, mode):
    cache = ResultCache(tmp_path / "cache")
    JobRunner(jobs=1, cache=cache).run(tasks)
    corrupt_cache_entry(cache, tasks[0].key(), mode)

    runner = JobRunner(jobs=1, cache=cache)
    assert runner.run(tasks) == clean
    assert runner.stats.executed == 1  # only the damaged entry re-ran
    stats = cache.stats()
    assert stats.quarantined == 1
    # The repaired entry is a plain hit on the next pass.
    rerun = JobRunner(jobs=1, cache=cache)
    assert rerun.run(tasks) == clean
    assert rerun.stats.hits == len(tasks)


def test_put_cleans_up_tmp_file_on_replace_failure(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path / "cache")

    def broken_replace(src, dst):
        raise OSError("cross-device link")

    monkeypatch.setattr("repro.core.jobs.os.replace", broken_replace)
    with pytest.raises(CacheError) as excinfo:
        cache.put("ab" * 32, {"x": 1})
    assert excinfo.value.code == "cache.write_failed"
    assert not list(cache.root.rglob("*.tmp.*"))


# -- chaos harness self-checks --------------------------------------------

def test_fault_budget_is_enforced_across_injectors(tmp_path):
    spec = FaultSpec("exception", times=2)
    first = ChaosInjector(tmp_path / "chaos", {"k" * 64: spec})
    second = ChaosInjector(tmp_path / "chaos", {"k" * 64: spec})
    fired = 0
    for injector in (first, second, first, second):
        try:
            injector.fire("k" * 64)
        except ChaosFailure:
            fired += 1
    assert fired == 2  # the on-disk ledger caps firings across instances


def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        FaultSpec("meltdown")
    with pytest.raises(ConfigError):
        FaultSpec("exception", times=0)


# -- observability ---------------------------------------------------------

def test_resilience_counters_are_exported(tmp_path, tasks, clean, obs_enabled):
    chaos = ChaosInjector(tmp_path / "chaos",
                          {ANY_TASK: FaultSpec("sigkill", times=3)})
    cache = ResultCache(tmp_path / "cache")
    journal = tmp_path / "ckpt.journal"
    runner = JobRunner(jobs=2, cache=cache, chaos=chaos, retry=FAST_RETRY,
                       checkpoint=SweepCheckpoint(journal))
    assert runner.run(tasks) == clean
    resumed = JobRunner(jobs=1, cache=cache,
                        checkpoint=SweepCheckpoint(journal))
    assert resumed.run(tasks) == clean
    corrupt_cache_entry(cache, tasks[0].key(), "truncate")
    assert cache.get(tasks[0].key()) is None

    counters = obs_enabled.metrics().snapshot()["counters"]
    assert counters.get("jobs.retries", 0) + counters.get("jobs.pool_restarts", 0) >= 2
    assert counters.get("jobs.degraded", 0) >= 1
    assert counters.get("jobs.resumed", 0) >= len(tasks)
    assert counters.get("jobs.cache.quarantined", 0) >= 1
