"""Floorplan adjacency tests — why Table I's clock is design-independent."""

import pytest

from repro.core.designs import all_designs
from repro.estimator.arch_level import estimate_npu
from repro.estimator.floorplan import (
    ROUTING_ALLOWANCE_MM,
    floorplan,
    implied_frequency_ghz,
)


@pytest.mark.parametrize("config", all_designs(), ids=lambda c: c.name)
def test_every_design_keeps_interfaces_adjacent(rsfq, config):
    plan = floorplan(config, rsfq)
    assert plan.all_interfaces_adjacent
    assert plan.worst_interface_mm == pytest.approx(ROUTING_ALLOWANCE_MM)


@pytest.mark.parametrize("config", all_designs(), ids=lambda c: c.name)
def test_implied_clock_reproduces_calibration(rsfq, config):
    implied = implied_frequency_ghz(config, rsfq)
    calibrated = estimate_npu(config, rsfq).frequency_ghz
    assert implied == pytest.approx(calibrated)


def test_placed_area_matches_unit_areas(rsfq, supernpu_config):
    from repro.estimator.arch_level import build_units

    plan = floorplan(supernpu_config, rsfq)
    units = build_units(supernpu_config)
    for name, block in plan.blocks.items():
        assert block.area_mm2 == pytest.approx(units[name].area_mm2(rsfq), rel=1e-6)


def test_packing_is_tight(rsfq, supernpu_config):
    plan = floorplan(supernpu_config, rsfq)
    assert plan.packing_efficiency > 0.95
    assert plan.die_area_mm2 >= sum(b.area_mm2 for b in plan.blocks.values())


def test_pe_array_aspect_follows_config(rsfq):
    from repro.core.designs import supernpu

    plan = floorplan(supernpu(), rsfq)
    pe = plan.blocks["pe_array"]
    # 64 x 256 array -> block four times taller than wide.
    assert pe.height_mm / pe.width_mm == pytest.approx(4.0, rel=0.01)


def test_baseline_includes_psum_block(rsfq, baseline_config, supernpu_config):
    assert "psum_buffer" in floorplan(baseline_config, rsfq).blocks
    assert "psum_buffer" not in floorplan(supernpu_config, rsfq).blocks


def test_interface_set(rsfq, baseline_config):
    plan = floorplan(baseline_config, rsfq)
    assert set(plan.edge_gaps_mm) == {
        "ifmap_buffer->dau",
        "dau->pe_array",
        "pe_array->output_buffer",
        "weight_buffer->pe_array",
    }
