"""ASCII chart rendering tests."""

import pytest

from repro.core.plotting import MARK, bar_chart, column_chart, sweep_chart


def test_bar_chart_scales_to_peak():
    chart = bar_chart({"a": 10.0, "b": 5.0, "c": 2.5}, width=20)
    lines = chart.splitlines()
    assert lines[0].count(MARK) == 20
    assert lines[1].count(MARK) == 10
    assert lines[2].count(MARK) == 5
    assert "10" in lines[0]


def test_bar_chart_tiny_values_still_visible():
    chart = bar_chart({"big": 100.0, "tiny": 0.1}, width=20)
    assert chart.splitlines()[1].count(MARK) >= 1


def test_bar_chart_unit_suffix():
    chart = bar_chart({"x": 2.0}, unit="x")
    assert chart.endswith("2x")


def test_column_chart_shape():
    chart = column_chart([1.0, 2.0, 4.0], labels=["a", "b", "c"], height=4)
    lines = chart.splitlines()
    assert len(lines) == 4 + 2  # rows + axis + labels
    # The tallest column fills the top row; the shortest does not.
    assert MARK in lines[0]
    assert lines[0].count(MARK) == 1


def test_column_chart_label_row():
    chart = column_chart([1.0, 2.0], labels=["one", "two"])
    assert chart.splitlines()[-1].strip().endswith("two"[-3:])


def test_sweep_chart_uses_point_labels(rsfq):
    from repro.core.optimizer import buffer_sweep
    from repro.workloads.models import mobilenet

    points = buffer_sweep(workloads=[mobilenet()], library=rsfq, divisions=(2, 64))
    chart = sweep_chart(points, "max_batch")
    assert "Baseline" in chart
    assert "+Division 64" in chart


@pytest.mark.parametrize("bad", [{}, {"a": 0.0}])
def test_bar_chart_validation(bad):
    with pytest.raises(ValueError):
        bar_chart(bad)


def test_chart_dimension_validation():
    with pytest.raises(ValueError):
        bar_chart({"a": 1.0}, width=2)
    with pytest.raises(ValueError):
        column_chart([1.0], height=1)
    with pytest.raises(ValueError):
        column_chart([1.0], labels=["a", "b"])
    with pytest.raises(ValueError):
        column_chart([])


def test_cli_sweep_plot(capsys):
    from repro.cli import main

    assert main(["sweep", "buffers", "--plot"]) == 0
    out = capsys.readouterr().out
    assert MARK in out and "Baseline" in out
