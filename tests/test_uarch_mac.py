"""MAC-unit structure and frequency tests."""

import math

import pytest

from repro.device import cells
from repro.uarch.mac import Dataflow, MACUnit, full_adder_counts


def test_full_adder_decomposition():
    counts = full_adder_counts()
    assert counts[cells.XOR] == 2
    assert counts[cells.AND] == 2
    assert counts[cells.OR] == 1


def test_8bit_mac_has_15_pipeline_stages():
    """Paper Section III-C: 'our 8-bit PE consists of 15 pipeline stages'."""
    assert MACUnit(8, 24).pipeline_stages == 15


def test_4bit_mac_has_7_stages():
    assert MACUnit(4, 8).pipeline_stages == 7


def test_partial_product_and_count():
    counts = MACUnit(8, 24).gate_counts()
    # At least the 64 partial-product ANDs plus the adder-array ANDs.
    assert counts[cells.AND] >= 64


def test_gate_counts_grow_with_width():
    small = MACUnit(4, 8).gate_counts().total()
    large = MACUnit(8, 24).gate_counts().total()
    assert large > 2 * small


def test_ws_frequency_anchor(rsfq):
    """An 8-bit WS MAC clocks just under the 66.7 GHz AND-pair bound."""
    freq = MACUnit(8, 24).frequency(rsfq).frequency_ghz
    assert 60.0 <= freq <= 66.7


def test_os_dataflow_roughly_halves_frequency(rsfq):
    """Fig. 7(c): the accumulate loop forces counter-flow clocking."""
    ws = MACUnit(8, 24, Dataflow.WEIGHT_STATIONARY).frequency(rsfq).frequency_ghz
    os = MACUnit(8, 24, Dataflow.OUTPUT_STATIONARY).frequency(rsfq).frequency_ghz
    assert os < 0.55 * ws
    assert 29.0 <= os <= 34.0


def test_wider_mac_is_slower(rsfq):
    f4 = MACUnit(4, 8).frequency(rsfq).frequency_ghz
    f8 = MACUnit(8, 24).frequency(rsfq).frequency_ghz
    assert f8 <= f4


def test_invalid_widths_rejected():
    with pytest.raises(ValueError):
        MACUnit(1, 8)
    with pytest.raises(ValueError, match="psum"):
        MACUnit(8, 8)


def test_frequency_ghz_convenience(rsfq):
    mac = MACUnit(8, 24)
    assert math.isclose(mac.frequency_ghz(rsfq), mac.frequency(rsfq).frequency_ghz)
