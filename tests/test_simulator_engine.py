"""Cycle-level simulator behaviour tests — the paper's core claims."""

import pytest

from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.workloads.models import alexnet, mobilenet, resnet50


@pytest.fixture(scope="module")
def estimates(request):
    return {}


def _run(config, network, batch, rsfq):
    estimate = estimate_npu(config, rsfq)
    return simulate(config, network, batch=batch, estimate=estimate), estimate


def test_baseline_dominated_by_preparation(rsfq, baseline_config, tiny_network):
    """Fig. 15: preparation exceeds 90% of Baseline cycles."""
    run, _ = _run(baseline_config, tiny_network, 1, rsfq)
    assert run.cycle_breakdown()["preparation"] > 0.90


def test_baseline_fig15_on_real_workloads(rsfq, baseline_config):
    for build in (alexnet, resnet50):
        run, _ = _run(baseline_config, build(), 1, rsfq)
        assert run.cycle_breakdown()["preparation"] > 0.90


def test_baseline_utilization_below_1pct(rsfq, baseline_config):
    """Section V-A1: Baseline's effective perf is <0.2%-ish of peak."""
    run, est = _run(baseline_config, resnet50(), 1, rsfq)
    assert run.pe_utilization(est.peak_mac_per_s) < 0.01


def test_buffer_division_cuts_cycles(rsfq, baseline_config, buffer_opt_config, tiny_network):
    base, _ = _run(baseline_config, tiny_network, 1, rsfq)
    opt, _ = _run(buffer_opt_config, tiny_network, 1, rsfq)
    assert opt.total_cycles < base.total_cycles


def test_integration_removes_psum_moves(rsfq, baseline_config, buffer_opt_config):
    net = resnet50()
    base, _ = _run(baseline_config, net, 1, rsfq)
    opt, _ = _run(buffer_opt_config, net, 1, rsfq)
    assert sum(l.psum_move_cycles for l in base.layers) > 0
    assert sum(l.psum_move_cycles for l in opt.layers) == 0


def test_batching_raises_throughput(rsfq, supernpu_config):
    net = resnet50()
    b1, _ = _run(supernpu_config, net, 1, rsfq)
    b30, _ = _run(supernpu_config, net, 30, rsfq)
    assert b30.mac_per_s > 3 * b1.mac_per_s


def test_registers_help_narrow_layers(rsfq, resource_opt_config, supernpu_config):
    """Fig. 22: 8 registers recover the throughput the 64-wide array loses
    on layers with many filters."""
    net = resnet50()
    no_regs, _ = _run(resource_opt_config, net, 30, rsfq)
    regs, _ = _run(supernpu_config, net, 30, rsfq)
    assert regs.mac_per_s > no_regs.mac_per_s


def test_design_progression_monotone(rsfq, baseline_config, buffer_opt_config,
                                      resource_opt_config, supernpu_config):
    """Fig. 23's qualitative progression on the average workload."""
    from repro.core.batching import paper_batch

    networks = [alexnet(), resnet50(), mobilenet()]
    means = []
    for config in (baseline_config, buffer_opt_config, resource_opt_config, supernpu_config):
        total = 0.0
        for net in networks:
            run, _ = _run(config, net, paper_batch(config.name, net.name), rsfq)
            total += run.mac_per_s
        means.append(total / len(networks))
    assert means[0] < means[1] < means[3]
    assert means[3] > 10 * means[0]


def test_macs_match_workload(rsfq, supernpu_config, tiny_network):
    run, _ = _run(supernpu_config, tiny_network, 4, rsfq)
    assert run.total_macs == tiny_network.total_macs * 4


def test_layer_results_have_consistent_totals(rsfq, baseline_config, tiny_network):
    run, _ = _run(baseline_config, tiny_network, 1, rsfq)
    for layer in run.layers:
        assert layer.total_cycles >= max(
            layer.preparation_cycles + layer.compute_cycles, layer.dram_cycles
        ) - 1
        assert layer.memory_stall_cycles >= 0


def test_activity_trace_populated(rsfq, supernpu_config, tiny_network):
    run, _ = _run(supernpu_config, tiny_network, 2, rsfq)
    cycles = run.activity.effective_cycles
    assert {"pe_array", "dau", "ifmap_buffer", "output_buffer", "weight_buffer"} <= set(cycles)
    assert all(v >= 0 for v in cycles.values())


def test_resident_activations_skip_dram(rsfq, supernpu_config, tiny_network):
    run, _ = _run(supernpu_config, tiny_network, 1, rsfq)
    # First layer pays its ifmap; the tiny mid-layer stays resident, so the
    # second layer's traffic is weights only.
    conv2 = run.layers[1]
    assert conv2.dram_traffic_bytes == tiny_network.layers[1].weight_bytes


def test_batch_must_be_positive(rsfq, supernpu_config, tiny_network):
    with pytest.raises(ValueError):
        simulate(supernpu_config, tiny_network, batch=0)


def test_simulate_without_estimate_uses_default_library(supernpu_config, tiny_network):
    run = simulate(supernpu_config, tiny_network, batch=1)
    assert run.frequency_ghz == pytest.approx(52.6, rel=0.002)
