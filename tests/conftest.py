"""Shared fixtures: cell libraries, design points, small workloads."""

from __future__ import annotations

import pytest

from repro.core.designs import baseline, buffer_opt, resource_opt, supernpu
from repro.device.cells import ersfq_library, rsfq_library
from repro.workloads.layers import ConvLayer, fc_layer
from repro.workloads.models import Network


@pytest.fixture(autouse=True)
def _quiescent_obs():
    """Observability must stay off (and empty) unless a test opts in."""
    from repro import obs

    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(autouse=True)
def _isolated_run_registry(tmp_path, monkeypatch):
    """CLI invocations in tests must never write ~/.supernpu/runs."""
    from repro.obs import registry

    monkeypatch.setenv(registry.RUNS_DIR_ENV, str(tmp_path / "runs"))
    registry.take_staged()
    yield
    registry.take_staged()


@pytest.fixture
def obs_enabled():
    """Turn the global obs runtime on for one test, cleaned up after."""
    from repro import obs

    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


@pytest.fixture(scope="session")
def rsfq():
    return rsfq_library()


@pytest.fixture(scope="session")
def ersfq():
    return ersfq_library()


@pytest.fixture(scope="session")
def baseline_config():
    return baseline()


@pytest.fixture(scope="session")
def buffer_opt_config():
    return buffer_opt()


@pytest.fixture(scope="session")
def resource_opt_config():
    return resource_opt()


@pytest.fixture(scope="session")
def supernpu_config():
    return supernpu()


@pytest.fixture(scope="session")
def tiny_network():
    """A three-layer CNN small enough for exhaustive checks."""
    layers = (
        ConvLayer("conv1", in_channels=3, in_height=16, in_width=16,
                  out_channels=8, kernel_height=3, kernel_width=3, padding=1),
        ConvLayer("conv2", in_channels=8, in_height=16, in_width=16,
                  out_channels=16, kernel_height=3, kernel_width=3,
                  stride=2, padding=1),
        fc_layer("fc", 16 * 8 * 8, 10),
    )
    return Network("TinyNet", layers)
