"""Gate-parameter extraction and margin-analysis tests."""

import pytest

from repro.jsim.extract import (
    MarginReport,
    bias_margins,
    extract_jtl_delay_ps,
    extract_setup_time_ps,
)


def test_extracted_jtl_delay_in_library_band():
    """The transient-measured hop delay must sit in the same picosecond
    band as the cell library's DEFAULT_WIRE_DELAY_PS (1.6 ps)."""
    delay = extract_jtl_delay_ps(stages=6)
    assert 0.8 <= delay <= 4.0


def test_extracted_setup_time_positive_and_bounded():
    setup = extract_setup_time_ps(resolution_ps=1.0)
    assert 0.5 <= setup <= 12.0


def test_setup_extraction_validates_resolution():
    with pytest.raises(ValueError):
        extract_setup_time_ps(resolution_ps=0)


def test_margin_report_arithmetic():
    report = MarginReport(nominal_fraction=0.7, low_fraction=0.5, high_fraction=0.9)
    assert report.width == pytest.approx(0.4)
    low, high = report.plus_minus_percent
    assert low == pytest.approx(-28.57, abs=0.1)
    assert high == pytest.approx(28.57, abs=0.1)


def test_jtl_bias_margins_are_wide():
    """A healthy JTL operates over a wide bias window around nominal."""
    report = bias_margins(resolution=0.05)
    assert report.low_fraction < 0.6
    assert report.high_fraction > 0.8
    assert report.width > 0.25


def test_margins_custom_criterion():
    report = bias_margins(operates=lambda b: 0.4 <= b <= 0.8, resolution=0.02)
    assert report.low_fraction == pytest.approx(0.4, abs=0.05)
    assert report.high_fraction == pytest.approx(0.8, abs=0.05)


def test_margins_fail_at_nominal_raises():
    with pytest.raises(RuntimeError, match="nominal"):
        bias_margins(operates=lambda b: False)


def test_margins_validate_resolution():
    with pytest.raises(ValueError):
        bias_margins(operates=lambda b: True, resolution=0)
