"""Design-comparison utility tests."""

import pytest

from repro.core.compare import compare, comparison_records, winner
from repro.core.designs import baseline, supernpu
from repro.workloads.models import mobilenet, resnet50


@pytest.fixture(scope="module")
def columns(rsfq):
    return compare(
        [baseline(), supernpu()],
        workloads=[resnet50(), mobilenet()],
        library=rsfq,
    )


def test_columns_cover_configs_and_workloads(columns):
    assert [c.config.name for c in columns] == ["Baseline", "SuperNPU"]
    for column in columns:
        assert set(column.throughput_tmacs) == {"ResNet50", "MobileNet"}
        assert set(column.batches) == {"ResNet50", "MobileNet"}


def test_scorecard_fields_sane(columns):
    for column in columns:
        assert column.frequency_ghz == pytest.approx(52.6, rel=0.002)
        assert column.area_mm2_28nm < 330
        assert column.mean_tmacs > 0


def test_winner_is_supernpu(columns):
    assert winner(columns).config.name == "SuperNPU"
    assert winner(columns).mean_tmacs > 10 * columns[0].mean_tmacs


def test_records_flatten(columns):
    records = comparison_records(columns)
    assert records[0]["design"] == "Baseline"
    assert "tmacs_ResNet50" in records[0]
    from repro.core.report import to_csv

    text = to_csv(records)
    assert text.splitlines()[0].startswith("design,")


def test_validation(rsfq):
    with pytest.raises(ValueError):
        compare([])
    with pytest.raises(ValueError, match="unique"):
        compare([supernpu(), supernpu()], workloads=[mobilenet()], library=rsfq)
    with pytest.raises(ValueError):
        winner([])


def test_custom_config_uses_derived_batch(rsfq):
    custom = supernpu().with_updates(name="custom-x")
    columns = compare([custom], workloads=[mobilenet()], library=rsfq)
    assert columns[0].batches["MobileNet"] >= 1
