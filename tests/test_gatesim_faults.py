"""Pulse-fault injection tests."""

import pytest

from repro.gatesim import build_adder, build_multiplier
from repro.gatesim.faults import PulseFault, compute_with_faults, sensitive_gates


@pytest.fixture(scope="module")
def multiplier():
    return build_multiplier(4)


def test_no_faults_reproduces_golden(multiplier):
    golden = multiplier.compute(a=7, b=9)
    assert compute_with_faults(multiplier, {"a": 7, "b": 9}, []) == golden


def test_dropped_partial_product_corrupts_result(multiplier):
    golden = multiplier.compute(a=7, b=9)
    faulted = compute_with_faults(
        multiplier, {"a": 7, "b": 9}, [PulseFault("and0", cycle=0)]
    )
    assert faulted != golden


def test_fault_on_idle_gate_is_harmless(multiplier):
    """Dropping a pulse that was never going to fire changes nothing."""
    golden = multiplier.compute(a=0, b=0)
    faulted = compute_with_faults(
        multiplier, {"a": 0, "b": 0}, [PulseFault("and0", cycle=0, kind="drop")]
    )
    assert faulted == golden == 0


def test_inserted_pulse_creates_wrong_one(multiplier):
    faulted = compute_with_faults(
        multiplier, {"a": 0, "b": 0}, [PulseFault("and0", cycle=0, kind="insert")]
    )
    assert faulted != 0


def test_network_recovers_after_faulted_run(multiplier):
    golden = multiplier.compute(a=11, b=13)
    compute_with_faults(multiplier, {"a": 11, "b": 13}, [PulseFault("and1", 1)])
    assert multiplier.compute(a=11, b=13) == golden


def test_sensitive_surface_is_small_subset(multiplier):
    surface = sensitive_gates(multiplier, {"a": 7, "b": 9}, cycle=1)
    assert 0 < len(surface) < multiplier.num_gates / 4


def test_all_zero_operands_have_tiny_surface():
    adder = build_adder(3)
    surface = sensitive_gates(adder, {"a": 0, "b": 0}, cycle=0)
    assert surface == set()  # no meaningful pulses to lose


def test_fault_validation(multiplier):
    with pytest.raises(ValueError):
        PulseFault("and0", cycle=-1)
    with pytest.raises(ValueError):
        PulseFault("and0", cycle=0, kind="invert")
    with pytest.raises(KeyError):
        compute_with_faults(multiplier, {"a": 1, "b": 1}, [PulseFault("nope", 0)])


def test_sensitive_surface_of_multi_output_network():
    """The campaign covers every output bit of a multi-output circuit."""
    adder = build_adder(3)
    assert adder.output_width > 1
    surface = sensitive_gates(adder, {"a": 5, "b": 3}, cycle=1)
    # 5 + 3 carries through every bit; some pipeline stage must be live.
    assert surface
    assert surface <= set(adder.builder.network._gates)


def test_inserted_pulse_flips_result_bit(multiplier):
    """A spurious partial-product pulse flips exactly the LSB of 2*2."""
    golden = multiplier.compute(a=2, b=2)
    faulted = compute_with_faults(
        multiplier, {"a": 2, "b": 2}, [PulseFault("and0", cycle=0, kind="insert")]
    )
    assert faulted != golden
    assert faulted ^ golden == 1  # and0 is the a0*b0 partial product


def test_fault_past_schedule_end_is_noop(multiplier):
    """A fault scheduled after the pipeline drains must not corrupt (or crash)."""
    golden = multiplier.compute(a=7, b=9)
    faulted = compute_with_faults(
        multiplier, {"a": 7, "b": 9}, [PulseFault("and0", cycle=10_000)]
    )
    assert faulted == golden
