"""BENCH recorder tests: document schema, comparison verdicts, CLI gate.

The one subprocess integration test records a real (tiny) benchmark
subset through ``supernpu bench run``; everything else drives the
comparator and loader on synthetic documents.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.obs import bench


def make_document(sha="aaaa111", benchmarks=None, created=1000.0):
    return {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "kind": bench.BENCH_KIND,
        "git_sha": sha,
        "subset": "smoke",
        "created_unix": created,
        "settings": {"min_rounds": 1, "max_time_s": 0.1},
        "host": {},
        "manifest": {},
        "benchmarks": benchmarks if benchmarks is not None else {
            "bench_x.py::test_a": {"min_s": 0.010, "mean_s": 0.012,
                                   "rounds": 5, "iterations": 1},
            "bench_x.py::test_b": {"min_s": 0.020, "mean_s": 0.022,
                                   "rounds": 5, "iterations": 1},
        },
        "counters": {"sim.cycles": 1000},
        "histograms": {},
    }


# -- subset resolution -----------------------------------------------------

def test_named_subsets_resolve():
    everything = bench.bench_files("all")
    smoke = bench.bench_files("smoke")
    assert smoke and len(smoke) < len(everything)
    assert all(path.is_file() for path in smoke)
    named = {path.stem for sub in ("figures", "ablation", "extensions")
             for path in bench.bench_files(sub)}
    assert named <= {path.stem for path in everything}


def test_fragment_subset_resolves():
    files = bench.bench_files("fig07,fig13")
    assert {path.stem for path in files} == {"bench_fig07_feedback",
                                             "bench_fig13_validation"}


def test_unknown_subset_raises():
    with pytest.raises(ConfigError) as excinfo:
        bench.bench_files("definitely_not_a_benchmark")
    assert excinfo.value.code == "bench.unknown_benchmark"


# -- document IO -----------------------------------------------------------

def test_write_and_load_round_trip(tmp_path):
    document = make_document()
    path = bench.write_document(document, path=tmp_path / "BENCH_test.json")
    assert bench.load_document(path) == document


def test_load_rejects_missing_and_corrupt(tmp_path):
    with pytest.raises(ConfigError) as excinfo:
        bench.load_document(tmp_path / "BENCH_nope.json")
    assert excinfo.value.code == "bench.missing_file"
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{torn")
    with pytest.raises(ConfigError) as excinfo:
        bench.load_document(bad)
    assert excinfo.value.code == "bench.corrupt_file"
    foreign = tmp_path / "BENCH_foreign.json"
    foreign.write_text(json.dumps({"schema": 999, "kind": "other"}))
    with pytest.raises(ConfigError) as excinfo:
        bench.load_document(foreign)
    assert excinfo.value.code == "bench.wrong_schema"


def test_find_baseline_prefers_newest(tmp_path):
    bench.write_document(make_document(sha="old1111", created=100.0),
                         path=tmp_path / "BENCH_old1111.json")
    bench.write_document(make_document(sha="new2222", created=200.0),
                         path=tmp_path / "BENCH_new2222.json")
    (tmp_path / "BENCH_junk.json").write_text("not json")  # skipped
    found = bench.find_baseline(tmp_path)
    assert found is not None and found.name == "BENCH_new2222.json"
    # Excluding the newest falls back to the older recording.
    older = bench.find_baseline(tmp_path, exclude=[found])
    assert older is not None and older.name == "BENCH_old1111.json"
    assert bench.find_baseline(tmp_path, exclude=[found, older]) is None


def test_default_bench_path_uses_sha(tmp_path):
    path = bench.default_bench_path(tmp_path, sha="cafe123")
    assert path == tmp_path / "BENCH_cafe123.json"


# -- comparison ------------------------------------------------------------

def test_compare_identical_is_ok():
    comparison = bench.compare_documents(make_document(), make_document())
    assert comparison.ok
    assert all(delta.verdict == "ok" for delta in comparison.deltas)


def test_compare_flags_regression_and_improvement():
    base = make_document()
    new = make_document(sha="bbbb222")
    new["benchmarks"]["bench_x.py::test_a"]["min_s"] = 0.030  # 3.0x slower
    new["benchmarks"]["bench_x.py::test_b"]["min_s"] = 0.005  # 4.0x faster
    comparison = bench.compare_documents(base, new, threshold=1.5)
    assert not comparison.ok
    verdicts = {d.name: d.verdict for d in comparison.deltas}
    assert verdicts["bench_x.py::test_a"] == "regression"
    assert verdicts["bench_x.py::test_b"] == "improvement"
    regression = comparison.regressions[0]
    assert regression.ratio == pytest.approx(3.0)


def test_compare_threshold_is_respected():
    base = make_document()
    new = make_document()
    new["benchmarks"]["bench_x.py::test_a"]["min_s"] = 0.018  # 1.8x
    assert not bench.compare_documents(base, new, threshold=1.5).ok
    assert bench.compare_documents(base, new, threshold=2.0).ok


def test_compare_added_and_missing_never_gate():
    base = make_document()
    new = make_document()
    del new["benchmarks"]["bench_x.py::test_b"]
    new["benchmarks"]["bench_x.py::test_c"] = {"min_s": 0.5, "mean_s": 0.5,
                                               "rounds": 1, "iterations": 1}
    comparison = bench.compare_documents(base, new)
    verdicts = {d.name: d.verdict for d in comparison.deltas}
    assert verdicts["bench_x.py::test_b"] == "missing"
    assert verdicts["bench_x.py::test_c"] == "added"
    assert comparison.ok


def test_compare_invalid_threshold():
    with pytest.raises(ConfigError):
        bench.compare_documents(make_document(), make_document(), threshold=1.0)


def test_comparison_dict_export():
    base = make_document()
    new = make_document(sha="bbbb222")
    new["benchmarks"]["bench_x.py::test_a"]["min_s"] = 0.030
    data = bench.compare_documents(base, new).to_dict()
    assert data["ok"] is False and data["regressions"] == 1
    assert data["base_sha"] == "aaaa111" and data["new_sha"] == "bbbb222"
    assert len(data["deltas"]) == 2


# -- CLI: compare gate -----------------------------------------------------

def test_cli_bench_compare_exit_codes(tmp_path, capsys):
    base_path = tmp_path / "BENCH_base.json"
    bench.write_document(make_document(), path=base_path)
    slow = make_document(sha="slow222")
    slow["benchmarks"]["bench_x.py::test_a"]["min_s"] = 0.100
    slow_path = tmp_path / "BENCH_slow.json"
    bench.write_document(slow, path=slow_path)

    assert main(["bench", "compare", str(base_path),
                 "--baseline", str(base_path)]) == 0
    capsys.readouterr()
    assert main(["bench", "compare", str(slow_path),
                 "--baseline", str(base_path)]) == 1
    out = capsys.readouterr().out
    assert "regression" in out and "1 regressions" in out


def test_cli_bench_compare_json(tmp_path, capsys):
    path = tmp_path / "BENCH_one.json"
    bench.write_document(make_document(), path=path)
    assert main(["bench", "compare", str(path), "--baseline", str(path),
                 "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True and document["regressions"] == 0


def test_cli_bench_compare_requires_candidate(capsys):
    assert main(["bench", "compare"]) == 2
    assert "candidate" in capsys.readouterr().err


def test_cli_bench_compare_missing_baseline(tmp_path, capsys, monkeypatch):
    path = tmp_path / "BENCH_one.json"
    bench.write_document(make_document(), path=path)
    monkeypatch.setattr(bench, "repo_root", lambda explicit=None: tmp_path)
    assert main(["bench", "compare", str(path)]) == 2
    assert "no baseline" in capsys.readouterr().err


# -- the real thing (one small subprocess run) -----------------------------

@pytest.mark.slow
def test_cli_bench_run_records_real_subset(tmp_path, capsys):
    out = tmp_path / "BENCH_real.json"
    assert main(["bench", "run", "--subset", "fig07", "--min-rounds", "1",
                 "--max-time", "0.05", "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "benchmarks (fig07)" in stdout
    document = bench.load_document(out)
    assert document["schema"] == bench.BENCH_SCHEMA_VERSION
    assert document["subset"] == "fig07"
    assert document["benchmarks"], "must record at least one benchmark"
    for stats in document["benchmarks"].values():
        assert stats["min_s"] > 0 and stats["rounds"] >= 1
    # The obs session inside the subprocess feeds the counters block.
    assert document["counters"].get("bench.tests", 0) > 0
    assert "bench.test_seconds" in document["histograms"]
    assert document["manifest"]["command"] == "bench"
    # A recording compares clean against itself through the CLI gate.
    assert main(["bench", "compare", str(out), "--baseline", str(out)]) == 0
