"""NPUConfig JSON (de)serialization tests."""

import pytest

from repro.core.config_io import (
    config_from_dict,
    config_to_dict,
    dumps,
    load,
    loads,
    save,
)
from repro.core.designs import supernpu


def test_round_trip_preserves_config():
    config = supernpu()
    assert loads(dumps(config)) == config


def test_dict_round_trip():
    config = supernpu()
    assert config_from_dict(config_to_dict(config)) == config


def test_file_round_trip(tmp_path):
    config = supernpu()
    path = tmp_path / "supernpu.json"
    save(config, path)
    assert load(path) == config
    assert path.read_text().startswith("{")


def test_unknown_field_rejected():
    data = config_to_dict(supernpu())
    data["warp_factor"] = 9
    with pytest.raises(ValueError, match="warp_factor"):
        config_from_dict(data)


def test_missing_name_rejected():
    data = config_to_dict(supernpu())
    del data["name"]
    with pytest.raises(ValueError, match="name"):
        config_from_dict(data)


def test_invalid_values_still_validated():
    data = config_to_dict(supernpu())
    data["pe_array_width"] = 0
    with pytest.raises(ValueError):
        config_from_dict(data)


def test_non_object_json_rejected():
    with pytest.raises(ValueError):
        loads("[1, 2, 3]")


def test_dumps_is_stable():
    a = dumps(supernpu())
    b = dumps(supernpu())
    assert a == b
