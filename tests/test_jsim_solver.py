"""Transient-solver numerical tests."""

import math

import numpy as np
import pytest

from repro.jsim.elements import Capacitor, CurrentSource, Inductor, JosephsonJunction
from repro.jsim.netlist import Circuit
from repro.jsim.solver import TransientSolver
from repro.jsim.stimuli import ramped_bias


def test_quiescent_circuit_stays_at_rest():
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0))
    result = TransientSolver(circuit).run(20.0)
    assert np.max(np.abs(result.node_phase(node))) < 1e-6


def test_subcritical_bias_settles_below_pi_over_2():
    """DC bias below Ic parks the junction phase at arcsin(I/Ic)."""
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0, critical_current_ua=100.0))
    circuit.add_bias(node, 50.0)
    result = TransientSolver(circuit).run(100.0)
    final = result.node_phase(node)[-1]
    assert math.isclose(final, math.asin(0.5), abs_tol=0.05)


def test_supercritical_bias_produces_voltage_state():
    """Driving past Ic puts the junction in the running (voltage) state."""
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0, critical_current_ua=100.0))
    circuit.add_source(CurrentSource(node, ramped_bias(150.0)))
    result = TransientSolver(circuit).run(100.0)
    # Phase keeps advancing: many 2*pi slips.
    assert result.node_phase(node)[-1] > 10 * 2 * math.pi


def test_josephson_frequency_relation():
    """In the running state, f = <V> / Phi0 (the AC Josephson relation)."""
    from repro.device.constants import PHI0_MV_PS

    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0, critical_current_ua=100.0))
    circuit.add_source(CurrentSource(node, ramped_bias(200.0)))
    result = TransientSolver(circuit).run(200.0)
    mask = result.time_ps > 100.0  # steady state
    mean_voltage = float(np.mean(result.node_voltage_mv(node)[mask]))
    slips = (result.node_phase(node)[-1] - result.node_phase(node)[mask][0]) / (2 * math.pi)
    duration = result.time_ps[-1] - result.time_ps[mask][0]
    measured_rate = slips / duration  # slips per ps
    assert math.isclose(measured_rate, mean_voltage / PHI0_MV_PS, rel_tol=0.05)


def test_lc_resonance_frequency():
    """A linear LC tank checks the integrator against textbook physics."""
    circuit = Circuit()
    node = circuit.node()
    inductance_ph, capacitance_pf = 100.0, 1.0
    circuit.add_inductor(Inductor(node, 0, inductance_ph))
    circuit.add_capacitor(Capacitor(node, 0, capacitance_pf))
    # Kick with a short pulse, then watch it ring for many periods.
    circuit.add_source(CurrentSource(node, lambda t: 100.0 if t < 1.0 else 0.0))
    result = TransientSolver(circuit, step_ps=0.05).run(1000.0)
    phase = result.node_phase(node)
    # Count zero crossings of the centered waveform after the kick.
    settled = phase[result.time_ps > 5.0] - np.mean(phase[result.time_ps > 5.0])
    crossings = np.sum(np.diff(np.sign(settled)) != 0)
    duration = result.time_ps[-1] - 5.0
    measured_ghz = crossings / 2.0 / duration * 1e3
    expected_ghz = 1e3 / (2 * math.pi * math.sqrt(inductance_ph * capacitance_pf))
    assert math.isclose(measured_ghz, expected_ghz, rel_tol=0.05)


def test_sampling_decimation():
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0))
    full = TransientSolver(circuit).run(10.0, sample_every=1)
    thin = TransientSolver(circuit).run(10.0, sample_every=10)
    assert len(thin.time_ps) < len(full.time_ps)
    assert math.isclose(thin.time_ps[-1], full.time_ps[-1], abs_tol=0.5)


def test_initial_phase_override():
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0))
    initial = np.zeros(circuit.num_nodes)
    initial[node] = 0.3
    result = TransientSolver(circuit).run(5.0, initial_phases=initial)
    assert math.isclose(result.node_phase(node)[0], 0.3)


def test_solver_validation():
    circuit = Circuit()
    node = circuit.node()
    circuit.add_junction(JosephsonJunction(node, 0))
    with pytest.raises(ValueError):
        TransientSolver(circuit, step_ps=0)
    solver = TransientSolver(circuit)
    with pytest.raises(ValueError):
        solver.run(0)
    with pytest.raises(ValueError):
        solver.run(1.0, sample_every=0)
    with pytest.raises(ValueError):
        solver.run(1.0, initial_phases=np.zeros(99))
