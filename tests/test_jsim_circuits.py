"""Physics tests: SFQ pulse propagation and single-ring storage (Fig. 1)."""

import math

import numpy as np
import pytest

from repro.jsim.circuits import build_jtl, build_storage_loop, drive_jtl, jtl_stage_delay_ps
from repro.jsim.elements import CurrentSource
from repro.jsim.measure import (
    peak_voltage_mv,
    propagation_delay_ps,
    stored_flux_quanta,
    switch_count,
    switching_times_ps,
)
from repro.jsim.solver import TransientSolver
from repro.jsim.stimuli import gaussian_pulse, pulse_train


@pytest.fixture(scope="module")
def jtl_run():
    jtl = build_jtl(8)
    drive_jtl(jtl, 40.0)
    result = TransientSolver(jtl.circuit).run(80.0)
    return jtl, result


def test_single_fluxon_propagates_all_stages(jtl_run):
    jtl, result = jtl_run
    assert all(switch_count(result, node) == 1 for node in jtl.nodes)


def test_pulse_arrival_ordering(jtl_run):
    jtl, result = jtl_run
    arrivals = [switching_times_ps(result, node)[0] for node in jtl.nodes]
    assert arrivals == sorted(arrivals)


def test_per_stage_delay_near_library_value(jtl_run):
    """Cross-check of the cell library's 1.6 ps JTL hop (same ps order)."""
    delay = jtl_stage_delay_ps()
    assert 0.5 < delay < 5.0


def test_propagation_delay_positive(jtl_run):
    jtl, result = jtl_run
    assert propagation_delay_ps(result, jtl.nodes[0], jtl.nodes[-1]) > 0


def test_sfq_pulse_voltage_magnitude(jtl_run):
    """Fig. 1: SFQ pulses are ~100 uV, ~ps-wide events."""
    jtl, result = jtl_run
    peak = peak_voltage_mv(result, jtl.nodes[3])
    assert 0.03 < peak < 1.0  # tens to hundreds of microvolts


def test_pulse_area_is_one_flux_quantum(jtl_run):
    """The defining SFQ property: integral of V dt = Phi0.

    Integrate after the bias ramp settles (t > 30 ps) so only the pulse's
    2*pi phase slip contributes.
    """
    from repro.device.constants import PHI0_MV_PS

    jtl, result = jtl_run
    node = jtl.nodes[4]
    mask = result.time_ps > 30.0
    voltage = result.node_voltage_mv(node)[mask]
    area = float(np.trapezoid(voltage, result.time_ps[mask]))
    assert math.isclose(area, PHI0_MV_PS, rel_tol=0.1)


def test_no_spontaneous_switching():
    """A biased but undriven JTL must stay quiet (bias < Ic)."""
    jtl = build_jtl(6)
    result = TransientSolver(jtl.circuit).run(60.0)
    assert all(switch_count(result, node) == 0 for node in jtl.nodes)


def test_storage_loop_dff_sequence():
    """Fig. 1(c)/(d): store on data pulse, release on clock pulse."""
    loop = build_storage_loop()
    loop.circuit.add_source(CurrentSource(loop.input_node, gaussian_pulse(40.0), "d"))
    loop.circuit.add_source(CurrentSource(loop.output_node, gaussian_pulse(60.0), "clk"))
    result = TransientSolver(loop.circuit).run(90.0)
    out_times = switching_times_ps(result, loop.output_node)
    assert len(out_times) == 1
    assert out_times[0] >= 59.0  # only after the clock, not the data pulse
    in_times = switching_times_ps(result, loop.input_node)
    assert len(in_times) == 1 and 39.0 <= in_times[0] <= 42.0


def test_storage_loop_stored_quantum():
    """After the data pulse (before the clock), exactly one flux quantum
    sits in the ring — the stored '1' of Fig. 1(d)."""
    loop = build_storage_loop()
    loop.circuit.add_source(CurrentSource(loop.input_node, gaussian_pulse(40.0), "d"))
    result = TransientSolver(loop.circuit).run(55.0)
    assert switch_count(result, loop.input_node) == 1
    assert switch_count(result, loop.output_node) == 0
    # Loop flux = (theta_left - theta_right) / 2*pi = one quantum.
    assert stored_flux_quanta(result, loop.input_node) - stored_flux_quanta(
        result, loop.output_node
    ) == 1


def test_pulse_train_drives_repeated_switching():
    jtl = build_jtl(4)
    jtl.circuit.add_source(
        CurrentSource(jtl.input_node, pulse_train(40.0, period_ps=15.0, count=3), "train")
    )
    result = TransientSolver(jtl.circuit).run(110.0)
    assert switch_count(result, jtl.nodes[-1]) == 3


def test_invalid_jtl():
    with pytest.raises(ValueError):
        build_jtl(1)
    with pytest.raises(ValueError):
        build_jtl(4, bias_fraction=1.5)
