"""NPUConfig validation and derived-quantity tests."""

import math

import pytest

from repro.uarch.config import KIB, MIB, NPUConfig


def test_default_config_is_valid():
    config = NPUConfig(name="default")
    assert config.num_pes == 65536
    assert config.weights_per_tile == 256


def test_onchip_buffer_total():
    config = NPUConfig(name="x")
    assert config.onchip_buffer_bytes == 24 * MIB + 64 * KIB


def test_peak_performance():
    config = NPUConfig(name="x")
    # 65536 PEs at 52.6 GHz = ~3447 TMAC/s (Table I's peak magnitude).
    assert math.isclose(config.peak_mac_per_s(52.6), 65536 * 52.6e9)


def test_dram_bytes_per_cycle():
    config = NPUConfig(name="x", memory_bandwidth_gbps=300.0)
    # ~5.7 bytes per 52.6 GHz cycle — the starvation number.
    assert math.isclose(config.dram_bytes_per_cycle(52.6), 300 / 52.6)


def test_weights_per_tile_includes_registers():
    config = NPUConfig(
        name="x", pe_array_width=64, registers_per_pe=8,
        psum_buffer_bytes=0, integrated_output_buffer=True,
    )
    assert config.weights_per_tile == 512


def test_with_updates_creates_modified_copy():
    config = NPUConfig(name="x")
    other = config.with_updates(name="y", ifmap_division=64)
    assert other.name == "y"
    assert other.ifmap_division == 64
    assert config.ifmap_division == 1


@pytest.mark.parametrize(
    "changes",
    [
        {"pe_array_width": 0},
        {"pe_array_height": -1},
        {"data_bits": 0},
        {"psum_bits": 4},
        {"ifmap_division": 0},
        {"output_division": 0},
        {"registers_per_pe": 0},
        {"ifmap_buffer_bytes": -1},
    ],
)
def test_invalid_configs_rejected(changes):
    with pytest.raises(ValueError):
        NPUConfig(name="bad", **changes)


def test_integrated_design_must_drop_psum_buffer():
    with pytest.raises(ValueError, match="psum"):
        NPUConfig(name="bad", integrated_output_buffer=True, psum_buffer_bytes=8 * MIB)
