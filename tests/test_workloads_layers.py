"""Layer-geometry and volume tests."""

import pytest

from repro.workloads.layers import ConvLayer, ceil_div, depthwise_layer, fc_layer, pooled


def _layer(**overrides):
    params = dict(
        name="l", in_channels=3, in_height=8, in_width=8,
        out_channels=4, kernel_height=3, kernel_width=3, stride=1, padding=1,
    )
    params.update(overrides)
    return ConvLayer(**params)


def test_output_geometry_same_padding():
    layer = _layer()
    assert layer.out_height == 8
    assert layer.out_width == 8
    assert layer.output_pixels == 64


def test_output_geometry_stride():
    layer = _layer(stride=2, padding=1)
    assert layer.out_height == 4


def test_macs_per_image():
    layer = _layer()
    assert layer.macs_per_image == 64 * 4 * (3 * 3 * 3)


def test_reduction_size():
    assert _layer().reduction_size == 27
    assert _layer(groups=3, out_channels=3).reduction_size == 9


def test_weight_and_activation_volumes():
    layer = _layer()
    assert layer.weight_bytes == 4 * 27
    assert layer.ifmap_bytes == 3 * 64
    assert layer.ofmap_bytes == 4 * 64
    assert layer.footprint_bytes(2) == 2 * (192 + 256)


def test_fc_layer_shape():
    fc = fc_layer("fc", 512, 10)
    assert fc.is_fully_connected
    assert fc.output_pixels == 1
    assert fc.macs_per_image == 5120
    assert fc.reduction_size == 512


def test_depthwise_layer_shape():
    dw = depthwise_layer("dw", channels=32, in_size=16)
    assert dw.is_depthwise
    assert dw.groups == 32
    assert dw.reduction_size == 9
    assert dw.filters_per_group == 1
    assert dw.macs_per_image == 32 * 16 * 16 * 9


def test_unique_vs_streamed_pixels():
    layer = _layer(padding=0)
    # 3x3 kernel: every row tile needs E*F pixels, 9 copies per channel.
    assert layer.streamed_ifmap_pixels() == 27 * 36
    assert layer.unique_ifmap_pixels() == 3 * 64
    assert layer.streamed_ifmap_pixels() > 4 * layer.unique_ifmap_pixels()


def test_unique_pixels_respects_stride_clipping():
    layer = _layer(in_height=9, in_width=9, stride=2, padding=0)
    # out = 4, used extent = 3*2+3 = 9 -> all pixels used.
    assert layer.unique_ifmap_pixels() == 3 * 81


def test_pooled_helper():
    assert pooled(224) == 112
    assert pooled(55, kernel=3, stride=2) == 27
    assert pooled(112, kernel=3, stride=2, padding=1) == 56


def test_ceil_div():
    assert ceil_div(7, 3) == 3
    assert ceil_div(6, 3) == 2
    with pytest.raises(ValueError):
        ceil_div(4, 0)


@pytest.mark.parametrize(
    "overrides",
    [
        {"in_channels": 0},
        {"stride": 0},
        {"padding": -1},
        {"groups": 2},  # 3 channels not divisible by 2 groups
        {"kernel_height": 12, "padding": 0},  # kernel does not fit
    ],
)
def test_invalid_layers_rejected(overrides):
    with pytest.raises(ValueError):
        _layer(**overrides)


def test_footprint_requires_positive_batch():
    with pytest.raises(ValueError):
        _layer().footprint_bytes(0)
