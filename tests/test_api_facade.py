"""The ``repro.api`` facade: uniform design/workload/technology resolution."""

from __future__ import annotations

import pytest

from repro import api
from repro.core.config_io import config_to_dict, save
from repro.device.cells import Technology
from repro.workloads.models import by_name


# -- design resolution -----------------------------------------------------

def test_design_accepts_name(supernpu_config):
    assert api.design("supernpu") == supernpu_config


def test_design_passes_config_through(supernpu_config):
    assert api.design(supernpu_config) is supernpu_config


def test_design_accepts_dict(supernpu_config):
    assert api.design(config_to_dict(supernpu_config)) == supernpu_config


def test_design_accepts_path(tmp_path, supernpu_config):
    path = tmp_path / "d.json"
    save(supernpu_config, path)
    assert api.design(path) == supernpu_config          # Path object
    assert api.design(str(path)) == supernpu_config     # str ending in .json


def test_design_accepts_extensionless_file(tmp_path, supernpu_config):
    path = tmp_path / "design-no-ext"
    save(supernpu_config, path)
    assert api.design(str(path)) == supernpu_config


def test_design_unknown_name_raises():
    with pytest.raises(KeyError):
        api.design("meganpu")


def test_design_rejects_other_types():
    with pytest.raises(TypeError, match="design"):
        api.design(42)


# -- workload / library resolution -----------------------------------------

def test_workload_accepts_name_and_network(tiny_network):
    assert api.workload("alexnet") == by_name("alexnet")
    assert api.workload(tiny_network) is tiny_network
    with pytest.raises(TypeError, match="workload"):
        api.workload(3.14)


def test_library_accepts_all_spellings(rsfq):
    assert api.library("rsfq").technology is Technology.RSFQ
    assert api.library(Technology.ERSFQ).technology is Technology.ERSFQ
    assert api.library(rsfq) is rsfq
    with pytest.raises(ValueError):
        api.library("cmos")
    with pytest.raises(TypeError, match="library"):
        api.library(7)


# -- the verbs -------------------------------------------------------------

def test_estimate_matches_direct_path(supernpu_config, rsfq):
    from repro.estimator.arch_level import estimate_npu

    assert api.estimate("supernpu") == estimate_npu(supernpu_config, rsfq)


def test_estimate_ersfq_has_no_static_power():
    assert api.estimate("baseline", technology="ersfq").static_power_w == 0.0


def test_simulate_defaults_to_paper_batch(tiny_network):
    run = api.simulate("supernpu", "mobilenet")
    assert run.batch == 30  # Table II
    custom = api.simulate("supernpu", tiny_network, batch=2)
    assert custom.batch == 2 and custom.network == "TinyNet"


def test_simulate_with_timeline_fills_it(tiny_network):
    from repro.obs.timeline import CycleTimeline

    est = api.estimate("baseline")
    timeline = CycleTimeline(est.frequency_ghz)
    run = api.simulate("baseline", tiny_network, batch=1, timeline=timeline)
    assert timeline.events
    assert run.batch == 1


def test_evaluate_is_the_fig23_suite():
    suite = api.evaluate(designs=["baseline", "supernpu"], workloads=["alexnet"])
    speedups = suite.speedups()
    assert set(speedups) == {"Baseline", "SuperNPU"}
    assert speedups["SuperNPU"]["AlexNet"] > speedups["Baseline"]["AlexNet"]


def test_compare_resolves_specs(tmp_path, supernpu_config):
    path = tmp_path / "c.json"
    save(supernpu_config.with_updates(name="from-file"), path)
    columns = api.compare(["baseline", str(path)], workloads=["alexnet"])
    assert [c.config.name for c in columns] == ["Baseline", "from-file"]


def test_ablate_runs_through_facade(tiny_network):
    rows = api.ablate(workloads=[tiny_network])
    assert {"no_integration", "no_division"} <= {row.feature for row in rows}
    assert all(row.relative_to_full > 0 for row in rows)


def test_paper_workloads_order():
    names = [n.name for n in api.paper_workloads()]
    assert names[0] == "AlexNet" and len(names) == 6


# -- runner integration ----------------------------------------------------

def test_api_verbs_use_ambient_runner(tmp_path, tiny_network):
    with api.session(cache_dir=tmp_path / "c") as runner:
        api.simulate("supernpu", tiny_network, batch=1)
        assert runner.stats.misses == 1
        api.simulate("supernpu", tiny_network, batch=1)
        assert runner.stats.hits == 1


def test_api_accepts_explicit_runner(tiny_network):
    runner = api.JobRunner()
    api.simulate("baseline", tiny_network, batch=1, runner=runner)
    assert runner.stats.tasks == 1


def test_facade_reexports_job_layer():
    assert api.get_runner is not None
    assert {"design", "estimate", "simulate", "evaluate", "compare",
            "session", "JobRunner"} <= set(api.__all__)
