"""Property-based tests (hypothesis) over the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional.reference import conv2d_reference
from repro.functional.systolic import conv2d_systolic
from repro.simulator.mapping import map_layer
from repro.simulator.memory import MemoryModel
from repro.timing.clocking import concurrent_flow_cct, counter_flow_cct
from repro.uarch.buffers import ShiftRegisterBuffer
from repro.uarch.config import NPUConfig
from repro.uarch.unit import GateCounts
from repro.workloads.layers import ConvLayer


@st.composite
def conv_cases(draw):
    channels = draw(st.integers(1, 4))
    size = draw(st.integers(3, 7))
    kernel = draw(st.integers(1, min(3, size)))
    filters = draw(st.integers(1, 5))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, kernel // 2))
    rows = draw(st.integers(1, channels * kernel * kernel + 3))
    cols = draw(st.integers(1, filters + 2))
    seed = draw(st.integers(0, 2**16))
    return channels, size, kernel, filters, stride, padding, rows, cols, seed


@given(conv_cases())
@settings(max_examples=25, deadline=None)
def test_systolic_array_always_matches_reference(case):
    """The central functional invariant: any tiling, any shape, bit-equal."""
    channels, size, kernel, filters, stride, padding, rows, cols, seed = case
    rng = np.random.default_rng(seed)
    ifmap = rng.integers(-6, 7, size=(channels, size, size)).astype(np.int64)
    weights = rng.integers(-4, 5, size=(filters, channels, kernel, kernel)).astype(np.int64)
    expected = conv2d_reference(ifmap, weights, stride, padding)
    actual = conv2d_systolic(ifmap, weights, rows, cols, stride, padding)
    assert np.array_equal(expected, actual)


@st.composite
def layer_configs(draw):
    layer = ConvLayer(
        name="p",
        in_channels=draw(st.integers(1, 64)),
        in_height=draw(st.integers(4, 32)),
        in_width=draw(st.integers(4, 32)),
        out_channels=draw(st.integers(1, 128)),
        kernel_height=3,
        kernel_width=3,
        stride=draw(st.sampled_from([1, 2])),
        padding=1,
    )
    config = NPUConfig(
        name="p",
        pe_array_width=draw(st.sampled_from([16, 64, 256])),
        pe_array_height=draw(st.sampled_from([64, 256])),
        registers_per_pe=draw(st.sampled_from([1, 2, 8])),
        psum_buffer_bytes=0,
        integrated_output_buffer=True,
    )
    return layer, config


@given(layer_configs())
@settings(max_examples=50, deadline=None)
def test_mapping_covers_exactly_the_macs(case):
    """Tiles always cover every weight, and MAC accounting balances."""
    layer, config = case
    mapping = map_layer(layer, config)
    covered = sum(t.count * t.weights for t in mapping.tiles)
    assert covered >= layer.weight_count
    # Per-tile geometry never exceeds the array.
    for tile in mapping.tiles:
        assert tile.rows_used <= config.pe_array_height
        assert tile.cols_used <= config.pe_array_width
        assert tile.regs_used <= config.registers_per_pe


@given(
    capacity=st.integers(1, 10**7),
    width=st.integers(1, 512),
    division=st.integers(1, 128),
)
@settings(max_examples=50, deadline=None)
def test_buffer_geometry_invariants(capacity, width, division):
    buf = ShiftRegisterBuffer(capacity, io_width=width, division=division)
    assert buf.chunk_length_entries * division >= buf.row_length_entries
    assert buf.row_length_entries * width >= buf.total_entries
    assert buf.rewind_cycles() <= max(1, buf.row_length_entries)


@given(
    setup=st.floats(0.1, 20, allow_nan=False),
    hold=st.floats(0.1, 20, allow_nan=False),
    skew=st.floats(0, 100, allow_nan=False),
    path=st.floats(0.1, 50, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_clocking_invariants(setup, hold, skew, path):
    fast = concurrent_flow_cct(setup, hold, skew)
    slow = counter_flow_cct(setup, hold, path)
    assert fast.cycle_time_ps >= setup + hold
    # Counter-flow always pays at least setup+hold+path.
    assert slow.cycle_time_ps >= setup + hold + path
    assert fast.frequency_ghz > 0 and slow.frequency_ghz > 0


@given(
    bw=st.floats(1, 2000, allow_nan=False),
    freq=st.floats(0.1, 100, allow_nan=False),
    nbytes=st.integers(0, 10**9),
)
@settings(max_examples=100, deadline=None)
def test_memory_transfer_invariants(bw, freq, nbytes):
    memory = MemoryModel(bw, freq)
    cycles = memory.transfer_cycles(nbytes)
    assert cycles >= 0
    assert cycles * memory.bytes_per_cycle >= nbytes - 1e-6


@given(st.dictionaries(st.sampled_from(["AND", "XOR", "DFF", "JTL"]),
                       st.integers(0, 1000), max_size=4),
       st.integers(1, 7))
@settings(max_examples=100, deadline=None)
def test_gatecounts_scaling_distributes(counts, factor):
    base = GateCounts(counts)
    scaled = base.scaled(factor)
    assert scaled.total() == base.total() * factor
    for name, count in base.items():
        assert scaled[name] == count * factor


@given(st.integers(1, 64), st.integers(1, 8), st.integers(1, 60))
@settings(max_examples=50, deadline=None)
def test_batch_scales_macs_linearly(channels, filters, batch):
    layer = ConvLayer("p", channels, 8, 8, filters, 3, 3, padding=1)
    assert layer.macs_per_image * batch == batch * layer.output_pixels * filters * layer.reduction_size
