"""Timing-variation Monte Carlo tests."""

import numpy as np
import pytest

from repro.estimator.variation import (
    VariationReport,
    monte_carlo_frequency,
    perturbed_library,
)


def test_zero_sigma_reproduces_nominal(rsfq, supernpu_config):
    report = monte_carlo_frequency(supernpu_config, sigma=0.0, trials=3, library=rsfq)
    assert all(f == pytest.approx(report.nominal_ghz) for f in report.frequencies_ghz)
    assert report.yield_at(report.nominal_ghz) == 1.0


def test_variation_spreads_frequency(rsfq, supernpu_config):
    report = monte_carlo_frequency(supernpu_config, sigma=0.08, trials=25, library=rsfq)
    assert report.worst_ghz < report.nominal_ghz
    assert report.trials == 25
    assert len(set(report.frequencies_ghz)) > 1


def test_yield_frequency_tradeoff(rsfq, supernpu_config):
    report = monte_carlo_frequency(supernpu_config, sigma=0.08, trials=25, library=rsfq)
    relaxed = report.frequency_at_yield(0.5)
    strict = report.frequency_at_yield(1.0)
    assert strict <= relaxed
    assert report.yield_at(strict) == 1.0


def test_deterministic_given_seed(rsfq, supernpu_config):
    a = monte_carlo_frequency(supernpu_config, sigma=0.05, trials=5, seed=7, library=rsfq)
    b = monte_carlo_frequency(supernpu_config, sigma=0.05, trials=5, seed=7, library=rsfq)
    assert a.frequencies_ghz == b.frequencies_ghz


def test_perturbed_library_changes_timing_only(rsfq):
    rng = np.random.default_rng(0)
    jittered = perturbed_library(rsfq, 0.1, rng)
    for name in rsfq.names:
        assert jittered[name].static_power_uw == rsfq[name].static_power_uw
        assert jittered[name].jj_count == rsfq[name].jj_count
    changed = any(jittered[n].delay_ps != rsfq[n].delay_ps for n in rsfq.names)
    assert changed


def test_parameter_validation(rsfq, supernpu_config):
    with pytest.raises(ValueError):
        monte_carlo_frequency(supernpu_config, trials=0, library=rsfq)
    with pytest.raises(ValueError):
        perturbed_library(rsfq, -0.1, np.random.default_rng(0))
    report = VariationReport(52.6, 0.05, 2, (50.0, 51.0))
    with pytest.raises(ValueError):
        report.frequency_at_yield(0.0)
