"""Gate-level pulse-logic simulator for SFQ pipelines."""

from repro.gatesim.gates import (
    AndGate,
    ClockedGate,
    DFFGate,
    GATE_TYPES,
    NDROGate,
    NotGate,
    OrGate,
    TFFGate,
    XorGate,
    make_gate,
)
from repro.gatesim.network import GateNetwork
from repro.gatesim.pe import WeightStationaryPE
from repro.gatesim.builder import CircuitBuilder, Signal
from repro.gatesim.faults import (
    FaultyNetwork,
    PulseFault,
    compute_with_faults,
    sensitive_gates,
)
from repro.gatesim.circuits import (
    PipelinedCircuit,
    build_adder,
    build_frequency_divider,
    build_mac,
    build_max,
    build_multiplier,
    build_relu,
    full_adder,
    multiplier_bits,
    ripple_adder,
)

__all__ = [
    "AndGate",
    "ClockedGate",
    "DFFGate",
    "GATE_TYPES",
    "NDROGate",
    "NotGate",
    "OrGate",
    "TFFGate",
    "XorGate",
    "make_gate",
    "GateNetwork",
    "WeightStationaryPE",
    "CircuitBuilder",
    "Signal",
    "FaultyNetwork",
    "PulseFault",
    "compute_with_faults",
    "sensitive_gates",
    "PipelinedCircuit",
    "build_adder",
    "build_frequency_divider",
    "build_mac",
    "build_max",
    "build_multiplier",
    "build_relu",
    "full_adder",
    "multiplier_bits",
    "ripple_adder",
]
