"""Gate-network engine: gate-level-pipelined execution, one clock at a time.

Every gate in an SFQ gate-level pipeline is clocked simultaneously
(Section II-B1); a pulse emitted at clock ``k`` reaches its destination
latch before clock ``k+1``.  The engine therefore steps in two phases per
cycle — clock every gate, then deliver the emitted pulses — which also
makes feedback wires (a gate feeding itself or an earlier stage) work
naturally.

Fan-out (splitters) is wiring: one output may drive any number of
destination ports.  Primary inputs are scheduled per cycle; primary
outputs are recorded per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.gatesim.gates import ClockedGate, make_gate

#: A destination: (gate name, port) or ("@", output name) for a primary output.
Destination = Tuple[str, str]

OUTPUT_MARKER = "@"


@dataclass
class _Wire:
    destinations: List[Destination]


class GateNetwork:
    """A named collection of clocked gates plus their wiring."""

    def __init__(self) -> None:
        self._gates: Dict[str, ClockedGate] = {}
        self._wires: Dict[str, _Wire] = {}
        self._inputs: Dict[str, List[Destination]] = {}
        self._output_names: List[str] = []

    # -- Construction ---------------------------------------------------------

    def add_gate(self, name: str, kind: str) -> str:
        if name in self._gates:
            raise ValueError(f"duplicate gate name {name!r}")
        self._gates[name] = make_gate(kind)
        self._wires[name] = _Wire(destinations=[])
        return name

    def add_input(self, name: str) -> str:
        if name in self._inputs:
            raise ValueError(f"duplicate input {name!r}")
        self._inputs[name] = []
        return name

    def add_output(self, name: str, from_gate: str) -> str:
        """Expose ``from_gate``'s output pulse stream as primary output."""
        self._require_gate(from_gate)
        if name in self._output_names:
            raise ValueError(f"duplicate output {name!r}")
        self._output_names.append(name)
        self._wires[from_gate].destinations.append((OUTPUT_MARKER, name))
        return name

    def connect(self, source_gate: str, dest_gate: str, dest_port: str) -> None:
        """Wire a gate output to another gate's input port (fan-out free)."""
        self._require_gate(source_gate)
        self._require_gate(dest_gate)
        self._wires[source_gate].destinations.append((dest_gate, dest_port))

    def connect_input(self, input_name: str, dest_gate: str, dest_port: str) -> None:
        if input_name not in self._inputs:
            raise KeyError(f"no input {input_name!r}")
        self._require_gate(dest_gate)
        self._inputs[input_name].append((dest_gate, dest_port))

    def _require_gate(self, name: str) -> None:
        if name not in self._gates:
            raise KeyError(f"no gate {name!r}")

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def output_names(self) -> List[str]:
        return list(self._output_names)

    def gate_kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self._gates.values():
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    # -- Execution ------------------------------------------------------------

    def step(self, input_pulses: Dict[str, bool] | None = None) -> Dict[str, bool]:
        """One clock cycle: deliver input pulses, clock all gates, route.

        Returns the primary-output pulses of this cycle.
        """
        if input_pulses:
            for name, pulse in input_pulses.items():
                if name not in self._inputs:
                    raise KeyError(f"no input {name!r}")
                if pulse:
                    for gate, port in self._inputs[name]:
                        self._gates[gate].receive(port)
        emitted = {name: gate.clock() for name, gate in self._gates.items()}
        outputs = {name: False for name in self._output_names}
        for source, pulse in emitted.items():
            if not pulse:
                continue
            for dest_gate, dest_port in self._wires[source].destinations:
                if dest_gate == OUTPUT_MARKER:
                    outputs[dest_port] = True
                else:
                    self._gates[dest_gate].receive(dest_port)
        return outputs

    def run(self, schedule: Sequence[Dict[str, bool]], extra_cycles: int = 0) -> List[Dict[str, bool]]:
        """Apply one input map per cycle, then flush ``extra_cycles`` more."""
        if extra_cycles < 0:
            raise ValueError("extra cycles must be non-negative")
        trace = [self.step(pulses) for pulses in schedule]
        trace += [self.step({}) for _ in range(extra_cycles)]
        return trace
