"""Fault injection for pulse-logic networks.

SFQ logic's failure modes are *pulse* faults: a gate drops its output
pulse (insufficient bias / timing violation) or emits a spurious one
(flux trapping, noise).  Injecting them into a gate network shows how a
single lost pulse corrupts an arithmetic result — the device-level reason
the bias-margin and timing-yield analyses exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.gatesim.circuits import PipelinedCircuit
from repro.gatesim.network import GateNetwork, OUTPUT_MARKER


@dataclass(frozen=True)
class PulseFault:
    """One injected fault: at ``cycle``, ``gate``'s output pulse is dropped
    (``kind='drop'``) or forced (``kind='insert'``)."""

    gate: str
    cycle: int
    kind: str = "drop"

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "insert"):
            raise ValueError("fault kind must be 'drop' or 'insert'")
        if self.cycle < 0:
            raise ValueError("fault cycle must be non-negative")


class FaultyNetwork:
    """Wraps a :class:`GateNetwork`, applying faults to emitted pulses."""

    def __init__(self, network: GateNetwork, faults: Sequence[PulseFault]) -> None:
        self.network = network
        self._faults: Dict[Tuple[str, int], str] = {}
        for fault in faults:
            if fault.gate not in network._gates:
                raise KeyError(f"no gate {fault.gate!r} to fault")
            self._faults[(fault.gate, fault.cycle)] = fault.kind
        self._cycle = 0

    def step(self, input_pulses: Dict[str, bool] | None = None) -> Dict[str, bool]:
        """One cycle with fault overrides applied to gate outputs."""
        net = self.network
        if input_pulses:
            for name, pulse in input_pulses.items():
                if pulse:
                    for gate, port in net._inputs[name]:
                        net._gates[gate].receive(port)
        emitted = {name: gate.clock() for name, gate in net._gates.items()}
        for (gate, cycle), kind in self._faults.items():
            if cycle == self._cycle:
                emitted[gate] = kind == "insert"
        outputs = {name: False for name in net._output_names}
        for source, pulse in emitted.items():
            if not pulse:
                continue
            for dest_gate, dest_port in net._wires[source].destinations:
                if dest_gate == OUTPUT_MARKER:
                    outputs[dest_port] = True
                else:
                    net._gates[dest_gate].receive(dest_port)
        self._cycle += 1
        return outputs

    def run(self, schedule: Sequence[Dict[str, bool]], extra_cycles: int = 0) -> List[Dict[str, bool]]:
        trace = [self.step(p) for p in schedule]
        trace += [self.step({}) for _ in range(extra_cycles)]
        return trace


def compute_with_faults(
    circuit: PipelinedCircuit,
    operands: Dict[str, int],
    faults: Sequence[PulseFault],
) -> int:
    """Run one operation through a faulted copy of the circuit.

    Rebuilds nothing: the circuit is stateless between operations, so a
    fresh FaultyNetwork over the same gates suffices (state is cleared by
    the flush cycles of the previous run).
    """
    schedule = [circuit._encode(operands)]
    max_latency = max(
        circuit.builder.output_latency(f"{circuit.output_prefix}{i}")
        for i in range(circuit.output_width)
    )
    faulty = FaultyNetwork(circuit.builder.network, faults)
    trace = faulty.run(schedule, extra_cycles=max_latency)
    outputs = {
        f"{circuit.output_prefix}{i}": trace[
            circuit.builder.output_latency(f"{circuit.output_prefix}{i}") - 1
        ][f"{circuit.output_prefix}{i}"]
        for i in range(circuit.output_width)
    }
    return circuit._decode(outputs)


def sensitive_gates(
    circuit: PipelinedCircuit,
    operands: Dict[str, int],
    cycle: int = 1,
) -> Set[str]:
    """Gates whose dropped pulse at ``cycle`` corrupts this operation.

    A brute-force single-fault campaign: the returned set is the
    fault-sensitive surface of the computation (gates that carried a
    meaningful pulse that cycle).
    """
    golden = circuit.compute(**operands)
    sensitive = set()
    for name in list(circuit.builder.network._gates):
        result = compute_with_faults(
            circuit, operands, [PulseFault(gate=name, cycle=cycle)]
        )
        if result != golden:
            sensitive.add(name)
    return sensitive
