"""A complete weight-stationary PE at gate level (Fig. 6(a), realized).

The paper's PE holds its weight in non-destructive-readout (NDRO) cells,
multiplies each streamed ifmap value against it and adds the incoming
partial sum.  This module builds that exact structure from pulse logic:

* a load phase writes the weight bits into NDRO cells (``set`` pulses);
* NDROs are clocked every cycle, re-emitting the stored bits
  non-destructively — the "weight-stationary" property in the flesh;
* the multiplier + psum adder pipeline consumes one (ifmap, psum) pair per
  clock, indefinitely, without reloading the weight.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.gatesim.builder import CircuitBuilder, Signal
from repro.gatesim.circuits import multiplier_bits, ripple_adder


class WeightStationaryPE:
    """A gate-level PE: load a weight once, stream MACs forever."""

    def __init__(self, bits: int = 4, psum_bits: int | None = None) -> None:
        if bits < 1:
            raise ValueError("width must be positive")
        self.bits = bits
        self.psum_bits = psum_bits or (2 * bits + 1)
        if self.psum_bits < 2 * bits:
            raise ValueError("psum width must hold the full product")
        self._build()

    def _build(self) -> None:
        builder = CircuitBuilder()
        network = builder.network
        # Weight-load inputs drive the NDRO set/reset ports directly.
        self._ndro_names: List[str] = []
        for bit in range(self.bits):
            network.add_input(f"wset{bit}")
            network.add_input(f"wreset{bit}")
            ndro = network.add_gate(f"weight{bit}", "NDRO")
            network.connect_input(f"wset{bit}", ndro, "set")
            network.connect_input(f"wreset{bit}", ndro, "reset")
            self._ndro_names.append(ndro)
        weight_signals = [Signal(source=name, depth=1) for name in self._ndro_names]

        a_bits = [builder.input(f"a{i}") for i in range(self.bits)]
        c_bits = [builder.input(f"c{i}") for i in range(self.psum_bits)]
        # Ifmap bits wait one stage so they meet the NDRO read-outs.
        a_bits = [builder.delay(a, 1) for a in a_bits]
        product = multiplier_bits(builder, a_bits, weight_signals)
        product += [builder.zero() for _ in range(self.psum_bits - len(product))]
        total = ripple_adder(builder, product[: self.psum_bits], c_bits)
        for i in range(self.psum_bits):
            builder.output(f"p{i}", total[i])
        self.builder = builder

    # -- Operation -------------------------------------------------------------

    @property
    def latency(self) -> int:
        return max(
            self.builder.output_latency(f"p{i}") for i in range(self.psum_bits)
        )

    @property
    def num_gates(self) -> int:
        return self.builder.network.num_gates

    def load_weight(self, weight: int) -> None:
        """Write the weight into the NDRO cells (one load cycle)."""
        if not 0 <= weight < (1 << self.bits):
            raise ValueError(f"weight {weight} does not fit in {self.bits} bits")
        pulses: Dict[str, bool] = {}
        for bit in range(self.bits):
            if (weight >> bit) & 1:
                pulses[f"wset{bit}"] = True
            else:
                pulses[f"wreset{bit}"] = True
        self.builder.network.step(pulses)

    def stream(self, pairs: Sequence["tuple[int, int]"]) -> List[int]:
        """Stream (ifmap, psum_in) pairs, one per clock; returns psum_outs."""
        operations = []
        for ifmap, psum in pairs:
            if not 0 <= ifmap < (1 << self.bits):
                raise ValueError(f"ifmap {ifmap} does not fit in {self.bits} bits")
            if not 0 <= psum < (1 << self.psum_bits):
                raise ValueError(f"psum {psum} does not fit in {self.psum_bits} bits")
            pulses = {}
            for bit in range(self.bits):
                pulses[f"a{bit}"] = bool((ifmap >> bit) & 1)
            for bit in range(self.psum_bits):
                pulses[f"c{bit}"] = bool((psum >> bit) & 1)
            operations.append(pulses)
        raw = self.builder.run_stream(operations)
        results = []
        for outputs in raw:
            value = 0
            for bit in range(self.psum_bits):
                if outputs[f"p{bit}"]:
                    value |= 1 << bit
            results.append(value)
        return results

    def mac(self, ifmap: int, psum: int) -> int:
        return self.stream([(ifmap, psum)])[0]
