"""Pulse-logic semantics of clocked SFQ gates (paper Section II-A).

Every clocked SFQ gate behaves the same way (Fig. 1(c)/(d)):

* between two clock pulses it *latches* which of its inputs received a
  pulse (the stored flux quanta);
* on the clock pulse it emits — or doesn't — one output pulse according to
  its boolean function, and resets its input state.

A logical '1' is "a pulse arrived in this clock window", '0' is "none
did".  This module models exactly that: each gate holds a set of armed
input ports and produces its output when clocked.  Unclocked elements
(splitters, mergers) are pure wiring handled by the network.
"""

from __future__ import annotations

from typing import Dict, Tuple


class ClockedGate:
    """Base class: latch input pulses, evaluate on clock."""

    #: Input port names, overridden by subclasses.
    ports: Tuple[str, ...] = ("a",)
    name = "GATE"

    def __init__(self) -> None:
        self._armed: Dict[str, bool] = {port: False for port in self.ports}

    def receive(self, port: str) -> None:
        """An input pulse arrives on ``port`` (before the next clock)."""
        if port not in self._armed:
            raise ValueError(f"{self.name} has no port {port!r}; ports: {self.ports}")
        self._armed[port] = True

    def _evaluate(self, armed: Dict[str, bool]) -> bool:
        raise NotImplementedError

    def clock(self) -> bool:
        """Apply the clock pulse: emit (or not) and clear the input state."""
        output = self._evaluate(self._armed)
        for port in self._armed:
            self._armed[port] = False
        return output

    def peek(self, port: str) -> bool:
        return self._armed[port]


class AndGate(ClockedGate):
    ports = ("a", "b")
    name = "AND"

    def _evaluate(self, armed):
        return armed["a"] and armed["b"]


class OrGate(ClockedGate):
    ports = ("a", "b")
    name = "OR"

    def _evaluate(self, armed):
        return armed["a"] or armed["b"]


class XorGate(ClockedGate):
    ports = ("a", "b")
    name = "XOR"

    def _evaluate(self, armed):
        return armed["a"] != armed["b"]


class NotGate(ClockedGate):
    """Clocked inverter: emits when NO input pulse arrived this window."""

    ports = ("a",)
    name = "NOT"

    def _evaluate(self, armed):
        return not armed["a"]


class DFFGate(ClockedGate):
    """The Fig. 1(c) DFF: releases on clock whatever arrived since the
    previous clock — a one-cycle delay element."""

    ports = ("a",)
    name = "DFF"

    def _evaluate(self, armed):
        return armed["a"]


class NDROGate(ClockedGate):
    """Non-destructive readout cell: ``set``/``reset`` write a persistent
    bit; the clock *reads* it without clearing it."""

    ports = ("set", "reset", "clock_enable")
    name = "NDRO"

    def __init__(self) -> None:
        super().__init__()
        self._stored = False

    def clock(self) -> bool:
        if self._armed["reset"]:
            self._stored = False
        elif self._armed["set"]:
            self._stored = True
        output = self._stored
        for port in self._armed:
            self._armed[port] = False
        return output

    def _evaluate(self, armed):  # pragma: no cover - clock() overridden
        return self._stored


class TFFGate(ClockedGate):
    """Toggle flip-flop: emits one output pulse for every *two* input
    pulses — the SFQ frequency divider (770 GHz demo of footnote 2).

    Unclocked in real hardware; modeled per-window: an input pulse toggles
    the internal state, and the gate emits on the 1 -> 0 transition.
    """

    ports = ("a",)
    name = "TFF"

    def __init__(self) -> None:
        super().__init__()
        self._phase = False

    def clock(self) -> bool:
        output = False
        if self._armed["a"]:
            output = self._phase
            self._phase = not self._phase
        self._armed["a"] = False
        return output

    def _evaluate(self, armed):  # pragma: no cover - clock() overridden
        return False


#: Factory table used by the netlist builder.
GATE_TYPES = {
    "AND": AndGate,
    "OR": OrGate,
    "XOR": XorGate,
    "NOT": NotGate,
    "DFF": DFFGate,
    "NDRO": NDROGate,
    "TFF": TFFGate,
}


def make_gate(kind: str) -> ClockedGate:
    try:
        return GATE_TYPES[kind]()
    except KeyError:
        raise ValueError(f"unknown gate kind {kind!r}; known: {sorted(GATE_TYPES)}") from None
