"""Generated gate-level-pipelined arithmetic circuits.

These are the structures Section III builds the PE from, realized as
actual pulse-logic netlists and proven correct by exhaustive simulation:

* a full adder (2 XOR + 2 AND + 1 OR, the :func:`full_adder_counts`
  decomposition the MAC model charges);
* an n-bit pipelined carry-ripple adder (the classic SFQ adder: carries
  ripple *through pipeline stages*, so throughput stays one add per clock
  regardless of width);
* an n x n array multiplier with optional accumulate — the gate-level
  realization of the paper's 48 GHz multiplier / MAC.

Every builder returns a :class:`PipelinedCircuit` that encodes/decodes
integers to pulse schedules, streaming one operation per clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.gatesim.builder import CircuitBuilder, Signal


def full_adder(
    builder: CircuitBuilder, a: Signal, b: Signal, carry_in: Signal
) -> Tuple[Signal, Signal]:
    """sum = a^b^cin, carry = ab + cin(a^b); returns (sum, carry)."""
    partial = builder.xor(a, b)
    generate = builder.and_(a, b)
    total = builder.xor(partial, carry_in)
    propagate = builder.and_(partial, carry_in)
    carry = builder.or_(generate, propagate)
    return total, carry


def ripple_adder(
    builder: CircuitBuilder,
    a_bits: Sequence[Signal],
    b_bits: Sequence[Signal],
    carry_in: Signal | None = None,
) -> List[Signal]:
    """Pipelined carry-ripple addition; returns n+1 sum bits (incl. carry).

    The builder's automatic path balancing turns the carry chain into the
    canonical SFQ skewed pipeline: bit i+1's adder simply sits deeper in
    the pipeline than bit i's.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operands must have equal width")
    carry = carry_in if carry_in is not None else builder.zero()
    sums: List[Signal] = []
    for a, b in zip(a_bits, b_bits):
        total, carry = full_adder(builder, a, b, carry)
        sums.append(total)
    sums.append(carry)
    return sums


def multiplier_bits(
    builder: CircuitBuilder,
    a_bits: Sequence[Signal],
    b_bits: Sequence[Signal],
) -> List[Signal]:
    """n x m unsigned array multiply via shift-and-add row accumulation."""
    width_a, width_b = len(a_bits), len(b_bits)
    if not width_a or not width_b:
        raise ValueError("operands must be at least one bit wide")
    total_width = width_a + width_b
    acc: List[Signal] = [builder.zero() for _ in range(total_width)]
    for j, b_bit in enumerate(b_bits):
        row = [builder.zero() for _ in range(total_width)]
        for i, a_bit in enumerate(a_bits):
            row[i + j] = builder.and_(a_bit, b_bit)
        acc = ripple_adder(builder, acc, row)[:total_width]
    return acc


@dataclass
class PipelinedCircuit:
    """A built circuit plus its integer encode/decode conventions."""

    builder: CircuitBuilder
    input_widths: Dict[str, int]
    output_width: int
    output_prefix: str = "p"

    @property
    def num_gates(self) -> int:
        return self.builder.network.num_gates

    @property
    def latency(self) -> int:
        return max(
            self.builder.output_latency(f"{self.output_prefix}{i}")
            for i in range(self.output_width)
        )

    def gate_histogram(self) -> Dict[str, int]:
        return self.builder.network.gate_kind_counts()

    def _encode(self, operands: Dict[str, int]) -> Dict[str, bool]:
        pulses: Dict[str, bool] = {}
        for name, width in self.input_widths.items():
            value = operands.get(name, 0)
            if not 0 <= value < (1 << width):
                raise ValueError(f"{name}={value} does not fit in {width} bits")
            for bit in range(width):
                pulses[f"{name}{bit}"] = bool((value >> bit) & 1)
        return pulses

    def _decode(self, outputs: Dict[str, bool]) -> int:
        value = 0
        for bit in range(self.output_width):
            if outputs[f"{self.output_prefix}{bit}"]:
                value |= 1 << bit
        return value

    def compute(self, **operands: int) -> int:
        """Run one operation through the pipeline."""
        return self.compute_stream([operands])[0]

    def compute_stream(self, operations: Sequence[Dict[str, int]]) -> List[int]:
        """Stream one operation per clock (full pipeline throughput)."""
        schedules = [self._encode(op) for op in operations]
        results = self.builder.run_stream(schedules)
        return [self._decode(r) for r in results]


def build_adder(bits: int) -> PipelinedCircuit:
    """An n-bit pipelined adder: ``compute(a=..., b=...) == a + b``."""
    if bits < 1:
        raise ValueError("width must be positive")
    builder = CircuitBuilder()
    a_bits = [builder.input(f"a{i}") for i in range(bits)]
    b_bits = [builder.input(f"b{i}") for i in range(bits)]
    sums = ripple_adder(builder, a_bits, b_bits)
    for i, signal in enumerate(sums):
        builder.output(f"p{i}", signal)
    return PipelinedCircuit(
        builder=builder,
        input_widths={"a": bits, "b": bits},
        output_width=bits + 1,
    )


def build_multiplier(bits: int) -> PipelinedCircuit:
    """An n x n-bit pipelined multiplier: ``compute(a=.., b=..) == a * b``."""
    if bits < 1:
        raise ValueError("width must be positive")
    builder = CircuitBuilder()
    a_bits = [builder.input(f"a{i}") for i in range(bits)]
    b_bits = [builder.input(f"b{i}") for i in range(bits)]
    product = multiplier_bits(builder, a_bits, b_bits)
    for i, signal in enumerate(product):
        builder.output(f"p{i}", signal)
    return PipelinedCircuit(
        builder=builder,
        input_widths={"a": bits, "b": bits},
        output_width=2 * bits,
    )


def build_mac(bits: int, accumulator_bits: int | None = None) -> PipelinedCircuit:
    """A multiply-accumulate: ``compute(a=.., b=.., c=..) == a*b + c``.

    The gate-level counterpart of the paper's PE datapath (multiplier
    followed by the partial-sum adder).
    """
    if bits < 1:
        raise ValueError("width must be positive")
    accumulator_bits = accumulator_bits or 2 * bits + 1
    if accumulator_bits < 2 * bits:
        raise ValueError("accumulator must hold the full product")
    builder = CircuitBuilder()
    a_bits = [builder.input(f"a{i}") for i in range(bits)]
    b_bits = [builder.input(f"b{i}") for i in range(bits)]
    c_bits = [builder.input(f"c{i}") for i in range(accumulator_bits)]
    product = multiplier_bits(builder, a_bits, b_bits)
    product += [builder.zero() for _ in range(accumulator_bits - len(product))]
    total = ripple_adder(builder, product[:accumulator_bits], c_bits)
    for i in range(accumulator_bits):
        builder.output(f"p{i}", total[i])
    return PipelinedCircuit(
        builder=builder,
        input_widths={"a": bits, "b": bits, "c": accumulator_bits},
        output_width=accumulator_bits,
    )


def build_frequency_divider(stages: int) -> CircuitBuilder:
    """A TFF ladder dividing the input pulse rate by 2**stages."""
    if stages < 1:
        raise ValueError("need at least one stage")
    builder = CircuitBuilder()
    current = builder.input("clk")
    for index in range(stages):
        gate = builder._fresh("TFF")
        builder._attach(current, gate, "a")
        current = Signal(source=gate, depth=current.depth + 1)
    builder.output("out", current)
    return builder


def build_relu(bits: int, output_prefix: str = "p") -> PipelinedCircuit:
    """A gate-level ReLU over sign-magnitude data (the output-path unit).

    Inputs: magnitude bits ``a0..`` plus a ``sign`` pulse (1 = negative).
    Output: the magnitude when the sign is absent, zeros otherwise —
    realized exactly as :class:`~repro.uarch.activation.ReLUUnit` charges
    it: a clocked inverter on the sign line gating one AND per bit.
    """
    if bits < 1:
        raise ValueError("width must be positive")
    builder = CircuitBuilder()
    a_bits = [builder.input(f"a{i}") for i in range(bits)]
    sign = builder.input("sign0")
    keep = builder.not_(sign)  # fires when the value is non-negative
    for i, bit in enumerate(a_bits):
        gated = builder.and_(bit, keep)
        builder.output(f"{output_prefix}{i}", gated)
    return PipelinedCircuit(
        builder=builder,
        input_widths={"a": bits, "sign": 1},
        output_width=bits,
        output_prefix=output_prefix,
    )


def build_max(bits: int) -> PipelinedCircuit:
    """Gate-level two-input maximum — the max-pool datapath, realized.

    A ripple *borrow* chain decides ``a < b`` (borrow out of the MSB), and
    per-bit select logic steers the larger operand to the output:
    ``out_i = (sel AND b_i) OR (NOT sel AND a_i)``.  The comparator +
    select structure is exactly what :class:`~repro.uarch.activation.
    MaxPoolUnit` charges per lane.
    """
    if bits < 1:
        raise ValueError("width must be positive")
    builder = CircuitBuilder()
    a_bits = [builder.input(f"a{i}") for i in range(bits)]
    b_bits = [builder.input(f"b{i}") for i in range(bits)]

    # Ripple-borrow less-than: borrow' = (~a & b) | (~(a^b) & borrow).
    borrow = builder.zero()
    for a_bit, b_bit in zip(a_bits, b_bits):
        not_a = builder.not_(a_bit)
        generate = builder.and_(not_a, b_bit)
        propagate = builder.not_(builder.xor(a_bit, b_bit))
        carried = builder.and_(propagate, borrow)
        borrow = builder.or_(generate, carried)
    select_b = borrow  # 1 when a < b
    select_a = builder.not_(select_b)

    for i in range(bits):
        take_b = builder.and_(b_bits[i], select_b)
        take_a = builder.and_(a_bits[i], select_a)
        builder.output(f"p{i}", builder.or_(take_a, take_b))
    return PipelinedCircuit(
        builder=builder,
        input_widths={"a": bits, "b": bits},
        output_width=bits,
    )
