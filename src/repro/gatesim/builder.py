"""Timing-aware circuit builder for gate-level-pipelined SFQ logic.

In a gate-level pipeline every gate is a stage, so *when* a pulse exists
is part of its meaning.  The builder tracks each signal's ready cycle and
inserts the path-balancing DFF chains (Section II-B1's hidden cost — the
reason the MAC model carries a DFF-per-logic-gate factor) automatically
whenever two signals of different depth meet at a gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Sequence

from repro.gatesim.network import GateNetwork


@dataclass(frozen=True)
class Signal:
    """A pulse stream: where it comes from and at which pipeline depth.

    ``source`` is a gate name, or an input name when ``is_input``; a
    ``None`` source is the constant-zero signal (no pulse, ever).
    """

    source: Optional[str]
    depth: int
    is_input: bool = False

    @property
    def is_zero(self) -> bool:
        return self.source is None


class CircuitBuilder:
    """Builds a :class:`GateNetwork` with automatic path balancing."""

    def __init__(self) -> None:
        self.network = GateNetwork()
        self._ids = count()
        self._input_depths: Dict[str, int] = {}
        self._output_depths: Dict[str, int] = {}

    # -- Signals --------------------------------------------------------------

    def input(self, name: str) -> Signal:
        """Declare a primary input presented at cycle 0 of each operation."""
        self.network.add_input(name)
        self._input_depths[name] = 0
        return Signal(source=name, depth=0, is_input=True)

    def zero(self, depth: int = 0) -> Signal:
        """The constant-0 signal (no pulses; free to 'align' anywhere)."""
        return Signal(source=None, depth=depth)

    def _fresh(self, kind: str) -> str:
        return self.network.add_gate(f"{kind.lower()}{next(self._ids)}", kind)

    def _attach(self, signal: Signal, gate: str, port: str) -> None:
        if signal.is_zero:
            return
        if signal.is_input:
            self.network.connect_input(signal.source, gate, port)
        else:
            self.network.connect(signal.source, gate, port)

    def delay(self, signal: Signal, cycles: int) -> Signal:
        """Retime a signal through ``cycles`` path-balancing DFFs."""
        if cycles < 0:
            raise ValueError("cannot delay by a negative amount")
        if cycles == 0 or signal.is_zero:
            return Signal(signal.source, signal.depth + cycles, signal.is_input)
        current = signal
        for _ in range(cycles):
            dff = self._fresh("DFF")
            self._attach(current, dff, "a")
            current = Signal(source=dff, depth=current.depth + 1)
        return current

    def align(self, *signals: Signal) -> List[Signal]:
        """Pad every signal with DFFs up to the deepest one's depth."""
        if not signals:
            return []
        deepest = max(signal.depth for signal in signals)
        return [self.delay(signal, deepest - signal.depth) for signal in signals]

    # -- Gates ----------------------------------------------------------------

    def _binary(self, kind: str, a: Signal, b: Signal) -> Signal:
        a, b = self.align(a, b)
        if kind == "AND" and (a.is_zero or b.is_zero):
            return self.zero(a.depth + 1)
        if kind in ("OR", "XOR"):
            if a.is_zero and b.is_zero:
                return self.zero(a.depth + 1)
            if a.is_zero:
                return self.delay(b, 1)
            if b.is_zero:
                return self.delay(a, 1)
        gate = self._fresh(kind)
        self._attach(a, gate, "a")
        self._attach(b, gate, "b")
        return Signal(source=gate, depth=a.depth + 1)

    def and_(self, a: Signal, b: Signal) -> Signal:
        return self._binary("AND", a, b)

    def or_(self, a: Signal, b: Signal) -> Signal:
        return self._binary("OR", a, b)

    def xor(self, a: Signal, b: Signal) -> Signal:
        return self._binary("XOR", a, b)

    def not_(self, a: Signal) -> Signal:
        if a.is_zero:
            raise ValueError("inverting constant zero creates a constant-1 "
                             "pulse train; model it explicitly instead")
        gate = self._fresh("NOT")
        self._attach(a, gate, "a")
        return Signal(source=gate, depth=a.depth + 1)

    # -- Outputs and execution --------------------------------------------------

    def output(self, name: str, signal: Signal) -> None:
        """Expose a signal; its depth is the output's pipeline latency."""
        if signal.is_zero:
            # A constant-zero output needs a real (never-firing) source.
            gate = self._fresh("AND")
            signal = Signal(source=gate, depth=signal.depth)
        elif signal.is_input:
            signal = self.delay(signal, 1)  # latch inputs before exposing
        self.network.add_output(name, signal.source)
        self._output_depths[name] = signal.depth

    def output_latency(self, name: str) -> int:
        return self._output_depths[name]

    def run_stream(
        self,
        operations: Sequence[Dict[str, bool]],
    ) -> List[Dict[str, bool]]:
        """Stream one operation per cycle and de-skew the outputs.

        Returns one output map per operation, each read at its output's
        own latency — i.e. the fully pipelined, 1-op-per-cycle usage the
        SFQ pipeline is built for.
        """
        if not operations:
            return []
        max_latency = max(self._output_depths.values(), default=1)
        trace = self.network.run(list(operations), extra_cycles=max_latency)
        # A depth-d output gate is clocked - and its pulse observed - during
        # cycle d-1 of its operation (inputs delivered at cycle 0 are
        # consumed by that same cycle's clock).
        results: List[Dict[str, bool]] = []
        for index in range(len(operations)):
            results.append(
                {
                    name: trace[index + depth - 1][name]
                    for name, depth in self._output_depths.items()
                }
            )
        return results
