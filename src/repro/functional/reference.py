"""Direct (reference) convolution used to verify the systolic emulation."""

from __future__ import annotations

import numpy as np


def conv2d_reference(
    ifmap: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct 2D convolution (cross-correlation, as CNNs use).

    Args:
        ifmap: Input feature map, shape (C, H, W), integer or float.
        weights: Filters, shape (K, C, R, S).
        stride: Spatial stride.
        padding: Zero padding on every border.

    Returns:
        Output feature map of shape (K, E, F) with
        ``E = (H + 2p - R)//stride + 1`` and similarly for F.
    """
    if ifmap.ndim != 3:
        raise ValueError("ifmap must have shape (C, H, W)")
    if weights.ndim != 4:
        raise ValueError("weights must have shape (K, C, R, S)")
    channels, height, width = ifmap.shape
    filters, w_channels, kernel_h, kernel_w = weights.shape
    if w_channels != channels:
        raise ValueError(f"channel mismatch: ifmap {channels}, weights {w_channels}")
    if stride < 1:
        raise ValueError("stride must be positive")
    if padding < 0:
        raise ValueError("padding must be non-negative")

    padded = np.pad(ifmap, ((0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel does not fit the padded input")

    output = np.zeros((filters, out_h, out_w), dtype=np.result_type(ifmap, weights))
    for k in range(filters):
        for e in range(out_h):
            for f in range(out_w):
                window = padded[
                    :, e * stride : e * stride + kernel_h, f * stride : f * stride + kernel_w
                ]
                output[k, e, f] = np.sum(window * weights[k])
    return output


def depthwise_reference(
    ifmap: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Depthwise convolution: one (R, S) filter per channel.

    Args:
        ifmap: shape (C, H, W); weights: shape (C, R, S).
    """
    if weights.ndim != 3 or weights.shape[0] != ifmap.shape[0]:
        raise ValueError("weights must have shape (C, R, S) matching ifmap channels")
    outputs = [
        conv2d_reference(ifmap[c : c + 1], weights[c : c + 1, None], stride, padding)[0]
        for c in range(ifmap.shape[0])
    ]
    return np.stack(outputs)
