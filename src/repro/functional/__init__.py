"""Bit-true functional models: reference convolution, DAU, systolic array."""

from repro.functional.reference import conv2d_reference, depthwise_reference
from repro.functional.dau import (
    aligned_streams,
    delay_schedule,
    reduction_index_to_weight,
    row_stream,
)
from repro.functional.systolic import SystolicArray, conv2d_systolic
from repro.functional.quantize import (
    QuantParams,
    calibrate,
    dequantize,
    quantization_error,
    quantize,
)
from repro.functional.inference import (
    FunctionalNPU,
    QuantConvLayer,
    QuantFCLayer,
    TinyQuantCNN,
    max_pool2d,
    top1_agreement,
)
from repro.functional.multikernel import MultiKernelArray, conv2d_multikernel
from repro.functional.os_systolic import OSSystolicArray, conv2d_os
from repro.functional.shift_buffer import (
    FunctionalChunkedBuffer,
    FunctionalShiftRegister,
)

__all__ = [
    "conv2d_reference",
    "depthwise_reference",
    "aligned_streams",
    "delay_schedule",
    "reduction_index_to_weight",
    "row_stream",
    "SystolicArray",
    "conv2d_systolic",
    "QuantParams",
    "calibrate",
    "dequantize",
    "quantization_error",
    "quantize",
    "FunctionalNPU",
    "QuantConvLayer",
    "QuantFCLayer",
    "TinyQuantCNN",
    "max_pool2d",
    "top1_agreement",
    "MultiKernelArray",
    "conv2d_multikernel",
    "OSSystolicArray",
    "conv2d_os",
    "FunctionalChunkedBuffer",
    "FunctionalShiftRegister",
]
