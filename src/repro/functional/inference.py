"""End-to-end functional CNN inference on the systolic-array model.

Builds a tiny quantized CNN (conv / ReLU / pool / FC) and executes every
MAC layer on the bit-true weight-stationary systolic array with DAU-style
input alignment — demonstrating that the architecture the performance
model prices actually computes neural networks, layer by layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.functional.quantize import QuantParams, calibrate, quantize
from repro.functional.reference import conv2d_reference
from repro.functional.systolic import conv2d_systolic


@dataclass
class QuantConvLayer:
    """A quantized convolution layer executed on the systolic array."""

    weights: np.ndarray  # float, shape (K, C, R, S)
    stride: int = 1
    padding: int = 0
    relu: bool = True
    weight_params: QuantParams = field(init=False)
    q_weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.weight_params = calibrate(self.weights)
        self.q_weights = quantize(self.weights, self.weight_params)


@dataclass
class QuantFCLayer:
    """A quantized fully-connected layer (1x1 conv over a 1x1 map)."""

    weights: np.ndarray  # float, shape (out, in)
    relu: bool = False
    weight_params: QuantParams = field(init=False)
    q_weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.weight_params = calibrate(self.weights)
        self.q_weights = quantize(self.weights, self.weight_params)


@dataclass
class FunctionalNPU:
    """A systolic array of fixed geometry executing quantized layers."""

    array_rows: int = 32
    array_cols: int = 8

    def run_conv(self, layer: QuantConvLayer, activation: np.ndarray) -> np.ndarray:
        """Quantize -> systolic conv -> dequantize -> (ReLU)."""
        act_params = calibrate(activation)
        q_activation = quantize(activation, act_params)
        q_output = conv2d_systolic(
            q_activation,
            layer.q_weights,
            self.array_rows,
            self.array_cols,
            stride=layer.stride,
            padding=layer.padding,
        )
        output = q_output.astype(np.float64) * (
            act_params.scale * layer.weight_params.scale
        )
        if layer.relu:
            output = np.maximum(output, 0.0)
        return output

    def run_fc(self, layer: QuantFCLayer, activation: np.ndarray) -> np.ndarray:
        features = activation.reshape(-1)
        kernel = layer.q_weights.reshape(
            layer.q_weights.shape[0], features.shape[0], 1, 1
        )
        act_params = calibrate(features)
        q_features = quantize(features, act_params).reshape(-1, 1, 1)
        q_output = conv2d_systolic(
            q_features, kernel, self.array_rows, self.array_cols
        )
        output = q_output.reshape(-1).astype(np.float64) * (
            act_params.scale * layer.weight_params.scale
        )
        if layer.relu:
            output = np.maximum(output, 0.0)
        return output


def max_pool2d(activation: np.ndarray, kernel: int = 2) -> np.ndarray:
    """2x2 (or kxk) max pooling; pooling runs off the MAC array."""
    channels, height, width = activation.shape
    out_h, out_w = height // kernel, width // kernel
    trimmed = activation[:, : out_h * kernel, : out_w * kernel]
    return trimmed.reshape(channels, out_h, kernel, out_w, kernel).max(axis=(2, 4))


@dataclass
class TinyQuantCNN:
    """conv3x3 -> ReLU -> pool -> conv3x3 -> ReLU -> pool -> FC."""

    conv1: QuantConvLayer
    conv2: QuantConvLayer
    head: QuantFCLayer

    @classmethod
    def random(cls, seed: int = 0, in_channels: int = 1, classes: int = 10,
               input_size: int = 12) -> "TinyQuantCNN":
        rng = np.random.default_rng(seed)
        conv1 = QuantConvLayer(rng.normal(0, 0.5, size=(4, in_channels, 3, 3)), padding=1)
        conv2 = QuantConvLayer(rng.normal(0, 0.5, size=(8, 4, 3, 3)), padding=1)
        flat = 8 * (input_size // 4) ** 2
        head = QuantFCLayer(rng.normal(0, 0.5, size=(classes, flat)))
        return cls(conv1, conv2, head)

    def forward_systolic(self, image: np.ndarray, npu: FunctionalNPU) -> np.ndarray:
        x = npu.run_conv(self.conv1, image)
        x = max_pool2d(x)
        x = npu.run_conv(self.conv2, x)
        x = max_pool2d(x)
        return npu.run_fc(self.head, x)

    def forward_reference(self, image: np.ndarray) -> np.ndarray:
        """Float reference path with direct convolutions."""
        x = np.maximum(conv2d_reference(image, self.conv1.weights, 1, 1), 0.0)
        x = max_pool2d(x)
        x = np.maximum(conv2d_reference(x, self.conv2.weights, 1, 1), 0.0)
        x = max_pool2d(x)
        return self.head.weights @ x.reshape(-1)


def top1_agreement(model: TinyQuantCNN, npu: FunctionalNPU,
                   images: np.ndarray) -> float:
    """Fraction of images whose argmax class matches the float reference."""
    if images.ndim != 4:
        raise ValueError("images must have shape (N, C, H, W)")
    agree = 0
    for image in images:
        quantized = model.forward_systolic(image, npu)
        reference = model.forward_reference(image)
        agree += int(np.argmax(quantized) == np.argmax(reference))
    return agree / len(images)
