"""8-bit quantization for the functional NPU models.

The paper's NPU computes 8-bit inference; this module supplies the
symmetric per-tensor quantizer that maps float tensors onto the int8
operands the systolic array consumes, and the corresponding dequantizer
for comparing against float references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Symmetric linear quantization: ``q = clip(round(x / scale))``."""

    scale: float
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.bits < 2:
            raise ValueError("need at least 2 bits")

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))


def calibrate(tensor: np.ndarray, bits: int = 8) -> QuantParams:
    """Pick the symmetric scale covering a tensor's dynamic range."""
    peak = float(np.max(np.abs(tensor)))
    qmax = 2 ** (bits - 1) - 1
    scale = peak / qmax
    # Zero or denormal peaks would underflow the scale to 0; such tensors
    # quantize to all-zeros under any sane scale, so use unity.
    if not np.isfinite(scale) or scale <= np.finfo(np.float64).tiny:
        scale = 1.0
    return QuantParams(scale=scale, bits=bits)


def quantize(tensor: np.ndarray, params: QuantParams) -> np.ndarray:
    """Float -> int (int64 carrier so systolic accumulation cannot wrap)."""
    q = np.round(tensor / params.scale)
    return np.clip(q, params.qmin, params.qmax).astype(np.int64)


def dequantize(tensor: np.ndarray, params: QuantParams) -> np.ndarray:
    return tensor.astype(np.float64) * params.scale


def quantization_error(tensor: np.ndarray, bits: int = 8) -> float:
    """RMS relative error of a quantize/dequantize round trip."""
    params = calibrate(tensor, bits)
    restored = dequantize(quantize(tensor, params), params)
    denom = float(np.sqrt(np.mean(tensor.astype(np.float64) ** 2)))
    if denom == 0.0:
        return 0.0
    return float(np.sqrt(np.mean((restored - tensor) ** 2))) / denom
