"""Bit-true cycle-stepped *output-stationary* systolic array (Fig. 6(b)).

The OS dataflow keeps each output value resident in its PE while both
operands stream through: ifmap reduction sequences enter from the left
(one output position per row), weight sequences from the top (one filter
per column), and PE(r, c) accumulates their aligned products locally.

Together with :mod:`repro.functional.systolic` (weight-stationary), this
gives both of the paper's Fig. 6 dataflows a functional existence proof;
the *performance* comparison between them lives in
:mod:`repro.simulator.dataflow_ablation`.

The operand skews align each product pair exactly, so a full run reduces
to one integer matmul — :meth:`OSSystolicArray.run` does that, while
:meth:`OSSystolicArray.run_stepped` keeps the per-cycle emulation as the
golden reference the matmul is tested bitwise-equal against.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.functional.dau import aligned_streams


class OSSystolicArray:
    """A ``rows x cols`` output-stationary MAC grid, stepped per cycle.

    Row ``r`` owns one output position, column ``c`` one filter; operands
    are skewed so that ``x[r][d]`` and ``w[c][d]`` meet in PE(r, c) at
    cycle ``r + c + d``.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._x = np.zeros((rows, cols), dtype=np.int64)
        self._w = np.zeros((rows, cols), dtype=np.int64)
        self._acc = np.zeros((rows, cols), dtype=np.int64)

    def reset(self) -> None:
        self._x[:] = 0
        self._w[:] = 0
        self._acc[:] = 0

    def step(self, left_inputs: np.ndarray, top_inputs: np.ndarray) -> None:
        """Advance one clock: ifmap values enter rows, weights enter columns."""
        if left_inputs.shape != (self.rows,):
            raise ValueError(f"need {self.rows} left inputs")
        if top_inputs.shape != (self.cols,):
            raise ValueError(f"need {self.cols} top inputs")
        new_x = np.empty_like(self._x)
        new_x[:, 0] = left_inputs
        new_x[:, 1:] = self._x[:, :-1]
        new_w = np.empty_like(self._w)
        new_w[0, :] = top_inputs
        new_w[1:, :] = self._w[:-1, :]
        self._acc += new_x * new_w
        self._x = new_x
        self._w = new_w

    def run(self, x_streams: np.ndarray, w_streams: np.ndarray) -> np.ndarray:
        """Stream full reduction sequences; returns the (rows, cols) outputs.

        The operand skews align ``x[r][d]`` with ``w[c][d]`` in PE(r, c),
        so each accumulator ends up holding the plain dot product
        ``sum_d x[r][d] * w[c][d]`` — one integer matmul, bit-identical
        (int64 wraparound included, integer addition being associative)
        to the cycle-stepped :meth:`run_stepped`.

        Args:
            x_streams: shape (rows_used, D) — reduction sequence per output
                position.
            w_streams: shape (cols_used, D) — reduction sequence per filter.
        """
        if x_streams.ndim != 2 or w_streams.ndim != 2:
            raise ValueError("streams must be 2-D")
        if x_streams.shape[1] != w_streams.shape[1]:
            raise ValueError("operand streams must share the reduction length")
        rows_used = x_streams.shape[0]
        cols_used = w_streams.shape[0]
        if rows_used > self.rows or cols_used > self.cols:
            raise ValueError("streams exceed the array")
        self.reset()
        return x_streams.astype(np.int64, copy=False) @ w_streams.astype(
            np.int64, copy=False
        ).T

    def run_stepped(self, x_streams: np.ndarray, w_streams: np.ndarray) -> np.ndarray:
        """Cycle-stepped golden reference for :meth:`run` (same contract).

        Skews both operand sets and advances the grid one clock at a
        time — the original dataflow emulation, kept for equivalence
        tests and stepped benchmarking (``SUPERNPU_SYSTOLIC=stepped``).
        """
        if x_streams.ndim != 2 or w_streams.ndim != 2:
            raise ValueError("streams must be 2-D")
        if x_streams.shape[1] != w_streams.shape[1]:
            raise ValueError("operand streams must share the reduction length")
        rows_used, depth = x_streams.shape
        cols_used = w_streams.shape[0]
        if rows_used > self.rows or cols_used > self.cols:
            raise ValueError("streams exceed the array")
        self.reset()
        total = depth + self.rows + self.cols
        left = np.zeros((self.rows, total), dtype=np.int64)
        top = np.zeros((self.cols, total), dtype=np.int64)
        for r in range(rows_used):
            left[r, r : r + depth] = x_streams[r]
        for c in range(cols_used):
            top[c, c : c + depth] = w_streams[c]
        for t in range(total):
            self.step(left[:, t], top[:, t])
        return self._acc[:rows_used, :cols_used].copy()


def conv2d_os(
    ifmap: np.ndarray,
    weights: np.ndarray,
    array_rows: int,
    array_cols: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Full convolution via output-stationary tiling.

    Output positions tile over array rows, filters over array columns; the
    complete reduction streams through per tile (no partial-sum parking —
    the OS selling point the paper weighs against its clock penalty).
    """
    filters, channels, kernel_h, kernel_w = weights.shape
    if ifmap.shape[0] != channels:
        raise ValueError("ifmap/weight channel mismatch")
    reduction = channels * kernel_h * kernel_w
    out_h = (ifmap.shape[1] + 2 * padding - kernel_h) // stride + 1
    out_w = (ifmap.shape[2] + 2 * padding - kernel_w) // stride + 1
    positions = out_h * out_w

    # aligned_streams yields shape (reduction, positions): transpose to get
    # one reduction sequence per output position.
    x_all = aligned_streams(
        ifmap, list(range(reduction)), kernel_h, kernel_w, stride, padding
    ).T
    w_all = weights.reshape(filters, reduction)

    array = OSSystolicArray(array_rows, array_cols)
    output = np.zeros((filters, positions), dtype=np.int64)
    position_tiles: List[range] = [
        range(start, min(start + array_rows, positions))
        for start in range(0, positions, array_rows)
    ]
    filter_tiles: List[range] = [
        range(start, min(start + array_cols, filters))
        for start in range(0, filters, array_cols)
    ]
    for p_tile in position_tiles:
        for f_tile in filter_tiles:
            acc = array.run(
                x_all[p_tile.start : p_tile.stop],
                w_all[f_tile.start : f_tile.stop],
            )
            output[f_tile.start : f_tile.stop, p_tile.start : p_tile.stop] = acc.T
    return output.reshape(filters, out_h, out_w)
