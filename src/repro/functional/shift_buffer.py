"""Functional shift-register buffer: data-correct, cycle-counted.

The cycle model charges the SFQ buffer's defining costs — serial access,
full-rotation rewinds, chunked MUX selection — as formulas
(:class:`~repro.uarch.buffers.ShiftRegisterBuffer`).  This module executes
the same structure on real data: a ring of storage slots that genuinely
shifts one entry per cycle, so tests can confirm both the *data* (what
comes out) and the *cycles* (what it costs) agree with the model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class FunctionalShiftRegister:
    """One shift-register row: a ring of ``length`` entries.

    The head is the only read/write port (Fig. 2(b)): ``shift`` rotates the
    ring one slot per cycle and every operation counts the cycles it spent.
    """

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ValueError("length must be positive")
        self._slots: List[Optional[int]] = [None] * length
        self._head = 0
        self.cycles = 0

    @property
    def length(self) -> int:
        return len(self._slots)

    def shift(self) -> Optional[int]:
        """Rotate one slot (one cycle); returns the entry leaving the head."""
        value = self._slots[self._head]
        self._head = (self._head + 1) % self.length
        self.cycles += 1
        return value

    def write_stream(self, values: Sequence[int]) -> None:
        """Write entries through the head, one per cycle."""
        if len(values) > self.length:
            raise ValueError("stream exceeds register length")
        for value in values:
            # Writing replaces the slot leaving the head as the ring turns.
            self._slots[self._head] = value
            self.shift()

    def read_stream(self, count: int) -> List[int]:
        """Read ``count`` entries from the head, one per cycle."""
        if count > self.length:
            raise ValueError("read exceeds register length")
        out = []
        for _ in range(count):
            value = self.shift()
            if value is None:
                raise LookupError("read past written data")
            out.append(value)
        return out

    def rewind(self) -> int:
        """Rotate back to slot 0; returns the cycles it cost.

        This is the Section V-A2 cost: reaching the data's head again means
        shifting the remaining length of the ring.
        """
        cost = (self.length - self._head) % self.length
        for _ in range(cost):
            self.shift()
        return cost


class FunctionalChunkedBuffer:
    """A divided buffer: ``division`` independent rings behind a selector.

    Chunk selection is combinational (the MUX/DEMUX trees of Fig. 19), so
    switching chunks costs zero shift cycles — the heart of the buffer
    optimization.
    """

    def __init__(self, capacity_entries: int, division: int) -> None:
        if capacity_entries < 1:
            raise ValueError("capacity must be positive")
        if division < 1 or division > capacity_entries:
            raise ValueError("division must lie in [1, capacity]")
        chunk_length = -(-capacity_entries // division)  # ceil
        self._chunks = [FunctionalShiftRegister(chunk_length) for _ in range(division)]
        self._selected = 0

    @property
    def division(self) -> int:
        return len(self._chunks)

    @property
    def chunk_length(self) -> int:
        return self._chunks[0].length

    @property
    def total_cycles(self) -> int:
        return sum(chunk.cycles for chunk in self._chunks)

    def select(self, chunk: int) -> None:
        """Steer the MUX trees to ``chunk`` (zero shift cycles)."""
        if not 0 <= chunk < self.division:
            raise ValueError(f"chunk {chunk} out of range [0, {self.division})")
        self._selected = chunk

    @property
    def selected(self) -> FunctionalShiftRegister:
        return self._chunks[self._selected]

    def write_stream(self, values: Sequence[int]) -> None:
        self.selected.write_stream(values)

    def read_stream(self, count: int) -> List[int]:
        return self.selected.read_stream(count)

    def rewind(self) -> int:
        return self.selected.rewind()

    def worst_case_rewind(self) -> int:
        """The model's ``rewind_cycles``: one chunk's full length."""
        return self.chunk_length
