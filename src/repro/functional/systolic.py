"""Bit-true cycle-stepped weight-stationary systolic array.

This is the functional counterpart of the performance model: an actual PE
grid that latches, multiplies and accumulates integers cycle by cycle, fed
by the DAU streams, so tests can prove the dataflow computes real
convolutions (not just count cycles).

Dataflow (paper Fig. 4(c)/6(a)): weights stay put; ifmap values enter each
row from the left skewed one cycle per row and travel right; partial sums
enter each column from the top and travel down, accumulating one weight
per row; column ``c``'s results emerge at the bottom after ``rows + c``
cycles of skew.

Because those skews cancel exactly, a whole tile run reduces to one
integer matmul — :meth:`SystolicArray.run` does that, while
:meth:`SystolicArray.run_stepped` keeps the per-cycle emulation as the
golden reference the matmul is tested bitwise-equal against.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.functional.dau import aligned_streams
from repro.functional.reference import conv2d_reference  # noqa: F401  (re-export convenience)


class SystolicArray:
    """A ``rows x cols`` weight-stationary MAC grid, stepped per cycle."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.weights = np.zeros((rows, cols), dtype=np.int64)
        # Pipeline registers: ifmap value held in each PE (moving right) and
        # partial sum held in each PE (moving down).
        self._x = np.zeros((rows, cols), dtype=np.int64)
        self._psum = np.zeros((rows, cols), dtype=np.int64)

    def load_weights(self, weights: np.ndarray) -> None:
        """Load a (rows, cols) weight tile (zero-padded if smaller)."""
        if weights.ndim != 2:
            raise ValueError("weight tile must be 2-D")
        if weights.shape[0] > self.rows or weights.shape[1] > self.cols:
            raise ValueError(
                f"tile {weights.shape} exceeds array {(self.rows, self.cols)}"
            )
        self.weights[:] = 0
        self.weights[: weights.shape[0], : weights.shape[1]] = weights
        self._x[:] = 0
        self._psum[:] = 0

    def step(self, left_inputs: np.ndarray) -> np.ndarray:
        """Advance one clock: feed one ifmap value per row, emit bottom psums.

        Args:
            left_inputs: shape (rows,), the values entering column 0.

        Returns:
            The partial sums leaving the bottom edge, shape (cols,).
        """
        if left_inputs.shape != (self.rows,):
            raise ValueError(f"need {self.rows} left inputs")
        bottom = self._psum[-1].copy()
        # Psums move down: row r takes row r-1's result and adds its MAC.
        new_x = np.empty_like(self._x)
        new_x[:, 0] = left_inputs
        new_x[:, 1:] = self._x[:, :-1]
        shifted_psum = np.vstack([np.zeros((1, self.cols), dtype=np.int64), self._psum[:-1]])
        self._psum = shifted_psum + self.weights * new_x
        self._x = new_x
        return bottom

    def run(self, streams: np.ndarray) -> np.ndarray:
        """Stream a whole tile through the array and collect column outputs.

        The input/output skews of the cycle-stepped dataflow cancel
        exactly: column ``c``'s ``k``-th de-skewed result is
        ``sum_r weights[r, c] * streams[r, k]``, so the whole run
        collapses to one integer matmul — bit-identical (including int64
        wraparound, since integer addition is associative) to stepping
        the grid cycle by cycle, which :meth:`run_stepped` still does.

        Args:
            streams: shape (rows, T) — one already-aligned value stream per
                row (rows beyond ``streams.shape[0]`` receive zeros).

        Returns:
            Array of shape (cols, T): for every column, the T accumulated
            results (one per stream position), de-skewed.
        """
        if streams.ndim != 2:
            raise ValueError("streams must be 2-D (rows, time)")
        used_rows, _ = streams.shape
        if used_rows > self.rows:
            raise ValueError("more streams than array rows")
        # Reset the pipeline registers so back-to-back runs stay
        # independent (load_weights clears them between tiles anyway).
        self._x[:] = 0
        self._psum[:] = 0
        return self.weights[:used_rows].T @ streams.astype(np.int64, copy=False)

    def run_stepped(self, streams: np.ndarray) -> np.ndarray:
        """Cycle-stepped golden reference for :meth:`run` (same contract).

        Feeds the skewed streams through :meth:`step` one clock at a time
        and de-skews the bottom-edge outputs — the original dataflow
        emulation, kept for equivalence tests and stepped benchmarking
        (``SUPERNPU_SYSTOLIC=stepped``).
        """
        if streams.ndim != 2:
            raise ValueError("streams must be 2-D (rows, time)")
        used_rows, duration = streams.shape
        if used_rows > self.rows:
            raise ValueError("more streams than array rows")
        # Row r's stream is skewed r cycles; column c's output appears
        # rows + c cycles after its inputs start entering.
        total_cycles = duration + self.rows + self.cols + 1
        padded = np.zeros((self.rows, total_cycles), dtype=np.int64)
        for r in range(used_rows):
            padded[r, r : r + duration] = streams[r]
        outputs = np.zeros((self.cols, duration), dtype=np.int64)
        for t in range(total_cycles):
            bottom = self.step(padded[:, t])
            for c in range(self.cols):
                # Column c's k-th result leaves the bottom edge at cycle
                # k + rows (psum descent) + c (ifmap skew across columns).
                k = t - (self.rows + c)
                if 0 <= k < duration:
                    outputs[c, k] = bottom[c]
        return outputs


def conv2d_systolic(
    ifmap: np.ndarray,
    weights: np.ndarray,
    array_rows: int,
    array_cols: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Full convolution via tiled weight mappings on a systolic array.

    Mirrors the simulator's tiling: the reduction dimension C*R*S is split
    over array rows (partial sums of later row tiles accumulate into the
    earlier ones — the psum buffer's job), filters over array columns.

    Returns the (K, E, F) output, bit-identical to
    :func:`~repro.functional.reference.conv2d_reference` for integer data.
    """
    filters, channels, kernel_h, kernel_w = weights.shape
    if ifmap.shape[0] != channels:
        raise ValueError("ifmap/weight channel mismatch")
    reduction = channels * kernel_h * kernel_w
    out_h = (ifmap.shape[1] + 2 * padding - kernel_h) // stride + 1
    out_w = (ifmap.shape[2] + 2 * padding - kernel_w) // stride + 1
    vectors = out_h * out_w

    flat_weights = weights.reshape(filters, reduction).T  # (reduction, filters)
    array = SystolicArray(array_rows, array_cols)
    accumulator = np.zeros((filters, vectors), dtype=np.int64)

    row_tiles: List[range] = [
        range(start, min(start + array_rows, reduction))
        for start in range(0, reduction, array_rows)
    ]
    col_tiles: List[range] = [
        range(start, min(start + array_cols, filters))
        for start in range(0, filters, array_cols)
    ]
    for col_tile in col_tiles:
        for row_tile in row_tiles:
            tile = flat_weights[row_tile.start : row_tile.stop, col_tile.start : col_tile.stop]
            array.load_weights(tile)
            streams = aligned_streams(
                ifmap, list(row_tile), kernel_h, kernel_w, stride, padding
            )
            outputs = array.run(streams)
            accumulator[col_tile.start : col_tile.stop] += outputs[: len(col_tile)]
    return accumulator.reshape(filters, out_h, out_w)
