"""Functional model of the data alignment unit (paper Fig. 9).

The DAU turns the *unique-pixel* contents of the ifmap buffer into the
per-PE-row input streams the weight-stationary array needs:

1. **Data selection** — for the PE row holding weight element
   ``(c, r, s)``, pick, for every output position ``(e, f)``, the pixel
   ``ifmap[c, e*stride + r - pad, f*stride + s - pad]`` — or a zero bubble
   where the window falls into the padding.
2. **Timing adjustment** — delay row ``d``'s stream so it meets the partial
   sums descending through the array (handled by the emulator's skew; the
   helper below exposes the delay schedule for inspection).

This is executed functionally (numpy gather), which is exactly what the
hardware's selector + controller + bypassable-DFF cascade implements.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def reduction_index_to_weight(
    index: int, channels: int, kernel_h: int, kernel_w: int
) -> Tuple[int, int, int]:
    """Map a PE-row (reduction) index to its (channel, r, s) weight coords."""
    if not 0 <= index < channels * kernel_h * kernel_w:
        raise ValueError("reduction index out of range")
    channel, rest = divmod(index, kernel_h * kernel_w)
    r, s = divmod(rest, kernel_w)
    return channel, r, s


def row_stream(
    ifmap: np.ndarray,
    reduction_index: int,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """The ifmap stream one PE row consumes, one value per output position.

    Zero entries are the Fig. 9 "bubbles" inserted where the convolution
    window overlaps the zero padding.
    """
    channels, height, width = ifmap.shape
    channel, r, s = reduction_index_to_weight(reduction_index, channels, kernel_h, kernel_w)
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    stream = np.zeros(out_h * out_w, dtype=ifmap.dtype)
    position = 0
    for e in range(out_h):
        y = e * stride + r - padding
        for f in range(out_w):
            x = f * stride + s - padding
            if 0 <= y < height and 0 <= x < width:
                stream[position] = ifmap[channel, y, x]
            position += 1
    return stream


def aligned_streams(
    ifmap: np.ndarray,
    reduction_indices: List[int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Stack the streams for a set of PE rows: shape (rows, E*F)."""
    return np.stack(
        [
            row_stream(ifmap, index, kernel_h, kernel_w, stride, padding)
            for index in reduction_indices
        ]
    )


def delay_schedule(rows: int, pe_pipeline_stages: int) -> List[int]:
    """Cycles each PE row's stream is delayed by the DAU cascades.

    Row ``r`` waits ``r * (stages - 1)`` extra cycles so its pixels meet the
    partial sums computed by the rows above (Section III-C).
    """
    if rows < 1 or pe_pipeline_stages < 1:
        raise ValueError("rows and pipeline stages must be positive")
    return [r * (pe_pipeline_stages - 1) for r in range(rows)]
