"""Functional model of the data alignment unit (paper Fig. 9).

The DAU turns the *unique-pixel* contents of the ifmap buffer into the
per-PE-row input streams the weight-stationary array needs:

1. **Data selection** — for the PE row holding weight element
   ``(c, r, s)``, pick, for every output position ``(e, f)``, the pixel
   ``ifmap[c, e*stride + r - pad, f*stride + s - pad]`` — or a zero bubble
   where the window falls into the padding.
2. **Timing adjustment** — delay row ``d``'s stream so it meets the partial
   sums descending through the array (handled by the emulator's skew; the
   helper below exposes the delay schedule for inspection).

This is executed functionally (numpy gather), which is exactly what the
hardware's selector + controller + bypassable-DFF cascade implements.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def reduction_index_to_weight(
    index: int, channels: int, kernel_h: int, kernel_w: int
) -> Tuple[int, int, int]:
    """Map a PE-row (reduction) index to its (channel, r, s) weight coords."""
    if not 0 <= index < channels * kernel_h * kernel_w:
        raise ValueError("reduction index out of range")
    channel, rest = divmod(index, kernel_h * kernel_w)
    r, s = divmod(rest, kernel_w)
    return channel, r, s


def row_stream(
    ifmap: np.ndarray,
    reduction_index: int,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """The ifmap stream one PE row consumes, one value per output position.

    Zero entries are the Fig. 9 "bubbles" inserted where the convolution
    window overlaps the zero padding.
    """
    return aligned_streams(
        ifmap, [reduction_index], kernel_h, kernel_w, stride, padding
    )[0]


def aligned_streams(
    ifmap: np.ndarray,
    reduction_indices: List[int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Stack the streams for a set of PE rows: shape (rows, E*F).

    One fancy-index gather instead of a Python double loop per row; the
    out-of-bounds window positions become zero bubbles via a validity
    mask, so the result is bit-identical to the scalar selection.
    """
    channels, height, width = ifmap.shape
    indices = np.asarray(list(reduction_indices), dtype=np.intp)
    if indices.size == 0:
        raise ValueError("need at least one reduction index")
    if indices.min() < 0 or indices.max() >= channels * kernel_h * kernel_w:
        raise ValueError("reduction index out of range")
    channel, rest = np.divmod(indices, kernel_h * kernel_w)
    r, s = np.divmod(rest, kernel_w)
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    # Pixel coordinates per (row, e, f), broadcast to (rows, out_h, out_w).
    y = np.arange(out_h)[None, :, None] * stride + r[:, None, None] - padding
    x = np.arange(out_w)[None, None, :] * stride + s[:, None, None] - padding
    valid = (y >= 0) & (y < height) & (x >= 0) & (x < width)
    gathered = ifmap[
        channel[:, None, None],
        np.clip(y, 0, height - 1),
        np.clip(x, 0, width - 1),
    ]
    streams = np.where(valid, gathered, np.zeros((), dtype=ifmap.dtype))
    return streams.reshape(indices.size, out_h * out_w)


def delay_schedule(rows: int, pe_pipeline_stages: int) -> List[int]:
    """Cycles each PE row's stream is delayed by the DAU cascades.

    Row ``r`` waits ``r * (stages - 1)`` extra cycles so its pixels meet the
    partial sums computed by the rows above (Section III-C).
    """
    if rows < 1 or pe_pipeline_stages < 1:
        raise ValueError("rows and pipeline stages must be positive")
    return [r * (pe_pipeline_stages - 1) for r in range(rows)]
