"""Functional model of SuperNPU's multi-register PE (Section V-B3).

Each PE holds ``registers`` weights from different filters and performs
``registers`` MACs per ifmap value, cycling its register ring — one column
therefore serves ``registers`` output channels.  This module emulates that
time-multiplexed execution bit-true and proves it equals the plain
single-register mapping (and the direct convolution).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.functional.dau import aligned_streams
from repro.functional.reference import conv2d_reference  # noqa: F401 (companion API)
from repro.functional.systolic import SystolicArray


class MultiKernelArray:
    """A systolic array whose PEs carry ``registers`` weight slots.

    Emulated as ``registers`` interleaved passes of a plain array — exactly
    what the hardware's register ring does in time: ifmap value ``x`` stays
    at the PE for ``registers`` cycles, meeting a different weight each
    cycle and feeding a different psum chain.
    """

    def __init__(self, rows: int, cols: int, registers: int) -> None:
        if registers < 1:
            raise ValueError("need at least one register per PE")
        self.rows = rows
        self.cols = cols
        self.registers = registers
        self._planes = [SystolicArray(rows, cols) for _ in range(registers)]

    @property
    def filters_per_mapping(self) -> int:
        return self.cols * self.registers

    def load_weights(self, tile: np.ndarray) -> None:
        """Load a (rows, cols * registers) weight tile.

        Filters are laid out register-major: filter ``f`` lives in column
        ``f % cols`` register ``f // cols``.
        """
        if tile.ndim != 2 or tile.shape[1] > self.filters_per_mapping:
            raise ValueError(
                f"tile must be 2-D with at most {self.filters_per_mapping} columns"
            )
        for register, plane in enumerate(self._planes):
            start = register * self.cols
            chunk = tile[:, start : start + self.cols]
            plane.load_weights(chunk if chunk.size else np.zeros((1, 1), dtype=np.int64))

    def run(self, streams: np.ndarray) -> np.ndarray:
        """Stream a tile; returns (cols * registers, T) column outputs."""
        outputs = [plane.run(streams) for plane in self._planes]
        return np.concatenate(outputs, axis=0)


def conv2d_multikernel(
    ifmap: np.ndarray,
    weights: np.ndarray,
    array_rows: int,
    array_cols: int,
    registers: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Full convolution with multi-register column mapping (SuperNPU)."""
    filters, channels, kernel_h, kernel_w = weights.shape
    if ifmap.shape[0] != channels:
        raise ValueError("ifmap/weight channel mismatch")
    reduction = channels * kernel_h * kernel_w
    out_h = (ifmap.shape[1] + 2 * padding - kernel_h) // stride + 1
    out_w = (ifmap.shape[2] + 2 * padding - kernel_w) // stride + 1
    vectors = out_h * out_w

    flat = weights.reshape(filters, reduction).T  # (reduction, filters)
    array = MultiKernelArray(array_rows, array_cols, registers)
    accumulator = np.zeros((filters, vectors), dtype=np.int64)

    filters_per_tile = array.filters_per_mapping
    row_tiles: List[range] = [
        range(start, min(start + array_rows, reduction))
        for start in range(0, reduction, array_rows)
    ]
    col_tiles: List[range] = [
        range(start, min(start + filters_per_tile, filters))
        for start in range(0, filters, filters_per_tile)
    ]
    for col_tile in col_tiles:
        for row_tile in row_tiles:
            tile = flat[row_tile.start : row_tile.stop, col_tile.start : col_tile.stop]
            array.load_weights(tile)
            streams = aligned_streams(
                ifmap, list(row_tile), kernel_h, kernel_w, stride, padding
            )
            outputs = array.run(streams)
            accumulator[col_tile.start : col_tile.stop] += outputs[: len(col_tile)]
    return accumulator.reshape(filters, out_h, out_w)
