"""Clocking schemes for SFQ gate-level pipelines (paper Section III-B, IV-A2).

SFQ circuits are clocked gate-by-gate; the achievable clock period of a pair
of adjacent gates is (paper Eq. 1, Fig. 11)::

    CCT = SetupTime + max(HoldTime, delta_t)
    delta_t = tau_data - tau_clock

Two clock distribution styles are modeled:

* **Concurrent-flow** clocking sends the clock pulse along with the data, so
  ``tau_clock`` tracks ``tau_data`` and, with *clock skewing* applied (the
  paper's frequency-enhancing technique), ``delta_t`` shrinks to a small
  residual.  This is the fast scheme, usable only on feed-forward paths.

* **Counter-flow** clocking sends the clock against the data direction.  It
  tolerates feedback loops (the clock pulse never races the data), but each
  period must cover the full data propagation plus the backward clock hop::

      CCT = SetupTime + HoldTime + tau_data + tau_clock_hop

Calibration (Fig. 7c): a DFF shift register runs at 133 GHz concurrent /
71 GHz counter-flow; a full-adder accumulator at 66 GHz / 30 GHz.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ClockingScheme(enum.Enum):
    """Clock distribution style of a pipelined SFQ unit."""

    CONCURRENT_FLOW = "concurrent-flow"
    COUNTER_FLOW = "counter-flow"


#: Data-propagation delay of one inter-gate wire hop (a JTL segment), ps.
DEFAULT_WIRE_DELAY_PS = 1.6

#: Clock-distribution delay of one backward hop in counter-flow clocking, ps.
DEFAULT_CLOCK_HOP_PS = 1.6

#: Residual data-vs-clock mismatch left after clock skewing inside a
#: carefully laid-out unit, ps.  Skewing cannot be perfect because the clock
#: line length is quantized to JTL stages.
DEFAULT_SKEW_RESIDUAL_PS = 1.0


@dataclass(frozen=True)
class TimingConstraint:
    """Resolved timing of one gate pair under a clocking scheme."""

    scheme: ClockingScheme
    setup_ps: float
    hold_ps: float
    delta_t_ps: float
    cycle_time_ps: float

    @property
    def frequency_ghz(self) -> float:
        if self.cycle_time_ps <= 0:
            raise ValueError("cycle time must be positive")
        return 1e3 / self.cycle_time_ps


def concurrent_flow_cct(
    setup_ps: float,
    hold_ps: float,
    skew_residual_ps: float = DEFAULT_SKEW_RESIDUAL_PS,
) -> TimingConstraint:
    """Clock-cycle time of a gate pair under concurrent-flow clocking.

    ``skew_residual_ps`` is the leftover ``delta_t`` after clock skewing; for
    unskewed paths pass the raw accumulated data-vs-clock mismatch instead
    (this is how the 2D splitter tree's width-proportional penalty of Fig. 5
    enters the model).
    """
    delta_t = max(0.0, skew_residual_ps)
    cct = setup_ps + max(hold_ps, delta_t)
    return TimingConstraint(ClockingScheme.CONCURRENT_FLOW, setup_ps, hold_ps, delta_t, cct)


def counter_flow_cct(
    setup_ps: float,
    hold_ps: float,
    data_path_delay_ps: float,
    clock_hop_ps: float = DEFAULT_CLOCK_HOP_PS,
) -> TimingConstraint:
    """Clock-cycle time of a gate pair under counter-flow clocking.

    ``data_path_delay_ps`` is the full data propagation the period must wait
    for — for a feedback unit this is the loop path (e.g. adder -> register
    -> adder for an output-stationary PE).
    """
    delta_t = data_path_delay_ps + clock_hop_ps
    cct = setup_ps + hold_ps + delta_t
    return TimingConstraint(ClockingScheme.COUNTER_FLOW, setup_ps, hold_ps, delta_t, cct)
