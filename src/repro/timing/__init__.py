"""Clocking schemes and the SFQ gate-pair frequency model."""

from repro.timing.clocking import (
    ClockingScheme,
    DEFAULT_CLOCK_HOP_PS,
    DEFAULT_SKEW_RESIDUAL_PS,
    DEFAULT_WIRE_DELAY_PS,
    TimingConstraint,
    concurrent_flow_cct,
    counter_flow_cct,
)
from repro.timing.frequency import (
    FrequencyReport,
    GatePair,
    combine_frequencies,
    unit_frequency,
)

__all__ = [
    "ClockingScheme",
    "DEFAULT_CLOCK_HOP_PS",
    "DEFAULT_SKEW_RESIDUAL_PS",
    "DEFAULT_WIRE_DELAY_PS",
    "TimingConstraint",
    "concurrent_flow_cct",
    "counter_flow_cct",
    "FrequencyReport",
    "GatePair",
    "combine_frequencies",
    "unit_frequency",
]
