"""Gate-pair frequency model (paper Section IV-A2).

A microarchitectural unit is described by its set of *gate pairs* — adjacent
(source gate, destination gate) connections in the gate-level pipeline.  The
unit's frequency is the minimum over all pairs of the pair frequency given
the unit's clocking scheme (paper Eq. 1).  The architecture level extends
the same computation with *inter-unit* pairs whose wire delay comes from the
floorplan (paper Section IV-A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.device.cells import CellLibrary, SFQCell
from repro.timing.clocking import (
    ClockingScheme,
    DEFAULT_SKEW_RESIDUAL_PS,
    DEFAULT_WIRE_DELAY_PS,
    TimingConstraint,
    concurrent_flow_cct,
    counter_flow_cct,
)


@dataclass(frozen=True)
class GatePair:
    """One source->destination gate connection in a pipelined unit.

    Attributes:
        src: Source cell name.
        dst: Destination cell name (must be a clocked cell).
        wire_delay_ps: Data wire delay between the two cells.
        scheme: Clocking scheme applied to this pair.
        skew_residual_ps: Residual data-vs-clock mismatch for
            concurrent-flow pairs (after clock skewing); ignored for
            counter-flow pairs.
        feedback_extra_delay_ps: Additional data-path delay a counter-flow
            pair must wait for (e.g. the register half of a feedback loop);
            ignored for concurrent-flow pairs.
        label: Optional human-readable description for reports.
    """

    src: str
    dst: str
    wire_delay_ps: float = DEFAULT_WIRE_DELAY_PS
    scheme: ClockingScheme = ClockingScheme.CONCURRENT_FLOW
    skew_residual_ps: float = DEFAULT_SKEW_RESIDUAL_PS
    feedback_extra_delay_ps: float = 0.0
    label: str = ""

    def resolve(self, library: CellLibrary) -> TimingConstraint:
        """Compute this pair's timing constraint with ``library`` parameters."""
        src_cell: SFQCell = library[self.src]
        dst_cell: SFQCell = library[self.dst]
        if not dst_cell.is_clocked:
            raise ValueError(
                f"destination cell {self.dst!r} is unclocked and cannot bound "
                "the clock period; fold it into the pair's wire delay instead"
            )
        if self.scheme is ClockingScheme.CONCURRENT_FLOW:
            return concurrent_flow_cct(
                dst_cell.setup_ps, dst_cell.hold_ps, self.skew_residual_ps
            )
        data_path = src_cell.delay_ps + self.wire_delay_ps + self.feedback_extra_delay_ps
        return counter_flow_cct(dst_cell.setup_ps, dst_cell.hold_ps, data_path)


@dataclass
class FrequencyReport:
    """Result of a unit- or chip-level frequency analysis."""

    cycle_time_ps: float
    frequency_ghz: float
    critical_pair: Optional[GatePair]
    constraints: List[TimingConstraint] = field(default_factory=list)


def unit_frequency(pairs: Iterable[GatePair], library: CellLibrary) -> FrequencyReport:
    """Frequency of a unit: the minimum pair frequency over all gate pairs.

    Raises ``ValueError`` when ``pairs`` is empty — a unit with no clocked
    pairs (e.g. a pure DFF-splitter network chain) has no frequency of its
    own, mirroring the paper's note that the NW unit alone reports none.
    """
    worst_cct = 0.0
    worst_pair: Optional[GatePair] = None
    constraints: List[TimingConstraint] = []
    for pair in pairs:
        constraint = pair.resolve(library)
        constraints.append(constraint)
        if constraint.cycle_time_ps > worst_cct:
            worst_cct = constraint.cycle_time_ps
            worst_pair = pair
    if worst_pair is None:
        raise ValueError("no gate pairs supplied; the unit has no clocked path")
    return FrequencyReport(
        cycle_time_ps=worst_cct,
        frequency_ghz=1e3 / worst_cct,
        critical_pair=worst_pair,
        constraints=constraints,
    )


def combine_frequencies(reports: Iterable[FrequencyReport]) -> FrequencyReport:
    """Chip frequency = slowest of the participating unit/interface reports."""
    worst: Optional[FrequencyReport] = None
    for report in reports:
        if worst is None or report.cycle_time_ps > worst.cycle_time_ps:
            worst = report
    if worst is None:
        raise ValueError("no frequency reports supplied")
    return worst
