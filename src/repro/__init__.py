"""SuperNPU reproduction: SFQ-based NPU modeling and simulation.

Public API highlights:

* :mod:`repro.core` — named design points, evaluation pipeline, optimizer.
* :mod:`repro.estimator` — frequency / power / area estimation.
* :mod:`repro.simulator` — cycle-level performance simulation.
* :mod:`repro.workloads` — the six CNN benchmark networks.
"""

__version__ = "1.0.0"
