"""ASCII chart rendering for sweep results.

The repository runs in terminal-only environments (no matplotlib is
installed offline), so the sweep figures render as text: a fixed-height
column chart for series data and a labeled horizontal bar chart for
categorical comparisons.  Used by ``supernpu sweep --plot``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Glyph used for chart marks.
MARK = "█"


def bar_chart(
    values: Dict[str, float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bars, one row per label, scaled to the maximum value."""
    if not values:
        raise ValueError("nothing to plot")
    if width < 4:
        raise ValueError("chart width must be at least 4 columns")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar charts need at least one positive value")
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = MARK * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{label:>{label_width}s} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def column_chart(
    series: Sequence[float],
    labels: Sequence[str] | None = None,
    height: int = 10,
) -> str:
    """A fixed-height column chart of one series (zero-based scale)."""
    if not series:
        raise ValueError("nothing to plot")
    if height < 2:
        raise ValueError("chart height must be at least 2 rows")
    if labels is not None and len(labels) != len(series):
        raise ValueError("labels must match the series length")
    peak = max(series)
    if peak <= 0:
        raise ValueError("column charts need at least one positive value")
    levels = [round(height * value / peak) for value in series]
    rows: List[str] = []
    for row in range(height, 0, -1):
        marks = "".join(f" {MARK} " if level >= row else "   " for level in levels)
        axis = f"{peak * row / height:8.1f} |"
        rows.append(axis + marks)
    rows.append(" " * 9 + "+" + "---" * len(series))
    if labels is not None:
        short = [label[-3:].rjust(3) for label in labels]
        rows.append(" " * 10 + "".join(short))
    return "\n".join(rows)


def sweep_chart(points, metric: str, width: int = 48) -> str:
    """Render a list of optimizer SweepPoints' metric as labeled bars."""
    values = {point.label: point.metrics[metric] for point in points}
    return bar_chart(values, width=width, unit="x")
