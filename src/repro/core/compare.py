"""Side-by-side comparison of arbitrary design points.

The evaluation pipeline compares the paper's five named designs; users
exploring their own configurations need the same view for *any* set of
configs: clock, peak, area, power, and per-workload throughput in one
record.  This powers ``supernpu compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.jobs import JobRunner, get_runner
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import ConfigError
from repro.simulator.attribution import PHASE_ORDER, phase_cycle_totals
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads


@dataclass
class ComparisonColumn:
    """One design's full scorecard."""

    config: NPUConfig
    frequency_ghz: float
    peak_tmacs: float
    area_mm2_28nm: float
    static_power_w: float
    throughput_tmacs: Dict[str, float] = field(default_factory=dict)
    batches: Dict[str, int] = field(default_factory=dict)
    #: Simulated cycles per phase (weight_load, ..., dram_stall, total),
    #: summed over all compared workloads — the attribution scorecard.
    phase_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_tmacs(self) -> float:
        if not self.throughput_tmacs:
            return 0.0
        return sum(self.throughput_tmacs.values()) / len(self.throughput_tmacs)


def compare_plan(
    configs: List[NPUConfig],
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> ExperimentPlan:
    """The comparison grid: every config x every workload, auto batches."""
    if not configs:
        raise ConfigError("need at least one design to compare",
                          code="config.empty_comparison")
    names = [config.name for config in configs]
    if len(set(names)) != len(names):
        raise ConfigError(f"design names must be unique, got {names}",
                          code="config.duplicate_designs", names=names)
    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    grid = Grid("compare", (
        config_axis(tuple(configs)),
        workload_axis(workloads),
        batch_axis(("auto",)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "compare", (grid,),
        description="side-by-side scorecard of arbitrary design points",
    )


def compare(
    configs: List[NPUConfig],
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    runner: Optional[JobRunner] = None,
) -> List[ComparisonColumn]:
    """Score every config on every workload (Table II / derived batches).

    The whole config x workload grid lowers onto one plan, so comparisons
    parallelize and cache per design point.
    """
    runner = runner or get_runner()
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()

    resultset = execute(compare_plan(configs, workloads, library),
                        runner=runner)

    columns: List[ComparisonColumn] = []
    for config in configs:
        estimate = runner.estimate(config, library)
        column = ComparisonColumn(
            config=config,
            frequency_ghz=estimate.frequency_ghz,
            peak_tmacs=estimate.peak_tmacs,
            area_mm2_28nm=estimate.area_mm2_scaled(),
            static_power_w=estimate.static_power_w,
        )
        for result in resultset.select(grid="compare", config=config.name):
            run = result.run
            column.throughput_tmacs[run.network] = run.tmacs
            column.batches[run.network] = run.batch
            for phase, cycles in phase_cycle_totals(run).items():
                column.phase_cycles[phase] = column.phase_cycles.get(phase, 0) + cycles
        columns.append(column)
    return columns


def winner(columns: List[ComparisonColumn]) -> ComparisonColumn:
    """The column with the best mean throughput."""
    if not columns:
        raise ValueError("nothing to compare")
    return max(columns, key=lambda column: column.mean_tmacs)


def comparison_records(columns: List[ComparisonColumn]) -> List[Dict[str, object]]:
    """Flat dict records (JSON/CSV-ready) of a comparison."""
    records = []
    for column in columns:
        record: Dict[str, object] = {
            "design": column.config.name,
            "frequency_ghz": column.frequency_ghz,
            "peak_tmacs": column.peak_tmacs,
            "area_mm2_28nm": column.area_mm2_28nm,
            "static_power_w": column.static_power_w,
            "mean_tmacs": column.mean_tmacs,
        }
        for name, value in column.throughput_tmacs.items():
            record[f"tmacs_{name}"] = value
        for phase, cycles in column.phase_cycles.items():
            record[f"cycles_{phase}"] = cycles
        records.append(record)
    return records


def phase_deltas(columns: List[ComparisonColumn]) -> List[Dict[str, object]]:
    """Where cycles moved, phase by phase, relative to the first design.

    One row per phase (plus ``total``): each design's summed cycles and
    its delta against ``columns[0]`` — a negative delta means the design
    spends fewer cycles in that phase.  This is how A-vs-B comparisons
    show *where* an optimization paid off, not just the totals.
    """
    if not columns:
        raise ValueError("nothing to compare")
    reference = columns[0]
    rows: List[Dict[str, object]] = []
    for phase in list(PHASE_ORDER) + ["total"]:
        row: Dict[str, object] = {"phase": phase}
        base = reference.phase_cycles.get(phase, 0)
        for column in columns:
            cycles = column.phase_cycles.get(phase, 0)
            row[column.config.name] = cycles
            row[f"{column.config.name}_delta"] = cycles - base
        rows.append(row)
    return rows
