"""Side-by-side comparison of arbitrary design points.

The evaluation pipeline compares the paper's five named designs; users
exploring their own configurations need the same view for *any* set of
configs: clock, peak, area, power, and per-workload throughput in one
record.  This powers ``supernpu compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.batching import batch_for
from repro.device.cells import CellLibrary, Technology, library_for
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads


@dataclass
class ComparisonColumn:
    """One design's full scorecard."""

    config: NPUConfig
    frequency_ghz: float
    peak_tmacs: float
    area_mm2_28nm: float
    static_power_w: float
    throughput_tmacs: Dict[str, float] = field(default_factory=dict)
    batches: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_tmacs(self) -> float:
        if not self.throughput_tmacs:
            return 0.0
        return sum(self.throughput_tmacs.values()) / len(self.throughput_tmacs)


def compare(
    configs: List[NPUConfig],
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> List[ComparisonColumn]:
    """Score every config on every workload (Table II / derived batches)."""
    if not configs:
        raise ValueError("need at least one design to compare")
    names = [config.name for config in configs]
    if len(set(names)) != len(names):
        raise ValueError(f"design names must be unique, got {names}")
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()

    columns: List[ComparisonColumn] = []
    for config in configs:
        estimate = estimate_npu(config, library)
        column = ComparisonColumn(
            config=config,
            frequency_ghz=estimate.frequency_ghz,
            peak_tmacs=estimate.peak_tmacs,
            area_mm2_28nm=estimate.area_mm2_scaled(),
            static_power_w=estimate.static_power_w,
        )
        for network in workloads:
            batch = batch_for(config, network)
            run = simulate(config, network, batch=batch, estimate=estimate)
            column.throughput_tmacs[network.name] = run.tmacs
            column.batches[network.name] = batch
        columns.append(column)
    return columns


def winner(columns: List[ComparisonColumn]) -> ComparisonColumn:
    """The column with the best mean throughput."""
    if not columns:
        raise ValueError("nothing to compare")
    return max(columns, key=lambda column: column.mean_tmacs)


def comparison_records(columns: List[ComparisonColumn]) -> List[Dict[str, object]]:
    """Flat dict records (JSON/CSV-ready) of a comparison."""
    records = []
    for column in columns:
        record: Dict[str, object] = {
            "design": column.config.name,
            "frequency_ghz": column.frequency_ghz,
            "peak_tmacs": column.peak_tmacs,
            "area_mm2_28nm": column.area_mm2_28nm,
            "static_power_w": column.static_power_w,
            "mean_tmacs": column.mean_tmacs,
        }
        for name, value in column.throughput_tmacs.items():
            record[f"tmacs_{name}"] = value
        records.append(record)
    return records
