"""SuperNPU core API: design points, evaluation, metrics, optimization."""

from repro.core.designs import (
    DESIGN_ORDER,
    all_designs,
    baseline,
    buffer_opt,
    design_by_name,
    resource_opt,
    supernpu,
)
from repro.core.batching import (
    BATCH_CAP,
    PAPER_BATCHES,
    batch_for,
    derived_batch,
    paper_batch,
)
from repro.core.metrics import EfficiencyRow, RooflinePoint, efficiency_row, roofline_point
from repro.core.evaluate import (
    DesignEvaluation,
    EvaluationSuite,
    evaluate_design,
    evaluate_suite,
    table3_rows,
)
from repro.core.scaling import ScaledProjection, project, scaling_sweep
from repro.core.search import (
    AREA_BUDGET_MM2,
    Candidate,
    best,
    pareto_frontier,
    search,
)
from repro.core.sensitivity import (
    BandwidthPoint,
    CoolingPoint,
    bandwidth_sweep,
    cooling_sweep,
)
from repro.core.ablate import AblationRow, ablated_configs, ablation_study
from repro.core.compare import ComparisonColumn, compare, comparison_records, winner
from repro.core.plotting import bar_chart, column_chart, sweep_chart
from repro.core.experiments import EXPERIMENTS, reproduce_all
from repro.core.golden import GOLDEN, check as check_goldens, current_record
from repro.core.energy import (
    EnergyRow,
    best_by_wall_energy,
    energy_row,
    inference_energy_table,
    relative_energy,
)
from repro.core.config_io import (
    config_from_dict,
    config_to_dict,
    load as load_config,
    save as save_config,
)
from repro.core.report import (
    estimate_record,
    layer_records,
    simulation_record,
    to_csv,
    to_json,
)
from repro.core.optimizer import (
    FIG20_DIVISIONS,
    FIG21_WIDTHS,
    FIG22_REGISTERS,
    SweepPoint,
    balanced_buffer_bytes,
    buffer_sweep,
    register_sweep,
    resource_config,
    resource_sweep,
)

__all__ = [
    "DESIGN_ORDER",
    "all_designs",
    "baseline",
    "buffer_opt",
    "design_by_name",
    "resource_opt",
    "supernpu",
    "BATCH_CAP",
    "PAPER_BATCHES",
    "batch_for",
    "derived_batch",
    "paper_batch",
    "EfficiencyRow",
    "RooflinePoint",
    "efficiency_row",
    "roofline_point",
    "DesignEvaluation",
    "EvaluationSuite",
    "evaluate_design",
    "evaluate_suite",
    "table3_rows",
    "FIG20_DIVISIONS",
    "FIG21_WIDTHS",
    "FIG22_REGISTERS",
    "SweepPoint",
    "balanced_buffer_bytes",
    "buffer_sweep",
    "register_sweep",
    "resource_config",
    "resource_sweep",
    "ScaledProjection",
    "project",
    "scaling_sweep",
    "AREA_BUDGET_MM2",
    "Candidate",
    "best",
    "pareto_frontier",
    "search",
    "BandwidthPoint",
    "CoolingPoint",
    "bandwidth_sweep",
    "cooling_sweep",
    "AblationRow",
    "ablated_configs",
    "ablation_study",
    "ComparisonColumn",
    "compare",
    "comparison_records",
    "winner",
    "EXPERIMENTS",
    "reproduce_all",
    "bar_chart",
    "column_chart",
    "sweep_chart",
    "GOLDEN",
    "check_goldens",
    "current_record",
    "EnergyRow",
    "best_by_wall_energy",
    "energy_row",
    "inference_energy_table",
    "relative_energy",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "estimate_record",
    "layer_records",
    "simulation_record",
    "to_csv",
    "to_json",
]
