"""One-command reproduction: run every experiment, write every artifact.

``reproduce_all()`` executes the full figure/table pipeline and returns
(or writes, one JSON per experiment) machine-readable results — the
programmatic twin of ``pytest benchmarks/``.  Used by
``supernpu reproduce --out results/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import ReproError, SimulationError
from repro.workloads.models import Network, all_workloads


def _fig05(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.uarch.network import compare_designs

    return {
        str(width): compare_designs(width, bits=8, library=library)
        for width in (4, 16, 64)
    }


def _fig07(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.uarch.mac import Dataflow, MACUnit

    ws = MACUnit(8, 24, Dataflow.WEIGHT_STATIONARY).frequency(library).frequency_ghz
    os = MACUnit(8, 24, Dataflow.OUTPUT_STATIONARY).frequency(library).frequency_ghz
    return {"ws_ghz": ws, "os_ghz": os}


def _fig08(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.workloads.analysis import duplication_report

    return {
        network.name: duplication_report(network).duplication_ratio
        for network in workloads
    }


def _fig13(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.estimator.validation import validate

    return {
        name: {
            "frequency_error": row.frequency_error,
            "power_error": row.power_error,
            "area_error": row.area_error,
        }
        for name, row in validate(library).items()
    }


def fig15_plan(
    library: Optional[CellLibrary] = None,
    workloads: Optional[List[Network]] = None,
):
    """Fig. 15's grid: the Baseline at batch 1 on every workload."""
    from repro.core.designs import baseline
    from repro.core.plan import (
        ExperimentPlan,
        Grid,
        batch_axis,
        config_axis,
        library_axis,
        workload_axis,
    )

    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    grid = Grid("breakdown", (
        config_axis((baseline(),)),
        workload_axis(workloads),
        batch_axis((1,)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "fig15_breakdown", (grid,),
        description="Fig. 15: per-phase cycle breakdown of the Baseline",
    )


def _fig15(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.plan import execute

    resultset = execute(fig15_plan(library, workloads))
    return {
        result.run.network: result.run.cycle_breakdown()
        for result in resultset
    }


def _fig17(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.designs import baseline
    from repro.core.metrics import roofline_point
    from repro.estimator.arch_level import estimate_npu

    config = baseline()
    estimate = estimate_npu(config, library)
    return {
        network.name: {
            "intensity_mac_per_byte": point.intensity_mac_per_byte,
            "attainable_gmacs": point.attainable_mac_per_s / 1e9,
            "max_utilization": point.max_pe_utilization,
        }
        for network in workloads
        for point in [
            roofline_point(network, 1, estimate.peak_mac_per_s,
                           config.memory_bandwidth_gbps)
        ]
    }


def _fig20(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.optimizer import buffer_sweep

    return [
        {"label": point.label, **point.metrics}
        for point in buffer_sweep(workloads=workloads, library=library)
    ]


def _fig21(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.optimizer import resource_sweep

    return [
        {"label": point.label, **point.metrics}
        for point in resource_sweep(workloads=workloads, library=library)
    ]


def _fig22(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.optimizer import register_sweep

    return {
        str(width): [point.metrics["speedup"] for point in rows]
        for width, rows in register_sweep(workloads=workloads, library=library).items()
    }


def _fig23(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.evaluate import evaluate_suite

    return evaluate_suite(workloads=workloads, library=library).speedups()


def _table1(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.designs import all_designs
    from repro.estimator.arch_level import estimate_npu

    return {
        config.name: {
            "frequency_ghz": estimate_npu(config, library).frequency_ghz,
            "peak_tmacs": estimate_npu(config, library).peak_tmacs,
            "area_mm2_28nm": estimate_npu(config, library).area_mm2_scaled(),
        }
        for config in all_designs()
    }


def _table2(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.batching import PAPER_BATCHES

    return PAPER_BATCHES


def _table3(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.evaluate import evaluate_suite, table3_rows

    suite = evaluate_suite(workloads=workloads, library=library)
    rows = table3_rows(suite)
    reference = rows[0]
    return {
        row.label: {
            "chip_power_w": row.chip_power_w,
            "wall_power_w": row.wall_power_w,
            "perf_per_watt_vs_tpu": row.normalized_to(reference),
        }
        for row in rows
    }


EXPERIMENTS: Dict[str, Callable[[CellLibrary, List[Network]], object]] = {
    "fig05_network": _fig05,
    "fig07_feedback": _fig07,
    "fig08_duplication": _fig08,
    "fig13_validation": _fig13,
    "fig15_cycle_breakdown": _fig15,
    "fig17_roofline": _fig17,
    "fig20_buffer_opt": _fig20,
    "fig21_resource_balancing": _fig21,
    "fig22_registers": _fig22,
    "fig23_performance": _fig23,
    "table1_setup": _table1,
    "table2_batches": _table2,
    "table3_power": _table3,
}


def reproduce_all(
    out_dir: Union[str, Path, None] = None,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    only: Optional[List[str]] = None,
    include_extensions: bool = False,
) -> Dict[str, object]:
    """Run every experiment (or the ``only`` subset); optionally write JSON.

    Returns {experiment id: result object}.  When ``out_dir`` is given,
    each experiment lands in ``<out_dir>/<id>.json``.  Extension studies
    (the ``ext_*`` registry) join the default set when
    ``include_extensions`` is true, and can always be named via ``only``.
    """
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    registry = {**EXPERIMENTS, **EXTENSIONS}
    if only is not None:
        selected = only
    else:
        selected = list(EXPERIMENTS) + (list(EXTENSIONS) if include_extensions else [])
    unknown = set(selected) - set(registry)
    if unknown:
        raise KeyError(f"unknown experiments {sorted(unknown)}; known: {sorted(registry)}")

    results: Dict[str, object] = {}
    for name in selected:
        try:
            results[name] = registry[name](library, workloads)
        except ReproError:
            raise  # already structured; the experiment name is in the trace
        except Exception as error:
            raise SimulationError(
                f"experiment {name!r} failed: {error}",
                code="sim.experiment_failed",
                hint="re-run with --only to isolate; completed experiments "
                     "stay cached",
                experiment=name,
                completed=sorted(results),
            ) from error

    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for name, result in results.items():
            (directory / f"{name}.json").write_text(
                json.dumps(result, indent=2, sort_keys=True, default=str) + "\n",
                encoding="utf-8",
            )
    return results


def _ext_ablation(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.ablate import ablation_study

    return [
        {
            "feature": row.feature,
            "mean_tmacs": row.mean_mac_per_s / 1e12,
            "relative_to_full": row.relative_to_full,
        }
        for row in ablation_study(workloads=workloads, library=library)
    ]


def _ext_scaling(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.designs import supernpu
    from repro.core.scaling import scaling_sweep

    return [
        {
            "feature_um": point.feature_size_um,
            "frequency_ghz": point.frequency_ghz,
            "peak_tmacs": point.peak_tmacs,
            "area_mm2": point.area_mm2,
        }
        for point in scaling_sweep(supernpu(), library=library)
    ]


def _ext_bandwidth(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.sensitivity import bandwidth_sweep

    return [
        {
            "bandwidth_gbps": point.bandwidth_gbps,
            "sfq_tmacs": point.sfq_tmacs,
            "tpu_tmacs": point.tpu_tmacs,
            "speedup": point.speedup,
        }
        for point in bandwidth_sweep(workloads=workloads, library=library)
    ]


def _ext_cooling(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.sensitivity import cooling_sweep

    return [
        {
            "factor": point.factor,
            "rsfq": point.rsfq_perf_per_watt,
            "ersfq": point.ersfq_perf_per_watt,
        }
        for point in cooling_sweep(network=workloads[0])
    ]


def _ext_dataflow(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.batching import batch_for
    from repro.core.designs import supernpu
    from repro.estimator.arch_level import estimate_npu
    from repro.simulator.dataflow_ablation import estimate_os_npu, simulate_os
    from repro.simulator.engine import simulate

    config = supernpu()
    ws_estimate = estimate_npu(config, library)
    os_estimate = estimate_os_npu(config, library)
    rows = {}
    for network in workloads:
        batch = batch_for(config, network)
        ws = simulate(config, network, batch=batch, estimate=ws_estimate)
        os = simulate_os(config, network, batch=batch, estimate=os_estimate)
        rows[network.name] = {"ws_tmacs": ws.tmacs, "os_tmacs": os.tmacs}
    return rows


def _ext_training(library: CellLibrary, workloads: List[Network]) -> object:
    from repro.core.designs import supernpu
    from repro.estimator.arch_level import estimate_npu
    from repro.simulator.training import simulate_training_step

    config = supernpu()
    estimate = estimate_npu(config, library)
    return {
        network.name: {
            "step_over_forward": simulate_training_step(
                config, network, batch=4, estimate=estimate
            ).training_vs_inference_ratio
        }
        for network in workloads
    }


#: Studies beyond the paper's figures; run with ``include_extensions=True``
#: or ``supernpu reproduce --extensions``.
EXTENSIONS: Dict[str, Callable[[CellLibrary, List[Network]], object]] = {
    "ext_feature_ablation": _ext_ablation,
    "ext_process_scaling": _ext_scaling,
    "ext_bandwidth_sensitivity": _ext_bandwidth,
    "ext_cooling_sensitivity": _ext_cooling,
    "ext_dataflow_ablation": _ext_dataflow,
    "ext_training_step": _ext_training,
}
