"""One-factor-at-a-time ablation of SuperNPU.

Fig. 23 stacks the optimizations cumulatively (Baseline -> Buffer opt. ->
Resource opt. -> SuperNPU).  The complementary question — *which single
feature matters most?* — is answered by removing each from the final
design in isolation and measuring the damage:

* ``no_integration``  — split the output buffer back into psum + ofmap;
* ``no_division``     — undivided (monolithic) shift-register buffers;
* ``wide_array``      — back to the 256-wide array (buffers shrink to the
  Baseline's 24 MB total to stay within the area budget);
* ``single_register`` — one weight register per PE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.designs import supernpu
from repro.core.jobs import JobRunner
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.uarch.config import MIB, NPUConfig
from repro.workloads.models import Network, all_workloads


def ablated_configs(base: Optional[NPUConfig] = None) -> Dict[str, NPUConfig]:
    """SuperNPU with each optimization removed individually."""
    base = base or supernpu()
    half_output = base.output_buffer_bytes // 2
    return {
        "SuperNPU": base,
        "no_integration": base.with_updates(
            name="SuperNPU - integration",
            integrated_output_buffer=False,
            output_buffer_bytes=half_output,
            psum_buffer_bytes=base.output_buffer_bytes - half_output,
        ),
        "no_division": base.with_updates(
            name="SuperNPU - division",
            ifmap_division=1,
            output_division=1,
        ),
        "wide_array": base.with_updates(
            name="SuperNPU - narrow array",
            pe_array_width=256,
            ifmap_buffer_bytes=12 * MIB,
            output_buffer_bytes=12 * MIB,
        ),
        "single_register": base.with_updates(
            name="SuperNPU - registers",
            registers_per_pe=1,
        ),
    }


@dataclass(frozen=True)
class AblationRow:
    """Throughput impact of removing one feature."""

    feature: str
    config_name: str
    mean_mac_per_s: float
    relative_to_full: float

    @property
    def penalty_percent(self) -> float:
        """Throughput lost by removing the feature (positive = loss)."""
        return 100.0 * (1.0 - self.relative_to_full)


def ablation_plan(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    base: Optional[NPUConfig] = None,
) -> ExperimentPlan:
    """The one-factor ablation grid: each ablated config x every workload."""
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    configs = ablated_configs(base)
    grid = Grid("ablation", (
        config_axis(tuple(configs.values())),
        workload_axis(tuple(workloads)),
        batch_axis(("derived",)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "ablation", (grid,),
        description="one-factor-at-a-time feature ablation of SuperNPU",
    )


def ablation_study(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    base: Optional[NPUConfig] = None,
    runner: Optional[JobRunner] = None,
) -> List[AblationRow]:
    """Run the one-factor ablation; rows sorted by damage, worst first."""
    workloads = workloads if workloads is not None else all_workloads()
    configs = ablated_configs(base)
    plan = ablation_plan(workloads, library, base)
    resultset = execute(plan, runner=runner)

    means: Dict[str, float] = {}
    for key, config in configs.items():
        selected = resultset.select(grid="ablation", config=config.name)
        means[key] = sum(r.run.mac_per_s for r in selected) / len(workloads)

    full = means["SuperNPU"]
    rows = [
        AblationRow(
            feature=key,
            config_name=configs[key].name,
            mean_mac_per_s=mean,
            relative_to_full=mean / full,
        )
        for key, mean in means.items()
        if key != "SuperNPU"
    ]
    rows.sort(key=lambda row: row.relative_to_full)
    return rows
