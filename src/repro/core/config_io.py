"""NPUConfig (de)serialization: experiment configs as JSON files.

Lets design points travel as plain JSON — regression suites, sweep
manifests, issue reports — and lets the CLI consume ad-hoc configurations
without code changes.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import ConfigError
from repro.uarch.config import NPUConfig

#: Fields accepted from JSON (exactly the dataclass's fields).
_FIELDS = {field.name for field in dataclasses.fields(NPUConfig)}


def config_to_dict(config: NPUConfig) -> Dict[str, Any]:
    """A plain-JSON-compatible dict of the configuration."""
    return dataclasses.asdict(config)


def config_from_dict(data: Dict[str, Any]) -> NPUConfig:
    """Build (and validate) a configuration from a dict.

    Unknown keys are rejected loudly — silent typos in sweep manifests are
    how wrong experiments get published.
    """
    unknown = set(data) - _FIELDS
    if unknown:
        raise ConfigError(
            f"unknown NPUConfig fields {sorted(unknown)}; known: {sorted(_FIELDS)}",
            code="config.unknown_fields", hint="check for typos in the config JSON",
            unknown=sorted(unknown),
        )
    if "name" not in data:
        raise ConfigError("a config needs a 'name'", code="config.missing_name")
    try:
        return NPUConfig(**data)
    except TypeError as error:
        raise ConfigError(f"malformed config: {error}",
                          code="config.malformed") from error


def dumps(config: NPUConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def loads(text: str) -> NPUConfig:
    try:
        data = json.loads(text)
    except ValueError as error:
        raise ConfigError(f"config is not valid JSON: {error}",
                          code="config.invalid_json") from error
    if not isinstance(data, dict):
        raise ConfigError("config JSON must be an object",
                          code="config.not_object")
    return config_from_dict(data)


def save(config: NPUConfig, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps(config) + "\n", encoding="utf-8")


def load(path: Union[str, Path]) -> NPUConfig:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigError(f"cannot read config file {path}: {error}",
                          code="config.unreadable", path=str(path)) from error
    return loads(text)
