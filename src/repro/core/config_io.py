"""NPUConfig (de)serialization: experiment configs as JSON files.

Lets design points travel as plain JSON — regression suites, sweep
manifests, issue reports — and lets the CLI consume ad-hoc configurations
without code changes.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.uarch.config import NPUConfig

#: Fields accepted from JSON (exactly the dataclass's fields).
_FIELDS = {field.name for field in dataclasses.fields(NPUConfig)}


def config_to_dict(config: NPUConfig) -> Dict[str, Any]:
    """A plain-JSON-compatible dict of the configuration."""
    return dataclasses.asdict(config)


def config_from_dict(data: Dict[str, Any]) -> NPUConfig:
    """Build (and validate) a configuration from a dict.

    Unknown keys are rejected loudly — silent typos in sweep manifests are
    how wrong experiments get published.
    """
    unknown = set(data) - _FIELDS
    if unknown:
        raise ValueError(
            f"unknown NPUConfig fields {sorted(unknown)}; known: {sorted(_FIELDS)}"
        )
    if "name" not in data:
        raise ValueError("a config needs a 'name'")
    return NPUConfig(**data)


def dumps(config: NPUConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def loads(text: str) -> NPUConfig:
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("config JSON must be an object")
    return config_from_dict(data)


def save(config: NPUConfig, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps(config) + "\n", encoding="utf-8")


def load(path: Union[str, Path]) -> NPUConfig:
    return loads(Path(path).read_text(encoding="utf-8"))
