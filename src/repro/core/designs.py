"""The paper's named NPU design points (Table I).

==============  =====  =======  =========  ===========  =========
Parameter       TPU    Baseline Buffer opt Resource opt SuperNPU
==============  =====  =======  =========  ===========  =========
array (W x H)   256^2  256^2    256^2      64 x 256     64 x 256
ifmap buffer    24 MB* 8 MB     12 MB      24 MB        24 MB
output buffer          8 MB     12 MB**    24 MB**      24 MB**
psum buffer            8 MB     --         --           --
weight buffer          64 KB    64 KB      16 KB        128 KB
regs / PE       1      1        1          1            8
==============  =====  =======  =========  ===========  =========

(* unified buffer; ** integrated psum+ofmap buffer.)  Buffer division
degrees follow Section V-B: 64 chunks after the buffer optimization, with
the integrated output buffer divided further to 256 when the PE array
narrows to 64 columns.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnknownDesignError
from repro.uarch.config import KIB, MIB, NPUConfig


def baseline() -> NPUConfig:
    """The naive SFQ-friendly design of Section III / V-A."""
    return NPUConfig(
        name="Baseline",
        pe_array_width=256,
        pe_array_height=256,
        ifmap_buffer_bytes=8 * MIB,
        output_buffer_bytes=8 * MIB,
        psum_buffer_bytes=8 * MIB,
        weight_buffer_bytes=64 * KIB,
        integrated_output_buffer=False,
        ifmap_division=1,
        output_division=1,
        registers_per_pe=1,
    )


def buffer_opt() -> NPUConfig:
    """Baseline + integrated and 64-way divided buffers (Section V-B1)."""
    return NPUConfig(
        name="Buffer opt.",
        pe_array_width=256,
        pe_array_height=256,
        ifmap_buffer_bytes=12 * MIB,
        output_buffer_bytes=12 * MIB,
        psum_buffer_bytes=0,
        weight_buffer_bytes=64 * KIB,
        integrated_output_buffer=True,
        ifmap_division=64,
        output_division=64,
        registers_per_pe=1,
    )


def resource_opt() -> NPUConfig:
    """Buffer opt + narrowed array / doubled buffers (Section V-B2)."""
    return NPUConfig(
        name="Resource opt.",
        pe_array_width=64,
        pe_array_height=256,
        ifmap_buffer_bytes=24 * MIB,
        output_buffer_bytes=24 * MIB,
        psum_buffer_bytes=0,
        weight_buffer_bytes=16 * KIB,
        integrated_output_buffer=True,
        ifmap_division=64,
        output_division=256,
        registers_per_pe=1,
    )


def supernpu() -> NPUConfig:
    """The full SuperNPU: resource opt + 8 weight registers per PE."""
    return NPUConfig(
        name="SuperNPU",
        pe_array_width=64,
        pe_array_height=256,
        ifmap_buffer_bytes=24 * MIB,
        output_buffer_bytes=24 * MIB,
        psum_buffer_bytes=0,
        weight_buffer_bytes=128 * KIB,
        integrated_output_buffer=True,
        ifmap_division=64,
        output_division=256,
        registers_per_pe=8,
    )


#: Evaluation order used by the paper's figures.
DESIGN_ORDER = ("Baseline", "Buffer opt.", "Resource opt.", "SuperNPU")


def all_designs() -> List[NPUConfig]:
    """The four SFQ design points in evaluation order."""
    return [baseline(), buffer_opt(), resource_opt(), supernpu()]


def design_by_name(name: str) -> NPUConfig:
    designs: Dict[str, NPUConfig] = {d.name.lower(): d for d in all_designs()}
    key = name.lower()
    aliases = {
        "bufferopt": "buffer opt.",
        "buffer_opt": "buffer opt.",
        "resourceopt": "resource opt.",
        "resource_opt": "resource opt.",
        "super": "supernpu",
    }
    key = aliases.get(key.replace(" ", "").replace(".", ""), key)
    if key in designs:
        return designs[key]
    raise UnknownDesignError(
        f"unknown design {name!r}; known: {[d.name for d in all_designs()]}",
        hint="design names are case-insensitive; aliases like 'bufferopt' "
             "and 'resource_opt' also resolve",
        name=name, known=[d.name for d in all_designs()],
    )
