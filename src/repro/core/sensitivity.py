"""Sensitivity studies around the paper's fixed assumptions.

The evaluation pins two environment parameters: 300 GB/s of DRAM bandwidth
(TPUv2's HBM) and a 400x cryocooler.  These sweeps quantify how the
headline conclusions move when those assumptions do:

* :func:`bandwidth_sweep` — SuperNPU-vs-TPU speedup as the shared memory
  bandwidth scales (the SFQ design is the bandwidth-hungry one: at
  52.6 GHz, 300 GB/s is only ~5.7 B/cycle).
* :func:`cooling_sweep` — ERSFQ/RSFQ perf-per-watt vs cooling efficiency,
  from the Carnot bound to pessimistic plants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.scalesim import CMOSNPUConfig, TPU_CORE, simulate_cmos
from repro.cooling.cryocooler import Cryocooler, carnot_cooling_factor
from repro.core.batching import paper_batch
from repro.core.designs import supernpu
from repro.core.metrics import efficiency_row
from repro.device.cells import CellLibrary, Technology, library_for
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads


@dataclass(frozen=True)
class BandwidthPoint:
    bandwidth_gbps: float
    sfq_tmacs: float
    tpu_tmacs: float

    @property
    def speedup(self) -> float:
        return self.sfq_tmacs / self.tpu_tmacs


def bandwidth_sweep(
    bandwidths_gbps: "tuple[float, ...]" = (100, 300, 600, 1200, 2400),
    config: Optional[NPUConfig] = None,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> List[BandwidthPoint]:
    """Mean throughput of SuperNPU and the TPU at each shared bandwidth."""
    config = config or supernpu()
    workloads = workloads if workloads is not None else all_workloads()
    library = library or library_for(Technology.RSFQ)
    points = []
    for bandwidth in bandwidths_gbps:
        sfq_config = config.with_updates(memory_bandwidth_gbps=float(bandwidth))
        estimate = estimate_npu(sfq_config, library)
        tpu_config = CMOSNPUConfig(
            memory_bandwidth_gbps=float(bandwidth),
            onchip_buffer_bytes=TPU_CORE.onchip_buffer_bytes,
        )
        sfq_total = 0.0
        tpu_total = 0.0
        for network in workloads:
            sfq = simulate(
                sfq_config, network,
                batch=paper_batch(config.name, network.name), estimate=estimate,
            )
            tpu = simulate_cmos(
                tpu_config, network, batch=paper_batch("TPU", network.name)
            )
            sfq_total += sfq.mac_per_s
            tpu_total += tpu.mac_per_s
        points.append(
            BandwidthPoint(
                bandwidth_gbps=float(bandwidth),
                sfq_tmacs=sfq_total / len(workloads) / 1e12,
                tpu_tmacs=tpu_total / len(workloads) / 1e12,
            )
        )
    return points


@dataclass(frozen=True)
class CoolingPoint:
    factor: float
    rsfq_perf_per_watt: float
    ersfq_perf_per_watt: float


def cooling_sweep(
    factors: "tuple[float, ...]" = (100, 200, 400, 1000),
    include_carnot: bool = True,
    network: Optional[Network] = None,
    config: Optional[NPUConfig] = None,
) -> List[CoolingPoint]:
    """Normalized perf/W (vs TPU) of both technologies per cooling factor."""
    config = config or supernpu()
    if network is None:
        from repro.workloads.models import resnet50

        network = resnet50()
    tpu = simulate_cmos(TPU_CORE, network, batch=paper_batch("TPU", network.name))
    tpu_row = efficiency_row("TPU", TPU_CORE.average_power_w, tpu.mac_per_s, cooler=None)

    chips = {}
    for technology in (Technology.RSFQ, Technology.ERSFQ):
        library = library_for(technology)
        estimate = estimate_npu(config, library)
        run = simulate(
            config, network,
            batch=paper_batch(config.name, network.name), estimate=estimate,
        )
        chips[technology] = (power_report(run, estimate).total_w, run.mac_per_s)

    sweep = list(factors)
    if include_carnot:
        sweep.insert(0, carnot_cooling_factor())
    points = []
    for factor in sweep:
        cooler = Cryocooler(factor=factor)
        values = {}
        for technology, (chip_w, perf) in chips.items():
            row = efficiency_row(technology.value, chip_w, perf, cooler=cooler)
            values[technology] = row.normalized_to(tpu_row)
        points.append(
            CoolingPoint(
                factor=float(factor),
                rsfq_perf_per_watt=values[Technology.RSFQ],
                ersfq_perf_per_watt=values[Technology.ERSFQ],
            )
        )
    return points
