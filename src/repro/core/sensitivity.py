"""Sensitivity studies around the paper's fixed assumptions.

The evaluation pins two environment parameters: 300 GB/s of DRAM bandwidth
(TPUv2's HBM) and a 400x cryocooler.  These sweeps quantify how the
headline conclusions move when those assumptions do:

* :func:`bandwidth_sweep` — SuperNPU-vs-TPU speedup as the shared memory
  bandwidth scales (the SFQ design is the bandwidth-hungry one: at
  52.6 GHz, 300 GB/s is only ~5.7 B/cycle).
* :func:`cooling_sweep` — ERSFQ/RSFQ perf-per-watt vs cooling efficiency,
  from the Carnot bound to pessimistic plants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.scalesim import CMOSNPUConfig, TPU_CORE
from repro.cooling.cryocooler import Cryocooler, carnot_cooling_factor
from repro.core.designs import supernpu
from repro.core.jobs import get_runner
from repro.core.metrics import efficiency_row
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.simulator.power import power_report
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads


@dataclass(frozen=True)
class BandwidthPoint:
    bandwidth_gbps: float
    sfq_tmacs: float
    tpu_tmacs: float

    @property
    def speedup(self) -> float:
        return self.sfq_tmacs / self.tpu_tmacs


def bandwidth_plan(
    bandwidths_gbps: "tuple[float, ...]" = (100, 300, 600, 1200, 2400),
    config: Optional[NPUConfig] = None,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> ExperimentPlan:
    """Bandwidth-sweep grids: SuperNPU and the TPU at each shared bandwidth.

    The swept configs keep their design names (renaming would change both
    the Table II batch lookup and the cache identity), so the config axes
    carry explicit per-bandwidth labels.
    """
    config = config or supernpu()
    workloads = tuple(workloads if workloads is not None else all_workloads())
    library = library or library_for(Technology.RSFQ)
    labels = tuple(f"{float(b):g}" for b in bandwidths_gbps)
    sfq_configs = tuple(
        config.with_updates(memory_bandwidth_gbps=float(b))
        for b in bandwidths_gbps
    )
    tpu_configs = tuple(
        CMOSNPUConfig(
            memory_bandwidth_gbps=float(b),
            onchip_buffer_bytes=TPU_CORE.onchip_buffer_bytes,
        )
        for b in bandwidths_gbps
    )
    grids = (
        Grid("sfq", (
            config_axis(sfq_configs, name="bandwidth", labels=labels),
            workload_axis(workloads),
            batch_axis(("paper",)),
            library_axis((library,)),
        )),
        Grid("tpu", (
            config_axis(tpu_configs, name="bandwidth", labels=labels),
            workload_axis(workloads),
            batch_axis(("paper",)),
        )),
    )
    return ExperimentPlan(
        "bandwidth_sensitivity", grids,
        description="SuperNPU vs TPU mean throughput per shared DRAM bandwidth",
    )


def bandwidth_sweep(
    bandwidths_gbps: "tuple[float, ...]" = (100, 300, 600, 1200, 2400),
    config: Optional[NPUConfig] = None,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> List[BandwidthPoint]:
    """Mean throughput of SuperNPU and the TPU at each shared bandwidth."""
    workloads = workloads if workloads is not None else all_workloads()
    plan = bandwidth_plan(bandwidths_gbps, config, workloads, library)
    resultset = execute(plan)
    points = []
    for bandwidth in bandwidths_gbps:
        label = f"{float(bandwidth):g}"
        sfq_total = sum(
            r.run.mac_per_s
            for r in resultset.select(grid="sfq", bandwidth=label)
        )
        tpu_total = sum(
            r.run.mac_per_s
            for r in resultset.select(grid="tpu", bandwidth=label)
        )
        points.append(
            BandwidthPoint(
                bandwidth_gbps=float(bandwidth),
                sfq_tmacs=sfq_total / len(workloads) / 1e12,
                tpu_tmacs=tpu_total / len(workloads) / 1e12,
            )
        )
    return points


@dataclass(frozen=True)
class CoolingPoint:
    factor: float
    rsfq_perf_per_watt: float
    ersfq_perf_per_watt: float


def cooling_plan(
    network: Optional[Network] = None,
    config: Optional[NPUConfig] = None,
) -> ExperimentPlan:
    """Cooling-sweep grids: the TPU reference plus RSFQ/ERSFQ chips."""
    config = config or supernpu()
    if network is None:
        from repro.workloads.models import resnet50

        network = resnet50()
    grids = (
        Grid("tpu", (
            config_axis((TPU_CORE,)),
            workload_axis((network,)),
            batch_axis(("paper",)),
        )),
        Grid("chips", (
            config_axis((config,)),
            workload_axis((network,)),
            batch_axis(("paper",)),
            library_axis((library_for(Technology.RSFQ),
                          library_for(Technology.ERSFQ))),
        )),
    )
    return ExperimentPlan(
        "cooling_sensitivity", grids,
        description="RSFQ/ERSFQ perf-per-watt vs cryocooler efficiency",
    )


def cooling_sweep(
    factors: "tuple[float, ...]" = (100, 200, 400, 1000),
    include_carnot: bool = True,
    network: Optional[Network] = None,
    config: Optional[NPUConfig] = None,
) -> List[CoolingPoint]:
    """Normalized perf/W (vs TPU) of both technologies per cooling factor."""
    config = config or supernpu()
    resultset = execute(cooling_plan(network, config))
    tpu = resultset.one(grid="tpu").run
    tpu_row = efficiency_row("TPU", TPU_CORE.average_power_w, tpu.mac_per_s, cooler=None)

    runner = get_runner()
    chips = {}
    for technology in (Technology.RSFQ, Technology.ERSFQ):
        library = library_for(technology)
        estimate = runner.estimate(config, library)
        run = resultset.one(grid="chips", library=technology.value).run
        chips[technology] = (power_report(run, estimate).total_w, run.mac_per_s)

    sweep = list(factors)
    if include_carnot:
        sweep.insert(0, carnot_cooling_factor())
    points = []
    for factor in sweep:
        cooler = Cryocooler(factor=factor)
        values = {}
        for technology, (chip_w, perf) in chips.items():
            row = efficiency_row(technology.value, chip_w, perf, cooler=cooler)
            values[technology] = row.normalized_to(tpu_row)
        points.append(
            CoolingPoint(
                factor=float(factor),
                rsfq_perf_per_watt=values[Technology.RSFQ],
                ersfq_perf_per_watt=values[Technology.ERSFQ],
            )
        )
    return points
