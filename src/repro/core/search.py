"""Automated design-space search (Section V, done exhaustively).

The paper reaches SuperNPU through three guided optimization steps; this
module searches the same space mechanically — every combination of PE
array width, buffer division and registers per PE, with buffer capacity
re-balanced from the area freed by narrowing the array — under the
TPU-class area budget, and ranks the candidates by mean throughput.

Finding that the winner is a 64/128-wide, division-64+, multi-register
design *is* the reproduction of the paper's design narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.core.jobs import JobRunner, get_runner
from repro.core.optimizer import resource_config
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import ConfigError
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads

#: TPU die budget the paper compares against (Table I: "<330" mm2 @28nm).
AREA_BUDGET_MM2 = 330.0

DEFAULT_WIDTHS = (256, 128, 64, 32)
DEFAULT_DIVISIONS = (1, 16, 64, 256)
DEFAULT_REGISTERS = (1, 2, 8, 16)


@dataclass(frozen=True)
class Candidate:
    """One evaluated design point."""

    config: NPUConfig
    mean_mac_per_s: float
    area_mm2_28nm: float
    peak_tmacs: float

    @property
    def mean_tmacs(self) -> float:
        return self.mean_mac_per_s / 1e12

    @property
    def within_budget(self) -> bool:
        return self.area_mm2_28nm <= AREA_BUDGET_MM2


def _candidate_config(width: int, division: int, registers: int,
                      library: CellLibrary) -> NPUConfig:
    base = resource_config(width, registers=registers, library=library)
    # resource_config fixes divisions for chunk-length constancy; scale
    # both by the requested degree relative to its 64-chunk reference.
    factor = max(1, division // 64) if division >= 64 else 1
    return base.with_updates(
        name=f"w{width}-d{division}-r{registers}",
        ifmap_division=max(division, 1) if division < 64 else base.ifmap_division * factor,
        output_division=max(division, 1) if division < 64 else base.output_division * factor,
    )


def search_plan(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    divisions: Sequence[int] = DEFAULT_DIVISIONS,
    registers: Sequence[int] = DEFAULT_REGISTERS,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> ExperimentPlan:
    """The exhaustive width x division x registers candidate grid."""
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    configs = tuple(
        _candidate_config(width, division, regs, library)
        for width in widths
        for division in divisions
        for regs in registers
    )
    grid = Grid("candidates", (
        config_axis(configs),
        workload_axis(tuple(workloads)),
        batch_axis(("derived",)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "search", (grid,),
        description="exhaustive design-space search under the TPU area budget",
    )


def search(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    divisions: Sequence[int] = DEFAULT_DIVISIONS,
    registers: Sequence[int] = DEFAULT_REGISTERS,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    area_budget_mm2: float = AREA_BUDGET_MM2,
    runner: Optional[JobRunner] = None,
) -> List[Candidate]:
    """Exhaustive sweep; returns in-budget candidates, best first.

    The full candidate x workload grid lowers onto one plan, so the
    search is embarrassingly parallel and every design point is
    individually cacheable.
    """
    if area_budget_mm2 <= 0:
        raise ConfigError("area budget must be positive",
                          code="config.invalid_budget")
    runner = runner or get_runner()
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()

    plan = search_plan(widths, divisions, registers, workloads, library)
    configs = plan.grids[0].axes[0].values
    candidates: List[Candidate] = []
    with obs.trace_span("search", points=len(configs)):
        entries = []
        for config in configs:
            with obs.trace_span("search/candidate", design=config.name):
                entries.append((config, runner.estimate(config, library)))
        resultset = execute(plan, runner=runner)
        for done, (config, estimate) in enumerate(entries):
            selected = resultset.select(grid="candidates", config=config.name)
            candidates.append(
                Candidate(
                    config=config,
                    mean_mac_per_s=sum(r.run.mac_per_s for r in selected)
                    / len(workloads),
                    area_mm2_28nm=estimate.area_mm2_scaled(),
                    peak_tmacs=estimate.peak_tmacs,
                )
            )
            obs.counter("search.candidates_evaluated").inc()
            obs.gauge("search.progress").set((done + 1) / len(configs))
    feasible = [c for c in candidates if c.area_mm2_28nm <= area_budget_mm2]
    feasible.sort(key=lambda c: c.mean_mac_per_s, reverse=True)
    return feasible


def best(candidates: List[Candidate]) -> Candidate:
    if not candidates:
        raise ValueError("no feasible candidates")
    return candidates[0]


def pareto_frontier(candidates: List[Candidate]) -> List[Candidate]:
    """The performance/area Pareto set: candidates no other candidate
    dominates (more throughput *and* less area).

    Returned sorted by area ascending, so the frontier reads as "what the
    next mm^2 buys".
    """
    frontier: List[Candidate] = []
    for candidate in candidates:
        dominated = any(
            other.mean_mac_per_s >= candidate.mean_mac_per_s
            and other.area_mm2_28nm <= candidate.area_mm2_28nm
            and (
                other.mean_mac_per_s > candidate.mean_mac_per_s
                or other.area_mm2_28nm < candidate.area_mm2_28nm
            )
            for other in candidates
        )
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda c: c.area_mm2_28nm)
    return frontier
