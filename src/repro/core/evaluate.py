"""End-to-end evaluation pipeline (paper Section VI).

Runs the six CNN workloads on the TPU baseline and on the four SFQ design
points, with Table II batch sizes, and produces the speedup comparison of
Fig. 23, the setup rows of Table I and the power-efficiency rows of
Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.scalesim import CMOSNPUConfig, TPU_CORE
from repro.cooling.cryocooler import PAPER_COOLER, Cryocooler
from repro.errors import UnknownDesignError
from repro.core.designs import all_designs, design_by_name
from repro.core.jobs import JobRunner, get_runner
from repro.core.metrics import EfficiencyRow, efficiency_row
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.estimator.arch_level import NPUEstimate
from repro.simulator.power import PowerReport, power_report
from repro.simulator.results import SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads


@dataclass
class DesignEvaluation:
    """All per-workload results for one design point."""

    config: NPUConfig
    estimate: NPUEstimate
    runs: Dict[str, SimulationResult] = field(default_factory=dict)
    power: Dict[str, PowerReport] = field(default_factory=dict)

    @property
    def mean_mac_per_s(self) -> float:
        if not self.runs:
            return 0.0
        return sum(run.mac_per_s for run in self.runs.values()) / len(self.runs)

    def speedup_vs(self, reference: Dict[str, SimulationResult]) -> Dict[str, float]:
        """Per-workload throughput normalized to a reference design."""
        speedups = {}
        for name, run in self.runs.items():
            ref = reference[name]
            speedups[name] = run.mac_per_s / ref.mac_per_s
        if speedups:
            speedups["Average"] = sum(speedups.values()) / len(speedups)
        return speedups


@dataclass
class EvaluationSuite:
    """Fig. 23: TPU baseline plus the four SFQ designs on six workloads."""

    tpu_config: CMOSNPUConfig
    tpu_runs: Dict[str, SimulationResult]
    designs: List[DesignEvaluation]

    def speedups(self) -> Dict[str, Dict[str, float]]:
        """{design name: {workload: speedup vs TPU, ..., 'Average': x}}."""
        return {d.config.name: d.speedup_vs(self.tpu_runs) for d in self.designs}

    def design(self, name: str) -> DesignEvaluation:
        for evaluation in self.designs:
            if evaluation.config.name == name:
                return evaluation
        raise UnknownDesignError(
            f"design {name!r} not in suite",
            name=name, known=[d.config.name for d in self.designs],
        )


def design_plan(
    config: NPUConfig,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
) -> ExperimentPlan:
    """One design point x every workload (Table II batches)."""
    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    grid = Grid("design", (
        config_axis((config,)),
        workload_axis(workloads),
        batch_axis(("auto",)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        f"evaluate_{config.name}", (grid,),
        description=f"all workloads on {config.name}",
    )


def evaluate_design(
    config: NPUConfig,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    runner: Optional[JobRunner] = None,
) -> DesignEvaluation:
    """Simulate every workload on one design point (Table II batches)."""
    runner = runner or get_runner()
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    estimate = runner.estimate(config, library)
    evaluation = DesignEvaluation(config=config, estimate=estimate)
    resultset = execute(design_plan(config, workloads, library), runner=runner)
    for network, result in zip(workloads, resultset):
        evaluation.runs[network.name] = result.run
        evaluation.power[network.name] = power_report(result.run, estimate)
    return evaluation


def evaluate_plan(
    designs: Optional[List[NPUConfig]] = None,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    tpu: CMOSNPUConfig = TPU_CORE,
) -> ExperimentPlan:
    """Fig. 23's grids: the TPU baseline plus every SFQ design point."""
    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    configs = tuple(designs) if designs is not None else tuple(all_designs())
    grids = (
        Grid("tpu", (
            config_axis((tpu,)),
            workload_axis(workloads),
            batch_axis(("paper",)),
        )),
        Grid("designs", (
            config_axis(configs),
            workload_axis(workloads),
            batch_axis(("auto",)),
            library_axis((library,)),
        )),
    )
    return ExperimentPlan(
        "fig23_evaluate", grids,
        description="Fig. 23: TPU baseline vs the four SFQ designs",
    )


def evaluate_suite(
    designs: Optional[List[NPUConfig]] = None,
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    tpu: CMOSNPUConfig = TPU_CORE,
    runner: Optional[JobRunner] = None,
) -> EvaluationSuite:
    """Run the whole Fig. 23 comparison.

    The TPU-baseline and SFQ design-point grids lower onto one plan whose
    tasks reach the runner as a single list, so ``jobs > 1`` parallelizes
    the entire design x workload grid at once.
    """
    runner = runner or get_runner()
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    configs = list(designs) if designs is not None else all_designs()

    resultset = execute(evaluate_plan(configs, workloads, library, tpu),
                        runner=runner)
    tpu_runs = {
        network.name: result.run
        for network, result in zip(workloads, resultset.select(grid="tpu"))
    }
    design_evals = []
    for config in configs:
        estimate = runner.estimate(config, library)
        evaluation = DesignEvaluation(config=config, estimate=estimate)
        for result in resultset.select(grid="designs", config=config.name):
            evaluation.runs[result.run.network] = result.run
            evaluation.power[result.run.network] = power_report(result.run, estimate)
        design_evals.append(evaluation)
    return EvaluationSuite(tpu_config=tpu, tpu_runs=tpu_runs, designs=design_evals)


def table3_plan(design_name: str = "SuperNPU") -> ExperimentPlan:
    """Table III's grids: the Fig. 23 suite plus RSFQ/ERSFQ chip runs."""
    suite = evaluate_plan()
    workloads = tuple(all_workloads())
    config = design_by_name(design_name)
    technologies = Grid("technologies", (
        config_axis((config,)),
        workload_axis(workloads),
        batch_axis(("auto",)),
        library_axis((library_for(Technology.RSFQ),
                      library_for(Technology.ERSFQ))),
    ))
    return ExperimentPlan(
        "table3_power", suite.grids + (technologies,),
        description="Table III: perf/W of TPU vs RSFQ/ERSFQ SuperNPU",
    )


def table3_rows(
    suite: EvaluationSuite,
    cooler: Cryocooler = PAPER_COOLER,
    design_name: str = "SuperNPU",
) -> List[EfficiencyRow]:
    """Table III: TPU vs RSFQ/ERSFQ SuperNPU, with and without cooling.

    Chip power per technology is static + simulated dynamic power averaged
    over the six workloads.
    """
    tpu_mean = sum(run.mac_per_s for run in suite.tpu_runs.values()) / len(suite.tpu_runs)
    rows = [efficiency_row("TPU", suite.tpu_config.average_power_w, tpu_mean, cooler=None)]
    design = suite.design(design_name)
    for technology in (Technology.RSFQ, Technology.ERSFQ):
        evaluation = evaluate_design(
            design.config, _networks_of(suite), library_for(technology)
        )
        chip_power = sum(p.total_w for p in evaluation.power.values()) / len(evaluation.power)
        mean_perf = evaluation.mean_mac_per_s
        label = f"{technology.value.upper()}-{design_name}"
        rows.append(
            efficiency_row(f"{label} (w/o cooling)", chip_power, mean_perf,
                           cooler=cooler, free_cooling=True)
        )
        rows.append(
            efficiency_row(f"{label} (w/ cooling)", chip_power, mean_perf,
                           cooler=cooler, free_cooling=False)
        )
    return rows


def _networks_of(suite: EvaluationSuite) -> List[Network]:
    from repro.workloads.models import by_name

    return [by_name(name) for name in suite.tpu_runs]
