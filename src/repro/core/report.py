"""Structured result export: JSON / CSV records of simulation runs.

Turns estimator and simulator outputs into plain dictionaries (and JSON or
CSV text) so downstream tooling — plotting scripts, regression dashboards,
spreadsheets — can consume the reproduction's numbers without importing
the library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.estimator.arch_level import NPUEstimate
from repro.simulator.power import PowerReport
from repro.simulator.results import SimulationResult


def estimate_record(estimate: NPUEstimate) -> Dict[str, object]:
    """Flatten an architecture estimate into a JSON-ready dict."""
    return {
        "design": estimate.config.name,
        "technology": estimate.technology,
        "frequency_ghz": estimate.frequency_ghz,
        "cycle_time_ps": estimate.cycle_time_ps,
        "critical_path": estimate.critical_path,
        "peak_tmacs": estimate.peak_tmacs,
        "static_power_w": estimate.static_power_w,
        "area_mm2_native": estimate.area_mm2,
        "area_mm2_28nm": estimate.area_mm2_scaled(),
        "units": {
            name: {
                "jj_count": unit.jj_count,
                "static_power_w": unit.static_power_w,
                "area_mm2": unit.area_mm2,
                "frequency_ghz": unit.frequency_ghz,
            }
            for name, unit in estimate.units.items()
        },
    }


def simulation_record(run: SimulationResult, power: PowerReport | None = None) -> Dict[str, object]:
    """Flatten a simulation result (and optional power report)."""
    breakdown = run.cycle_breakdown()
    record: Dict[str, object] = {
        "design": run.design,
        "network": run.network,
        "batch": run.batch,
        "frequency_ghz": run.frequency_ghz,
        "total_cycles": run.total_cycles,
        "latency_us": run.latency_s * 1e6,
        "tmacs": run.tmacs,
        "images_per_s": run.images_per_s,
        "preparation_share": breakdown["preparation"],
        "computation_share": breakdown["computation"],
        "memory_share": breakdown["memory"],
    }
    if power is not None:
        record["static_power_w"] = power.static_w
        record["dynamic_power_w"] = power.dynamic_w
        record["total_power_w"] = power.total_w
    return record


def layer_records(run: SimulationResult) -> List[Dict[str, object]]:
    """One record per layer: the per-layer cycle accounting."""
    return [
        {
            "design": run.design,
            "network": run.network,
            "layer": layer.name,
            "mappings": layer.mappings,
            "weight_load_cycles": layer.weight_load_cycles,
            "ifmap_prep_cycles": layer.ifmap_prep_cycles,
            "psum_move_cycles": layer.psum_move_cycles,
            "activation_transfer_cycles": layer.activation_transfer_cycles,
            "compute_cycles": layer.compute_cycles,
            "dram_traffic_bytes": layer.dram_traffic_bytes,
            "total_cycles": layer.total_cycles,
            "macs": layer.macs,
        }
        for layer in run.layers
    ]


def to_json(records: object, indent: int = 2) -> str:
    return json.dumps(records, indent=indent, sort_keys=True)


def to_csv(records: List[Dict[str, object]]) -> str:
    """Render homogeneous records as CSV text (column order preserved)."""
    if not records:
        raise ValueError("no records to render")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].keys()))
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()
