"""``repro.core.chaos`` — failure injection at the task boundary.

The paper's devices fail by dropping pulses (bias-margin and timing
violations — the reason :mod:`repro.gatesim.faults` exists); the
*framework* fails by dropping workers.  This module gives the execution
layer the same treatment the gate level already has: a controlled
vocabulary of injected failures used to prove every recovery path in
:class:`repro.core.jobs.JobRunner` yields results bitwise-identical to
a clean serial run.

Failure kinds (:class:`FaultSpec`):

* ``"exception"`` — the task raises a transient :class:`ChaosFailure`;
* ``"hang"`` — the task sleeps past any sane deadline (exercises the
  per-task timeout + pool-abandon path);
* ``"sigkill"`` — the worker process SIGKILLs itself (exercises
  ``BrokenProcessPool`` recovery and degrade-to-serial).

Budgets are enforced through an on-disk attempt ledger
(:class:`ChaosInjector` claims one marker file per firing), so a fault
configured with ``times=2`` fires exactly twice *across processes and
pool restarts* and then lets the task succeed — which is what makes
"inject, recover, converge" provable.

Cache poisoning (:func:`corrupt_cache_entry`) covers the storage side:
truncated JSON, garbage bytes, wrong schema versions, and well-formed
but unmaterializable payloads.

The serving layer (:mod:`repro.serve`) drills one level higher with the
daemon fault kinds (:data:`SERVE_FAULT_KINDS`):

* ``"hung_handler"`` — the request handler stalls for ``hang_seconds``
  *and then proceeds normally* (exercises per-request deadlines: the
  waiter sheds with 504 while the computation stays consistent);
* ``"reject"`` — the handler raises a transient :class:`ChaosFailure`
  before touching the job engine (exercises the error envelope path).

A daemon passes two independent injectors — one fired at the handler
boundary (keyed by endpoint name), one travelling into pool workers
(keyed by task content hash) — so "kill workers mid-request" and "hang
the handler" are separately budgeted.  Slow-client faults need no
injector at all: they are produced client-side by throttled request
writes (:meth:`repro.serve.client.ServeClient.raw_request`) and
absorbed server-side by bounded read timeouts.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.jobs import ResultCache

FAULT_KINDS = ("exception", "hang", "sigkill")

#: Fault kinds meaningful only at the serving layer's handler boundary.
SERVE_FAULT_KINDS = ("hung_handler", "reject")

#: Every kind a :class:`FaultSpec` accepts (worker-level + daemon-level).
ALL_FAULT_KINDS = FAULT_KINDS + SERVE_FAULT_KINDS

CORRUPTION_MODES = ("truncate", "garbage", "wrong_schema", "poisoned_payload")

#: Wildcard fault key: applies to every task, sharing one ``times`` budget.
ANY_TASK = "*"


class ChaosFailure(RuntimeError):
    """A chaos-injected transient failure (retriable by design)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure: ``kind``, fired at most ``times`` times."""

    kind: str
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; known: {ALL_FAULT_KINDS}",
                code="config.invalid_fault", kind=self.kind,
            )
        if self.times < 1:
            raise ConfigError("fault times must be >= 1",
                              code="config.invalid_fault", times=self.times)
        if self.hang_seconds <= 0:
            raise ConfigError("hang_seconds must be positive",
                              code="config.invalid_fault")


class ChaosInjector:
    """Fires planned faults at task boundaries, with cross-process budgets.

    ``faults`` maps a task content key (or :data:`ANY_TASK`) to a
    :class:`FaultSpec`.  The injector is picklable and travels into
    worker processes with each task; the attempt ledger lives in
    ``state_dir`` so budgets hold across workers, pool restarts, and
    the degraded serial path.

    A ``"sigkill"`` fired in the owner process (serial / degraded mode)
    is demoted to a :class:`ChaosFailure` — chaos tests the runner, not
    the test harness.
    """

    def __init__(self, state_dir: Union[str, Path],
                 faults: Mapping[str, FaultSpec]) -> None:
        self.state_dir = Path(state_dir).expanduser()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.faults: Dict[str, FaultSpec] = dict(faults)
        self.owner_pid = os.getpid()

    def _claim(self, slot: str, spec: FaultSpec) -> bool:
        """Atomically claim one of the fault's ``times`` firing slots."""
        for attempt in range(spec.times):
            marker = self.state_dir / f"{slot}.{attempt}"
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    def planned_fault(self, key: str) -> Optional[FaultSpec]:
        """The spec that would apply to ``key`` (budget not consulted)."""
        return self.faults.get(key) or self.faults.get(ANY_TASK)

    def fire(self, key: str) -> None:
        """Inject the planned failure for ``key``, if budget remains."""
        spec = self.faults.get(key)
        slot = key[:32]
        if spec is None:
            spec = self.faults.get(ANY_TASK)
            slot = "any"
        if spec is None or not self._claim(slot, spec):
            return
        if spec.kind == "hung_handler":
            # The handler stalls but then proceeds normally: the caller's
            # deadline is what turns this into a shed, not an exception.
            time.sleep(spec.hang_seconds)
            return
        if spec.kind == "reject":
            raise ChaosFailure(f"chaos handler rejection on {key[:12]}")
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
            raise ChaosFailure(
                f"chaos hang ({spec.hang_seconds:g}s) on task {key[:12]}"
            )
        if spec.kind == "sigkill":
            if os.getpid() == self.owner_pid:
                raise ChaosFailure(
                    f"chaos sigkill on task {key[:12]} (demoted to an "
                    "exception in the owner process)"
                )
            os.kill(os.getpid(), signal.SIGKILL)
        raise ChaosFailure(f"chaos exception on task {key[:12]}")


#: Scopes a ``--chaos`` CLI flag can target: the daemon request handler
#: (fired once per admitted request, keyed by endpoint name) or the pool
#: workers (fired per task execution, keyed by content hash).
FAULT_SCOPES = ("handler", "worker")


def parse_fault_flag(text: str) -> Tuple[str, FaultSpec]:
    """Parse one ``--chaos`` flag: ``scope:kind:times[:seconds]``.

    Examples: ``worker:sigkill:2`` (the first two worker tasks SIGKILL
    their process), ``handler:hung_handler:1:0.5`` (the first admitted
    request stalls for half a second before executing).
    """
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ConfigError(
            f"cannot parse chaos spec {text!r}; expected scope:kind:times[:seconds]",
            code="config.invalid_fault", spec=text,
        )
    scope, kind = parts[0], parts[1]
    if scope not in FAULT_SCOPES:
        raise ConfigError(
            f"unknown chaos scope {scope!r}; known: {FAULT_SCOPES}",
            code="config.invalid_fault", scope=scope,
        )
    try:
        times = int(parts[2])
        seconds = float(parts[3]) if len(parts) == 4 else 30.0
    except ValueError:
        raise ConfigError(
            f"cannot parse chaos spec {text!r}; times must be an int, "
            "seconds a float", code="config.invalid_fault", spec=text,
        ) from None
    return scope, FaultSpec(kind, times=times, hang_seconds=seconds)


def corrupt_cache_entry(cache: "ResultCache", key: str,
                        mode: str = "truncate") -> Path:
    """Damage one cache entry in place; returns the entry's path.

    Modes: ``"truncate"`` (half the JSON text), ``"garbage"`` (not JSON
    at all), ``"wrong_schema"`` (valid JSON, wrong schema version), and
    ``"poisoned_payload"`` (passes the schema check but cannot be
    materialized into a result).
    """
    if mode not in CORRUPTION_MODES:
        raise ConfigError(
            f"unknown corruption mode {mode!r}; known: {CORRUPTION_MODES}",
            code="config.invalid_fault", mode=mode,
        )
    path = cache.path_for(key)
    text = path.read_text(encoding="utf-8")
    if mode == "truncate":
        path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
    elif mode == "garbage":
        path.write_text("\x00not json{{{", encoding="utf-8")
    elif mode == "wrong_schema":
        document = json.loads(text)
        document["schema"] = -1
        path.write_text(json.dumps(document), encoding="utf-8")
    else:  # poisoned_payload
        document = json.loads(text)
        document["payload"] = {"bogus": True}
        path.write_text(json.dumps(document), encoding="utf-8")
    return path
