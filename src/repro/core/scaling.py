"""Process-scaling projections (paper footnote 2, Section V-A1).

The paper evaluates on the conservative AIST 1.0 um process and notes the
headroom: JJ frequency scales linearly with feature-size reduction down to
~0.2 um (Kadin et al.; a TFF has run at 770 GHz), and area scales
quadratically.  This module projects any design point to a finer node so
that headroom can be quantified — the "what if SFQ got a modern fab"
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.jobs import get_runner
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    config_axis,
    execute,
    library_axis,
    param_axis,
)
from repro.device.cells import CellLibrary, rsfq_library
from repro.device.process import AIST_10UM, FabricationProcess
from repro.estimator.arch_level import NPUEstimate
from repro.uarch.config import NPUConfig


@dataclass(frozen=True)
class ScaledProjection:
    """One design point projected to a finer fabrication node."""

    feature_size_um: float
    frequency_ghz: float
    peak_tmacs: float
    area_mm2: float
    static_power_w: float

    @property
    def frequency_gain(self) -> float:
        return self.feature_size_um  # informative only; see project()


def project(
    config: NPUConfig,
    target_feature_um: float,
    library: Optional[CellLibrary] = None,
    process: FabricationProcess = AIST_10UM,
    estimate: Optional[NPUEstimate] = None,
) -> ScaledProjection:
    """Project ``config`` to ``target_feature_um``.

    Scaling rules (paper footnote 2):

    * frequency multiplies by the feature-size reduction, clamped at the
      0.2 um validation limit of the linear rule;
    * area scales quadratically with feature size;
    * static power is held constant per junction (bias currents do not
      shrink with lithography in the simple model) — a conservative choice
      that keeps the RSFQ-power conclusion intact at every node.

    The base estimate resolves through the ambient job runner (cached,
    exact) unless one is passed in.
    """
    library = library or rsfq_library()
    base: NPUEstimate = estimate or get_runner().estimate(config, library)
    freq_gain = process.frequency_scale_factor(target_feature_um)
    area_gain = process.area_scale_factor(target_feature_um)
    frequency = base.frequency_ghz * freq_gain
    return ScaledProjection(
        feature_size_um=target_feature_um,
        frequency_ghz=frequency,
        peak_tmacs=config.peak_mac_per_s(frequency) / 1e12,
        area_mm2=base.area_mm2 * area_gain,
        static_power_w=base.static_power_w,
    )


def scaling_plan(
    config: NPUConfig,
    features_um: "tuple[float, ...]" = (1.0, 0.5, 0.25, 0.2, 0.1, 0.028),
    library: Optional[CellLibrary] = None,
) -> ExperimentPlan:
    """The node ladder as an estimate grid (no cycle simulation needed)."""
    library = library or rsfq_library()
    grid = Grid("nodes", (
        config_axis((config,)),
        library_axis((library,)),
        param_axis("feature_um", tuple(features_um)),
    ), kind="estimate")
    return ExperimentPlan(
        "process_scaling", (grid,),
        description="frequency/area projection across fabrication nodes",
    )


def scaling_sweep(
    config: NPUConfig,
    features_um: "tuple[float, ...]" = (1.0, 0.5, 0.25, 0.2, 0.1, 0.028),
    library: Optional[CellLibrary] = None,
) -> List[ScaledProjection]:
    """Project a design across a ladder of nodes down to 28 nm CMOS parity."""
    library = library or rsfq_library()
    resultset = execute(scaling_plan(config, features_um, library))
    return [
        project(config, result.param("feature_um"), library,
                estimate=result.estimate)
        for result in resultset
    ]
