"""Energy-per-inference metrics (the per-image view of Table III).

Table III compares sustained performance per watt; serving systems also
budget *joules per image*.  This module derives both from a simulation run
and a power report, for any cooling scenario, and compares designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.scalesim import CMOSNPUConfig, TPU_CORE, simulate_cmos
from repro.cooling.cryocooler import Cryocooler, PAPER_COOLER
from repro.core.batching import paper_batch
from repro.core.designs import supernpu
from repro.device.cells import CellLibrary, Technology, library_for
from repro.estimator.arch_level import estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.power import power_report
from repro.simulator.results import SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network


@dataclass(frozen=True)
class EnergyRow:
    """Energy accounting for one (design, workload) pair."""

    label: str
    images_per_s: float
    chip_power_w: float
    wall_power_w: float

    @property
    def chip_joules_per_image(self) -> float:
        if self.images_per_s <= 0:
            raise ValueError("throughput must be positive")
        return self.chip_power_w / self.images_per_s

    @property
    def wall_joules_per_image(self) -> float:
        if self.images_per_s <= 0:
            raise ValueError("throughput must be positive")
        return self.wall_power_w / self.images_per_s


def energy_row(
    label: str,
    run: SimulationResult,
    chip_power_w: float,
    cooler: Optional[Cryocooler] = None,
    free_cooling: bool = False,
) -> EnergyRow:
    """Build an energy row from a simulation and its chip power."""
    wall = chip_power_w
    if cooler is not None:
        wall = cooler.wall_power_w(chip_power_w, free_cooling=free_cooling)
    return EnergyRow(
        label=label,
        images_per_s=run.images_per_s,
        chip_power_w=chip_power_w,
        wall_power_w=wall,
    )


def inference_energy_table(
    network: Network,
    config: Optional[NPUConfig] = None,
    cooler: Cryocooler = PAPER_COOLER,
    tpu: CMOSNPUConfig = TPU_CORE,
    library_rsfq: Optional[CellLibrary] = None,
    library_ersfq: Optional[CellLibrary] = None,
) -> List[EnergyRow]:
    """The Table III comparison in joules per image, for one workload."""
    config = config or supernpu()
    rows: List[EnergyRow] = []

    tpu_run = simulate_cmos(tpu, network, batch=paper_batch(tpu.name, network.name))
    rows.append(energy_row("TPU", tpu_run, tpu.average_power_w))

    batch = paper_batch(config.name, network.name)
    for technology, library in (
        (Technology.RSFQ, library_rsfq or library_for(Technology.RSFQ)),
        (Technology.ERSFQ, library_ersfq or library_for(Technology.ERSFQ)),
    ):
        estimate = estimate_npu(config, library)
        run = simulate(config, network, batch=batch, estimate=estimate)
        chip = power_report(run, estimate).total_w
        prefix = f"{technology.value.upper()}-{config.name}"
        rows.append(
            energy_row(f"{prefix} (free cooling)", run, chip,
                       cooler=cooler, free_cooling=True)
        )
        rows.append(
            energy_row(f"{prefix} (w/ cooling)", run, chip, cooler=cooler)
        )
    return rows


def best_by_wall_energy(rows: List[EnergyRow]) -> EnergyRow:
    if not rows:
        raise ValueError("no rows to compare")
    return min(rows, key=lambda r: r.wall_joules_per_image)


def relative_energy(rows: List[EnergyRow], reference_label: str = "TPU") -> Dict[str, float]:
    """Wall joules per image normalized to a reference row (lower=better)."""
    by_label = {row.label: row for row in rows}
    if reference_label not in by_label:
        raise KeyError(f"no row labeled {reference_label!r}")
    reference = by_label[reference_label].wall_joules_per_image
    return {
        label: row.wall_joules_per_image / reference for label, row in by_label.items()
    }
