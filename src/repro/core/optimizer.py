"""Design-space exploration reproducing the optimization study (Section V-B).

Three sweeps, one per figure:

* :func:`buffer_sweep` — Fig. 20: psum/ofmap integration followed by
  increasing buffer division; single-batch and max-batch performance plus
  area, normalized to the Baseline.
* :func:`resource_sweep` — Fig. 21: narrowing the PE array and reinvesting
  the area into on-chip buffers; performance and computational intensity.
* :func:`register_sweep` — Fig. 22: weight registers per PE for the
  64- and 128-wide arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.batching import derived_batch
from repro.core.designs import baseline, buffer_opt
from repro.core.jobs import get_runner
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    ResultSet,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.uarch.config import MIB, NPUConfig
from repro.uarch.pe import ProcessingElement
from repro.workloads.models import Network, all_workloads

#: Division degrees swept in Fig. 20 (integration alone counts as 2).
FIG20_DIVISIONS = (2, 4, 16, 64, 256, 1024, 4096)

#: PE-array widths swept in Fig. 21.
FIG21_WIDTHS = (256, 128, 64, 32, 16)

#: Register counts swept in Fig. 22.
FIG22_REGISTERS = (1, 2, 4, 8, 16, 32)


def _mean(resultset: ResultSet, grid: str, config: NPUConfig,
          count: int) -> float:
    """Mean mac/s of one config's workload row in a sweep grid."""
    selected = resultset.select(grid=grid, config=config.name)
    return sum(r.run.mac_per_s for r in selected) / count


@dataclass
class SweepPoint:
    """One configuration of a sweep with its measured metrics."""

    label: str
    config: NPUConfig
    metrics: Dict[str, float]


def _fig20_configs(divisions: "tuple[int, ...]") -> List[NPUConfig]:
    return [
        buffer_opt().with_updates(
            name=f"+Division {division}",
            ifmap_division=division,
            output_division=division,
        )
        for division in divisions
    ]


def buffer_plan(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    divisions: "tuple[int, ...]" = FIG20_DIVISIONS,
) -> ExperimentPlan:
    """Fig. 20's grids: Baseline + division points at batch 1 and max batch."""
    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    configs = _fig20_configs(divisions)
    single = Grid("single", (
        config_axis((baseline(),) + tuple(configs)),
        workload_axis(workloads),
        batch_axis((1,)),
        library_axis((library,)),
    ))
    max_batch = Grid("max", (
        config_axis(tuple(configs)),
        workload_axis(workloads),
        batch_axis(("derived",)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "fig20_buffers", (single, max_batch),
        description="Fig. 20: buffer integration + division sweep",
    )


def buffer_sweep(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    divisions: "tuple[int, ...]" = FIG20_DIVISIONS,
) -> List[SweepPoint]:
    """Fig. 20: buffer integration + division sweep, normalized to Baseline."""
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()

    resultset = execute(buffer_plan(workloads, library, divisions))
    base = baseline()
    base_perf = _mean(resultset, "single", base, len(workloads))
    base_area = get_runner().estimate(base, library).area_mm2

    points = [
        SweepPoint(
            "Baseline",
            base,
            {"single_batch": 1.0, "max_batch": 1.0, "area": 1.0},
        )
    ]
    for division, config in zip(divisions, _fig20_configs(divisions)):
        single = _mean(resultset, "single", config, len(workloads))
        max_batch = _mean(resultset, "max", config, len(workloads))
        area = get_runner().estimate(config, library).area_mm2
        label = "+Integration (Division 2)" if division == 2 else f"+Division {division}"
        points.append(
            SweepPoint(
                label,
                config,
                {
                    "single_batch": single / base_perf,
                    "max_batch": max_batch / base_perf,
                    "area": area / base_area,
                },
            )
        )
    return points


def balanced_buffer_bytes(
    width: int,
    library: Optional[CellLibrary] = None,
    reference: Optional[NPUConfig] = None,
) -> int:
    """Buffer capacity affordable when the PE array narrows to ``width``.

    Implements Section V-B2's area re-balancing: the JJs freed by removing
    PE columns (relative to the 256-wide buffer-optimized design) are
    reinvested into shift-register buffer bits at the library's cost per
    stored byte.  Reproduces the Fig. 21 capacities (256 -> 24 MB,
    64 -> ~46 MB, 16 -> ~51 MB).
    """
    library = library or library_for(Technology.RSFQ)
    reference = reference or buffer_opt()
    pe = ProcessingElement(
        bits=reference.data_bits,
        psum_bits=reference.psum_bits,
        registers=reference.registers_per_pe,
    )
    pe_jj = pe.jj_count(library)
    pes_saved = (reference.pe_array_width - width) * reference.pe_array_height
    if pes_saved < 0:
        raise ValueError("width exceeds the reference array width")
    # JJ cost of one buffered byte (storage cells only).
    srcell = library["SRCELL"]
    jj_per_byte = srcell.jj_count * 8
    extra_bytes = int(pes_saved * pe_jj // jj_per_byte)
    return reference.ifmap_buffer_bytes + reference.output_buffer_bytes + extra_bytes


def resource_config(
    width: int,
    buffer_bytes: Optional[int] = None,
    registers: int = 1,
    library: Optional[CellLibrary] = None,
) -> NPUConfig:
    """A Fig. 21/22 design point: ``width``-wide array, balanced buffers."""
    total = buffer_bytes if buffer_bytes is not None else balanced_buffer_bytes(width, library)
    half = total // 2
    # Keep each chunk's length constant (Section V-B2): the output buffer is
    # divided further as the array narrows, and both buffers as they grow.
    reference_half = 12 * MIB
    capacity_scale = max(1, round(half / reference_half))
    ifmap_division = 64 * capacity_scale
    output_division = max(64, 64 * 256 // width) * capacity_scale
    return buffer_opt().with_updates(
        name=f"width{width}-{total // MIB}MB-r{registers}",
        pe_array_width=width,
        ifmap_buffer_bytes=half,
        output_buffer_bytes=total - half,
        ifmap_division=ifmap_division,
        output_division=output_division,
        registers_per_pe=registers,
        weight_buffer_bytes=16 * 1024 * max(1, registers),
    )


def resource_plan(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    widths: "tuple[int, ...]" = FIG21_WIDTHS,
) -> ExperimentPlan:
    """Fig. 21's grids: Baseline plus fixed-/added-buffer width ladders."""
    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    fixed = tuple(resource_config(w, buffer_bytes=24 * MIB, library=library)
                  for w in widths)
    added = tuple(resource_config(w, library=library) for w in widths)
    grids = (
        Grid("baseline", (config_axis((baseline(),)), workload_axis(workloads),
                          batch_axis((1,)), library_axis((library,)))),
        Grid("fixed", (config_axis(fixed), workload_axis(workloads),
                       batch_axis(("derived",)), library_axis((library,)))),
        Grid("added", (config_axis(added), workload_axis(workloads),
                       batch_axis(("derived",)), library_axis((library,)))),
    )
    return ExperimentPlan(
        "fig21_resources", grids,
        description="Fig. 21: PE-array width vs reinvested buffer capacity",
    )


def resource_sweep(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    widths: "tuple[int, ...]" = FIG21_WIDTHS,
) -> List[SweepPoint]:
    """Fig. 21: PE-array width vs buffer capacity, normalized to Baseline."""
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    resultset = execute(resource_plan(workloads, library, widths))
    base_perf = _mean(resultset, "baseline", baseline(), len(workloads))

    points = []
    for width in widths:
        fixed = resource_config(width, buffer_bytes=24 * MIB, library=library)
        added = resource_config(width, library=library)
        perf_fixed = _mean(resultset, "fixed", fixed, len(workloads))
        perf_added = _mean(resultset, "added", added, len(workloads))
        intensity = sum(
            derived_batch(added, network) * _mean_output_pixels(network)
            for network in workloads
        ) / len(workloads)
        points.append(
            SweepPoint(
                f"{width}, {added.onchip_buffer_bytes // MIB} MB",
                added,
                {
                    "max_batch_fixed_buffer": perf_fixed / base_perf,
                    "max_batch_added_buffer": perf_added / base_perf,
                    "intensity": intensity,
                },
            )
        )
    return points


def register_plan(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    widths: "tuple[int, ...]" = (64, 128),
    registers: "tuple[int, ...]" = FIG22_REGISTERS,
) -> ExperimentPlan:
    """Fig. 22's grids: Baseline plus every width x register design point."""
    library = library or library_for(Technology.RSFQ)
    workloads = tuple(workloads if workloads is not None else all_workloads())
    configs = tuple(
        resource_config(width, registers=regs, library=library)
        for width in widths
        for regs in registers
    )
    grids = (
        Grid("baseline", (config_axis((baseline(),)), workload_axis(workloads),
                          batch_axis((1,)), library_axis((library,)))),
        Grid("points", (config_axis(configs), workload_axis(workloads),
                        batch_axis(("derived",)), library_axis((library,)))),
    )
    return ExperimentPlan(
        "fig22_registers", grids,
        description="Fig. 22: weight registers per PE, 64/128-wide arrays",
    )


def register_sweep(
    workloads: Optional[List[Network]] = None,
    library: Optional[CellLibrary] = None,
    widths: "tuple[int, ...]" = (64, 128),
    registers: "tuple[int, ...]" = FIG22_REGISTERS,
) -> Dict[int, List[SweepPoint]]:
    """Fig. 22: registers per PE for each array width, vs Baseline."""
    library = library or library_for(Technology.RSFQ)
    workloads = workloads if workloads is not None else all_workloads()
    resultset = execute(register_plan(workloads, library, widths, registers))
    base_perf = _mean(resultset, "baseline", baseline(), len(workloads))

    result: Dict[int, List[SweepPoint]] = {}
    for width in widths:
        rows = []
        for regs in registers:
            config = resource_config(width, registers=regs, library=library)
            perf = _mean(resultset, "points", config, len(workloads))
            rows.append(
                SweepPoint(
                    f"width {width}, {regs} regs",
                    config,
                    {"speedup": perf / base_perf},
                )
            )
        result[width] = rows
    return result


def _mean_output_pixels(network: Network) -> float:
    """Average output pixels per layer — the per-weight MAC count driving
    the Fig. 21 'computational intensity' series."""
    layers = network.layers
    return sum(layer.output_pixels for layer in layers) / len(layers)
