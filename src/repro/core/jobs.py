"""Parallel execution + content-addressed result caching for evaluation.

Every paper-scale experiment (``evaluate``, ``sweep``, ``compare``,
``search``, ``ablate``) boils down to a fan-out of independent, fully
deterministic ``(config, network, batch, library)`` simulations.  This
module turns that fan-out into an explicit job layer:

* :class:`SimTask` — one design-point simulation, SFQ or CMOS-baseline;
* :class:`ResultCache` — a content-addressed on-disk store keyed by a
  stable hash of the config, the workload's full layer content, the
  batch, the cell-library fingerprint, and a cache-schema version, so a
  warm re-run skips simulation entirely and any change to any key
  component is automatically a miss.  Unreadable or wrong-schema
  entries are quarantined into ``<root>/quarantine/`` on first
  encounter instead of being silently re-missed forever;
* :class:`JobRunner` — executes a task list serially (the default, for
  determinism-by-default) or over a ``ProcessPoolExecutor`` when
  ``jobs > 1``, consulting the cache either way — and survives the
  failures a long sweep actually hits: per-task wall-clock timeouts,
  bounded retry with backoff + jitter for transient worker failures
  (:class:`repro.core.resilience.RetryPolicy`), ``BrokenProcessPool``
  recovery that re-executes stranded tasks, graceful degradation to
  serial execution when the pool dies twice, and a
  :class:`repro.core.resilience.SweepCheckpoint` journal so a killed
  sweep resumes instead of restarting.

Results are *always* materialized from the serialized payload — whether
they came from the simulator, a worker process, or the cache — so serial,
parallel, warm-cache, and failure-recovered runs are bitwise-identical
by construction (proven by ``tests/test_resilience.py`` under injected
crashes, hangs, SIGKILLs, and corrupted cache entries).

The runner is ambient: library code calls :func:`get_runner` (a shared
serial, cache-less default) and the CLI / API install a configured one
with :func:`use_runner` or :func:`session`::

    with session(jobs=4, cache_dir="~/.cache/supernpu") as runner:
        suite = evaluate_suite()          # fans out through the runner

Cache and resilience counters are exported through the ``repro.obs``
metrics registry (``jobs.cache.hits``, ``jobs.cache.misses``,
``jobs.sim.executed``, ``jobs.retries``, ``jobs.timeouts``,
``jobs.degraded``, ``jobs.resumed``, ``jobs.cache.quarantined``, ...).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.baselines.scalesim import CMOSNPUConfig, simulate_cmos
from repro.components.base import (
    DEFAULT_LINK_TECHNOLOGY,
    DEFAULT_MEMORY_TECHNOLOGY,
)
from repro.core.chaos import ChaosInjector
from repro.core.resilience import RetryPolicy, SweepCheckpoint
from repro.obs.progress import ProgressReporter
from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import CacheError, ConfigError, ReproError, WorkerError
from repro.estimator.arch_level import NPUEstimate, estimate_npu
from repro.estimator.uarch_level import UnitEstimate
from repro.simulator.engine import simulate
from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network

#: Bump whenever the simulator, the estimator, or the payload layout
#: changes meaning: old cache entries become unreachable (their keys no
#: longer match), never silently wrong.
CACHE_SCHEMA_VERSION = 1

#: Subdirectory of a cache root where damaged entries are parked.
QUARANTINE_DIR = "quarantine"


# -- stable content hashing ------------------------------------------------

def _canonical_hash(document: Any) -> str:
    """sha256 (hex) of the canonical sorted-key JSON of ``document``."""
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: Technology fields whose *default* values are omitted from config
#: signatures: a default-technology config must hash (and serialize)
#: exactly as it did before the fields existed, so every pre-registry
#: cache key, payload, and plan hash stays bitwise-identical, while any
#: non-default technology automatically changes every key.
_DEFAULT_TECHNOLOGY_FIELDS = {
    "memory_technology": DEFAULT_MEMORY_TECHNOLOGY,
    "link_technology": DEFAULT_LINK_TECHNOLOGY,
}


def config_signature(config: Union[NPUConfig, CMOSNPUConfig]) -> Dict[str, Any]:
    """The cache-relevant content of a design config (JSON-able)."""
    document = dataclasses.asdict(config)
    for field_name, default in _DEFAULT_TECHNOLOGY_FIELDS.items():
        if document.get(field_name) == default:
            del document[field_name]
    return document


def workload_signature(network: Network) -> Dict[str, Any]:
    """The workload's full content (name + every layer field).

    Editing any layer of a network — not just renaming it — must change
    the cache key, so the signature covers the complete layer tuples.
    """
    return {
        "name": network.name,
        "layers": [dataclasses.asdict(layer) for layer in network.layers],
    }


def library_fingerprint(library: CellLibrary) -> Dict[str, Any]:
    """Cache-relevant content of a cell library (technology, process, cells)."""
    return {
        "technology": library.technology.value,
        "process": dataclasses.asdict(library.process),
        "cells": {name: dataclasses.asdict(library[name]) for name in library.names},
    }


# -- tasks -----------------------------------------------------------------

@dataclass(frozen=True)
class SimTask:
    """One design-point simulation: SFQ (``NPUConfig``) or CMOS baseline.

    ``library`` selects the SFQ cell library (default: calibrated RSFQ)
    and is ignored for CMOS-baseline configs, whose cycle model has no
    cell library.
    """

    config: Union[NPUConfig, CMOSNPUConfig]
    network: Network
    batch: int
    library: Optional[CellLibrary] = None

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ConfigError("batch must be positive",
                              code="config.invalid_batch", batch=self.batch)

    @property
    def is_cmos(self) -> bool:
        return not isinstance(self.config, NPUConfig)

    def resolved_library(self) -> Optional[CellLibrary]:
        if self.is_cmos:
            return None
        return self.library or library_for(Technology.RSFQ)

    def key(self) -> str:
        """Content-addressed cache key of this task."""
        library = self.resolved_library()
        return _canonical_hash({
            "schema": CACHE_SCHEMA_VERSION,
            "kind": "simulate_cmos" if self.is_cmos else "simulate",
            "config": config_signature(self.config),
            "workload": workload_signature(self.network),
            "batch": self.batch,
            "library": None if library is None else library_fingerprint(library),
        })


def estimate_key(config: NPUConfig, library: CellLibrary) -> str:
    """Cache key of one architecture-level estimation."""
    return _canonical_hash({
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "estimate",
        "config": config_signature(config),
        "library": library_fingerprint(library),
    })


# -- payload codecs --------------------------------------------------------
#
# Cached payloads are plain JSON dicts; these codecs round-trip the result
# records exactly (Python's json preserves ints and floats bit-exactly),
# which is what makes warm-cache runs bitwise-identical to cold ones.

def result_to_dict(run: SimulationResult) -> Dict[str, Any]:
    return {
        "design": run.design,
        "network": run.network,
        "batch": run.batch,
        "frequency_ghz": run.frequency_ghz,
        "layers": [dataclasses.asdict(layer) for layer in run.layers],
        "activity": dict(run.activity.effective_cycles),
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        design=data["design"],
        network=data["network"],
        batch=data["batch"],
        frequency_ghz=data["frequency_ghz"],
        layers=[LayerResult(**layer) for layer in data["layers"]],
        activity=ActivityTrace(effective_cycles=dict(data["activity"])),
    )


def estimate_to_dict(estimate: NPUEstimate) -> Dict[str, Any]:
    # config_signature keeps default-technology payloads byte-identical
    # to pre-registry ones; estimate_from_dict refills omitted fields
    # from the NPUConfig defaults.
    return {
        "config": config_signature(estimate.config),
        "technology": estimate.technology,
        "frequency_ghz": estimate.frequency_ghz,
        "cycle_time_ps": estimate.cycle_time_ps,
        "critical_path": estimate.critical_path,
        "units": {name: dataclasses.asdict(unit) for name, unit in estimate.units.items()},
        "wiring_area_mm2": estimate.wiring_area_mm2,
        "wiring_static_power_w": estimate.wiring_static_power_w,
    }


def estimate_from_dict(data: Dict[str, Any]) -> NPUEstimate:
    # Units materialize in sorted-name order no matter how the payload
    # was ordered on disk: derived sums (e.g. ``static_power_w``) fold
    # floats in iteration order, so a cache hit (JSON written with
    # sort_keys) and a fresh estimate must agree on that order to stay
    # bitwise-identical.
    return NPUEstimate(
        config=NPUConfig(**data["config"]),
        technology=data["technology"],
        frequency_ghz=data["frequency_ghz"],
        cycle_time_ps=data["cycle_time_ps"],
        critical_path=data["critical_path"],
        units={name: UnitEstimate(**data["units"][name])
               for name in sorted(data["units"])},
        wiring_area_mm2=data["wiring_area_mm2"],
        wiring_static_power_w=data["wiring_static_power_w"],
    )


# -- the on-disk cache -----------------------------------------------------

@dataclass(frozen=True)
class CacheStats:
    """Size of an on-disk result cache."""

    entries: int
    bytes: int
    by_kind: Dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    tmp_swept: int = 0


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (EPERM means alive-but-foreign)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


class ResultCache:
    """Content-addressed store of simulation / estimation payloads.

    One JSON file per entry under ``root/<key[:2]>/<key>.json``; writes
    are atomic (tmp file + ``os.replace``) so concurrent runners sharing
    a cache directory never observe torn entries.  Entries that cannot
    be read back — torn writes, truncated JSON, foreign schema versions —
    are moved into ``root/quarantine/`` the first time they are seen, so
    a damaged entry costs exactly one miss, not one per run forever.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(
                f"cannot create cache directory {self.root}: {error}",
                code="cache.unwritable", hint="pick a writable --cache-dir",
                path=str(self.root),
            ) from error
        # A writer SIGKILLed between tmp-write and os.replace leaks its
        # tmp file; a past process cannot clean up after itself, so every
        # cache open sweeps on behalf of the dead.
        try:
            self.sweep_orphan_tmp()
        except OSError:
            pass

    def path_for(self, key: str) -> Path:
        """On-disk location of one entry."""
        return self.root / key[:2] / f"{key}.json"

    # Backwards-compatible alias (pre-quarantine callers used `_path`).
    _path = path_for

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or None on miss (quarantining bad entries)."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self.quarantine(key, reason="unreadable")
            return None
        try:
            document = json.loads(text)
        except ValueError:
            self.quarantine(key, reason="corrupt")
            return None
        if not isinstance(document, dict) or document.get("schema") != CACHE_SCHEMA_VERSION:
            self.quarantine(key, reason="wrong-schema")
            return None
        payload = document.get("payload")
        if not isinstance(payload, dict):
            self.quarantine(key, reason="wrong-schema")
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any], kind: str = "simulate") -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "created_unix": time.time(),
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError as error:
            # Never litter the cache dir with orphaned tmp files.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CacheError(
                f"failed to write cache entry {key[:12]}…: {error}",
                code="cache.write_failed",
                hint="check free space and permissions on the cache directory",
                path=str(path),
            ) from error

    def quarantine(self, key: str, reason: str = "corrupt") -> Optional[Path]:
        """Park a damaged entry under ``quarantine/``; returns its new path."""
        path = self.path_for(key)
        if not path.exists():
            return None
        pen = self.root / QUARANTINE_DIR
        destination = pen / f"{reason}-{path.name}"
        try:
            pen.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            try:  # quarantine unavailable: deleting still stops the re-miss loop
                path.unlink()
            except OSError:
                return None
            return None
        obs.counter("jobs.cache.quarantined").inc()
        return destination

    def _entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if len(path.parent.name) == 2:  # hash buckets only, not quarantine/
                yield path

    def _quarantined(self) -> List[Path]:
        pen = self.root / QUARANTINE_DIR
        if not pen.is_dir():
            return []
        return sorted(p for p in pen.iterdir() if p.is_file())

    def sweep_orphan_tmp(self, max_age_s: float = 3600.0) -> int:
        """Remove tmp files orphaned by dead writers; returns how many.

        Writes go through ``<entry>.tmp.<pid>`` + ``os.replace``; a writer
        SIGKILLed in between leaves the tmp file forever (its own
        unlink-on-error never runs).  A tmp file is an orphan when its
        writer pid no longer exists, or — covering recycled pids and
        mangled names — when it is older than ``max_age_s``.  Fresh tmp
        files of live pids are in-flight writes and are left alone.
        """
        removed = 0
        now = time.time()
        for path in list(self.root.glob("*/*.tmp.*")):
            if len(path.parent.name) != 2:  # hash buckets only
                continue
            try:
                pid = int(path.name.rsplit(".", 1)[-1])
            except ValueError:
                pid = -1
            try:
                age_s = now - path.stat().st_mtime
            except OSError:
                continue  # already gone (another sweeper won the race)
            if (pid > 0 and _pid_alive(pid)) and age_s <= max_age_s:
                continue
            if pid <= 0 and age_s <= max_age_s:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            obs.counter("jobs.cache.tmp_swept").inc(removed)
        return removed

    def stats(self) -> CacheStats:
        swept = self.sweep_orphan_tmp()
        entries = 0
        total_bytes = 0
        by_kind: Dict[str, int] = {}
        for path in self._entries():
            try:
                raw = path.read_bytes()  # one read serves both size and kind
            except OSError:
                continue
            entries += 1
            total_bytes += len(raw)
            try:
                kind = json.loads(raw).get("kind", "?")
            except ValueError:
                kind = "corrupt"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return CacheStats(entries=entries, bytes=total_bytes, by_kind=by_kind,
                          quarantined=len(self._quarantined()), tmp_swept=swept)

    def clear(self) -> int:
        """Delete every entry (quarantined included); returns how many."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        for path in self._quarantined():
            path.unlink()
            removed += 1
        for bucket in sorted(self.root.glob("*")):
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        return removed


# -- task execution (top-level so it pickles into worker processes) --------

#: Per-worker-process memo of architecture estimates, so a worker handed
#: many tasks for the same design computes its clock model once.
_WORKER_ESTIMATES: Dict[str, NPUEstimate] = {}


def _estimate_for(config: NPUConfig, library: CellLibrary) -> NPUEstimate:
    key = estimate_key(config, library)
    cached = _WORKER_ESTIMATES.get(key)
    if cached is None:
        cached = _WORKER_ESTIMATES[key] = estimate_npu(config, library)
    return cached


def _execute(task: SimTask) -> Tuple[Dict[str, Any], float]:
    """Run one task; returns (serialized result payload, wall seconds)."""
    start = time.perf_counter()
    if task.is_cmos:
        run = simulate_cmos(task.config, task.network, batch=task.batch)
    else:
        library = task.resolved_library()
        run = simulate(
            task.config, task.network, batch=task.batch,
            estimate=_estimate_for(task.config, library),
        )
    return result_to_dict(run), time.perf_counter() - start


@dataclass(frozen=True)
class WorkerObsSpec:
    """What observability each pool worker should collect.

    Built by the parent from its own live obs state (is tracing on? is a
    hotspot profiler running?) and pickled along with every submitted
    task.  Workers run a private obs session per task and leave a JSON
    sidecar in ``sidecar_dir`` keyed by the task's content hash; the
    parent merges all sidecars after the parallel phase and deletes the
    directory.  Everything is best-effort: a worker that cannot write
    its sidecar still returns its result normally.
    """

    sidecar_dir: str
    metrics: bool = False
    tracing: bool = False
    hotspot_mode: Optional[str] = None
    hotspot_hz: float = 97.0

    @property
    def collects_anything(self) -> bool:
        return self.metrics or self.tracing or self.hotspot_mode is not None


def _write_obs_sidecar(spec: WorkerObsSpec, key: str,
                       counters: Dict[str, Any],
                       spans: List[Dict[str, Any]],
                       profile: Optional[Any]) -> None:
    """Atomically write one worker's per-task obs sidecar (best-effort)."""
    try:
        document = {
            "kind": "worker-obs",
            "schema": 1,
            "key": key,
            "pid": os.getpid(),
            "counters": counters,
            "spans": spans,
            "hotspot": None if profile is None else profile.to_dict(),
        }
        path = Path(spec.sidecar_dir) / f"{key}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        os.replace(tmp, path)
    except Exception:
        pass  # observability must never fail the task


def _execute_observed(task: SimTask, chaos: Optional[ChaosInjector],
                      spec: WorkerObsSpec) -> Tuple[Dict[str, Any], float]:
    """Run one task under a private worker obs session + sidecar.

    The session is reset before and after, so the sidecar holds exactly
    this task's spans and counters even when the worker process is
    reused for many tasks.  The sidecar is written only on success —
    a retried task contributes once, under its stable content key.
    """
    from repro.obs.hotspot import HotspotProfiler
    from repro.obs.tracing import serialize_spans

    obs.disable()
    obs.reset()
    obs.enable(metrics=spec.metrics, tracing=spec.tracing)
    profiler = None
    if spec.hotspot_mode is not None:
        try:
            profiler = HotspotProfiler(mode=spec.hotspot_mode,
                                       sample_hz=spec.hotspot_hz).start()
        except Exception:
            profiler = None
    try:
        if chaos is not None:
            chaos.fire(task.key())
        payload, seconds = _execute(task)
        profile = profiler.stop() if profiler is not None else None
        snapshot = obs.metrics().snapshot() if spec.metrics else {}
        spans = serialize_spans(obs.tracer()) if spec.tracing else []
    finally:
        if profiler is not None:
            profiler.stop()
        obs.disable()
        obs.reset()
    _write_obs_sidecar(spec, task.key(), snapshot.get("counters", {}), spans, profile)
    return payload, seconds


def _execute_task(task: SimTask,
                  chaos: Optional[ChaosInjector] = None,
                  obs_spec: Optional[WorkerObsSpec] = None,
                  ) -> Tuple[Dict[str, Any], float]:
    """The unit submitted to workers: optional chaos, then the simulation."""
    if obs_spec is not None and obs_spec.collects_anything:
        return _execute_observed(task, chaos, obs_spec)
    if chaos is not None:
        chaos.fire(task.key())
    return _execute(task)


# -- the runner ------------------------------------------------------------

@dataclass
class RunnerStats:
    """Cumulative accounting of one runner's lifetime."""

    tasks: int = 0
    hits: int = 0
    misses: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    degraded: int = 0
    resumed: int = 0
    task_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.tasks if self.tasks else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Sum of per-task sim time over elapsed wall time (1.0 serial)."""
        if self.elapsed_seconds <= 0:
            return 1.0
        return self.task_seconds / self.elapsed_seconds

    def describe(self) -> str:
        line = (
            f"{self.tasks} tasks: {self.hits} cache hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate), {self.executed} simulated"
        )
        if self.retries:
            line += f", {self.retries} retries"
        if self.timeouts:
            line += f", {self.timeouts} timeouts"
        if self.resumed:
            line += f", {self.resumed} resumed from checkpoint"
        if self.degraded:
            line += " [degraded to serial]"
        return line


class JobRunner:
    """Executes :class:`SimTask` lists with parallelism, caching, recovery.

    ``jobs=1`` (the default) runs everything in-process; ``jobs > 1``
    fans cache misses out over a ``ProcessPoolExecutor``.  Task order is
    preserved, and results are materialized from serialized payloads in
    every mode, so the output is identical regardless of ``jobs``, cache
    temperature, or how many failures were recovered along the way.

    Fault tolerance:

    * transient worker failures are retried per ``retry`` (exponential
      backoff + jitter); taxonomy errors (:class:`repro.errors.ReproError`)
      are deterministic and never retried;
    * ``timeout_s`` bounds each task's wall clock (parallel mode): a hung
      task's pool is abandoned (its workers killed), the stranded tasks
      are re-executed, and the hang counts against the task's retry budget;
    * a broken pool (e.g. a SIGKILLed worker) is rebuilt once; if the
      pool dies a second time the runner degrades to serial execution and
      finishes the sweep in-process (``jobs.degraded``);
    * completed tasks are written to the cache and the ``checkpoint``
      journal *immediately*, so a killed run resumes from where it died
      (``jobs.resumed`` counts journaled tasks served from cache).
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 retry: Optional[RetryPolicy] = None,
                 timeout_s: Optional[float] = None,
                 checkpoint: Optional[SweepCheckpoint] = None,
                 chaos: Optional[ChaosInjector] = None,
                 progress: Optional[ProgressReporter] = None) -> None:
        if jobs < 1:
            raise ConfigError("jobs must be >= 1", code="config.invalid_jobs",
                              jobs=jobs)
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError("timeout_s must be positive",
                              code="config.invalid_timeout", timeout_s=timeout_s)
        self.jobs = jobs
        self.cache = cache
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_s = timeout_s
        self.checkpoint = checkpoint
        self.chaos = chaos
        self.progress = progress
        self.stats = RunnerStats()
        self._estimates: Dict[str, NPUEstimate] = {}

    def _emit(self, kind: str, key: Optional[str] = None, attempt: int = 0) -> None:
        """Forward one lifecycle event to the progress reporter, if any.

        Results never depend on this: the reporter writes only to its
        own stream (stderr) and to the obs registries, so a sweep is
        bitwise-identical with progress on or off.
        """
        if self.progress is not None:
            self.progress.emit(kind, key=key, attempt=attempt)

    # -- simulations --------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[SimulationResult]:
        """Run every task (cache-first), preserving task order."""
        started = time.perf_counter()
        if self.progress is not None:
            self.progress.begin(len(tasks))
        keys = [task.key() for task in tasks]
        payloads: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        pending: List[int] = []
        resumed = 0
        try:
            for index, key in enumerate(keys):
                payload = self._cached_payload(key)
                if payload is None:
                    pending.append(index)
                    self._emit("queued", key)
                    continue
                payloads[index] = payload
                self._emit("cached", key)
                if self.checkpoint is not None and key in self.checkpoint:
                    resumed += 1
            hits = len(tasks) - len(pending)

            task_seconds = 0.0
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    task_seconds = self._run_parallel(tasks, keys, payloads, pending)
                else:
                    task_seconds = self._run_serial(tasks, keys, payloads, pending)
        finally:
            # Close the live line even when the sweep raises, so the
            # error message starts on a fresh line.
            if self.progress is not None:
                self.progress.done()

        elapsed = time.perf_counter() - started
        self._account(len(tasks), hits, len(pending), task_seconds, elapsed, resumed)
        return [result_from_dict(payload) for payload in payloads]

    def run_one(self, task: SimTask) -> SimulationResult:
        return self.run([task])[0]

    # -- cache interaction --------------------------------------------
    def _cached_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """A materializable cached payload, or None (quarantining poison)."""
        if self.cache is None:
            return None
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            result_from_dict(payload)
        except Exception:
            # Well-formed JSON, wrong shape: poison, not a result.
            self.cache.quarantine(key, reason="poisoned-payload")
            return None
        return payload

    def _finish_task(self, index: int, key: str, task: SimTask,
                     payload: Dict[str, Any],
                     payloads: List[Optional[Dict[str, Any]]]) -> None:
        """Record one completed task: payload slot, cache, journal."""
        payloads[index] = payload
        if self.cache is not None:
            kind = "simulate_cmos" if task.is_cmos else "simulate"
            self.cache.put(key, payload, kind=kind)
        if self.checkpoint is not None:
            self.checkpoint.mark(key)

    # -- serial execution (also the degraded path) --------------------
    def _run_serial(self, tasks: Sequence[SimTask], keys: List[str],
                    payloads: List[Optional[Dict[str, Any]]],
                    pending: Sequence[int]) -> float:
        total = 0.0
        for index in pending:
            self._emit("started", keys[index])
            payload, seconds = self._execute_with_retry(tasks[index], keys[index])
            total += seconds
            self._finish_task(index, keys[index], tasks[index], payload, payloads)
            self._emit("finished", keys[index])
        return total

    def _execute_with_retry(self, task: SimTask, key: str,
                            failures: int = 0) -> Tuple[Dict[str, Any], float]:
        """In-process execution under the retry policy."""
        while True:
            try:
                return _execute_task(task, self.chaos)
            except ReproError:
                raise  # deterministic: retrying cannot change the outcome
            except Exception as error:
                failures += 1
                if failures > self.retry.max_retries:
                    raise WorkerError(
                        f"task {key[:12]}… failed after {failures} attempts: {error}",
                        code="worker.retries_exhausted",
                        hint="transient failures exhausted the retry budget; "
                             "see --retries",
                        task=key, attempts=failures,
                    ) from error
                self._note_retry(key, error)
                time.sleep(self.retry.delay_s(failures))

    # -- parallel execution -------------------------------------------
    def _run_parallel(self, tasks: Sequence[SimTask], keys: List[str],
                      payloads: List[Optional[Dict[str, Any]]],
                      pending: Sequence[int]) -> float:
        total_seconds = 0.0
        workers = min(self.jobs, len(pending))
        queue: Deque[Tuple[int, int]] = deque((index, 0) for index in pending)
        remaining = len(pending)
        obs_spec = self._worker_obs_spec()
        pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(max_workers=workers)
        pool_deaths = 0
        inflight: Dict[Future, Tuple[int, int, Optional[float]]] = {}
        try:
            while remaining:
                if pool is None:
                    # Degraded: finish the sweep in-process, deterministically.
                    while queue:
                        index, failures = queue.popleft()
                        self._emit("started", keys[index], attempt=failures)
                        payload, seconds = self._execute_with_retry(
                            tasks[index], keys[index], failures=failures)
                        total_seconds += seconds
                        self._finish_task(index, keys[index], tasks[index],
                                          payload, payloads)
                        self._emit("finished", keys[index])
                        remaining -= 1
                    break

                while queue and len(inflight) < workers:
                    index, failures = queue.popleft()
                    future = pool.submit(_execute_task, tasks[index], self.chaos,
                                         obs_spec)
                    deadline = (time.monotonic() + self.timeout_s
                                if self.timeout_s is not None else None)
                    inflight[future] = (index, failures, deadline)
                    self._emit("started", keys[index], attempt=failures)

                done, _ = wait(set(inflight), timeout=self._wait_timeout(inflight),
                               return_when=FIRST_COMPLETED)
                broken = False
                fatal: Optional[WorkerError] = None
                for future in done:
                    index, failures, _ = inflight.pop(future)
                    try:
                        payload, seconds = future.result()
                    except BrokenExecutor:
                        # The pool died under this task (SIGKILLed worker,
                        # OOM-killed child, ...).  The task is stranded, not
                        # guilty-by-proof: re-queue without a retry penalty;
                        # the pool-death counter bounds the recovery loop.
                        queue.appendleft((index, failures))
                        broken = True
                    except ReproError:
                        raise
                    except Exception as error:
                        failures += 1
                        if failures > self.retry.max_retries:
                            raise WorkerError(
                                f"task {keys[index][:12]}… failed after "
                                f"{failures} attempts: {error}",
                                code="worker.retries_exhausted",
                                hint="transient failures exhausted the retry "
                                     "budget; see --retries",
                                task=keys[index], attempts=failures,
                            ) from error
                        self._note_retry(keys[index], error)
                        time.sleep(self.retry.delay_s(failures))
                        queue.append((index, failures))
                    else:
                        total_seconds += seconds
                        self._finish_task(index, keys[index], tasks[index],
                                          payload, payloads)
                        self._emit("finished", keys[index])
                        remaining -= 1

                if not broken and self.timeout_s is not None:
                    now = time.monotonic()
                    for future, (index, failures, deadline) in list(inflight.items()):
                        if deadline is None or now < deadline or future.done():
                            continue
                        # A hung task: the pool must be abandoned (a running
                        # future cannot be cancelled), and the hang counts
                        # against this task's retry budget.
                        inflight.pop(future)
                        failures += 1
                        self.stats.timeouts += 1
                        obs.counter("jobs.timeouts").inc()
                        self._emit("timeout", keys[index], attempt=failures)
                        if failures > self.retry.max_retries:
                            fatal = WorkerError(
                                f"task {keys[index][:12]}… exceeded the "
                                f"{self.timeout_s:g}s timeout {failures} times",
                                code="worker.timeout",
                                hint="raise --task-timeout or investigate the hang",
                                task=keys[index], attempts=failures,
                            )
                            break
                        queue.append((index, failures))
                        broken = True

                if broken or fatal is not None:
                    for future, (index, failures, _) in inflight.items():
                        queue.append((index, failures))  # stranded, not failed
                    inflight.clear()
                    self._abandon_pool(pool)
                    pool = None
                    if fatal is not None:
                        raise fatal
                    pool_deaths += 1
                    self.stats.pool_restarts += 1
                    obs.counter("jobs.pool_restarts").inc()
                    self._emit("pool_restart")
                    if pool_deaths >= 2:
                        # The pool is not trustworthy; finish serially.
                        self.stats.degraded += 1
                        obs.counter("jobs.degraded").inc()
                        self._emit("degraded")
                    else:
                        pool = ProcessPoolExecutor(
                            max_workers=min(workers, max(1, remaining)))
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            self._merge_worker_obs(obs_spec)
        return total_seconds

    # -- worker observability ------------------------------------------
    @staticmethod
    def _worker_obs_spec() -> Optional["WorkerObsSpec"]:
        """A spec mirroring the parent's live obs state, or None when off.

        None (the common case) keeps the worker path allocation-free;
        otherwise a fresh sidecar directory is created for this parallel
        phase and torn down by :meth:`_merge_worker_obs`.
        """
        from repro.obs import hotspot as hotspot_mod

        profiler = hotspot_mod.active_profiler()
        want_metrics = obs.metrics().enabled
        want_tracing = obs.tracer().enabled
        if not (want_metrics or want_tracing or profiler is not None):
            return None
        sidecar_dir = tempfile.mkdtemp(prefix="supernpu-worker-obs-")
        return WorkerObsSpec(
            sidecar_dir=sidecar_dir,
            metrics=want_metrics,
            tracing=want_tracing,
            hotspot_mode=None if profiler is None else profiler.mode,
            hotspot_hz=profiler.sample_hz if profiler is not None else 97.0,
        )

    def _merge_worker_obs(self, spec: Optional["WorkerObsSpec"]) -> None:
        """Fold every worker sidecar into the parent obs state.

        Counters come back prefixed ``jobs.worker.`` (so parent-side and
        worker-side accounting stay distinguishable), spans land in a
        per-PID lane of the parent's Chrome trace, and hotspot samples
        merge into the active profiler.  Unreadable sidecars are skipped;
        the sidecar directory is always removed.
        """
        if spec is None:
            return
        from repro.obs import hotspot as hotspot_mod

        sidecar_dir = Path(spec.sidecar_dir)
        try:
            merged = 0
            pids = set()
            for path in sorted(sidecar_dir.glob("*.json")):
                try:
                    document = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    continue
                if not isinstance(document, dict) or document.get("kind") != "worker-obs":
                    continue
                pid = int(document.get("pid", 0))
                pids.add(pid)
                merged += 1
                for name, value in (document.get("counters") or {}).items():
                    obs.counter(f"jobs.worker.{name}").add(value)
                spans = document.get("spans") or []
                if spans:
                    obs.tracer().absorb_serialized(spans, pid=pid)
                hotspot_doc = document.get("hotspot")
                if hotspot_doc:
                    hotspot_mod.absorb(hotspot_doc)
            if merged:
                obs.counter("jobs.worker.sidecars").add(merged)
                obs.gauge("jobs.worker.pids").set(len(pids))
        finally:
            shutil.rmtree(sidecar_dir, ignore_errors=True)

    def _wait_timeout(self, inflight: Dict[Future, Tuple[int, int, Optional[float]]]
                      ) -> Optional[float]:
        """How long ``wait`` may block before the next deadline check."""
        deadlines = [deadline for (_, _, deadline) in inflight.values()
                     if deadline is not None]
        if not deadlines:
            return None
        return max(0.01, min(deadlines) - time.monotonic())

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*, hung or dead workers included."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _note_retry(self, key: str, error: Exception) -> None:
        self.stats.retries += 1
        obs.counter("jobs.retries").inc()
        self._emit("retried", key)

    # -- estimates ----------------------------------------------------
    def estimate(self, config: NPUConfig, library: Optional[CellLibrary] = None) -> NPUEstimate:
        """Architecture-level estimate, memoized in-process and on disk."""
        library = library or library_for(Technology.RSFQ)
        key = estimate_key(config, library)
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        payload = self.cache.get(key) if self.cache is not None else None
        if payload is not None:
            obs.counter("jobs.estimate_cache.hits").inc()
        else:
            obs.counter("jobs.estimate_cache.misses").inc()
            payload = estimate_to_dict(estimate_npu(config, library))
            if self.cache is not None:
                self.cache.put(key, payload, kind="estimate")
        estimate = estimate_from_dict(payload)
        self._estimates[key] = estimate
        return estimate

    # -- accounting ---------------------------------------------------
    def _account(self, tasks: int, hits: int, executed: int,
                 task_seconds: float, elapsed: float, resumed: int = 0) -> None:
        self.stats.tasks += tasks
        self.stats.hits += hits
        self.stats.misses += executed
        self.stats.executed += executed
        self.stats.resumed += resumed
        self.stats.task_seconds += task_seconds
        self.stats.elapsed_seconds += elapsed
        obs.counter("jobs.tasks").add(tasks)
        obs.counter("jobs.cache.hits").add(hits)
        obs.counter("jobs.cache.misses").add(executed)
        obs.counter("jobs.sim.executed").add(executed)
        if resumed:
            obs.counter("jobs.resumed").add(resumed)
        obs.gauge("jobs.workers").set(self.jobs)
        obs.histogram("jobs.batch_seconds").observe(elapsed)
        if executed and elapsed > 0:
            obs.gauge("jobs.parallel.speedup").set(task_seconds / elapsed)


# -- the ambient runner ----------------------------------------------------

_DEFAULT_RUNNER = JobRunner()
_ACTIVE: List[JobRunner] = []


def get_runner() -> JobRunner:
    """The innermost installed runner, or the shared serial default."""
    return _ACTIVE[-1] if _ACTIVE else _DEFAULT_RUNNER


@contextmanager
def use_runner(runner: JobRunner) -> Iterator[JobRunner]:
    """Install ``runner`` as the ambient runner for the enclosed block."""
    _ACTIVE.append(runner)
    try:
        yield runner
    finally:
        _ACTIVE.pop()


@contextmanager
def session(jobs: int = 1, cache_dir: Optional[Union[str, Path]] = None,
            cache: Optional[ResultCache] = None,
            retry: Optional[RetryPolicy] = None,
            timeout_s: Optional[float] = None,
            checkpoint: Optional[SweepCheckpoint] = None,
            checkpoint_path: Optional[Union[str, Path]] = None,
            chaos: Optional[ChaosInjector] = None,
            progress: Optional[ProgressReporter] = None) -> Iterator[JobRunner]:
    """Build a runner from knobs and install it (the CLI's entry point).

    A checkpoint journal given here is cleared when the block exits
    cleanly (the sweep finished; nothing to resume) and kept when the
    block raises or the process dies (the next session resumes from it).
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    if checkpoint is None and checkpoint_path is not None:
        checkpoint = SweepCheckpoint(checkpoint_path)
    runner = JobRunner(jobs=jobs, cache=cache, retry=retry, timeout_s=timeout_s,
                       checkpoint=checkpoint, chaos=chaos, progress=progress)
    with use_runner(runner):
        yield runner
    if checkpoint is not None:
        checkpoint.clear()
