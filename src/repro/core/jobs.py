"""Parallel execution + content-addressed result caching for evaluation.

Every paper-scale experiment (``evaluate``, ``sweep``, ``compare``,
``search``, ``ablate``) boils down to a fan-out of independent, fully
deterministic ``(config, network, batch, library)`` simulations.  This
module turns that fan-out into an explicit job layer:

* :class:`SimTask` — one design-point simulation, SFQ or CMOS-baseline;
* :class:`ResultCache` — a content-addressed on-disk store keyed by a
  stable hash of the config, the workload's full layer content, the
  batch, the cell-library fingerprint, and a cache-schema version, so a
  warm re-run skips simulation entirely and any change to any key
  component is automatically a miss;
* :class:`JobRunner` — executes a task list serially (the default, for
  determinism-by-default) or over a ``ProcessPoolExecutor`` when
  ``jobs > 1``, consulting the cache either way.

Results are *always* materialized from the serialized payload — whether
they came from the simulator, a worker process, or the cache — so serial,
parallel, and warm-cache runs are bitwise-identical by construction.

The runner is ambient: library code calls :func:`get_runner` (a shared
serial, cache-less default) and the CLI / API install a configured one
with :func:`use_runner` or :func:`session`::

    with session(jobs=4, cache_dir="~/.cache/supernpu") as runner:
        suite = evaluate_suite()          # fans out through the runner

Cache hit/miss and parallel-speedup counters are exported through the
``repro.obs`` metrics registry (``jobs.cache.hits``, ``jobs.cache.misses``,
``jobs.sim.executed``, ``jobs.parallel.speedup``, ...).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.baselines.scalesim import CMOSNPUConfig, simulate_cmos
from repro.device.cells import CellLibrary, Technology, library_for
from repro.estimator.arch_level import NPUEstimate, estimate_npu
from repro.estimator.uarch_level import UnitEstimate
from repro.simulator.engine import simulate
from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network

#: Bump whenever the simulator, the estimator, or the payload layout
#: changes meaning: old cache entries become unreachable (their keys no
#: longer match), never silently wrong.
CACHE_SCHEMA_VERSION = 1


# -- stable content hashing ------------------------------------------------

def _canonical_hash(document: Any) -> str:
    """sha256 (hex) of the canonical sorted-key JSON of ``document``."""
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def workload_signature(network: Network) -> Dict[str, Any]:
    """The workload's full content (name + every layer field).

    Editing any layer of a network — not just renaming it — must change
    the cache key, so the signature covers the complete layer tuples.
    """
    return {
        "name": network.name,
        "layers": [dataclasses.asdict(layer) for layer in network.layers],
    }


def library_fingerprint(library: CellLibrary) -> Dict[str, Any]:
    """Cache-relevant content of a cell library (technology, process, cells)."""
    return {
        "technology": library.technology.value,
        "process": dataclasses.asdict(library.process),
        "cells": {name: dataclasses.asdict(library[name]) for name in library.names},
    }


# -- tasks -----------------------------------------------------------------

@dataclass(frozen=True)
class SimTask:
    """One design-point simulation: SFQ (``NPUConfig``) or CMOS baseline.

    ``library`` selects the SFQ cell library (default: calibrated RSFQ)
    and is ignored for CMOS-baseline configs, whose cycle model has no
    cell library.
    """

    config: Union[NPUConfig, CMOSNPUConfig]
    network: Network
    batch: int
    library: Optional[CellLibrary] = None

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be positive")

    @property
    def is_cmos(self) -> bool:
        return not isinstance(self.config, NPUConfig)

    def resolved_library(self) -> Optional[CellLibrary]:
        if self.is_cmos:
            return None
        return self.library or library_for(Technology.RSFQ)

    def key(self) -> str:
        """Content-addressed cache key of this task."""
        library = self.resolved_library()
        return _canonical_hash({
            "schema": CACHE_SCHEMA_VERSION,
            "kind": "simulate_cmos" if self.is_cmos else "simulate",
            "config": dataclasses.asdict(self.config),
            "workload": workload_signature(self.network),
            "batch": self.batch,
            "library": None if library is None else library_fingerprint(library),
        })


def estimate_key(config: NPUConfig, library: CellLibrary) -> str:
    """Cache key of one architecture-level estimation."""
    return _canonical_hash({
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "estimate",
        "config": dataclasses.asdict(config),
        "library": library_fingerprint(library),
    })


# -- payload codecs --------------------------------------------------------
#
# Cached payloads are plain JSON dicts; these codecs round-trip the result
# records exactly (Python's json preserves ints and floats bit-exactly),
# which is what makes warm-cache runs bitwise-identical to cold ones.

def result_to_dict(run: SimulationResult) -> Dict[str, Any]:
    return {
        "design": run.design,
        "network": run.network,
        "batch": run.batch,
        "frequency_ghz": run.frequency_ghz,
        "layers": [dataclasses.asdict(layer) for layer in run.layers],
        "activity": dict(run.activity.effective_cycles),
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        design=data["design"],
        network=data["network"],
        batch=data["batch"],
        frequency_ghz=data["frequency_ghz"],
        layers=[LayerResult(**layer) for layer in data["layers"]],
        activity=ActivityTrace(effective_cycles=dict(data["activity"])),
    )


def estimate_to_dict(estimate: NPUEstimate) -> Dict[str, Any]:
    return {
        "config": dataclasses.asdict(estimate.config),
        "technology": estimate.technology,
        "frequency_ghz": estimate.frequency_ghz,
        "cycle_time_ps": estimate.cycle_time_ps,
        "critical_path": estimate.critical_path,
        "units": {name: dataclasses.asdict(unit) for name, unit in estimate.units.items()},
        "wiring_area_mm2": estimate.wiring_area_mm2,
        "wiring_static_power_w": estimate.wiring_static_power_w,
    }


def estimate_from_dict(data: Dict[str, Any]) -> NPUEstimate:
    return NPUEstimate(
        config=NPUConfig(**data["config"]),
        technology=data["technology"],
        frequency_ghz=data["frequency_ghz"],
        cycle_time_ps=data["cycle_time_ps"],
        critical_path=data["critical_path"],
        units={name: UnitEstimate(**unit) for name, unit in data["units"].items()},
        wiring_area_mm2=data["wiring_area_mm2"],
        wiring_static_power_w=data["wiring_static_power_w"],
    )


# -- the on-disk cache -----------------------------------------------------

@dataclass(frozen=True)
class CacheStats:
    """Size of an on-disk result cache."""

    entries: int
    bytes: int
    by_kind: Dict[str, int] = field(default_factory=dict)


class ResultCache:
    """Content-addressed store of simulation / estimation payloads.

    One JSON file per entry under ``root/<key[:2]>/<key>.json``; writes
    are atomic (tmp file + ``os.replace``) so concurrent runners sharing
    a cache directory never observe torn entries.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or None on miss / unreadable entry."""
        path = self._path(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if document.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return document.get("payload")

    def put(self, key: str, payload: Dict[str, Any], kind: str = "simulate") -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "created_unix": time.time(),
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def _entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path

    def stats(self) -> CacheStats:
        entries = 0
        total_bytes = 0
        by_kind: Dict[str, int] = {}
        for path in self._entries():
            entries += 1
            total_bytes += path.stat().st_size
            try:
                kind = json.loads(path.read_text(encoding="utf-8")).get("kind", "?")
            except (OSError, ValueError):
                kind = "corrupt"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return CacheStats(entries=entries, bytes=total_bytes, by_kind=by_kind)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        for bucket in sorted(self.root.glob("*")):
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        return removed


# -- task execution (top-level so it pickles into worker processes) --------

#: Per-worker-process memo of architecture estimates, so a worker handed
#: many tasks for the same design computes its clock model once.
_WORKER_ESTIMATES: Dict[str, NPUEstimate] = {}


def _estimate_for(config: NPUConfig, library: CellLibrary) -> NPUEstimate:
    key = estimate_key(config, library)
    cached = _WORKER_ESTIMATES.get(key)
    if cached is None:
        cached = _WORKER_ESTIMATES[key] = estimate_npu(config, library)
    return cached


def _execute(task: SimTask) -> Tuple[Dict[str, Any], float]:
    """Run one task; returns (serialized result payload, wall seconds)."""
    start = time.perf_counter()
    if task.is_cmos:
        run = simulate_cmos(task.config, task.network, batch=task.batch)
    else:
        library = task.resolved_library()
        run = simulate(
            task.config, task.network, batch=task.batch,
            estimate=_estimate_for(task.config, library),
        )
    return result_to_dict(run), time.perf_counter() - start


# -- the runner ------------------------------------------------------------

@dataclass
class RunnerStats:
    """Cumulative accounting of one runner's lifetime."""

    tasks: int = 0
    hits: int = 0
    misses: int = 0
    executed: int = 0
    task_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.tasks if self.tasks else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Sum of per-task sim time over elapsed wall time (1.0 serial)."""
        if self.elapsed_seconds <= 0:
            return 1.0
        return self.task_seconds / self.elapsed_seconds

    def describe(self) -> str:
        return (
            f"{self.tasks} tasks: {self.hits} cache hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate), {self.executed} simulated"
        )


class JobRunner:
    """Executes :class:`SimTask` lists with optional parallelism + caching.

    ``jobs=1`` (the default) runs everything in-process; ``jobs > 1``
    fans cache misses out over a ``ProcessPoolExecutor``.  Task order is
    preserved, and results are materialized from serialized payloads in
    every mode, so the output is identical regardless of ``jobs`` or
    cache temperature.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.stats = RunnerStats()
        self._estimates: Dict[str, NPUEstimate] = {}

    # -- simulations --------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[SimulationResult]:
        """Run every task (cache-first), preserving task order."""
        started = time.perf_counter()
        payloads: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        keys = [task.key() for task in tasks]
        pending: List[int] = []
        for index, key in enumerate(keys):
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                payloads[index] = cached
            else:
                pending.append(index)
        hits = len(tasks) - len(pending)

        task_seconds = 0.0
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    chunksize = max(1, len(pending) // (4 * workers))
                    executed = pool.map(
                        _execute, [tasks[i] for i in pending], chunksize=chunksize
                    )
                    for index, (payload, seconds) in zip(pending, executed):
                        payloads[index] = payload
                        task_seconds += seconds
            else:
                for index in pending:
                    payload, seconds = _execute(tasks[index])
                    payloads[index] = payload
                    task_seconds += seconds
            if self.cache is not None:
                for index in pending:
                    kind = "simulate_cmos" if tasks[index].is_cmos else "simulate"
                    self.cache.put(keys[index], payloads[index], kind=kind)

        elapsed = time.perf_counter() - started
        self._account(len(tasks), hits, len(pending), task_seconds, elapsed)
        return [result_from_dict(payload) for payload in payloads]

    def run_one(self, task: SimTask) -> SimulationResult:
        return self.run([task])[0]

    # -- estimates ----------------------------------------------------
    def estimate(self, config: NPUConfig, library: Optional[CellLibrary] = None) -> NPUEstimate:
        """Architecture-level estimate, memoized in-process and on disk."""
        library = library or library_for(Technology.RSFQ)
        key = estimate_key(config, library)
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        payload = self.cache.get(key) if self.cache is not None else None
        if payload is not None:
            obs.counter("jobs.estimate_cache.hits").inc()
        else:
            obs.counter("jobs.estimate_cache.misses").inc()
            payload = estimate_to_dict(estimate_npu(config, library))
            if self.cache is not None:
                self.cache.put(key, payload, kind="estimate")
        estimate = estimate_from_dict(payload)
        self._estimates[key] = estimate
        return estimate

    # -- accounting ---------------------------------------------------
    def _account(self, tasks: int, hits: int, executed: int,
                 task_seconds: float, elapsed: float) -> None:
        self.stats.tasks += tasks
        self.stats.hits += hits
        self.stats.misses += executed
        self.stats.executed += executed
        self.stats.task_seconds += task_seconds
        self.stats.elapsed_seconds += elapsed
        obs.counter("jobs.tasks").add(tasks)
        obs.counter("jobs.cache.hits").add(hits)
        obs.counter("jobs.cache.misses").add(executed)
        obs.counter("jobs.sim.executed").add(executed)
        obs.gauge("jobs.workers").set(self.jobs)
        obs.histogram("jobs.batch_seconds").observe(elapsed)
        if executed and elapsed > 0:
            obs.gauge("jobs.parallel.speedup").set(task_seconds / elapsed)


# -- the ambient runner ----------------------------------------------------

_DEFAULT_RUNNER = JobRunner()
_ACTIVE: List[JobRunner] = []


def get_runner() -> JobRunner:
    """The innermost installed runner, or the shared serial default."""
    return _ACTIVE[-1] if _ACTIVE else _DEFAULT_RUNNER


@contextmanager
def use_runner(runner: JobRunner) -> Iterator[JobRunner]:
    """Install ``runner`` as the ambient runner for the enclosed block."""
    _ACTIVE.append(runner)
    try:
        yield runner
    finally:
        _ACTIVE.pop()


@contextmanager
def session(jobs: int = 1, cache_dir: Optional[Union[str, Path]] = None,
            cache: Optional[ResultCache] = None) -> Iterator[JobRunner]:
    """Build a runner from knobs and install it (the CLI's entry point)."""
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    with use_runner(JobRunner(jobs=jobs, cache=cache)) as runner:
        yield runner
