"""``repro.core.plan`` — the declarative experiment IR.

Every paper-scale experiment (Figs. 15–23, Tables I–III, the extension
studies) has the same shape: *enumerate design points × workloads,
simulate each point, reduce to a figure*.  Instead of each driver
hand-rolling that loop, a driver now declares the grid:

* :class:`AxisSpec` — one named axis of a grid: design configs,
  workloads, batch sizes (or a batch *policy*), cell libraries, or
  free parameters that only label points;
* :class:`Grid` — a cartesian product of axes (the last axis varies
  fastest, exactly like the nested loops it replaces), either a
  ``"simulate"`` grid (each point is one cycle-level simulation) or an
  ``"estimate"`` grid (each point needs only the architecture estimate);
* :class:`ExperimentPlan` — one or more named grids plus a stable
  content hash (:meth:`ExperimentPlan.plan_hash`) covering every axis
  value, so two plans that would simulate different things always hash
  differently;
* :func:`lower` — compiles a plan into ordered :class:`PlanPoint`\\ s
  whose simulation points carry content-addressed
  :class:`~repro.core.jobs.SimTask`\\ s;
* :func:`execute` — runs a lowered plan through the ambient (or given)
  :class:`~repro.core.jobs.JobRunner`, inheriting the cache, parallel
  fan-out, retry/timeout handling, and ``SweepCheckpoint`` resume for
  free, and returns a :class:`ResultSet` of provenance-stamped
  :class:`PlanResult` records;
* :func:`evaluate_grid` — :func:`execute` plus a dense axis-shaped
  result surface per grid (:class:`EvaluatedGrid`), for figure code
  that wants ``grid.array("mac_per_s")`` instead of per-point loops.

Identical tasks inside one plan are deduplicated before submission (the
payload-materialization guarantee of the job layer makes reusing a
result bitwise-identical to re-running it), so a plan never simulates
the same content twice in one run.

Plan activity is exported through ``repro.obs`` as the
``plan.points_total`` / ``plan.points_cached`` / ``plan.points_executed``
counter family, and every executed plan's ``(name, hash)`` is recorded
for run manifests (:func:`recent_plans`).

The named registry (:func:`named_plans` / :func:`plan_by_name`) maps
each figure/table grid to a ready-made plan, surfaced by the CLI as
``supernpu plan list|show|run``.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.baselines.scalesim import CMOSNPUConfig
from repro.core.batching import batch_for, derived_batch, paper_batch
from repro.core.jobs import (
    JobRunner,
    SimTask,
    _canonical_hash,
    config_signature,
    estimate_key,
    get_runner,
    library_fingerprint,
    workload_signature,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import ConfigError
from repro.estimator.arch_level import NPUEstimate
from repro.simulator.results import SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network

#: Bump when the plan signature layout changes meaning.
PLAN_SCHEMA_VERSION = 1

#: Axis kinds a grid may be built from.
AXIS_KINDS = ("config", "workload", "batch", "library", "param")

#: Grid kinds: full cycle-level simulation vs architecture estimate only.
GRID_KINDS = ("simulate", "estimate")

#: Batch-axis policies (besides literal ints):
#: ``"derived"`` — the capacity-derived rule (Figs. 20–22 sweeps);
#: ``"paper"``   — Table II verbatim, erroring on unnamed designs;
#: ``"auto"``    — Table II for named designs, derived otherwise.
BATCH_POLICIES = ("derived", "paper", "auto")

ConfigLike = Union[NPUConfig, CMOSNPUConfig]
BatchLike = Union[int, str]


# -- axes ------------------------------------------------------------------

@dataclass(frozen=True)
class AxisSpec:
    """One axis of a grid: a name, a kind, and its ordered values.

    ``labels`` name the values in point coordinates (and must be unique
    within the axis); they default to the value's natural label — the
    config/workload name, the technology, the batch literal/policy — and
    must be given explicitly when natural labels would collide (e.g. a
    config axis sweeping one design's bandwidth field).
    """

    name: str
    kind: str
    values: Tuple[Any, ...]
    labels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in AXIS_KINDS:
            raise ConfigError(f"unknown axis kind {self.kind!r}; known: {AXIS_KINDS}",
                              code="plan.unknown_axis_kind", axis=self.name)
        if not self.values:
            raise ConfigError(f"axis {self.name!r} has no values",
                              code="plan.empty_axis", axis=self.name)
        if not self.labels:
            object.__setattr__(self, "labels",
                               tuple(self._natural_label(v) for v in self.values))
        if len(self.labels) != len(self.values):
            raise ConfigError(
                f"axis {self.name!r} has {len(self.values)} values but "
                f"{len(self.labels)} labels",
                code="plan.label_mismatch", axis=self.name)
        if len(set(self.labels)) != len(self.labels):
            raise ConfigError(
                f"axis {self.name!r} has duplicate labels {list(self.labels)}; "
                "pass explicit unique labels",
                code="plan.duplicate_labels", axis=self.name)
        if self.kind == "batch":
            for value in self.values:
                if isinstance(value, bool) or not (
                    isinstance(value, int) and value >= 1
                    or value in BATCH_POLICIES
                ):
                    raise ConfigError(
                        f"batch axis value {value!r} is neither a positive int "
                        f"nor one of {BATCH_POLICIES}",
                        code="plan.invalid_batch_value", axis=self.name)

    def _natural_label(self, value: Any) -> str:
        if self.kind in ("config", "workload"):
            return str(getattr(value, "name", value))
        if self.kind == "library":
            if value is None:
                return "default"
            return value.technology.value
        return str(value)

    def value_signature(self, value: Any) -> Any:
        """The cache-relevant content of one axis value (JSON-able)."""
        if self.kind == "config":
            # config_signature omits default technology fields so plan
            # hashes of pre-registry plans are unchanged.
            return {"cmos": not isinstance(value, NPUConfig),
                    "fields": config_signature(value)}
        if self.kind == "workload":
            return workload_signature(value)
        if self.kind == "library":
            return None if value is None else library_fingerprint(value)
        return value  # batch literals / policies, free params

    def signature(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": list(self.labels),
            "values": [self.value_signature(v) for v in self.values],
        }


def config_axis(values: Sequence[ConfigLike], name: str = "config",
                labels: Sequence[str] = ()) -> AxisSpec:
    """An axis of design points (SFQ ``NPUConfig`` or CMOS baseline)."""
    return AxisSpec(name, "config", tuple(values), tuple(labels))


def workload_axis(values: Sequence[Network], name: str = "workload") -> AxisSpec:
    """An axis of benchmark networks."""
    return AxisSpec(name, "workload", tuple(values))


def batch_axis(values: Sequence[BatchLike], name: str = "batch") -> AxisSpec:
    """An axis of batch sizes — literal ints and/or named policies."""
    return AxisSpec(name, "batch", tuple(values))


def library_axis(values: Sequence[Optional[CellLibrary]], name: str = "library",
                 labels: Sequence[str] = ()) -> AxisSpec:
    """An axis of cell libraries (``None`` = the runner's default RSFQ)."""
    return AxisSpec(name, "library", tuple(values), tuple(labels))


def param_axis(name: str, values: Sequence[Any]) -> AxisSpec:
    """A free parameter axis: labels points but does not change the task."""
    return AxisSpec(name, "param", tuple(values))


def technology_axis(base: NPUConfig, technologies: Sequence[str],
                    name: str = "memory_technology",
                    field_name: str = "memory_technology") -> AxisSpec:
    """A config axis sweeping one design across registered technologies.

    Each value is ``base`` with ``field_name`` (``memory_technology`` or
    ``link_technology``) replaced; points are labeled by the technology
    name, since every value shares the base design's name.
    """
    if field_name not in ("memory_technology", "link_technology"):
        raise ConfigError(
            f"technology axis field must be memory_technology or "
            f"link_technology, not {field_name!r}",
            code="plan.invalid_technology_field", axis=name)
    configs = tuple(base.with_updates(**{field_name: technology})
                    for technology in technologies)
    return AxisSpec(name, "config", configs, tuple(technologies))


# -- grids -----------------------------------------------------------------

@dataclass(frozen=True)
class Grid:
    """A named cartesian product of axes; the last axis varies fastest."""

    name: str
    axes: Tuple[AxisSpec, ...]
    kind: str = "simulate"

    def __post_init__(self) -> None:
        if self.kind not in GRID_KINDS:
            raise ConfigError(f"unknown grid kind {self.kind!r}; known: {GRID_KINDS}",
                              code="plan.unknown_grid_kind", grid=self.name)
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"grid {self.name!r} has duplicate axis names {names}",
                              code="plan.duplicate_axes", grid=self.name)
        counts = {kind: sum(1 for a in self.axes if a.kind == kind)
                  for kind in AXIS_KINDS}
        if counts["config"] != 1:
            raise ConfigError(
                f"grid {self.name!r} needs exactly one config axis, has "
                f"{counts['config']}", code="plan.config_axis", grid=self.name)
        for kind in ("workload", "batch", "library"):
            if counts[kind] > 1:
                raise ConfigError(
                    f"grid {self.name!r} has {counts[kind]} {kind} axes "
                    "(at most one allowed)", code="plan.axis_arity", grid=self.name)
        if self.kind == "simulate" and counts["workload"] != 1:
            raise ConfigError(
                f"simulate grid {self.name!r} needs exactly one workload axis",
                code="plan.workload_axis", grid=self.name)

    @property
    def num_points(self) -> int:
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def signature(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "axes": [axis.signature() for axis in self.axes],
        }


# -- plans -----------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentPlan:
    """A named set of grids — the whole declarative experiment."""

    name: str
    grids: Tuple[Grid, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.grids:
            raise ConfigError(f"plan {self.name!r} has no grids",
                              code="plan.empty", plan=self.name)
        names = [grid.name for grid in self.grids]
        if len(set(names)) != len(names):
            raise ConfigError(f"plan {self.name!r} has duplicate grid names {names}",
                              code="plan.duplicate_grids", plan=self.name)

    @property
    def num_points(self) -> int:
        return sum(grid.num_points for grid in self.grids)

    def signature(self) -> Dict[str, Any]:
        """The full JSON-able content of the plan (what the hash covers)."""
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "plan": self.name,
            "grids": [grid.signature() for grid in self.grids],
        }

    def plan_hash(self) -> str:
        """sha256 (hex) of the canonical plan signature."""
        return _canonical_hash(self.signature())

    def lower(self) -> "LoweredPlan":
        return lower(self)

    def run(self, runner: Optional[JobRunner] = None) -> "ResultSet":
        return execute(self, runner=runner)

    def describe(self) -> str:
        """A terminal-friendly summary: grids, axes, counts, hash."""
        lines = [f"plan {self.name}: {self.num_points} points "
                 f"(hash {self.plan_hash()[:12]})"]
        if self.description:
            lines.append(f"  {self.description}")
        for grid in self.grids:
            lines.append(f"  grid {grid.name} [{grid.kind}]: {grid.num_points} points")
            for axis in grid.axes:
                shown = ", ".join(axis.labels[:6])
                if len(axis.labels) > 6:
                    shown += f", ... ({len(axis.labels)} total)"
                lines.append(f"    {axis.name} ({axis.kind}, {len(axis.values)}): {shown}")
        return "\n".join(lines)


# -- lowering --------------------------------------------------------------

@dataclass(frozen=True)
class PlanPoint:
    """One fully-resolved grid point.

    Simulation points carry a content-addressed :class:`SimTask` (and its
    precomputed ``key``); estimate points carry the ``(config, library)``
    request and its estimate-cache key.
    """

    grid: str
    kind: str
    index: int
    coords: Tuple[Tuple[str, str], ...]
    config: ConfigLike
    key: str
    network: Optional[Network] = None
    batch: Optional[int] = None
    library: Optional[CellLibrary] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    task: Optional[SimTask] = None

    def coord(self, axis: str) -> str:
        for name, label in self.coords:
            if name == axis:
                return label
        raise KeyError(f"point has no axis {axis!r}; axes: "
                       f"{[name for name, _ in self.coords]}")

    def param(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"point has no param {name!r}")


@dataclass(frozen=True)
class LoweredPlan:
    """A plan compiled to ordered points (grids in order, last axis fastest)."""

    plan: ExperimentPlan
    plan_hash: str
    points: Tuple[PlanPoint, ...]

    def task_keys(self) -> List[str]:
        """Every point's content key, in point order."""
        return [point.key for point in self.points]

    def sim_tasks(self) -> "OrderedDict[str, SimTask]":
        """Unique simulation tasks, keyed by content, in first-seen order."""
        unique: "OrderedDict[str, SimTask]" = OrderedDict()
        for point in self.points:
            if point.task is not None and point.key not in unique:
                unique[point.key] = point.task
        return unique


def _resolve_batch(value: BatchLike, config: ConfigLike, network: Network) -> int:
    if isinstance(value, int):
        return value
    if value == "derived":
        return derived_batch(config, network)
    if value == "paper":
        return paper_batch(config.name, network.name)
    return batch_for(config, network)  # "auto" (validated by AxisSpec)


def lower(plan: ExperimentPlan) -> LoweredPlan:
    """Compile a plan into ordered, content-addressed points.

    Deterministic by construction: the same plan content always lowers
    to the same point order and the same task keys.
    """
    points: List[PlanPoint] = []
    for grid in plan.grids:
        for combo in product(*(range(len(axis.values)) for axis in grid.axes)):
            coords: List[Tuple[str, str]] = []
            params: List[Tuple[str, Any]] = []
            config: Optional[ConfigLike] = None
            network: Optional[Network] = None
            batch_value: BatchLike = "auto"
            library: Optional[CellLibrary] = None
            have_batch_axis = False
            for axis, position in zip(grid.axes, combo):
                value = axis.values[position]
                coords.append((axis.name, axis.labels[position]))
                if axis.kind == "config":
                    config = value
                elif axis.kind == "workload":
                    network = value
                elif axis.kind == "batch":
                    batch_value = value
                    have_batch_axis = True
                elif axis.kind == "library":
                    library = value
                else:
                    params.append((axis.name, value))
            assert config is not None  # Grid validation guarantees one config axis
            if grid.kind == "estimate":
                resolved_library = library or library_for(Technology.RSFQ)
                points.append(PlanPoint(
                    grid=grid.name, kind=grid.kind, index=len(points),
                    coords=tuple(coords), config=config,
                    key=estimate_key(config, resolved_library),
                    library=library, params=tuple(params),
                ))
                continue
            batch = _resolve_batch(batch_value, config, network)
            if not have_batch_axis and not isinstance(config, NPUConfig):
                # CMOS baselines default to Table II like the SFQ side does
                # via batch_for; nothing extra needed — batch_for reads .name.
                pass
            task = SimTask(config, network, batch, library)
            points.append(PlanPoint(
                grid=grid.name, kind=grid.kind, index=len(points),
                coords=tuple(coords), config=config, key=task.key(),
                network=network, batch=batch, library=library,
                params=tuple(params), task=task,
            ))
    return LoweredPlan(plan=plan, plan_hash=plan.plan_hash(), points=tuple(points))


# -- results ---------------------------------------------------------------

@dataclass(frozen=True)
class PlanResult:
    """One point's outcome, stamped with its provenance."""

    plan: str
    plan_hash: str
    grid: str
    coords: Tuple[Tuple[str, str], ...]
    key: str
    cached: bool
    batch: Optional[int] = None
    run: Optional[SimulationResult] = None
    estimate: Optional[NPUEstimate] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def result(self) -> Union[SimulationResult, NPUEstimate]:
        return self.run if self.run is not None else self.estimate

    def coord(self, axis: str) -> str:
        for name, label in self.coords:
            if name == axis:
                return label
        raise KeyError(f"result has no axis {axis!r}")

    def param(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"result has no param {name!r}")

    def record(self) -> Dict[str, Any]:
        """A flat JSON-able provenance record of this point."""
        record: Dict[str, Any] = {
            "plan": self.plan,
            "plan_hash": self.plan_hash,
            "grid": self.grid,
            "key": self.key,
            "cached": self.cached,
        }
        record.update({f"coord_{name}": label for name, label in self.coords})
        if self.run is not None:
            record.update({
                "design": self.run.design,
                "workload": self.run.network,
                "batch": self.run.batch,
                "mac_per_s": self.run.mac_per_s,
                "latency_s": self.run.latency_s,
                "total_cycles": self.run.total_cycles,
            })
        elif self.estimate is not None:
            record.update({
                "design": self.estimate.config.name,
                "frequency_ghz": self.estimate.frequency_ghz,
                "peak_tmacs": self.estimate.peak_tmacs,
                "area_mm2": self.estimate.area_mm2,
            })
        return record


class ResultSet:
    """All of one plan execution's results, in point order."""

    def __init__(self, plan: ExperimentPlan, plan_hash: str,
                 results: Sequence[PlanResult],
                 points_cached: int, points_executed: int) -> None:
        self.plan = plan
        self.plan_hash = plan_hash
        self.results: List[PlanResult] = list(results)
        self.points_total = len(self.results)
        self.points_cached = points_cached
        self.points_executed = points_executed

    def __iter__(self) -> Iterator[PlanResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def select(self, grid: Optional[str] = None, **coords: str) -> List[PlanResult]:
        """Results matching a grid and/or axis labels, in point order."""
        selected = []
        for result in self.results:
            if grid is not None and result.grid != grid:
                continue
            mapping = dict(result.coords)
            if all(mapping.get(axis) == label for axis, label in coords.items()):
                selected.append(result)
        return selected

    def one(self, grid: Optional[str] = None, **coords: str) -> PlanResult:
        """Exactly one matching result, or a ConfigError."""
        selected = self.select(grid=grid, **coords)
        if len(selected) != 1:
            raise ConfigError(
                f"expected exactly one result for grid={grid!r} {coords}, "
                f"got {len(selected)}", code="plan.ambiguous_selection",
                plan=self.plan.name, matches=len(selected))
        return selected[0]

    def runs(self, grid: Optional[str] = None, **coords: str) -> List[SimulationResult]:
        return [result.run for result in self.select(grid=grid, **coords)]

    def mean(self, metric: str = "mac_per_s", grid: Optional[str] = None,
             **coords: str) -> float:
        """Mean of one run metric over a selection (summed in point order)."""
        selected = self.select(grid=grid, **coords)
        if not selected:
            raise ConfigError(f"nothing selected for grid={grid!r} {coords}",
                              code="plan.empty_selection", plan=self.plan.name)
        return sum(getattr(r.run, metric) for r in selected) / len(selected)

    def records(self) -> List[Dict[str, Any]]:
        return [result.record() for result in self.results]

    def describe(self) -> str:
        return (f"plan {self.plan.name}: {self.points_total} points "
                f"({self.points_cached} cached, {self.points_executed} executed)")


# -- execution -------------------------------------------------------------

#: ``(name, hash)`` of plans executed in this process, most recent last;
#: the CLI embeds these in run manifests.
_RECENT_PLANS: List[Tuple[str, str]] = []
_RECENT_LIMIT = 64


def recent_plans() -> List[Tuple[str, str]]:
    """``(name, hash)`` of plans executed in this process, oldest first."""
    return list(_RECENT_PLANS)


def execute(plan: ExperimentPlan, runner: Optional[JobRunner] = None) -> ResultSet:
    """Lower and run a plan through the job engine.

    Unique simulation tasks go to the runner as one list (so ``jobs > 1``
    fans the entire plan out at once and every point is individually
    cached / checkpointed); estimate points resolve through
    ``runner.estimate``.  Returns provenance-stamped per-point results in
    lowering order.
    """
    runner = runner or get_runner()
    lowered = lower(plan)

    unique_tasks = lowered.sim_tasks()
    cache = runner.cache
    cached_keys = set()
    if cache is not None:
        cached_keys = {key for key in unique_tasks if cache.path_for(key).exists()}

    with obs.trace_span(f"plan/{plan.name}", points=len(lowered.points),
                        hash=lowered.plan_hash[:12]):
        runs_by_key: Dict[str, SimulationResult] = {}
        if unique_tasks:
            for key, run in zip(unique_tasks, runner.run(list(unique_tasks.values()))):
                runs_by_key[key] = run

        results: List[PlanResult] = []
        estimate_cached: Dict[str, bool] = {}
        for point in lowered.points:
            if point.kind == "estimate":
                if point.key not in estimate_cached:
                    estimate_cached[point.key] = (
                        cache is not None and cache.path_for(point.key).exists())
                estimate = runner.estimate(point.config, point.library)
                results.append(PlanResult(
                    plan=plan.name, plan_hash=lowered.plan_hash,
                    grid=point.grid, coords=point.coords, key=point.key,
                    cached=estimate_cached[point.key], params=point.params,
                    estimate=estimate,
                ))
            else:
                results.append(PlanResult(
                    plan=plan.name, plan_hash=lowered.plan_hash,
                    grid=point.grid, coords=point.coords, key=point.key,
                    cached=point.key in cached_keys, batch=point.batch,
                    params=point.params, run=runs_by_key[point.key],
                ))

    cached = len(cached_keys) + sum(1 for flag in estimate_cached.values() if flag)
    executed = (len(unique_tasks) - len(cached_keys)
                + sum(1 for flag in estimate_cached.values() if not flag))
    obs.counter("plan.points_total").add(len(lowered.points))
    obs.counter("plan.points_cached").add(cached)
    obs.counter("plan.points_executed").add(executed)
    _RECENT_PLANS.append((plan.name, lowered.plan_hash))
    del _RECENT_PLANS[:-_RECENT_LIMIT]
    return ResultSet(plan, lowered.plan_hash, results,
                     points_cached=cached, points_executed=executed)


# -- grid-shaped evaluation ------------------------------------------------

@dataclass(frozen=True, eq=False)
class EvaluatedGrid:
    """One grid's results, reshaped onto its axes.

    ``results`` is an object ndarray of :class:`PlanResult` shaped by the
    axis lengths; because lowering emits points with the last axis
    varying fastest, a plain C-order reshape is exact.  :meth:`array`
    turns any scalar result attribute into a dense float array ready for
    figure code — the vectorized surface the per-point loop never had.
    """

    name: str
    kind: str
    axis_names: Tuple[str, ...]
    axis_labels: Tuple[Tuple[str, ...], ...]
    results: "np.ndarray"

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.results.shape

    def array(self, metric: str = "mac_per_s") -> "np.ndarray":
        """Dense metric array over the grid (``nan`` where undefined).

        ``metric`` names an attribute of the point's result object — a
        :class:`~repro.simulator.results.SimulationResult` for simulate
        grids (``mac_per_s``, ``latency_s``, ``total_cycles``, ...) or an
        :class:`~repro.estimator.arch_level.NPUEstimate` for estimate
        grids (``frequency_ghz``, ``peak_tmacs``, ``area_mm2``, ...).
        """
        values = []
        for result in self.results.ravel():
            source = result.run if result.run is not None else result.estimate
            value = getattr(source, metric, None)
            values.append(float(value) if value is not None else float("nan"))
        return np.array(values, dtype=float).reshape(self.results.shape)

    def result(self, **coords: str) -> PlanResult:
        """The one point at the given axis labels (every axis required)."""
        index = []
        remaining = dict(coords)
        for name, labels in zip(self.axis_names, self.axis_labels):
            if name not in remaining:
                raise ConfigError(
                    f"grid {self.name!r} needs a label for axis {name!r}; "
                    f"axes: {list(self.axis_names)}",
                    code="plan.missing_axis", grid=self.name, axis=name)
            label = remaining.pop(name)
            try:
                index.append(labels.index(label))
            except ValueError:
                raise ConfigError(
                    f"axis {name!r} of grid {self.name!r} has no label "
                    f"{label!r}; labels: {list(labels)}",
                    code="plan.unknown_label", grid=self.name, axis=name,
                ) from None
        if remaining:
            raise ConfigError(
                f"grid {self.name!r} has no axes {sorted(remaining)}; "
                f"axes: {list(self.axis_names)}",
                code="plan.unknown_axis", grid=self.name)
        return self.results[tuple(index)]


class GridEvaluation:
    """:func:`evaluate_grid`'s output: each grid of a plan, axis-shaped."""

    def __init__(self, resultset: ResultSet,
                 grids: "OrderedDict[str, EvaluatedGrid]") -> None:
        self.resultset = resultset
        self.plan = resultset.plan
        self.plan_hash = resultset.plan_hash
        self.grids = grids

    def __iter__(self) -> Iterator[EvaluatedGrid]:
        return iter(self.grids.values())

    def __getitem__(self, name: str) -> EvaluatedGrid:
        try:
            return self.grids[name]
        except KeyError:
            raise ConfigError(
                f"plan {self.plan.name!r} has no grid {name!r}; "
                f"grids: {list(self.grids)}",
                code="plan.unknown_grid", plan=self.plan.name) from None

    def grid(self, name: Optional[str] = None) -> EvaluatedGrid:
        """One grid — by name, or the only one when the plan has just one."""
        if name is not None:
            return self[name]
        if len(self.grids) != 1:
            raise ConfigError(
                f"plan {self.plan.name!r} has {len(self.grids)} grids; "
                f"name one of {list(self.grids)}",
                code="plan.ambiguous_grid", plan=self.plan.name)
        return next(iter(self.grids.values()))


def evaluate_grid(plan: ExperimentPlan,
                  runner: Optional[JobRunner] = None) -> GridEvaluation:
    """Execute a plan and reshape its points onto dense per-grid arrays.

    The whole plan still goes through :func:`execute` as one deduplicated
    submission (per-point caching, parallel fan-out, retries, and
    checkpoint resume all apply unchanged); what this adds is the dense
    grid-shaped result surface — ``evaluation.grid().array("mac_per_s")``
    instead of a hand-rolled loop over :meth:`ResultSet.select`.
    """
    resultset = execute(plan, runner=runner)
    grids: "OrderedDict[str, EvaluatedGrid]" = OrderedDict()
    cursor = 0
    for grid in plan.grids:
        dims = tuple(len(axis.values) for axis in grid.axes)
        count = 1
        for dim in dims:
            count *= dim
        block = np.empty(count, dtype=object)
        block[:] = resultset.results[cursor:cursor + count]
        cursor += count
        grids[grid.name] = EvaluatedGrid(
            name=grid.name,
            kind=grid.kind,
            axis_names=tuple(axis.name for axis in grid.axes),
            axis_labels=tuple(axis.labels for axis in grid.axes),
            results=block.reshape(dims),
        )
    return GridEvaluation(resultset, grids)


# -- the named registry ----------------------------------------------------

def _plan_fig15() -> ExperimentPlan:
    from repro.core.experiments import fig15_plan

    return fig15_plan()


def _plan_fig20() -> ExperimentPlan:
    from repro.core.optimizer import buffer_plan

    return buffer_plan()


def _plan_fig21() -> ExperimentPlan:
    from repro.core.optimizer import resource_plan

    return resource_plan()


def _plan_fig22() -> ExperimentPlan:
    from repro.core.optimizer import register_plan

    return register_plan()


def _plan_fig23() -> ExperimentPlan:
    from repro.core.evaluate import evaluate_plan

    return evaluate_plan()


def _plan_table3() -> ExperimentPlan:
    from repro.core.evaluate import table3_plan

    return table3_plan()


def _plan_search() -> ExperimentPlan:
    from repro.core.search import search_plan

    return search_plan()


def _plan_ablation() -> ExperimentPlan:
    from repro.core.ablate import ablation_plan

    return ablation_plan()


def _plan_batch_knee() -> ExperimentPlan:
    from repro.core.designs import supernpu
    from repro.simulator.batch_sweep import batch_plan
    from repro.workloads.models import resnet50

    return batch_plan(supernpu(), resnet50())


def _plan_bandwidth() -> ExperimentPlan:
    from repro.core.sensitivity import bandwidth_plan

    return bandwidth_plan()


def _plan_cooling() -> ExperimentPlan:
    from repro.core.sensitivity import cooling_plan

    return cooling_plan()


def _plan_scaling() -> ExperimentPlan:
    from repro.core.designs import supernpu
    from repro.core.scaling import scaling_plan

    return scaling_plan(supernpu())


def _plan_memory_technologies() -> ExperimentPlan:
    from repro.components.study import memory_technology_plan

    return memory_technology_plan()


#: Every figure/table grid as a ready-made plan (builders run with the
#: paper's default workloads and library).
PLAN_BUILDERS: Dict[str, Callable[[], ExperimentPlan]] = {
    "fig15_breakdown": _plan_fig15,
    "fig20_buffers": _plan_fig20,
    "fig21_resources": _plan_fig21,
    "fig22_registers": _plan_fig22,
    "fig23_evaluate": _plan_fig23,
    "table3_power": _plan_table3,
    "search_grid": _plan_search,
    "ablation": _plan_ablation,
    "batch_knee": _plan_batch_knee,
    "bandwidth_sensitivity": _plan_bandwidth,
    "cooling_sensitivity": _plan_cooling,
    "process_scaling": _plan_scaling,
    "memory_technologies": _plan_memory_technologies,
}


def named_plans() -> List[str]:
    """The registered plan names, in registry order."""
    return list(PLAN_BUILDERS)


def plan_by_name(name: str) -> ExperimentPlan:
    """Build a registered plan (paper-default axes)."""
    try:
        builder = PLAN_BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown plan {name!r}",
            code="config.unknown_plan",
            hint=f"known plans: {', '.join(PLAN_BUILDERS)}",
            name=name,
        ) from None
    return builder()
