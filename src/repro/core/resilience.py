"""Fault-tolerance primitives for the job layer.

Two pieces, both consumed by :class:`repro.core.jobs.JobRunner`:

* :class:`RetryPolicy` — bounded retry with exponential backoff and
  jitter for *transient* task failures (a crashed worker, a chaos
  injection, an OS hiccup).  Deterministic failures — anything in the
  :mod:`repro.errors` taxonomy — are never retried: a bad config fails
  the same way every time.
* :class:`SweepCheckpoint` — an append-only journal of completed task
  keys kept beside the result cache.  A killed ``evaluate`` / ``sweep``
  / ``reproduce`` run leaves its journal behind; the next run with the
  same checkpoint resumes, executing only the remaining tasks, and a
  run that completes cleanly clears it.

The journal stores only 64-hex-char content keys (one per line), so a
writer killed mid-line can at worst leave one unparseable line, which
is dropped on load — resume is conservative, never wrong.
"""

from __future__ import annotations

import os
import random
import string
from dataclasses import dataclass
from pathlib import Path
from typing import Set, Union

from repro.errors import ConfigError

_HEX = set(string.hexdigits.lower())


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter.

    ``max_retries`` is the number of *re*-attempts after the first
    failure; ``max_retries=0`` fails fast.  The delay before attempt
    ``n`` (1-based failure count) is
    ``min(max_delay_s, base_delay_s * 2**(n-1))`` stretched by up to
    ``jitter`` (fractional), so retrying workers do not stampede.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative",
                              code="config.invalid_retry", max_retries=self.max_retries)
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("retry delays must be non-negative",
                              code="config.invalid_retry")
        if not 0 <= self.jitter <= 1:
            raise ConfigError("jitter must lie in [0, 1]",
                              code="config.invalid_retry", jitter=self.jitter)

    def delay_s(self, failures: int) -> float:
        """Backoff before the next attempt, after ``failures`` failures."""
        if failures < 1:
            return 0.0
        bounded = min(self.max_delay_s, self.base_delay_s * (2 ** (failures - 1)))
        return bounded * (1.0 + self.jitter * random.random())


#: Fail-fast policy (no retries, no sleeping) for tests and strict runs.
NO_RETRY = RetryPolicy(max_retries=0, base_delay_s=0.0, jitter=0.0)


class SweepCheckpoint:
    """Append-only journal of completed task keys (one 64-hex key per line).

    The journal lives beside the cache (``<cache>/checkpoints/<name>.journal``
    by CLI convention) and is crash-safe by construction: ``mark`` appends
    a single line and flushes, loading drops anything that is not a whole
    content key, and a load of a file missing its trailing newline repairs
    it before the next append so a killed writer cannot splice two keys.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path).expanduser()
        self.completed: Set[str] = set()
        self._needs_newline = False
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError:
            return
        self._needs_newline = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            key = line.strip()
            if len(key) == 64 and set(key) <= _HEX:
                self.completed.add(key)

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def mark(self, key: str) -> None:
        """Record one completed task (idempotent, flushed immediately)."""
        if key in self.completed:
            return
        self.completed.add(key)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as journal:
            if self._needs_newline:
                journal.write("\n")
                self._needs_newline = False
            journal.write(key + "\n")
            journal.flush()
            os.fsync(journal.fileno())

    def clear(self) -> None:
        """Forget everything — the sweep completed, no resume needed."""
        self.completed.clear()
        self._needs_newline = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
