"""Batch-size policy (paper Table II).

The paper sets every workload's batch to "the maximum value which can be
held by a given on-chip buffer capacity without additional off-chip memory
access", conservatively capped (all SuperNPU entries sit at 30).  Table II
itself is part of the published experimental setup, so the evaluation
pipeline uses those values verbatim for the five named design points
(:func:`paper_batch`), while design-space sweeps over *unnamed* configs
(Figs. 20-22) use the capacity-derived rule (:func:`derived_batch`).
"""

from __future__ import annotations

from typing import Dict

from repro.uarch.config import NPUConfig
from repro.workloads.models import Network

#: The paper's conservative global batch cap (Table II's plateau).
BATCH_CAP = 30

#: Table II of the paper, verbatim.
PAPER_BATCHES: Dict[str, Dict[str, int]] = {
    "TPU": {
        "AlexNet": 22, "FasterRCNN": 20, "GoogLeNet": 20,
        "MobileNet": 20, "ResNet50": 20, "VGG16": 3,
    },
    "Baseline": {
        "AlexNet": 1, "FasterRCNN": 1, "GoogLeNet": 1,
        "MobileNet": 1, "ResNet50": 1, "VGG16": 1,
    },
    "Buffer opt.": {
        "AlexNet": 15, "FasterRCNN": 3, "GoogLeNet": 3,
        "MobileNet": 3, "ResNet50": 3, "VGG16": 1,
    },
    "Resource opt.": {
        "AlexNet": 30, "FasterRCNN": 30, "GoogLeNet": 30,
        "MobileNet": 30, "ResNet50": 30, "VGG16": 7,
    },
    "SuperNPU": {
        "AlexNet": 30, "FasterRCNN": 30, "GoogLeNet": 30,
        "MobileNet": 30, "ResNet50": 30, "VGG16": 7,
    },
}


def paper_batch(design_name: str, workload_name: str) -> int:
    """Table II batch size for a named design / workload pair."""
    try:
        return PAPER_BATCHES[design_name][workload_name]
    except KeyError:
        raise KeyError(
            f"no Table II batch for design {design_name!r} / workload "
            f"{workload_name!r}; use derived_batch() for unnamed configs"
        ) from None


def derived_batch(config: NPUConfig, network: Network, cap: int = BATCH_CAP) -> int:
    """Capacity-derived batch for arbitrary (swept) configurations.

    The batch is bounded by three on-chip residency constraints, evaluated
    at the worst layer, then capped:

    * raw ifmap capacity;
    * ifmap channel slots (each shift-register lane holds one channel, so
      an undivided buffer holds at most ``pe_array_height`` channels —
      Fig. 18(c); division multiplies the slots — Fig. 19 (4));
    * output-buffer capacity (shared with in-flight psums when the buffers
      are integrated).
    """
    if cap < 1:
        raise ValueError("batch cap must be positive")
    conv_layers = network.conv_layers or network.layers
    best = cap
    for layer in conv_layers:
        if layer.ifmap_bytes:
            best = min(best, config.ifmap_buffer_bytes // layer.ifmap_bytes)
        channel_slots = config.pe_array_height * config.ifmap_division
        best = min(best, channel_slots // layer.in_channels)
        out_capacity = config.output_buffer_bytes + config.psum_buffer_bytes
        if layer.ofmap_bytes:
            best = min(best, out_capacity // layer.ofmap_bytes)
    return max(1, best)


def batch_for(config: NPUConfig, network: Network) -> int:
    """Paper batch when the design is a named Table II point, else derived."""
    if config.name in PAPER_BATCHES:
        return paper_batch(config.name, network.name)
    return derived_batch(config, network)
