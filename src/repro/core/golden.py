"""Golden-number regression guard.

The calibration constants scattered through the model (cell timings, JJ
pitch, activity factors) jointly produce the headline numbers; a
well-meaning edit to any one of them can silently move Table III.  This
module collects every headline metric into one record and checks it
against the stored goldens with per-metric tolerances — the repository's
own regression alarm.

Regenerate the goldens deliberately with::

    python -m repro.core.golden   # prints the current record as JSON
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.core.evaluate import evaluate_suite, table3_rows

#: Stored goldens: metric -> (value, relative tolerance).
GOLDEN: Dict[str, Tuple[float, float]] = {
    "npu_frequency_ghz": (52.6, 0.005),
    "baseline_speedup": (0.36, 0.15),
    "buffer_opt_speedup": (12.3, 0.15),
    "resource_opt_speedup": (19.2, 0.15),
    "supernpu_speedup": (25.5, 0.15),
    "rsfq_chip_power_w": (967.8, 0.05),
    "ersfq_chip_power_w": (1.44, 0.25),
    "ersfq_perf_per_watt_free": (491.8, 0.15),
    "ersfq_perf_per_watt_cooled": (1.23, 0.15),
    "rsfq_perf_per_watt_cooled": (0.0018, 0.30),
    "supernpu_area_mm2_28nm": (298.6, 0.05),
    "baseline_area_mm2_28nm": (297.3, 0.05),
}


def current_record() -> Dict[str, float]:
    """Measure every golden metric from scratch (runs the full pipeline)."""
    suite = evaluate_suite()
    speedups = suite.speedups()
    rows = {row.label: row for row in table3_rows(suite)}
    reference = rows["TPU"]
    supernpu_estimate = suite.design("SuperNPU").estimate
    baseline_estimate = suite.design("Baseline").estimate
    return {
        "npu_frequency_ghz": supernpu_estimate.frequency_ghz,
        "baseline_speedup": speedups["Baseline"]["Average"],
        "buffer_opt_speedup": speedups["Buffer opt."]["Average"],
        "resource_opt_speedup": speedups["Resource opt."]["Average"],
        "supernpu_speedup": speedups["SuperNPU"]["Average"],
        "rsfq_chip_power_w": rows["RSFQ-SuperNPU (w/ cooling)"].chip_power_w,
        "ersfq_chip_power_w": rows["ERSFQ-SuperNPU (w/ cooling)"].chip_power_w,
        "ersfq_perf_per_watt_free": rows["ERSFQ-SuperNPU (w/o cooling)"].normalized_to(reference),
        "ersfq_perf_per_watt_cooled": rows["ERSFQ-SuperNPU (w/ cooling)"].normalized_to(reference),
        "rsfq_perf_per_watt_cooled": rows["RSFQ-SuperNPU (w/ cooling)"].normalized_to(reference),
        "supernpu_area_mm2_28nm": supernpu_estimate.area_mm2_scaled(),
        "baseline_area_mm2_28nm": baseline_estimate.area_mm2_scaled(),
    }


def check(record: Dict[str, float] | None = None) -> List[str]:
    """Return a list of violations (empty = all goldens hold)."""
    record = record if record is not None else current_record()
    violations: List[str] = []
    for metric, (golden_value, tolerance) in GOLDEN.items():
        if metric not in record:
            violations.append(f"{metric}: missing from record")
            continue
        measured = record[metric]
        error = abs(measured - golden_value) / abs(golden_value)
        if error > tolerance:
            violations.append(
                f"{metric}: measured {measured:.4g} vs golden {golden_value:.4g} "
                f"({100 * error:.1f}% > {100 * tolerance:.0f}% tolerance)"
            )
    return violations


def main() -> int:
    record = current_record()
    print(json.dumps(record, indent=2, sort_keys=True))
    violations = check(record)
    if violations:
        print("\nGOLDEN VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\nall goldens hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
