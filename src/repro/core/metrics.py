"""Derived metrics: roofline analysis (Fig. 17) and perf/W (Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cooling.cryocooler import Cryocooler, PAPER_COOLER
from repro.simulator.results import SimulationResult
from repro.workloads.analysis import intensity_report
from repro.workloads.models import Network


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on the roofline plot (Fig. 17)."""

    network: str
    batch: int
    intensity_mac_per_byte: float
    attainable_mac_per_s: float
    peak_mac_per_s: float
    measured_mac_per_s: Optional[float] = None

    @property
    def max_pe_utilization(self) -> float:
        """Roofline / peak: the paper's "maximum PE utilization" (<2%
        on average for the single-batch Baseline)."""
        return self.attainable_mac_per_s / self.peak_mac_per_s


def roofline_point(
    network: Network,
    batch: int,
    peak_mac_per_s: float,
    bandwidth_gbps: float,
    measured: Optional[SimulationResult] = None,
) -> RooflinePoint:
    """Place one workload on the roofline for a given NPU peak/bandwidth."""
    report = intensity_report(network, batch)
    attainable = report.roofline_mac_per_s(peak_mac_per_s, bandwidth_gbps * 1e9)
    return RooflinePoint(
        network=network.name,
        batch=batch,
        intensity_mac_per_byte=report.macs_per_weight_byte,
        attainable_mac_per_s=attainable,
        peak_mac_per_s=peak_mac_per_s,
        measured_mac_per_s=None if measured is None else measured.mac_per_s,
    )


@dataclass(frozen=True)
class EfficiencyRow:
    """One row of the Table III power-efficiency comparison."""

    label: str
    chip_power_w: float
    wall_power_w: float
    mac_per_s: float

    @property
    def mac_per_joule(self) -> float:
        if self.wall_power_w <= 0:
            raise ValueError("wall power must be positive")
        return self.mac_per_s / self.wall_power_w

    def normalized_to(self, reference: "EfficiencyRow") -> float:
        """Performance/W relative to ``reference`` (the TPU row)."""
        return self.mac_per_joule / reference.mac_per_joule


def efficiency_row(
    label: str,
    chip_power_w: float,
    mac_per_s: float,
    cooler: Optional[Cryocooler] = PAPER_COOLER,
    free_cooling: bool = False,
) -> EfficiencyRow:
    """Build a Table III row; pass ``cooler=None`` for room-temperature
    devices (the TPU) and ``free_cooling=True`` for the amortized-fridge
    scenario."""
    if cooler is None:
        wall = chip_power_w
    else:
        wall = cooler.wall_power_w(chip_power_w, free_cooling=free_cooling)
    return EfficiencyRow(label, chip_power_w, wall, mac_per_s)
