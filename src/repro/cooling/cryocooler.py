"""4 K cryogenic cooling cost model (paper Section VI-C).

The paper charges 400 W of wall power per watt dissipated at 4 K,
following Holmes, Ripple & Manheimer ("Energy-efficient superconducting
computing — power budgets and requirements").  For context the model also
exposes the Carnot bound and the implied specific efficiency, and supports
the paper's "free cooling" scenario (cooling amortized by the facility, as
assumed for quantum computers sharing the fridge).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Wall watts per 4 K watt used throughout the paper's evaluation.
PAPER_COOLING_FACTOR = 400.0

#: Ambient (hot-side) temperature for the Carnot bound, kelvin.
AMBIENT_K = 300.0


def carnot_cooling_factor(cold_k: float = 4.2, hot_k: float = AMBIENT_K) -> float:
    """Ideal (Carnot) wall watts per cold watt: (Th - Tc) / Tc."""
    if cold_k <= 0 or hot_k <= cold_k:
        raise ValueError("temperatures must satisfy 0 < cold < hot")
    return (hot_k - cold_k) / cold_k


@dataclass(frozen=True)
class Cryocooler:
    """A cryocooler with a fixed specific power (wall W per cold W)."""

    factor: float = PAPER_COOLING_FACTOR
    cold_temperature_k: float = 4.2

    def __post_init__(self) -> None:
        carnot = carnot_cooling_factor(self.cold_temperature_k)
        if self.factor < carnot:
            raise ValueError(
                f"cooling factor {self.factor} beats the Carnot bound {carnot:.1f}"
            )

    @property
    def percent_of_carnot(self) -> float:
        """Fraction of ideal efficiency this cooler achieves (~17.6% @400x)."""
        return carnot_cooling_factor(self.cold_temperature_k) / self.factor

    def cooling_power_w(self, chip_power_w: float) -> float:
        if chip_power_w < 0:
            raise ValueError("chip power must be non-negative")
        return self.factor * chip_power_w

    def wall_power_w(self, chip_power_w: float, free_cooling: bool = False) -> float:
        """Total wall power: chip power plus (unless free) cooling power."""
        if free_cooling:
            return chip_power_w
        return chip_power_w + self.cooling_power_w(chip_power_w)


#: The paper's cooler (400 W / W at 4.2 K).
PAPER_COOLER = Cryocooler()
