"""Cryogenic cooling cost models."""

from repro.cooling.cryocooler import (
    AMBIENT_K,
    PAPER_COOLER,
    PAPER_COOLING_FACTOR,
    Cryocooler,
    carnot_cooling_factor,
)
from repro.cooling.ladder import (
    PAPER_77K_FACTOR,
    PAPER_LADDER,
    CoolingLadder,
    CoolingStage,
)

__all__ = [
    "AMBIENT_K",
    "PAPER_77K_FACTOR",
    "PAPER_COOLER",
    "PAPER_COOLING_FACTOR",
    "PAPER_LADDER",
    "CoolingLadder",
    "CoolingStage",
    "Cryocooler",
    "carnot_cooling_factor",
]
