"""Cryogenic cooling cost models."""

from repro.cooling.cryocooler import (
    AMBIENT_K,
    PAPER_COOLER,
    PAPER_COOLING_FACTOR,
    Cryocooler,
    carnot_cooling_factor,
)

__all__ = [
    "AMBIENT_K",
    "PAPER_COOLER",
    "PAPER_COOLING_FACTOR",
    "Cryocooler",
    "carnot_cooling_factor",
]
