"""Multi-stage cooling ladder: per-stage wall-power multipliers.

The paper charges every dissipated watt at the single 4.2 K factor
(400 W/W).  Once components live at different temperature stages
(``repro.components``), each stage needs its own specific power: a
joule burned at 77 K costs ~12 wall joules, one at 300 K costs zero
extra.  A :class:`CoolingLadder` maps each stage's dissipation to wall
power at that stage's factor; a degenerate single-stage ladder at
4.2 K/400x reproduces :data:`~repro.cooling.cryocooler.PAPER_COOLER`
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.cooling.cryocooler import (
    AMBIENT_K,
    PAPER_COOLING_FACTOR,
    carnot_cooling_factor,
)
from repro.errors import ConfigError

#: Practical specific power at the 77 K (LN2) stage: Carnot is ~2.9x,
#: real large plants run at ~25% of Carnot => ~12 wall W per 77 K W.
PAPER_77K_FACTOR = 12.0


@dataclass(frozen=True)
class CoolingStage:
    """One temperature stage with its wall-W-per-cold-W factor.

    A factor of ``0`` is only meaningful at ambient (300 K), where heat
    is rejected for free; below ambient the factor must respect the
    Carnot bound for that temperature.
    """

    temperature_k: float
    factor: float

    def __post_init__(self) -> None:
        if self.temperature_k <= 0:
            raise ConfigError("stage temperature must be positive",
                              code="cooling.invalid_stage",
                              temperature_k=self.temperature_k)
        if self.temperature_k >= AMBIENT_K:
            if self.factor != 0:
                raise ConfigError(
                    f"stage at {self.temperature_k} K is at/above ambient; "
                    "its cooling factor must be 0",
                    code="cooling.invalid_stage",
                    temperature_k=self.temperature_k, factor=self.factor)
            return
        carnot = carnot_cooling_factor(self.temperature_k)
        if self.factor < carnot:
            raise ConfigError(
                f"cooling factor {self.factor} at {self.temperature_k} K "
                f"beats the Carnot bound {carnot:.2f}",
                code="cooling.beats_carnot",
                temperature_k=self.temperature_k, factor=self.factor,
                carnot=carnot)

    @property
    def percent_of_carnot(self) -> float:
        """Fraction of ideal efficiency (0 for the free ambient stage)."""
        if self.temperature_k >= AMBIENT_K or self.factor == 0:
            return 0.0
        return carnot_cooling_factor(self.temperature_k) / self.factor


@dataclass(frozen=True)
class CoolingLadder:
    """Stages ordered cold to hot; charges dissipation per stage."""

    stages: Tuple[CoolingStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigError("a cooling ladder needs at least one stage",
                              code="cooling.empty_ladder")
        temps = [stage.temperature_k for stage in self.stages]
        if sorted(temps) != temps or len(set(temps)) != len(temps):
            raise ConfigError(
                "ladder stages must be strictly cold-to-hot",
                code="cooling.unordered_ladder", temperatures=temps)

    def stage_for(self, temperature_k: float) -> CoolingStage:
        """The stage at exactly ``temperature_k``."""
        for stage in self.stages:
            if stage.temperature_k == temperature_k:
                return stage
        raise ConfigError(
            f"no cooling stage at {temperature_k} K",
            code="cooling.unknown_stage",
            hint="ladder stages: "
                 + ", ".join(f"{s.temperature_k} K" for s in self.stages),
            temperature_k=temperature_k)

    def factor_at(self, temperature_k: float) -> float:
        """Wall watts per watt dissipated at ``temperature_k``."""
        return self.stage_for(temperature_k).factor

    def cooling_power_w(self, dissipation_by_stage_w: Mapping[float, float]) -> float:
        """Cooling wall power for per-stage dissipation (stage K -> W)."""
        total = 0.0
        for temperature_k, power_w in dissipation_by_stage_w.items():
            if power_w < 0:
                raise ConfigError("stage dissipation must be non-negative",
                                  code="cooling.invalid_power",
                                  temperature_k=temperature_k, power_w=power_w)
            total += self.factor_at(temperature_k) * power_w
        return total

    def wall_power_w(self, dissipation_by_stage_w: Mapping[float, float],
                     free_cooling: bool = False) -> float:
        """Total wall power: dissipation plus (unless free) cooling."""
        dissipated = sum(dissipation_by_stage_w.values())
        if free_cooling:
            return dissipated
        return dissipated + self.cooling_power_w(dissipation_by_stage_w)

    def breakdown_w(self, dissipation_by_stage_w: Mapping[float, float]
                    ) -> Dict[float, float]:
        """Per-stage wall power (dissipation + that stage's cooling)."""
        return {
            temperature_k: power_w * (1.0 + self.factor_at(temperature_k))
            for temperature_k, power_w in dissipation_by_stage_w.items()
        }


#: The paper's ladder: 400x at 4.2 K, ~12x at 77 K, free at ambient.
#: Restricted to the 4.2 K stage it reproduces ``PAPER_COOLER`` exactly.
PAPER_LADDER = CoolingLadder(stages=(
    CoolingStage(temperature_k=4.2, factor=PAPER_COOLING_FACTOR),
    CoolingStage(temperature_k=77.0, factor=PAPER_77K_FACTOR),
    CoolingStage(temperature_k=AMBIENT_K, factor=0.0),
))
