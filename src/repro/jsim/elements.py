"""Circuit elements for the RCSJ-model Josephson circuit simulator.

The solver works in *node-phase* formulation: the state of node ``n`` is its
superconducting phase ``theta_n`` (the time integral of node voltage scaled
by 2*pi/Phi0) and its rate ``dtheta_n/dt``.  Element currents in this
formulation (with the repo unit system — ps, mV, uA, pH, ohm, pF):

* Josephson junction (RCSJ model):
  ``I = Ic*sin(theta) + (PhiBar/R)*dtheta*1000 + C*PhiBar*ddtheta*1000``
* inductor: ``I = 1000 * PhiBar * theta / L``
* resistor: ``I = 1000 * PhiBar * dtheta / R``
* capacitor: ``I = 1000 * C * PhiBar * ddtheta``

where ``PhiBar = Phi0 / (2*pi)`` in mV*ps and ``theta`` is the branch phase
difference.  Every JJ contributes capacitance to the mass matrix, which is
what makes the second-order system well-posed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.device.constants import PHI0_BAR_MV_PS

#: Unit-conversion factor: mV / ohm = mA = 1000 uA.
_MA_TO_UA = 1000.0


@dataclass(frozen=True)
class JosephsonJunction:
    """A resistively-and-capacitively-shunted Josephson junction.

    Defaults model the AIST 1.0 um Nb process: Ic = 100 uA junctions,
    externally shunted to about unity Stewart-McCumber parameter.
    """

    node_plus: int
    node_minus: int
    critical_current_ua: float = 100.0
    shunt_resistance_ohm: float = 4.0
    capacitance_pf: float = 0.2
    label: str = ""

    def __post_init__(self) -> None:
        if self.critical_current_ua <= 0:
            raise ValueError("critical current must be positive")
        if self.shunt_resistance_ohm <= 0:
            raise ValueError("shunt resistance must be positive")
        if self.capacitance_pf <= 0:
            raise ValueError("junction capacitance must be positive")

    @property
    def stewart_mccumber(self) -> float:
        """Damping parameter beta_c = 2*pi*Ic*R^2*C / Phi0 (dimensionless)."""
        ic_a = self.critical_current_ua * 1e-6
        c_f = self.capacitance_pf * 1e-12
        phi0 = 2.067833848e-15
        return 2.0 * 3.141592653589793 * ic_a * self.shunt_resistance_ohm**2 * c_f / phi0

    def supercurrent_ua(self, branch_phase: float) -> float:
        import math

        return self.critical_current_ua * math.sin(branch_phase)

    def normal_current_ua(self, branch_phase_rate: float) -> float:
        return _MA_TO_UA * PHI0_BAR_MV_PS * branch_phase_rate / self.shunt_resistance_ohm

    def capacitive_coefficient(self) -> float:
        """Coefficient of ``ddtheta`` in the branch current (uA*ps^2)."""
        return _MA_TO_UA * self.capacitance_pf * PHI0_BAR_MV_PS


@dataclass(frozen=True)
class Inductor:
    node_plus: int
    node_minus: int
    inductance_ph: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.inductance_ph <= 0:
            raise ValueError("inductance must be positive")

    def current_ua(self, branch_phase: float) -> float:
        return _MA_TO_UA * PHI0_BAR_MV_PS * branch_phase / self.inductance_ph


@dataclass(frozen=True)
class Resistor:
    node_plus: int
    node_minus: int
    resistance_ohm: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ValueError("resistance must be positive")

    def current_ua(self, branch_phase_rate: float) -> float:
        return _MA_TO_UA * PHI0_BAR_MV_PS * branch_phase_rate / self.resistance_ohm


@dataclass(frozen=True)
class Capacitor:
    node_plus: int
    node_minus: int
    capacitance_pf: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.capacitance_pf <= 0:
            raise ValueError("capacitance must be positive")

    def capacitive_coefficient(self) -> float:
        return _MA_TO_UA * self.capacitance_pf * PHI0_BAR_MV_PS


@dataclass(frozen=True)
class CurrentSource:
    """Current injected *into* ``node`` as a function of time (uA)."""

    node: int
    waveform: Callable[[float], float]
    label: str = ""

    def current_ua(self, time_ps: float) -> float:
        return self.waveform(time_ps)
