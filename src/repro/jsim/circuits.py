"""Prebuilt Josephson circuits: JTL, storage loop (DFF core), SFQ ring.

These are the circuits the paper exercises with JSIM: the Josephson
transmission line whose per-stage delay calibrates the wire cells, and the
single-superconductor-ring storage element underlying the DFF of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.jsim.elements import CurrentSource, Inductor, JosephsonJunction
from repro.jsim.netlist import Circuit
from repro.jsim.stimuli import gaussian_pulse, ramped_bias

#: Default JTL parameters for the AIST-like 1.0 um process.
JTL_IC_UA = 100.0
JTL_L_PH = 6.0
JTL_BIAS_FRACTION = 0.7
BIAS_RAMP_PS = 20.0


@dataclass
class JTL:
    """A Josephson transmission line of ``stages`` biased junctions."""

    circuit: Circuit
    nodes: List[int]
    input_node: int

    @property
    def stages(self) -> int:
        return len(self.nodes)


def build_jtl(
    stages: int,
    ic_ua: float = JTL_IC_UA,
    inductance_ph: float = JTL_L_PH,
    bias_fraction: float = JTL_BIAS_FRACTION,
) -> JTL:
    """A ``stages``-junction JTL with ramped DC bias on every node."""
    if stages < 2:
        raise ValueError("a JTL needs at least two stages")
    if not 0 < bias_fraction < 1:
        raise ValueError("bias fraction must lie in (0, 1)")
    circuit = Circuit()
    nodes = [circuit.node(label=f"jtl{i}") for i in range(stages)]
    for i, node in enumerate(nodes):
        circuit.add_junction(
            JosephsonJunction(node, 0, critical_current_ua=ic_ua, label=f"J{i}")
        )
        circuit.add_source(
            CurrentSource(node, ramped_bias(bias_fraction * ic_ua, BIAS_RAMP_PS),
                          label=f"bias{i}")
        )
    for i in range(stages - 1):
        circuit.add_inductor(
            Inductor(nodes[i], nodes[i + 1], inductance_ph, label=f"L{i}")
        )
    return JTL(circuit=circuit, nodes=nodes, input_node=nodes[0])


def drive_jtl(jtl: JTL, pulse_time_ps: float, amplitude_ua: float = 300.0) -> None:
    """Inject one SFQ trigger pulse at the JTL input."""
    jtl.circuit.add_source(
        CurrentSource(jtl.input_node, gaussian_pulse(pulse_time_ps, amplitude_ua),
                      label="input")
    )


@dataclass
class StorageLoop:
    """The DFF core of Fig. 1(c): two junctions closing a quantizing loop."""

    circuit: Circuit
    input_node: int
    output_node: int


def build_storage_loop(
    ic_ua: float = JTL_IC_UA,
    loop_inductance_ph: float = 18.0,
    bias_fraction: float = JTL_BIAS_FRACTION,
) -> StorageLoop:
    """A superconductor ring holding one SFQ between two junctions.

    An input pulse switches the left ("input") junction and parks one flux
    quantum in the loop; a clock pulse on the output node then switches the
    right junction and releases the quantum as an output pulse — exactly
    the Fig. 1(c)/(d) sequence.
    """
    circuit = Circuit()
    input_node = circuit.node(label="in")
    output_node = circuit.node(label="out")
    circuit.add_junction(
        JosephsonJunction(input_node, 0, critical_current_ua=ic_ua, label="Jleft")
    )
    circuit.add_junction(
        JosephsonJunction(output_node, 0, critical_current_ua=ic_ua, label="Jright")
    )
    circuit.add_inductor(
        Inductor(input_node, output_node, loop_inductance_ph, label="Lq")
    )
    circuit.add_source(
        CurrentSource(input_node, ramped_bias(bias_fraction * ic_ua, BIAS_RAMP_PS),
                      label="bias_in")
    )
    return StorageLoop(circuit=circuit, input_node=input_node, output_node=output_node)


def jtl_stage_delay_ps(stages: int = 8, settle_ps: float = 40.0) -> float:
    """Measure the per-stage JTL propagation delay with a transient run.

    This is the jsim-level cross-check of the cell library's wire delay
    (DEFAULT_WIRE_DELAY_PS): launch a pulse, time its arrival at the first
    and last junctions, divide by the hop count.
    """
    from repro.jsim.measure import propagation_delay_ps
    from repro.jsim.solver import TransientSolver

    jtl = build_jtl(stages)
    drive_jtl(jtl, pulse_time_ps=settle_ps)
    solver = TransientSolver(jtl.circuit)
    result = solver.run(settle_ps + 40.0)
    total = propagation_delay_ps(result, jtl.nodes[0], jtl.nodes[-1])
    return total / (stages - 1)


@dataclass
class TransmissionLine:
    """A passive transmission line (PTL): an LC ladder between JJ driver
    and receiver, the paper's long-haul interconnect (Takagi et al.)."""

    circuit: Circuit
    driver_node: int
    receiver_node: int
    segments: int
    segment_length_mm: float


def build_ptl(
    segments: int = 20,
    segment_length_mm: float = 0.05,
    inductance_ph_per_mm: float = 56.0,
    capacitance_ff_per_mm: float = 1140.0,
    ic_ua: float = JTL_IC_UA,
) -> TransmissionLine:
    """An LC-ladder PTL with a JJ driver and a JJ receiver.

    Default constants give the ~7 ohm characteristic impedance SFQ PTLs
    use (so the ~0.5 mV SFQ pulse carries enough current to switch the
    receiver junction) and ~8 ps/mm of nominal flight time — measured
    ~9.4 ps/mm with the ladder's dispersion included, right next to the
    architecture model's PTL_DELAY_PS_PER_MM of 10.01.
    """
    if segments < 2:
        raise ValueError("a PTL needs at least two segments")
    if segment_length_mm <= 0:
        raise ValueError("segment length must be positive")
    from repro.jsim.elements import Capacitor

    circuit = Circuit()
    driver = circuit.node(label="drv")
    circuit.add_junction(JosephsonJunction(driver, 0, critical_current_ua=ic_ua,
                                           label="Jdrv"))
    circuit.add_source(CurrentSource(driver, ramped_bias(JTL_BIAS_FRACTION * ic_ua,
                                                         BIAS_RAMP_PS), label="bias_drv"))
    l_seg = inductance_ph_per_mm * segment_length_mm
    c_seg = capacitance_ff_per_mm * segment_length_mm * 1e-3  # fF -> pF
    previous = driver
    for i in range(segments):
        node = circuit.node(label=f"ptl{i}")
        circuit.add_inductor(Inductor(previous, node, l_seg, label=f"Lp{i}"))
        circuit.add_capacitor(Capacitor(node, 0, c_seg, label=f"Cp{i}"))
        previous = node
    receiver = circuit.node(label="rcv")
    circuit.add_inductor(Inductor(previous, receiver, l_seg, label="Lrcv"))
    circuit.add_junction(JosephsonJunction(receiver, 0, critical_current_ua=ic_ua,
                                           label="Jrcv"))
    circuit.add_source(CurrentSource(receiver, ramped_bias(JTL_BIAS_FRACTION * ic_ua,
                                                           BIAS_RAMP_PS), label="bias_rcv"))
    return TransmissionLine(
        circuit=circuit,
        driver_node=driver,
        receiver_node=receiver,
        segments=segments,
        segment_length_mm=segment_length_mm,
    )


def ptl_delay_ps_per_mm(segments: int = 20, segment_length_mm: float = 0.05) -> float:
    """Measure a PTL's flight time per millimeter from a transient run."""
    from repro.jsim.measure import switching_times_ps
    from repro.jsim.solver import TransientSolver

    ptl = build_ptl(segments, segment_length_mm)
    ptl.circuit.add_source(
        CurrentSource(ptl.driver_node, gaussian_pulse(40.0), label="input")
    )
    result = TransientSolver(ptl.circuit).run(120.0)
    sent = switching_times_ps(result, ptl.driver_node)
    received = switching_times_ps(result, ptl.receiver_node)
    if not sent or not received:
        raise RuntimeError("pulse did not traverse the PTL")
    length_mm = segments * segment_length_mm
    return (received[0] - sent[0]) / length_mm


@dataclass
class ClockGenerator:
    """An on-chip SFQ clock source (the "On-chip clock gen." of the paper's
    Fig. 12(a) die photo): a junction DC-biased above its critical current
    emits SFQ pulses at the Josephson frequency f = <V> / Phi0, and a short
    JTL buffers them toward the clock network."""

    circuit: Circuit
    source_node: int
    output_node: int
    bias_ua: float


def clock_bias_for_frequency(
    target_ghz: float,
    ic_ua: float = JTL_IC_UA,
    shunt_ohm: float = 4.0,
) -> float:
    """DC bias producing ``target_ghz`` pulses from an RSJ-model junction.

    The RSJ voltage-current relation gives <V> = R * sqrt(I^2 - Ic^2), and
    the Josephson relation f = <V> / Phi0 then fixes the bias:
    ``I = sqrt(Ic^2 + (f * Phi0 / R)^2)``.
    """
    if target_ghz <= 0:
        raise ValueError("target frequency must be positive")
    from repro.device.constants import PHI0_MV_PS

    voltage_mv = target_ghz * 1e-3 * PHI0_MV_PS  # f[1/ps] * Phi0[mV*ps]
    excess_ua = 1000.0 * voltage_mv / shunt_ohm
    return (ic_ua**2 + excess_ua**2) ** 0.5


def build_clock_generator(
    target_ghz: float = 52.6,
    buffer_stages: int = 3,
    ic_ua: float = JTL_IC_UA,
    bias_ua: float | None = None,
) -> ClockGenerator:
    """An overbiased-junction clock source driving a short output JTL.

    ``bias_ua`` overrides the analytic (unloaded) starting bias; use
    :func:`tune_clock_generator` to find the bias that hits a target
    frequency with the JTL loading included.
    """
    if buffer_stages < 1:
        raise ValueError("need at least one buffer stage")
    circuit = Circuit()
    source = circuit.node(label="osc")
    bias = bias_ua if bias_ua is not None else clock_bias_for_frequency(target_ghz, ic_ua)
    circuit.add_junction(
        JosephsonJunction(source, 0, critical_current_ua=ic_ua, label="Josc")
    )
    circuit.add_source(
        CurrentSource(source, ramped_bias(bias, BIAS_RAMP_PS), label="bias_osc")
    )
    previous = source
    node = source
    for i in range(buffer_stages):
        node = circuit.node(label=f"buf{i}")
        circuit.add_inductor(Inductor(previous, node, JTL_L_PH, label=f"Lb{i}"))
        circuit.add_junction(
            JosephsonJunction(node, 0, critical_current_ua=ic_ua, label=f"Jb{i}")
        )
        circuit.add_source(
            CurrentSource(node, ramped_bias(JTL_BIAS_FRACTION * ic_ua, BIAS_RAMP_PS),
                          label=f"bias_b{i}")
        )
        previous = node
    return ClockGenerator(circuit=circuit, source_node=source,
                          output_node=node, bias_ua=bias)


def clock_generator_frequency_ghz(
    bias_ua: float,
    observe_ps: float = 400.0,
) -> float:
    """Measure the output pulse rate at a given source bias (0 if quiet)."""
    from repro.jsim.measure import switching_times_ps
    from repro.jsim.solver import TransientSolver

    generator = build_clock_generator(bias_ua=bias_ua)
    result = TransientSolver(generator.circuit).run(BIAS_RAMP_PS + observe_ps)
    times = [t for t in switching_times_ps(result, generator.output_node)
             if t > BIAS_RAMP_PS + 40.0]  # skip the bias-ramp transient
    if len(times) < 5:
        return 0.0
    periods = [b - a for a, b in zip(times, times[1:])]
    return 1e3 / (sum(periods) / len(periods))


def tune_clock_generator(
    target_ghz: float = 52.6,
    tolerance_ghz: float = 2.0,
    max_iterations: int = 12,
) -> "tuple[float, float]":
    """Find the source bias hitting ``target_ghz`` with loading included.

    The JTL buffer loads the source junction, shifting its oscillation
    threshold well above the unloaded RSJ prediction — so, like a lab
    bring-up, the bias is tuned against *measured* frequency: first a
    coarse upward scan to bracket the target, then bisection.

    Returns ``(bias_ua, measured_ghz)``.
    """
    if target_ghz <= 0:
        raise ValueError("target frequency must be positive")
    if tolerance_ghz <= 0:
        raise ValueError("tolerance must be positive")
    low = clock_bias_for_frequency(target_ghz)
    high = low
    high_freq = clock_generator_frequency_ghz(high)
    for _ in range(max_iterations):
        if high_freq >= target_ghz:
            break
        high *= 1.15
        high_freq = clock_generator_frequency_ghz(high)
    else:
        raise RuntimeError(f"could not reach {target_ghz} GHz by bias scan")
    for _ in range(max_iterations):
        if abs(high_freq - target_ghz) <= tolerance_ghz:
            return high, high_freq
        mid = 0.5 * (low + high)
        mid_freq = clock_generator_frequency_ghz(mid)
        if mid_freq < target_ghz:
            low = mid
        else:
            high, high_freq = mid, mid_freq
    return high, high_freq


@dataclass
class CoincidenceGate:
    """A two-input pulse-coincidence element: the analog seed of the SFQ
    AND gate.  Each input pulse parks a flux quantum next to the output
    junction; only the *combined* circulating current of both exceeds the
    (larger) output junction's threshold, so the output fires iff both
    inputs arrived — the latched-inputs-then-fire behaviour the clocked
    gate model in :mod:`repro.gatesim` abstracts."""

    circuit: Circuit
    input_a: int
    input_b: int
    output_node: int


def build_coincidence_and(
    ic_in_ua: float = JTL_IC_UA,
    ic_out_ua: float = 250.0,
    output_bias_fraction: float = 0.3,
    coupling_ph: float = 8.0,
) -> CoincidenceGate:
    """Two biased input junctions coupled into one high-Ic output junction.

    Calibrated so one input pulse stores but cannot fire the output, while
    the second input's quantum tips it over (tests exercise the full truth
    table and the storage window).
    """
    circuit = Circuit()
    input_a = circuit.node(label="a")
    input_b = circuit.node(label="b")
    output_node = circuit.node(label="out")
    for node in (input_a, input_b):
        circuit.add_junction(
            JosephsonJunction(node, 0, critical_current_ua=ic_in_ua)
        )
        circuit.add_source(
            CurrentSource(node, ramped_bias(JTL_BIAS_FRACTION * ic_in_ua, BIAS_RAMP_PS))
        )
    circuit.add_junction(
        JosephsonJunction(output_node, 0, critical_current_ua=ic_out_ua, label="Jout")
    )
    circuit.add_source(
        CurrentSource(
            output_node,
            ramped_bias(output_bias_fraction * ic_out_ua, BIAS_RAMP_PS),
        )
    )
    circuit.add_inductor(Inductor(input_a, output_node, coupling_ph))
    circuit.add_inductor(Inductor(input_b, output_node, coupling_ph))
    return CoincidenceGate(
        circuit=circuit, input_a=input_a, input_b=input_b, output_node=output_node
    )
