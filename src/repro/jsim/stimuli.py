"""Stimulus waveforms: SFQ trigger pulses and DC bias ramps.

Every factory returns a waveform callable that accepts either a scalar
time (returning a ``float``) or a numpy array of times (returning an
array) — the vectorized solver evaluates each source once over the whole
half-step time grid instead of once per RK4 stage.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def gaussian_pulse(
    center_ps: float,
    amplitude_ua: float = 300.0,
    sigma_ps: float = 1.0,
) -> Callable[[float], float]:
    """A short current pulse that nudges a junction over its critical
    current, launching one SFQ pulse into the circuit."""
    if amplitude_ua <= 0 or sigma_ps <= 0:
        raise ValueError("pulse amplitude and width must be positive")

    def waveform(t: float) -> float:
        x = (np.asarray(t, dtype=float) - center_ps) / sigma_ps
        value = amplitude_ua * np.exp(-0.5 * x * x)
        return value if value.ndim else float(value)

    return waveform


def pulse_train(
    start_ps: float,
    period_ps: float,
    count: int,
    amplitude_ua: float = 300.0,
    sigma_ps: float = 1.0,
) -> Callable[[float], float]:
    """``count`` Gaussian pulses spaced ``period_ps`` apart (a clock)."""
    if count < 1:
        raise ValueError("need at least one pulse")
    if period_ps <= 0:
        raise ValueError("period must be positive")
    pulses = [
        gaussian_pulse(start_ps + i * period_ps, amplitude_ua, sigma_ps)
        for i in range(count)
    ]

    def waveform(t: float) -> float:
        return sum(p(t) for p in pulses)

    return waveform


def ramped_bias(level_ua: float, ramp_ps: float = 20.0) -> Callable[[float], float]:
    """DC bias ramped up over ``ramp_ps`` to avoid a startup transient."""
    if ramp_ps <= 0:
        raise ValueError("ramp time must be positive")

    def waveform(t: float) -> float:
        t = np.asarray(t, dtype=float)
        value = np.where(t >= ramp_ps, level_ua, level_ua * t / ramp_ps)
        return value if value.ndim else float(value)

    return waveform
