"""Measurement helpers: SFQ switching detection and delay extraction.

A junction "switches" (emits an SFQ pulse) when its branch phase slips by
2*pi.  Switch times let us measure JTL propagation delays and check storage
behaviour, the same quantities the paper extracts from JSIM runs.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.jsim.solver import TransientResult


def switching_times_ps(
    result: TransientResult,
    node_plus: int,
    node_minus: int = 0,
    threshold: float = math.pi,
) -> List[float]:
    """Times at which the branch phase crosses successive 2*pi slips.

    The k-th switching event is detected when the phase passes
    ``threshold + 2*pi*k`` (threshold defaults to pi, the unstable maximum
    of the junction potential).
    """
    phase = result.junction_phase(node_plus, node_minus)
    times: List[float] = []
    level = threshold
    for i in range(1, len(phase)):
        while phase[i] >= level and phase[i - 1] < level:
            # Linear interpolation inside the sample interval.
            frac = (level - phase[i - 1]) / (phase[i] - phase[i - 1])
            t = result.time_ps[i - 1] + frac * (
                result.time_ps[i] - result.time_ps[i - 1]
            )
            times.append(float(t))
            level += 2.0 * math.pi
    return times


def switch_count(result: TransientResult, node_plus: int, node_minus: int = 0) -> int:
    """Number of complete 2*pi phase slips of a branch."""
    phase = result.junction_phase(node_plus, node_minus)
    return int(math.floor((phase[-1] - phase[0] + math.pi) / (2.0 * math.pi)))


def propagation_delay_ps(
    result: TransientResult,
    from_node: int,
    to_node: int,
    event: int = 0,
) -> float:
    """Delay of the ``event``-th SFQ pulse between two junctions' nodes."""
    start = switching_times_ps(result, from_node)
    end = switching_times_ps(result, to_node)
    if len(start) <= event or len(end) <= event:
        raise ValueError(
            f"pulse event {event} not observed at both nodes "
            f"(got {len(start)} and {len(end)} switchings)"
        )
    return end[event] - start[event]


def stored_flux_quanta(result: TransientResult, node_plus: int, node_minus: int = 0) -> int:
    """Flux quanta held in a loop at the end of the run (rounded)."""
    phase = result.junction_phase(node_plus, node_minus)
    return int(round((phase[-1] - phase[0]) / (2.0 * math.pi)))


def peak_voltage_mv(result: TransientResult, node: int) -> float:
    return float(np.max(np.abs(result.node_voltage_mv(node))))
