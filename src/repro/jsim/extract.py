"""Gate-parameter extraction from transient runs (paper Section IV-A1).

The paper's gate-level estimation layer "extracts all gate parameters by
running JSIM simulations" — propagation delays, SetupTime/HoldTime, and
operating margins.  This module reproduces that methodology on the RCSJ
simulator:

* :func:`extract_jtl_delay_ps` — per-stage wire delay (calibrates the cell
  library's ``DEFAULT_WIRE_DELAY_PS``).
* :func:`extract_setup_time_ps` — minimum data-before-clock separation for
  the storage loop to release its quantum (bisection over separation).
* :func:`bias_margins` — the DC-bias operating window of a circuit, the
  standard SFQ robustness metric (wide margins = fabricable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.jsim.circuits import build_jtl, build_storage_loop, drive_jtl
from repro.jsim.elements import CurrentSource
from repro.jsim.measure import switch_count, switching_times_ps
from repro.jsim.solver import TransientSolver
from repro.jsim.stimuli import gaussian_pulse


def extract_jtl_delay_ps(stages: int = 8, settle_ps: float = 40.0) -> float:
    """Per-stage JTL propagation delay from a transient run."""
    jtl = build_jtl(stages)
    drive_jtl(jtl, pulse_time_ps=settle_ps)
    result = TransientSolver(jtl.circuit).run(settle_ps + 40.0)
    first = switching_times_ps(result, jtl.nodes[0])
    last = switching_times_ps(result, jtl.nodes[-1])
    if not first or not last:
        raise RuntimeError("test pulse did not traverse the JTL")
    return (last[0] - first[0]) / (stages - 1)


def _storage_loop_operates(separation_ps: float, clock_time_ps: float = 70.0) -> bool:
    """Does a storage loop clocked ``separation_ps`` after the data pulse
    release exactly one output quantum?"""
    loop = build_storage_loop()
    data_time = clock_time_ps - separation_ps
    loop.circuit.add_source(CurrentSource(loop.input_node, gaussian_pulse(data_time), "d"))
    loop.circuit.add_source(
        CurrentSource(loop.output_node, gaussian_pulse(clock_time_ps), "clk")
    )
    result = TransientSolver(loop.circuit).run(clock_time_ps + 25.0)
    released = switching_times_ps(result, loop.output_node)
    # Correct operation: exactly one release, at (or after) the clock.
    return len(released) == 1 and released[0] >= clock_time_ps - 3.0


def extract_setup_time_ps(
    resolution_ps: float = 0.25,
    max_separation_ps: float = 12.0,
) -> float:
    """Minimum data-to-clock separation for correct DFF operation.

    Bisects the largest failing separation / smallest passing separation,
    i.e. the circuit-level SetupTime the cell library abstracts.
    """
    if resolution_ps <= 0:
        raise ValueError("resolution must be positive")
    low, high = 0.0, max_separation_ps
    if not _storage_loop_operates(high):
        raise RuntimeError("storage loop fails even at maximum separation")
    while high - low > resolution_ps:
        mid = 0.5 * (low + high)
        if _storage_loop_operates(mid):
            high = mid
        else:
            low = mid
    return high


@dataclass(frozen=True)
class MarginReport:
    """DC-bias operating window of a circuit."""

    nominal_fraction: float
    low_fraction: float
    high_fraction: float

    @property
    def width(self) -> float:
        return self.high_fraction - self.low_fraction

    @property
    def plus_minus_percent(self) -> Tuple[float, float]:
        """Margins as +/-% of nominal, the conventional SFQ report format."""
        low = 100.0 * (self.low_fraction - self.nominal_fraction) / self.nominal_fraction
        high = 100.0 * (self.high_fraction - self.nominal_fraction) / self.nominal_fraction
        return (low, high)


def _jtl_operates(bias_fraction: float, stages: int = 6) -> bool:
    """One pulse in, exactly one pulse out at every stage, no spontaneous
    switching beforehand."""
    try:
        jtl = build_jtl(stages, bias_fraction=bias_fraction)
    except ValueError:
        return False
    drive_jtl(jtl, pulse_time_ps=40.0)
    result = TransientSolver(jtl.circuit).run(80.0)
    return all(switch_count(result, node) == 1 for node in jtl.nodes)


def bias_margins(
    operates: Callable[[float], bool] | None = None,
    nominal_fraction: float = 0.7,
    resolution: float = 0.01,
) -> MarginReport:
    """Find the bias window over which a circuit operates correctly.

    ``operates`` maps a bias fraction (of Ic) to pass/fail; defaults to the
    JTL single-fluxon criterion.  The window is located by bisection from
    the nominal point outward.
    """
    if operates is None:
        operates = _jtl_operates
    if not operates(nominal_fraction):
        raise RuntimeError(f"circuit fails at nominal bias {nominal_fraction}")
    if resolution <= 0:
        raise ValueError("resolution must be positive")

    def edge(inside: float, outside: float) -> float:
        while abs(outside - inside) > resolution:
            mid = 0.5 * (inside + outside)
            if operates(mid):
                inside = mid
            else:
                outside = mid
        return inside

    low = edge(nominal_fraction, 0.0)
    high = edge(nominal_fraction, 0.999)
    return MarginReport(nominal_fraction, low, high)
