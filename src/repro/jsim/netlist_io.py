"""SPICE-deck style netlist parsing and serialization (JSIM interop).

JSIM consumes SPICE-like decks; this module reads and writes a compatible
subset so circuits can be exchanged as text:

```
* comment
B1  1 0  ic=100 rshunt=4 cap=0.2     ; Josephson junction
L1  1 2  6.0                         ; inductor (pH)
R1  2 0  4.0                         ; resistor (ohm)
C1  2 0  0.1                         ; capacitor (pF)
IB1 1 0  dc 70                       ; DC bias source (uA)
IP1 1 0  pulse 40 300 1              ; Gaussian pulse: t0, amp, sigma
.end
```

Node names may be arbitrary identifiers; ``0`` (or ``gnd``) is ground.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.jsim.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    JosephsonJunction,
    Resistor,
)
from repro.jsim.netlist import Circuit
from repro.jsim.stimuli import gaussian_pulse

GROUND_NAMES = {"0", "gnd", "GND"}


class NetlistError(ValueError):
    """Raised on malformed netlist text."""


def _tokenize(text: str) -> List[Tuple[int, List[str]]]:
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].strip()
        if not line or line.startswith("*"):
            continue
        if line.lower() == ".end":
            break
        lines.append((number, line.split()))
    return lines


def parse_netlist(text: str) -> "Tuple[Circuit, Dict[str, int]]":
    """Parse a deck into a :class:`Circuit`; returns (circuit, node map)."""
    circuit = Circuit()
    nodes: Dict[str, int] = {}

    def node_of(name: str) -> int:
        if name in GROUND_NAMES:
            return 0
        if name not in nodes:
            nodes[name] = circuit.node(label=name)
        return nodes[name]

    for number, tokens in _tokenize(text):
        label = tokens[0]
        kind = label[0].upper()
        try:
            if kind == "B":
                plus, minus = node_of(tokens[1]), node_of(tokens[2])
                params = _keyword_params(tokens[3:])
                circuit.add_junction(
                    JosephsonJunction(
                        plus,
                        minus,
                        critical_current_ua=params.get("ic", 100.0),
                        shunt_resistance_ohm=params.get("rshunt", 4.0),
                        capacitance_pf=params.get("cap", 0.2),
                        label=label,
                    )
                )
            elif kind == "L":
                circuit.add_inductor(
                    Inductor(node_of(tokens[1]), node_of(tokens[2]),
                             float(tokens[3]), label=label)
                )
            elif kind == "R":
                circuit.add_resistor(
                    Resistor(node_of(tokens[1]), node_of(tokens[2]),
                             float(tokens[3]), label=label)
                )
            elif kind == "C":
                circuit.add_capacitor(
                    Capacitor(node_of(tokens[1]), node_of(tokens[2]),
                              float(tokens[3]), label=label)
                )
            elif kind == "I":
                _parse_source(circuit, node_of, tokens, label)
            else:
                raise NetlistError(f"line {number}: unknown element {label!r}")
        except (IndexError, ValueError) as error:
            if isinstance(error, NetlistError):
                raise
            raise NetlistError(f"line {number}: {error}") from error
    return circuit, nodes


def _keyword_params(tokens: List[str]) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for token in tokens:
        if "=" not in token:
            raise NetlistError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        params[key.lower()] = float(value)
    return params


def _parse_source(circuit: Circuit, node_of, tokens: List[str], label: str) -> None:
    plus = node_of(tokens[1])
    # tokens[2] is the return node (ground by convention); accepted, unused.
    node_of(tokens[2])
    mode = tokens[3].lower()
    if mode == "dc":
        level = float(tokens[4])
        circuit.add_source(CurrentSource(plus, lambda _t, level=level: level, label=label))
    elif mode == "pulse":
        t0, amplitude, sigma = (float(v) for v in tokens[4:7])
        circuit.add_source(
            CurrentSource(plus, gaussian_pulse(t0, amplitude, sigma), label=label)
        )
    else:
        raise NetlistError(f"unknown source mode {mode!r}")


def serialize_netlist(circuit: Circuit, title: str = "repro circuit") -> str:
    """Render a circuit back into deck text (sources become DC stubs).

    Arbitrary Python waveforms cannot round-trip; constant sources are
    sampled at t=0 and emitted as ``dc`` lines, which covers bias networks
    (the common exchange case).
    """
    lines = [f"* {title}"]
    for index, jj in enumerate(circuit.junctions, start=1):
        label = jj.label or f"B{index}"
        lines.append(
            f"{label} {jj.node_plus} {jj.node_minus} "
            f"ic={jj.critical_current_ua:g} rshunt={jj.shunt_resistance_ohm:g} "
            f"cap={jj.capacitance_pf:g}"
        )
    for index, element in enumerate(circuit.inductors, start=1):
        label = element.label or f"L{index}"
        lines.append(
            f"{label} {element.node_plus} {element.node_minus} {element.inductance_ph:g}"
        )
    for index, element in enumerate(circuit.resistors, start=1):
        label = element.label or f"R{index}"
        lines.append(
            f"{label} {element.node_plus} {element.node_minus} {element.resistance_ohm:g}"
        )
    for index, element in enumerate(circuit.capacitors, start=1):
        label = element.label or f"C{index}"
        lines.append(
            f"{label} {element.node_plus} {element.node_minus} {element.capacitance_pf:g}"
        )
    for index, source in enumerate(circuit.sources, start=1):
        label = source.label or f"I{index}"
        lines.append(f"{label} {source.node} 0 dc {source.current_ua(0.0):g}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
