"""Netlist container for Josephson circuits.

Node 0 is ground (phase pinned to zero).  The circuit tracks elements and
hands the solver the structural matrices it needs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.jsim.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    JosephsonJunction,
    Resistor,
)

GROUND = 0


class Circuit:
    """A Josephson circuit netlist under node-phase formulation."""

    def __init__(self) -> None:
        self._num_nodes = 1  # ground
        self.junctions: List[JosephsonJunction] = []
        self.inductors: List[Inductor] = []
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.sources: List[CurrentSource] = []
        self._labels: Dict[str, int] = {}

    # -- Construction --------------------------------------------------------

    def node(self, label: str | None = None) -> int:
        """Allocate a new node; optionally give it a findable label."""
        index = self._num_nodes
        self._num_nodes += 1
        if label is not None:
            if label in self._labels:
                raise ValueError(f"duplicate node label {label!r}")
            self._labels[label] = index
        return index

    def labeled(self, label: str) -> int:
        try:
            return self._labels[label]
        except KeyError:
            raise KeyError(f"no node labeled {label!r}") from None

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} not allocated (have {self._num_nodes})")

    def add_junction(self, junction: JosephsonJunction) -> JosephsonJunction:
        self._check_node(junction.node_plus)
        self._check_node(junction.node_minus)
        self.junctions.append(junction)
        return junction

    def add_inductor(self, inductor: Inductor) -> Inductor:
        self._check_node(inductor.node_plus)
        self._check_node(inductor.node_minus)
        self.inductors.append(inductor)
        return inductor

    def add_resistor(self, resistor: Resistor) -> Resistor:
        self._check_node(resistor.node_plus)
        self._check_node(resistor.node_minus)
        self.resistors.append(resistor)
        return resistor

    def add_capacitor(self, capacitor: Capacitor) -> Capacitor:
        self._check_node(capacitor.node_plus)
        self._check_node(capacitor.node_minus)
        self.capacitors.append(capacitor)
        return capacitor

    def add_source(self, source: CurrentSource) -> CurrentSource:
        self._check_node(source.node)
        self.sources.append(source)
        return source

    def add_bias(self, node: int, current_ua: float, label: str = "") -> CurrentSource:
        """Constant DC bias current into ``node``."""
        return self.add_source(CurrentSource(node, lambda _t: current_ua, label=label))

    # -- Structure for the solver ---------------------------------------------

    def mass_matrix(self, parasitic_pf: float = 1e-3) -> np.ndarray:
        """Capacitance ("mass") matrix over non-ground nodes.

        A tiny parasitic capacitance to ground keeps the matrix invertible
        for nodes that have no junction attached.
        """
        n = self._num_nodes - 1
        mass = np.zeros((n, n))
        coeffs = [
            (j.node_plus, j.node_minus, j.capacitive_coefficient()) for j in self.junctions
        ] + [
            (c.node_plus, c.node_minus, c.capacitive_coefficient()) for c in self.capacitors
        ]
        for node_plus, node_minus, coeff in coeffs:
            for a, b, sign in (
                (node_plus, node_plus, 1.0),
                (node_minus, node_minus, 1.0),
                (node_plus, node_minus, -1.0),
                (node_minus, node_plus, -1.0),
            ):
                if a > 0 and b > 0:
                    mass[a - 1, b - 1] += sign * coeff
        from repro.device.constants import PHI0_BAR_MV_PS

        parasitic = 1000.0 * parasitic_pf * PHI0_BAR_MV_PS
        mass[np.diag_indices(n)] += parasitic
        return mass
