"""Fixed-step transient solver for Josephson circuits.

Integrates the second-order node-phase system

    M * ddtheta = I_src(t) - I_josephson(theta) - I_L(theta) - I_R(dtheta)

with classic RK4 at a fixed step (default 0.05 ps, a small fraction of the
junction plasma period), vectorized over nodes with numpy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs

from repro.device.constants import PHI0_BAR_MV_PS as _PHIBAR
from repro.jsim.netlist import Circuit


@dataclass
class TransientResult:
    """Sampled waveforms of one transient run."""

    time_ps: np.ndarray
    phases: np.ndarray  # shape (steps, nodes) including ground column 0
    rates: np.ndarray  # dtheta/dt, same shape

    def node_phase(self, node: int) -> np.ndarray:
        return self.phases[:, node]

    def node_voltage_mv(self, node: int) -> np.ndarray:
        from repro.device.constants import PHI0_BAR_MV_PS

        return PHI0_BAR_MV_PS * self.rates[:, node]

    def junction_phase(self, node_plus: int, node_minus: int) -> np.ndarray:
        return self.phases[:, node_plus] - self.phases[:, node_minus]


class TransientSolver:
    """RK4 transient analysis of a :class:`~repro.jsim.netlist.Circuit`."""

    def __init__(self, circuit: Circuit, step_ps: float = 0.05) -> None:
        if step_ps <= 0:
            raise ValueError("time step must be positive")
        self.circuit = circuit
        self.step_ps = step_ps
        self._mass_inv = np.linalg.inv(circuit.mass_matrix())
        self._build_tables()

    def _build_tables(self) -> None:
        c = self.circuit
        self._jj_plus = np.array([j.node_plus for j in c.junctions], dtype=int)
        self._jj_minus = np.array([j.node_minus for j in c.junctions], dtype=int)
        self._jj_ic = np.array([j.critical_current_ua for j in c.junctions])
        self._jj_g = np.array(
            [1000.0 * _PHIBAR / j.shunt_resistance_ohm for j in c.junctions]
        )
        self._l_plus = np.array([l.node_plus for l in c.inductors], dtype=int)
        self._l_minus = np.array([l.node_minus for l in c.inductors], dtype=int)
        self._l_g = np.array([1000.0 * _PHIBAR / l.inductance_ph for l in c.inductors])
        self._r_plus = np.array([r.node_plus for r in c.resistors], dtype=int)
        self._r_minus = np.array([r.node_minus for r in c.resistors], dtype=int)
        self._r_g = np.array([1000.0 * _PHIBAR / r.resistance_ohm for r in c.resistors])

    def _net_current(self, theta: np.ndarray, rate: np.ndarray, t: float) -> np.ndarray:
        """Current injected into each non-ground node (uA)."""
        n = self.circuit.num_nodes
        injected = np.zeros(n)
        for source in self.circuit.sources:
            injected[source.node] += source.current_ua(t)
        if len(self._jj_ic):
            branch = theta[self._jj_plus] - theta[self._jj_minus]
            branch_rate = rate[self._jj_plus] - rate[self._jj_minus]
            current = self._jj_ic * np.sin(branch) + self._jj_g * branch_rate
            np.add.at(injected, self._jj_plus, -current)
            np.add.at(injected, self._jj_minus, current)
        if len(self._l_g):
            branch = theta[self._l_plus] - theta[self._l_minus]
            current = self._l_g * branch
            np.add.at(injected, self._l_plus, -current)
            np.add.at(injected, self._l_minus, current)
        if len(self._r_g):
            branch_rate = rate[self._r_plus] - rate[self._r_minus]
            current = self._r_g * branch_rate
            np.add.at(injected, self._r_plus, -current)
            np.add.at(injected, self._r_minus, current)
        return injected[1:]

    def _acceleration(self, theta: np.ndarray, rate: np.ndarray, t: float) -> np.ndarray:
        accel = np.zeros_like(theta)
        accel[1:] = self._mass_inv @ self._net_current(theta, rate, t)
        return accel

    def run(
        self,
        duration_ps: float,
        sample_every: int = 1,
        initial_phases: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate for ``duration_ps`` and return sampled waveforms."""
        if duration_ps <= 0:
            raise ValueError("duration must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        n = self.circuit.num_nodes
        theta = np.zeros(n) if initial_phases is None else initial_phases.astype(float).copy()
        if theta.shape != (n,):
            raise ValueError(f"initial phases must have shape ({n},)")
        rate = np.zeros(n)
        h = self.step_ps
        steps = int(round(duration_ps / h))
        wall_start = time.perf_counter()
        with obs.trace_span(
            "jsim/solver.run", duration_ps=duration_ps, nodes=n, steps=steps
        ):
            times, phases, rates = [], [], []
            for step in range(steps + 1):
                t = step * h
                if step % sample_every == 0:
                    times.append(t)
                    phases.append(theta.copy())
                    rates.append(rate.copy())
                # RK4 on the first-order system (theta, rate).
                k1v = self._acceleration(theta, rate, t)
                k1x = rate
                k2v = self._acceleration(theta + 0.5 * h * k1x, rate + 0.5 * h * k1v, t + 0.5 * h)
                k2x = rate + 0.5 * h * k1v
                k3v = self._acceleration(theta + 0.5 * h * k2x, rate + 0.5 * h * k2v, t + 0.5 * h)
                k3x = rate + 0.5 * h * k2v
                k4v = self._acceleration(theta + h * k3x, rate + h * k3v, t + h)
                k4x = rate + h * k3v
                theta = theta + (h / 6.0) * (k1x + 2 * k2x + 2 * k3x + k4x)
                rate = rate + (h / 6.0) * (k1v + 2 * k2v + 2 * k3v + k4v)
        wall_s = time.perf_counter() - wall_start
        obs.counter("jsim.runs").inc()
        obs.counter("jsim.steps").add(steps + 1)
        obs.histogram("jsim.run_seconds").observe(wall_s)
        if wall_s > 0:
            # How many picoseconds of circuit time one wall-second buys.
            obs.histogram("jsim.sim_ps_per_wall_s").observe(duration_ps / wall_s)
        return TransientResult(
            time_ps=np.array(times),
            phases=np.array(phases),
            rates=np.array(rates),
        )

