"""Fixed-step transient solver for Josephson circuits.

Integrates the second-order node-phase system

    M * ddtheta = I_src(t) - I_josephson(theta) - I_L(theta) - I_R(dtheta)

with classic RK4 at a fixed step (default 0.05 ps, a small fraction of the
junction plasma period).

The hot path is a batched array-program: element incidence matrices are
folded with the inverse mass matrix once per solver, so each RK4 stage is
a handful of dense matmuls plus one ``sin`` — no per-element scatters, no
per-step Python source evaluation (sources are tabulated over the
half-step time grid up front).  :meth:`TransientSolver.run_batch`
integrates any number of independent initial states / stimulus sets as
one stacked ``(batch, nodes)`` system; :meth:`TransientSolver.run` is the
batch-of-one wrapper.

:class:`ScalarReferenceSolver` preserves the original per-step scalar
implementation verbatim as the golden reference the vectorized kernel is
tested against (see ``tests/test_golden_vectorized.py``) and benchmarked
against (``SUPERNPU_JSIM_SOLVER=reference``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs

from repro.device.constants import PHI0_BAR_MV_PS as _PHIBAR
from repro.jsim.elements import CurrentSource
from repro.jsim.netlist import Circuit


@dataclass
class TransientResult:
    """Sampled waveforms of one transient run."""

    time_ps: np.ndarray
    phases: np.ndarray  # shape (steps, nodes) including ground column 0
    rates: np.ndarray  # dtheta/dt, same shape

    def node_phase(self, node: int) -> np.ndarray:
        return self.phases[:, node]

    def node_voltage_mv(self, node: int) -> np.ndarray:
        return _PHIBAR * self.rates[:, node]

    @property
    def voltages_mv(self) -> np.ndarray:
        """Node voltages in mV, same shape as :attr:`rates`."""
        return _PHIBAR * self.rates

    def junction_phase(self, node_plus: int, node_minus: int) -> np.ndarray:
        return self.phases[:, node_plus] - self.phases[:, node_minus]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (the ``data`` member of a CLI envelope)."""
        return {
            "nodes": int(self.phases.shape[-1]),
            "samples": int(self.phases.shape[-2]),
            "time_ps": self.time_ps.tolist(),
            "phases": self.phases.tolist(),
            "rates": self.rates.tolist(),
            "voltages_mv": self.voltages_mv.tolist(),
        }


@dataclass
class BatchTransientResult:
    """Sampled waveforms of a batched transient run.

    ``phases`` and ``rates`` are stacked ``(batch, samples, nodes)``;
    all members share one ``time_ps`` axis.
    """

    time_ps: np.ndarray
    phases: np.ndarray  # shape (batch, samples, nodes)
    rates: np.ndarray  # same shape

    @property
    def batch(self) -> int:
        return self.phases.shape[0]

    def __len__(self) -> int:
        return self.batch

    def member(self, index: int) -> TransientResult:
        """One batch member as a scalar :class:`TransientResult` (a view)."""
        return TransientResult(
            time_ps=self.time_ps,
            phases=self.phases[index],
            rates=self.rates[index],
        )

    def __iter__(self):
        return (self.member(i) for i in range(self.batch))

    @property
    def voltages_mv(self) -> np.ndarray:
        """Node voltages in mV, same shape as :attr:`rates`."""
        return _PHIBAR * self.rates

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (the ``data`` member of a CLI envelope)."""
        return {
            "batch": int(self.batch),
            "nodes": int(self.phases.shape[-1]),
            "samples": int(self.phases.shape[-2]),
            "time_ps": self.time_ps.tolist(),
            "phases": self.phases.tolist(),
            "rates": self.rates.tolist(),
        }


def _incidence(plus: np.ndarray, minus: np.ndarray, reduced_nodes: int) -> np.ndarray:
    """Signed incidence over non-ground nodes: branch = A @ theta[1:]."""
    a = np.zeros((len(plus), reduced_nodes))
    rows = np.arange(len(plus))
    has_plus = plus > 0
    a[rows[has_plus], plus[has_plus] - 1] += 1.0
    has_minus = minus > 0
    a[rows[has_minus], minus[has_minus] - 1] += -1.0
    return a


def _waveform_samples(source: CurrentSource, times: np.ndarray) -> np.ndarray:
    """Evaluate one source over the time grid, vectorized when possible.

    Waveforms from :mod:`repro.jsim.stimuli` accept arrays directly; plain
    scalar closures (``lambda t: ...``) fall back to a per-time Python
    loop — still once per run instead of four times per step.
    """
    try:
        values = np.asarray(source.current_ua(times), dtype=float)
    except Exception:
        values = None
    if values is not None and values.shape == times.shape:
        return values
    if values is not None and values.ndim == 0:
        # Likely a constant bias that ignores its argument; spot-check
        # before broadcasting so time-dependent scalars stay exact.
        level = float(values)
        if (
            float(source.current_ua(float(times[0]))) == level
            and float(source.current_ua(float(times[-1]))) == level
        ):
            return np.full(times.shape, level)
    return np.array([float(source.current_ua(float(t))) for t in times])


class TransientSolver:
    """RK4 transient analysis of a :class:`~repro.jsim.netlist.Circuit`.

    All element topology is folded into dense operators at construction:

    * ``sin(theta @ A_jj.T) @ sin_gain.T`` — the Josephson supercurrents,
    * ``theta @ K_theta.T`` / ``rate @ K_rate.T`` — the inductor and
      resistive (shunt + explicit R) Laplacians,

    each already multiplied through the inverse mass matrix, so one RK4
    stage costs four matmuls and one ``sin`` regardless of element count.
    """

    def __init__(self, circuit: Circuit, step_ps: float = 0.05) -> None:
        if step_ps <= 0:
            raise ValueError("time step must be positive")
        self.circuit = circuit
        self.step_ps = step_ps
        self._mass_inv = np.linalg.inv(circuit.mass_matrix())
        self._build_operators()

    def _build_operators(self) -> None:
        c = self.circuit
        reduced = c.num_nodes - 1
        minv = self._mass_inv

        jj_plus = np.array([j.node_plus for j in c.junctions], dtype=int)
        jj_minus = np.array([j.node_minus for j in c.junctions], dtype=int)
        jj_ic = np.array([j.critical_current_ua for j in c.junctions])
        jj_g = np.array(
            [1000.0 * _PHIBAR / j.shunt_resistance_ohm for j in c.junctions]
        )
        l_plus = np.array([ind.node_plus for ind in c.inductors], dtype=int)
        l_minus = np.array([ind.node_minus for ind in c.inductors], dtype=int)
        l_g = np.array([1000.0 * _PHIBAR / ind.inductance_ph for ind in c.inductors])
        r_plus = np.array([r.node_plus for r in c.resistors], dtype=int)
        r_minus = np.array([r.node_minus for r in c.resistors], dtype=int)
        r_g = np.array([1000.0 * _PHIBAR / r.resistance_ohm for r in c.resistors])

        a_jj = _incidence(jj_plus, jj_minus, reduced)
        a_l = _incidence(l_plus, l_minus, reduced)
        a_r = _incidence(r_plus, r_minus, reduced)

        self._reduced = reduced
        self._jj_count = len(jj_ic)
        # accel += sin(theta @ A_jj.T) @ sin_gain.T
        self._sin_gain_t = -(minv @ (a_jj.T * jj_ic)).T.copy()
        # Linear Laplacians folded with the inverse mass matrix.
        k_theta = minv @ ((a_l.T * l_g) @ a_l)
        k_rate = minv @ ((a_jj.T * jj_g) @ a_jj + (a_r.T * r_g) @ a_r)
        # One fused stage operator over the stacked state z = [theta, rate]:
        # z @ W = [linear acceleration | junction branch phases].  Applied
        # with einsum (not BLAS gemm) so each batch row reduces in the same
        # fixed order regardless of batch size — this is what makes
        # run_batch bitwise-identical to a loop of scalar runs.
        w_op = np.zeros((2 * reduced, reduced + self._jj_count))
        w_op[:reduced, :reduced] = -k_theta.T
        w_op[reduced:, :reduced] = -k_rate.T
        w_op[:reduced, reduced:] = a_jj.T
        self._w_op = w_op

    def _acceleration_into(
        self,
        state: np.ndarray,
        src: np.ndarray,
        out: np.ndarray,
        scratch: np.ndarray,
    ) -> None:
        """ddtheta for a stacked (batch, 2*(nodes-1)) stage state."""
        m = self._reduced
        np.einsum("bi,io->bo", state, self._w_op, out=scratch)
        if self._jj_count:
            np.sin(scratch[:, m:], out=scratch[:, m:])
            np.einsum("bj,jm->bm", scratch[:, m:], self._sin_gain_t, out=out)
            out += scratch[:, :m]
        else:
            out[:] = scratch[:, :m]
        out += src

    def _source_accel_table(
        self, times: np.ndarray, sources: Sequence[CurrentSource]
    ) -> np.ndarray:
        """(len(times), nodes-1) acceleration contributed by the sources."""
        n = self.circuit.num_nodes
        injected = np.zeros((times.size, n))
        for source in sources:
            if not 0 <= source.node < n:
                raise ValueError(f"source node {source.node} out of range")
            injected[:, source.node] += _waveform_samples(source, times)
        return injected[:, 1:] @ self._mass_inv.T

    @staticmethod
    def _resolve_batch(
        batch: Optional[int],
        initial_phases: Optional[np.ndarray],
        sources: Optional[Sequence[object]],
    ) -> int:
        sizes = {}
        if batch is not None:
            if batch < 1:
                raise ValueError("batch must be >= 1")
            sizes["batch"] = batch
        if sources is not None:
            sizes["sources"] = len(sources)
        if initial_phases is not None and initial_phases.ndim == 2:
            sizes["initial_phases"] = initial_phases.shape[0]
        if len(set(sizes.values())) > 1:
            raise ValueError(f"inconsistent batch sizes: {sizes}")
        return next(iter(sizes.values()), 1)

    def run_batch(
        self,
        duration_ps: float,
        sample_every: int = 1,
        *,
        batch: Optional[int] = None,
        initial_phases: Optional[np.ndarray] = None,
        sources: Optional[Sequence[Optional[Sequence[CurrentSource]]]] = None,
    ) -> BatchTransientResult:
        """Integrate a batch of independent transients as one stacked system.

        Args:
            duration_ps: integration length (shared by every member).
            sample_every: keep every ``sample_every``-th step.
            batch: explicit batch size (otherwise inferred from
                ``initial_phases`` / ``sources``, default 1).
            initial_phases: ``(nodes,)`` broadcast to all members, or
                ``(batch, nodes)`` per-member initial phases.
            sources: per-member stimulus override — a sequence of
                ``CurrentSource`` lists (``None`` entries keep the
                circuit's own sources).  Omitted: all members share the
                circuit's sources and their table is computed once.

        Returns:
            A :class:`BatchTransientResult`; ``member(i)`` views are
            bitwise-identical to running each member through
            :meth:`run` on its own.
        """
        if duration_ps <= 0:
            raise ValueError("duration must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        n = self.circuit.num_nodes
        if initial_phases is not None:
            initial_phases = np.asarray(initial_phases, dtype=float)
            if initial_phases.ndim == 1 and initial_phases.shape != (n,):
                raise ValueError(f"initial phases must have shape ({n},)")
            if initial_phases.ndim == 2 and initial_phases.shape[1] != n:
                raise ValueError(
                    f"initial phases must have shape ({n},) or (batch, {n})"
                )
            if initial_phases.ndim > 2:
                raise ValueError("initial phases must be 1-D or 2-D")
        size = self._resolve_batch(batch, initial_phases, sources)

        initial = np.zeros((size, n))
        if initial_phases is not None:
            initial[:] = initial_phases  # broadcasts (n,) or copies (B, n)

        h = self.step_ps
        steps = int(round(duration_ps / h))
        # RK4 needs the sources on the half-step grid: index 2k is time
        # k*h, index 2k+1 is k*h + h/2 (k4 of step k reads index 2k+2).
        whole = np.arange(steps + 1) * h
        grid = np.empty(2 * steps + 2)
        grid[0::2] = whole
        grid[1::2] = whole + 0.5 * h
        if sources is None:
            shared_src = self._source_accel_table(grid, self.circuit.sources)
            src_table = None
        else:
            shared_src = None
            src_table = np.stack(
                [
                    self._source_accel_table(
                        grid,
                        self.circuit.sources if member is None else list(member),
                    )
                    for member in sources
                ]
            )

        n_samples = steps // sample_every + 1
        phases = np.empty((size, n_samples, n))
        rates = np.empty((size, n_samples, n))
        phases[:, :, 0] = initial[:, 0:1]  # ground column never moves
        rates[:, :, 0] = 0.0
        m = self._reduced
        half_h = 0.5 * h
        sixth_h = h / 6.0
        # Stage buffers, allocated once and reused every step: z0 is the
        # live stacked state [theta | rate]; z1..z3 the RK4 stage states;
        # d1..d4 the stage derivatives [rate | accel] (so the update is a
        # single full-width linear combination folded into z0 in place).
        z0 = np.empty((size, 2 * m))
        z0[:, :m] = initial[:, 1:]
        z0[:, m:] = 0.0
        z1, z2, z3, d1, d2, d3, d4, acc = (np.empty_like(z0) for _ in range(8))
        samples = np.empty((n_samples, size, 2 * m))
        scratch = np.empty((size, m + self._jj_count))

        wall_start = time.perf_counter()
        with obs.trace_span(
            "jsim/solver.run",
            duration_ps=duration_ps,
            nodes=n,
            steps=steps,
            batch=size,
        ):
            sample_idx = 0
            for step in range(steps + 1):
                if step % sample_every == 0:
                    samples[sample_idx] = z0
                    sample_idx += 1
                if step == steps:
                    break
                if shared_src is not None:
                    s0 = shared_src[2 * step]
                    s_half = shared_src[2 * step + 1]
                    s1 = shared_src[2 * step + 2]
                else:
                    s0 = src_table[:, 2 * step]
                    s_half = src_table[:, 2 * step + 1]
                    s1 = src_table[:, 2 * step + 2]
                # RK4 on the first-order system; each stage derivative
                # d_i = [k_ix | k_iv] mirrors the scalar reference's
                # (k1x..k4x, k1v..k4v) pairs exactly.
                d1[:, :m] = z0[:, m:]
                self._acceleration_into(z0, s0, d1[:, m:], scratch)
                np.multiply(d1, half_h, out=z1)
                z1 += z0
                d2[:, :m] = z1[:, m:]
                self._acceleration_into(z1, s_half, d2[:, m:], scratch)
                np.multiply(d2, half_h, out=z2)
                z2 += z0
                d3[:, :m] = z2[:, m:]
                self._acceleration_into(z2, s_half, d3[:, m:], scratch)
                np.multiply(d3, h, out=z3)
                z3 += z0
                d4[:, :m] = z3[:, m:]
                self._acceleration_into(z3, s1, d4[:, m:], scratch)
                # z += (h/6) * (d1 + 2*d2 + 2*d3 + d4)
                np.add(d2, d3, out=acc)
                acc *= 2.0
                acc += d1
                acc += d4
                acc *= sixth_h
                z0 += acc
        wall_s = time.perf_counter() - wall_start
        phases[:, :, 1:] = samples[:, :, :m].transpose(1, 0, 2)
        rates[:, :, 1:] = samples[:, :, m:].transpose(1, 0, 2)
        obs.counter("jsim.runs").add(size)
        obs.counter("jsim.steps").add(size * (steps + 1))
        obs.histogram("jsim.run_seconds").observe(wall_s)
        if wall_s > 0:
            # How many picoseconds of circuit time one wall-second buys.
            obs.histogram("jsim.sim_ps_per_wall_s").observe(
                size * duration_ps / wall_s
            )
        return BatchTransientResult(
            time_ps=np.arange(0, steps + 1, sample_every) * h,
            phases=phases,
            rates=rates,
        )

    def run(
        self,
        duration_ps: float,
        sample_every: int = 1,
        initial_phases: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate for ``duration_ps`` and return sampled waveforms.

        Thin wrapper over :meth:`run_batch` with a batch of one.
        """
        if initial_phases is not None:
            initial_phases = np.asarray(initial_phases, dtype=float)
            if initial_phases.shape != (self.circuit.num_nodes,):
                raise ValueError(
                    f"initial phases must have shape ({self.circuit.num_nodes},)"
                )
        return self.run_batch(
            duration_ps, sample_every, initial_phases=initial_phases
        ).member(0)


class ScalarReferenceSolver:
    """The original per-step scalar RK4 implementation, kept verbatim.

    This is the golden reference for the vectorized kernel: per-element
    ``np.add.at`` scatters, per-stage Python source evaluation, and
    list-append sampling.  It emits no obs metrics — it exists for
    equivalence tests and before/after benchmarking
    (``SUPERNPU_JSIM_SOLVER=reference``), not for production runs.
    """

    def __init__(self, circuit: Circuit, step_ps: float = 0.05) -> None:
        if step_ps <= 0:
            raise ValueError("time step must be positive")
        self.circuit = circuit
        self.step_ps = step_ps
        self._mass_inv = np.linalg.inv(circuit.mass_matrix())
        self._build_tables()

    def _build_tables(self) -> None:
        c = self.circuit
        self._jj_plus = np.array([j.node_plus for j in c.junctions], dtype=int)
        self._jj_minus = np.array([j.node_minus for j in c.junctions], dtype=int)
        self._jj_ic = np.array([j.critical_current_ua for j in c.junctions])
        self._jj_g = np.array(
            [1000.0 * _PHIBAR / j.shunt_resistance_ohm for j in c.junctions]
        )
        self._l_plus = np.array([ind.node_plus for ind in c.inductors], dtype=int)
        self._l_minus = np.array([ind.node_minus for ind in c.inductors], dtype=int)
        self._l_g = np.array(
            [1000.0 * _PHIBAR / ind.inductance_ph for ind in c.inductors]
        )
        self._r_plus = np.array([r.node_plus for r in c.resistors], dtype=int)
        self._r_minus = np.array([r.node_minus for r in c.resistors], dtype=int)
        self._r_g = np.array(
            [1000.0 * _PHIBAR / r.resistance_ohm for r in c.resistors]
        )

    def _net_current(self, theta: np.ndarray, rate: np.ndarray, t: float) -> np.ndarray:
        """Current injected into each non-ground node (uA)."""
        n = self.circuit.num_nodes
        injected = np.zeros(n)
        for source in self.circuit.sources:
            injected[source.node] += source.current_ua(t)
        if len(self._jj_ic):
            branch = theta[self._jj_plus] - theta[self._jj_minus]
            branch_rate = rate[self._jj_plus] - rate[self._jj_minus]
            current = self._jj_ic * np.sin(branch) + self._jj_g * branch_rate
            np.add.at(injected, self._jj_plus, -current)
            np.add.at(injected, self._jj_minus, current)
        if len(self._l_g):
            branch = theta[self._l_plus] - theta[self._l_minus]
            current = self._l_g * branch
            np.add.at(injected, self._l_plus, -current)
            np.add.at(injected, self._l_minus, current)
        if len(self._r_g):
            branch_rate = rate[self._r_plus] - rate[self._r_minus]
            current = self._r_g * branch_rate
            np.add.at(injected, self._r_plus, -current)
            np.add.at(injected, self._r_minus, current)
        return injected[1:]

    def _acceleration(self, theta: np.ndarray, rate: np.ndarray, t: float) -> np.ndarray:
        accel = np.zeros_like(theta)
        accel[1:] = self._mass_inv @ self._net_current(theta, rate, t)
        return accel

    def run(
        self,
        duration_ps: float,
        sample_every: int = 1,
        initial_phases: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate for ``duration_ps`` and return sampled waveforms."""
        if duration_ps <= 0:
            raise ValueError("duration must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        n = self.circuit.num_nodes
        theta = np.zeros(n) if initial_phases is None else initial_phases.astype(float).copy()
        if theta.shape != (n,):
            raise ValueError(f"initial phases must have shape ({n},)")
        rate = np.zeros(n)
        h = self.step_ps
        steps = int(round(duration_ps / h))
        times: List[float] = []
        phases: List[np.ndarray] = []
        rates: List[np.ndarray] = []
        for step in range(steps + 1):
            t = step * h
            if step % sample_every == 0:
                times.append(t)
                phases.append(theta.copy())
                rates.append(rate.copy())
            # RK4 on the first-order system (theta, rate).
            k1v = self._acceleration(theta, rate, t)
            k1x = rate
            k2v = self._acceleration(theta + 0.5 * h * k1x, rate + 0.5 * h * k1v, t + 0.5 * h)
            k2x = rate + 0.5 * h * k1v
            k3v = self._acceleration(theta + 0.5 * h * k2x, rate + 0.5 * h * k2v, t + 0.5 * h)
            k3x = rate + 0.5 * h * k2v
            k4v = self._acceleration(theta + h * k3x, rate + h * k3v, t + h)
            k4x = rate + h * k3v
            theta = theta + (h / 6.0) * (k1x + 2 * k2x + 2 * k3x + k4x)
            rate = rate + (h / 6.0) * (k1v + 2 * k2v + 2 * k3v + k4v)
        return TransientResult(
            time_ps=np.array(times),
            phases=np.array(phases),
            rates=np.array(rates),
        )


def reference_run(
    circuit: Circuit,
    duration_ps: float,
    *,
    step_ps: float = 0.05,
    sample_every: int = 1,
    initial_phases: Optional[np.ndarray] = None,
) -> TransientResult:
    """Run the scalar golden-reference solver (convenience wrapper)."""
    return ScalarReferenceSolver(circuit, step_ps=step_ps).run(
        duration_ps, sample_every=sample_every, initial_phases=initial_phases
    )
