"""RCSJ-model transient circuit simulator for SFQ logic (JSIM substitute)."""

from repro.jsim.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    JosephsonJunction,
    Resistor,
)
from repro.jsim.netlist import Circuit, GROUND
from repro.jsim.solver import TransientResult, TransientSolver
from repro.jsim.stimuli import gaussian_pulse, pulse_train, ramped_bias
from repro.jsim.measure import (
    peak_voltage_mv,
    propagation_delay_ps,
    stored_flux_quanta,
    switch_count,
    switching_times_ps,
)
from repro.jsim.circuits import (
    JTL,
    ClockGenerator,
    CoincidenceGate,
    build_coincidence_and,
    StorageLoop,
    TransmissionLine,
    build_clock_generator,
    build_jtl,
    build_ptl,
    build_storage_loop,
    clock_bias_for_frequency,
    clock_generator_frequency_ghz,
    drive_jtl,
    jtl_stage_delay_ps,
    ptl_delay_ps_per_mm,
    tune_clock_generator,
)
from repro.jsim.extract import (
    MarginReport,
    bias_margins,
    extract_jtl_delay_ps,
    extract_setup_time_ps,
)
from repro.jsim.netlist_io import (
    NetlistError,
    parse_netlist,
    serialize_netlist,
)

__all__ = [
    "Capacitor",
    "CurrentSource",
    "Inductor",
    "JosephsonJunction",
    "Resistor",
    "Circuit",
    "GROUND",
    "TransientResult",
    "TransientSolver",
    "gaussian_pulse",
    "pulse_train",
    "ramped_bias",
    "peak_voltage_mv",
    "propagation_delay_ps",
    "stored_flux_quanta",
    "switch_count",
    "switching_times_ps",
    "JTL",
    "StorageLoop",
    "build_jtl",
    "build_storage_loop",
    "drive_jtl",
    "jtl_stage_delay_ps",
    "ClockGenerator",
    "CoincidenceGate",
    "build_coincidence_and",
    "TransmissionLine",
    "build_clock_generator",
    "build_ptl",
    "clock_bias_for_frequency",
    "clock_generator_frequency_ghz",
    "ptl_delay_ps_per_mm",
    "tune_clock_generator",
    "MarginReport",
    "bias_margins",
    "extract_jtl_delay_ps",
    "extract_setup_time_ps",
    "NetlistError",
    "parse_netlist",
    "serialize_netlist",
]
