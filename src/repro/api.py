"""``repro.api`` — the canonical typed entry points of the framework.

One facade instead of five scattered imports: resolve a design, estimate
it, simulate it, evaluate the paper suite, or compare arbitrary design
points, with uniform input handling everywhere:

* **designs** — a named design point (``"supernpu"``), a path to a JSON
  config file, a plain config dict, or an :class:`NPUConfig`;
* **workloads** — a benchmark name (``"resnet50"``) or a
  :class:`~repro.workloads.models.Network`;
* **technology** — ``"rsfq"`` / ``"ersfq"`` (or a
  :class:`~repro.device.cells.CellLibrary` for custom libraries).

Every simulation goes through the ambient job runner
(:mod:`repro.core.jobs`), so parallelism and result caching apply
uniformly::

    from repro import api

    config = api.design("supernpu")
    print(api.estimate(config).frequency_ghz)           # 52.6
    run = api.simulate(config, "resnet50", batch=30)

    with api.session(jobs=4, cache_dir="~/.cache/supernpu"):
        suite = api.evaluate()                          # Fig. 23, fanned out

Execution knobs (fan-out, cache, retries, timeouts, progress, hotspot
profiling) are one :class:`RunOptions` value shared by every verb —
``api.evaluate(options=RunOptions(jobs=4))`` is the one-shot spelling of
the session block above.  Plans evaluate either point-by-point
(:func:`run_plan`) or as dense axis-shaped grids (:func:`evaluate_grid`).

The CLI commands are thin wrappers over these functions.
"""

from __future__ import annotations

import sys
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.baselines.scalesim import TPU_CORE, CMOSNPUConfig
from repro.components import (
    ComponentEstimator,
    CrossTemperatureReport,
    all_components,
    component_by_name,
    cross_temperature_report,
)
from repro.core.ablate import AblationRow, ablation_study
from repro.core.batching import batch_for
from repro.core.compare import ComparisonColumn, compare as _compare
from repro.core.config_io import config_from_dict, load as _load_config
from repro.core.designs import design_by_name
from repro.core.evaluate import EvaluationSuite, evaluate_suite
from repro.core.jobs import (
    JobRunner,
    ResultCache,
    SimTask,
    get_runner,
    session,
    use_runner,
)
from repro.core.plan import (
    EvaluatedGrid,
    ExperimentPlan,
    GridEvaluation,
    ResultSet,
    evaluate_grid as _evaluate_grid,
    execute as _execute_plan,
    named_plans,
    plan_by_name,
)
from repro.core.resilience import RetryPolicy
from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import ConfigError, InvalidSpecError, InvalidWorkloadSpecError
from repro.estimator.arch_level import NPUEstimate
from repro.obs.hotspot import HotspotProfile, HotspotProfiler
from repro.obs.progress import ProgressReporter
from repro.obs.registry import RunRegistry
from repro.obs.timeline import CycleTimeline
from repro.simulator.results import SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads, by_name

#: Anything :func:`design` accepts.
DesignLike = Union[str, Path, Dict[str, object], NPUConfig]
#: Anything :func:`workload` accepts.
WorkloadLike = Union[str, Network]
#: Anything :func:`library` accepts.
TechnologyLike = Union[str, Technology, CellLibrary]

__all__ = [
    "DesignLike",
    "WorkloadLike",
    "TechnologyLike",
    "RunOptions",
    "design",
    "workload",
    "library",
    "component",
    "components",
    "cross_temperature",
    "estimate",
    "simulate",
    "evaluate",
    "evaluate_grid",
    "compare",
    "ablate",
    "plans",
    "plan",
    "run_plan",
    "serve",
    "ComponentEstimator",
    "CrossTemperatureReport",
    "EvaluatedGrid",
    "ExperimentPlan",
    "GridEvaluation",
    "ResultSet",
    "HotspotProfile",
    "HotspotProfiler",
    "JobRunner",
    "ProgressReporter",
    "ResultCache",
    "RunRegistry",
    "SimTask",
    "get_runner",
    "session",
    "use_runner",
]


def design(spec: DesignLike) -> NPUConfig:
    """Resolve any design description to an :class:`NPUConfig`.

    Accepts an ``NPUConfig`` (returned as-is), a config dict, a path to
    a JSON config file (``Path``, or a string naming an existing file /
    ending in ``.json``), or a named paper design point.
    """
    if isinstance(spec, NPUConfig):
        return spec
    if isinstance(spec, dict):
        return config_from_dict(spec)
    if isinstance(spec, Path):
        return _load_config(spec)
    if isinstance(spec, str):
        if spec.endswith(".json") or Path(spec).is_file():
            return _load_config(spec)
        return design_by_name(spec)
    raise InvalidSpecError(
        f"cannot resolve a design from {type(spec).__name__}; "
        "expected a name, dict, path, or NPUConfig",
        got=type(spec).__name__,
    )


def workload(spec: WorkloadLike) -> Network:
    """Resolve a benchmark name (or pass a Network through)."""
    if isinstance(spec, Network):
        return spec
    if isinstance(spec, str):
        return by_name(spec)
    raise InvalidWorkloadSpecError(
        f"cannot resolve a workload from {type(spec).__name__}; "
        "expected a name or Network",
        got=type(spec).__name__,
    )


def library(technology: TechnologyLike = "rsfq") -> CellLibrary:
    """Resolve a technology name / enum (or pass a CellLibrary through)."""
    if isinstance(technology, CellLibrary):
        return technology
    if isinstance(technology, Technology):
        return library_for(technology)
    if isinstance(technology, str):
        try:
            resolved = Technology(technology)
        except ValueError:
            raise ConfigError(
                f"unknown technology {technology!r}; "
                f"known: {[t.value for t in Technology]}",
                code="config.unknown_technology", name=technology,
            ) from None
        return library_for(resolved)
    raise InvalidSpecError(
        f"cannot resolve a cell library from {type(technology).__name__}; "
        "expected 'rsfq' / 'ersfq', a Technology, or a CellLibrary",
        got=type(technology).__name__,
    )


def component(name: str, kind: Optional[str] = None) -> ComponentEstimator:
    """Look up a registered component estimator by name.

    ``kind`` optionally restricts the lookup (``"memory"`` / ``"link"``);
    unknown names raise a :class:`ConfigError` listing the registry.
    """
    return component_by_name(name, kind=kind)


def components(kind: Optional[str] = None) -> List[ComponentEstimator]:
    """Every registered component, in registration order."""
    return all_components(kind=kind)


def cross_temperature(run: SimulationResult,
                      estimate_result: NPUEstimate) -> CrossTemperatureReport:
    """Per-stage dissipation + ladder-charged wall power of one run."""
    return cross_temperature_report(run, estimate_result)


@dataclass(frozen=True)
class RunOptions:
    """One bundle of execution knobs, shared by every ``repro.api`` verb.

    Where the verbs used to grow divergent keyword arguments, they now
    all take ``options=RunOptions(...)``:

    * ``jobs`` — parallel workers (1 = in-process serial);
    * ``cache_dir`` — result-cache directory (``None`` = no cache);
    * ``no_cache`` — force cache off even if ``cache_dir`` is set;
    * ``retries`` — re-attempts for transient task failures;
    * ``timeout_s`` — per-task wall-clock bound (parallel mode);
    * ``progress`` — a live :class:`~repro.obs.progress.ProgressReporter`
      (``None`` = off);
    * ``hotspot`` / ``hotspot_mode`` / ``hotspot_out`` — profile the
      call's host self-time (sampling or tracing); the collapsed stacks
      go to ``hotspot_out`` when given, otherwise a one-line summary is
      printed to stderr.

    The old per-verb ``runner=`` keyword still works but warns once per
    verb (:class:`DeprecationWarning`); new code should pass ``options=``
    or install an ambient session (:func:`session` / :func:`use_runner`).
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    no_cache: bool = False
    retries: int = 2
    timeout_s: Optional[float] = None
    progress: Optional[ProgressReporter] = None
    hotspot: bool = False
    hotspot_mode: str = "sampling"
    hotspot_out: Optional[Union[str, Path]] = None


#: Verbs whose deprecated ``runner=`` keyword already warned this process.
_RUNNER_DEPRECATION_WARNED: set = set()


def _warn_runner_kwarg(verb: str) -> None:
    if verb in _RUNNER_DEPRECATION_WARNED:
        return
    _RUNNER_DEPRECATION_WARNED.add(verb)
    warnings.warn(
        f"the runner= keyword of repro.api.{verb} is deprecated; pass "
        "options=RunOptions(...) or install an ambient session "
        "(api.session(...) / api.use_runner(...)) instead",
        DeprecationWarning,
        stacklevel=4,
    )


@contextmanager
def _execution_scope(verb: str,
                     options: Optional[RunOptions],
                     runner: Optional[JobRunner]) -> Iterator[JobRunner]:
    """Resolve ``options=`` / deprecated ``runner=`` to an active runner."""
    if options is not None and runner is not None:
        raise ConfigError(
            f"repro.api.{verb} got both options= and the deprecated "
            "runner=; pass only options=",
            code="api.options_conflict", verb=verb)
    if runner is not None:
        _warn_runner_kwarg(verb)
        with use_runner(runner):
            yield runner
        return
    if options is None:
        yield get_runner()
        return
    profiler = None
    if options.hotspot:
        profiler = HotspotProfiler(mode=options.hotspot_mode)
        profiler.start()
    try:
        cache_dir = None if options.no_cache else options.cache_dir
        with session(jobs=options.jobs, cache_dir=cache_dir,
                     retry=RetryPolicy(max_retries=options.retries),
                     timeout_s=options.timeout_s,
                     progress=options.progress) as scoped:
            yield scoped
    finally:
        if profiler is not None:
            profile = profiler.stop()
            if options.hotspot_out is not None:
                with open(options.hotspot_out, "w", encoding="utf-8") as fh:
                    fh.write(profile.collapsed())
            else:
                summary = profile.summary(top_n=3)
                print(f"hotspot [{verb}]: {summary}", file=sys.stderr)


def estimate(design_spec: DesignLike, *,
             technology: TechnologyLike = "rsfq",
             options: Optional[RunOptions] = None,
             runner: Optional[JobRunner] = None) -> NPUEstimate:
    """Frequency / power / area estimation of one design point."""
    with _execution_scope("estimate", options, runner) as scoped:
        return scoped.estimate(design(design_spec), library(technology))


def simulate(design_spec: DesignLike, workload_spec: WorkloadLike, *,
             batch: Optional[int] = None,
             technology: TechnologyLike = "rsfq",
             timeline: Optional[CycleTimeline] = None,
             options: Optional[RunOptions] = None,
             runner: Optional[JobRunner] = None) -> SimulationResult:
    """Cycle-level simulation of one workload on one design.

    ``batch=None`` applies the paper's Table II policy (named designs)
    or the capacity-derived rule (custom configs).  A ``timeline`` run
    bypasses the runner — the timeline is filled by live simulation, so
    it cannot come from the cache or another process.
    """
    config = design(design_spec)
    network = workload(workload_spec)
    lib = library(technology)
    resolved_batch = batch if batch is not None else batch_for(config, network)
    with _execution_scope("simulate", options, runner) as scoped:
        if timeline is not None:
            from repro.simulator.engine import simulate as engine_simulate

            est = scoped.estimate(config, lib)
            return engine_simulate(config, network, batch=resolved_batch,
                                   estimate=est, timeline=timeline)
        return scoped.run_one(SimTask(config, network, resolved_batch, lib))


def evaluate(designs: Optional[Sequence[DesignLike]] = None,
             workloads: Optional[Sequence[WorkloadLike]] = None, *,
             technology: TechnologyLike = "rsfq",
             tpu: CMOSNPUConfig = TPU_CORE,
             options: Optional[RunOptions] = None,
             runner: Optional[JobRunner] = None) -> EvaluationSuite:
    """The Fig. 23 suite: TPU baseline + design points x workloads."""
    with _execution_scope("evaluate", options, runner) as scoped:
        return evaluate_suite(
            designs=None if designs is None else [design(d) for d in designs],
            workloads=None if workloads is None
            else [workload(w) for w in workloads],
            library=library(technology),
            tpu=tpu,
            runner=scoped,
        )


def compare(designs: Sequence[DesignLike],
            workloads: Optional[Sequence[WorkloadLike]] = None, *,
            technology: TechnologyLike = "rsfq",
            options: Optional[RunOptions] = None,
            runner: Optional[JobRunner] = None) -> List[ComparisonColumn]:
    """Side-by-side scorecards for any set of design points."""
    with _execution_scope("compare", options, runner) as scoped:
        return _compare(
            [design(d) for d in designs],
            workloads=None if workloads is None
            else [workload(w) for w in workloads],
            library=library(technology),
            runner=scoped,
        )


def ablate(base: Optional[DesignLike] = None,
           workloads: Optional[Sequence[WorkloadLike]] = None, *,
           technology: TechnologyLike = "rsfq",
           options: Optional[RunOptions] = None,
           runner: Optional[JobRunner] = None) -> List[AblationRow]:
    """One-factor-at-a-time ablation of a design (default: SuperNPU)."""
    with _execution_scope("ablate", options, runner) as scoped:
        return ablation_study(
            workloads=None if workloads is None
            else [workload(w) for w in workloads],
            library=library(technology),
            base=None if base is None else design(base),
            runner=scoped,
        )


def plans() -> List[str]:
    """The registered experiment plans (one per figure/table grid)."""
    return named_plans()


def plan(name: str) -> ExperimentPlan:
    """Build a registered plan by name (``ConfigError`` if unknown)."""
    return plan_by_name(name)


def run_plan(plan_or_name: Union[str, ExperimentPlan], *,
             options: Optional[RunOptions] = None,
             runner: Optional[JobRunner] = None) -> ResultSet:
    """Execute a plan (or a registered plan name) through the job engine.

    Inherits the ambient runner's cache, parallel fan-out, retry/timeout
    handling, and checkpoint resume; returns provenance-stamped per-point
    results.
    """
    resolved = plan_by_name(plan_or_name) if isinstance(plan_or_name, str) \
        else plan_or_name
    with _execution_scope("run_plan", options, runner) as scoped:
        return _execute_plan(resolved, runner=scoped)


def evaluate_grid(plan_or_name: Union[str, ExperimentPlan], *,
                  options: Optional[RunOptions] = None,
                  runner: Optional[JobRunner] = None) -> GridEvaluation:
    """Run a plan and return dense, axis-shaped per-grid result arrays.

    The lowered design points still execute through the job engine as
    one deduplicated submission (cache, fan-out, retries, checkpoints
    all apply); the returned :class:`GridEvaluation` adds the vectorized
    result surface — ``evaluation.grid().array("mac_per_s")`` is the
    whole grid as one numpy array, shaped by the grid's axes, instead of
    a hand-rolled loop over per-point records.
    """
    resolved = plan_by_name(plan_or_name) if isinstance(plan_or_name, str) \
        else plan_or_name
    with _execution_scope("evaluate_grid", options, runner) as scoped:
        return _evaluate_grid(resolved, runner=scoped)


def paper_workloads() -> List[Network]:
    """The six benchmark CNNs, in canonical order."""
    return all_workloads()


def serve(**config_kwargs):
    """Construct the evaluation daemon (``repro.serve.EvalDaemon``).

    Keyword arguments are :class:`repro.serve.ServeConfig` fields
    (``cache_dir``, ``jobs``, ``quota_rate_per_s``, ...).  Call
    ``.run()`` on the result to block until SIGTERM, or use
    ``repro.serve.daemon_in_thread`` to host one inside a test.  The
    import is lazy because :mod:`repro.serve` resolves requests through
    this facade.
    """
    from repro.serve import EvalDaemon, ServeConfig

    return EvalDaemon(ServeConfig(**config_kwargs))
