"""``repro.api`` — the canonical typed entry points of the framework.

One facade instead of five scattered imports: resolve a design, estimate
it, simulate it, evaluate the paper suite, or compare arbitrary design
points, with uniform input handling everywhere:

* **designs** — a named design point (``"supernpu"``), a path to a JSON
  config file, a plain config dict, or an :class:`NPUConfig`;
* **workloads** — a benchmark name (``"resnet50"``) or a
  :class:`~repro.workloads.models.Network`;
* **technology** — ``"rsfq"`` / ``"ersfq"`` (or a
  :class:`~repro.device.cells.CellLibrary` for custom libraries).

Every simulation goes through the ambient job runner
(:mod:`repro.core.jobs`), so parallelism and result caching apply
uniformly::

    from repro import api

    config = api.design("supernpu")
    print(api.estimate(config).frequency_ghz)           # 52.6
    run = api.simulate(config, "resnet50", batch=30)

    with api.session(jobs=4, cache_dir="~/.cache/supernpu"):
        suite = api.evaluate()                          # Fig. 23, fanned out

The CLI commands are thin wrappers over these functions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.baselines.scalesim import TPU_CORE, CMOSNPUConfig
from repro.core.ablate import AblationRow, ablation_study
from repro.core.batching import batch_for
from repro.core.compare import ComparisonColumn, compare as _compare
from repro.core.config_io import config_from_dict, load as _load_config
from repro.core.designs import design_by_name
from repro.core.evaluate import EvaluationSuite, evaluate_suite
from repro.core.jobs import (
    JobRunner,
    ResultCache,
    SimTask,
    get_runner,
    session,
    use_runner,
)
from repro.core.plan import (
    ExperimentPlan,
    ResultSet,
    execute as _execute_plan,
    named_plans,
    plan_by_name,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.errors import ConfigError, InvalidSpecError, InvalidWorkloadSpecError
from repro.estimator.arch_level import NPUEstimate
from repro.obs.hotspot import HotspotProfile, HotspotProfiler
from repro.obs.progress import ProgressReporter
from repro.obs.registry import RunRegistry
from repro.obs.timeline import CycleTimeline
from repro.simulator.results import SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network, all_workloads, by_name

#: Anything :func:`design` accepts.
DesignLike = Union[str, Path, Dict[str, object], NPUConfig]
#: Anything :func:`workload` accepts.
WorkloadLike = Union[str, Network]
#: Anything :func:`library` accepts.
TechnologyLike = Union[str, Technology, CellLibrary]

__all__ = [
    "DesignLike",
    "WorkloadLike",
    "TechnologyLike",
    "design",
    "workload",
    "library",
    "estimate",
    "simulate",
    "evaluate",
    "compare",
    "ablate",
    "plans",
    "plan",
    "run_plan",
    "ExperimentPlan",
    "ResultSet",
    "HotspotProfile",
    "HotspotProfiler",
    "JobRunner",
    "ProgressReporter",
    "ResultCache",
    "RunRegistry",
    "SimTask",
    "get_runner",
    "session",
    "use_runner",
]


def design(spec: DesignLike) -> NPUConfig:
    """Resolve any design description to an :class:`NPUConfig`.

    Accepts an ``NPUConfig`` (returned as-is), a config dict, a path to
    a JSON config file (``Path``, or a string naming an existing file /
    ending in ``.json``), or a named paper design point.
    """
    if isinstance(spec, NPUConfig):
        return spec
    if isinstance(spec, dict):
        return config_from_dict(spec)
    if isinstance(spec, Path):
        return _load_config(spec)
    if isinstance(spec, str):
        if spec.endswith(".json") or Path(spec).is_file():
            return _load_config(spec)
        return design_by_name(spec)
    raise InvalidSpecError(
        f"cannot resolve a design from {type(spec).__name__}; "
        "expected a name, dict, path, or NPUConfig",
        got=type(spec).__name__,
    )


def workload(spec: WorkloadLike) -> Network:
    """Resolve a benchmark name (or pass a Network through)."""
    if isinstance(spec, Network):
        return spec
    if isinstance(spec, str):
        return by_name(spec)
    raise InvalidWorkloadSpecError(
        f"cannot resolve a workload from {type(spec).__name__}; "
        "expected a name or Network",
        got=type(spec).__name__,
    )


def library(technology: TechnologyLike = "rsfq") -> CellLibrary:
    """Resolve a technology name / enum (or pass a CellLibrary through)."""
    if isinstance(technology, CellLibrary):
        return technology
    if isinstance(technology, Technology):
        return library_for(technology)
    if isinstance(technology, str):
        try:
            resolved = Technology(technology)
        except ValueError:
            raise ConfigError(
                f"unknown technology {technology!r}; "
                f"known: {[t.value for t in Technology]}",
                code="config.unknown_technology", name=technology,
            ) from None
        return library_for(resolved)
    raise InvalidSpecError(
        f"cannot resolve a cell library from {type(technology).__name__}; "
        "expected 'rsfq' / 'ersfq', a Technology, or a CellLibrary",
        got=type(technology).__name__,
    )


def estimate(design_spec: DesignLike, *,
             technology: TechnologyLike = "rsfq",
             runner: Optional[JobRunner] = None) -> NPUEstimate:
    """Frequency / power / area estimation of one design point."""
    runner = runner or get_runner()
    return runner.estimate(design(design_spec), library(technology))


def simulate(design_spec: DesignLike, workload_spec: WorkloadLike, *,
             batch: Optional[int] = None,
             technology: TechnologyLike = "rsfq",
             timeline: Optional[CycleTimeline] = None,
             runner: Optional[JobRunner] = None) -> SimulationResult:
    """Cycle-level simulation of one workload on one design.

    ``batch=None`` applies the paper's Table II policy (named designs)
    or the capacity-derived rule (custom configs).  A ``timeline`` run
    bypasses the runner — the timeline is filled by live simulation, so
    it cannot come from the cache or another process.
    """
    config = design(design_spec)
    network = workload(workload_spec)
    lib = library(technology)
    resolved_batch = batch if batch is not None else batch_for(config, network)
    if timeline is not None:
        from repro.simulator.engine import simulate as engine_simulate

        runner = runner or get_runner()
        est = runner.estimate(config, lib)
        return engine_simulate(config, network, batch=resolved_batch,
                               estimate=est, timeline=timeline)
    runner = runner or get_runner()
    return runner.run_one(SimTask(config, network, resolved_batch, lib))


def evaluate(designs: Optional[Sequence[DesignLike]] = None,
             workloads: Optional[Sequence[WorkloadLike]] = None, *,
             technology: TechnologyLike = "rsfq",
             tpu: CMOSNPUConfig = TPU_CORE,
             runner: Optional[JobRunner] = None) -> EvaluationSuite:
    """The Fig. 23 suite: TPU baseline + design points x workloads."""
    return evaluate_suite(
        designs=None if designs is None else [design(d) for d in designs],
        workloads=None if workloads is None else [workload(w) for w in workloads],
        library=library(technology),
        tpu=tpu,
        runner=runner,
    )


def compare(designs: Sequence[DesignLike],
            workloads: Optional[Sequence[WorkloadLike]] = None, *,
            technology: TechnologyLike = "rsfq",
            runner: Optional[JobRunner] = None) -> List[ComparisonColumn]:
    """Side-by-side scorecards for any set of design points."""
    return _compare(
        [design(d) for d in designs],
        workloads=None if workloads is None else [workload(w) for w in workloads],
        library=library(technology),
        runner=runner,
    )


def ablate(base: Optional[DesignLike] = None,
           workloads: Optional[Sequence[WorkloadLike]] = None, *,
           technology: TechnologyLike = "rsfq",
           runner: Optional[JobRunner] = None) -> List[AblationRow]:
    """One-factor-at-a-time ablation of a design (default: SuperNPU)."""
    return ablation_study(
        workloads=None if workloads is None else [workload(w) for w in workloads],
        library=library(technology),
        base=None if base is None else design(base),
        runner=runner,
    )


def plans() -> List[str]:
    """The registered experiment plans (one per figure/table grid)."""
    return named_plans()


def plan(name: str) -> ExperimentPlan:
    """Build a registered plan by name (``ConfigError`` if unknown)."""
    return plan_by_name(name)


def run_plan(plan_or_name: Union[str, ExperimentPlan], *,
             runner: Optional[JobRunner] = None) -> ResultSet:
    """Execute a plan (or a registered plan name) through the job engine.

    Inherits the ambient runner's cache, parallel fan-out, retry/timeout
    handling, and checkpoint resume; returns provenance-stamped per-point
    results.
    """
    resolved = plan_by_name(plan_or_name) if isinstance(plan_or_name, str) \
        else plan_or_name
    return _execute_plan(resolved, runner=runner)


def paper_workloads() -> List[Network]:
    """The six benchmark CNNs, in canonical order."""
    return all_workloads()
