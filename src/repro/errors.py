"""``repro.errors`` — the structured exception taxonomy of the framework.

Every user-facing failure raised by the stack is a :class:`ReproError`
carrying a machine-readable ``code`` (dotted, stable, greppable), a
``context`` dict of the values that triggered it, and an optional
``remediation`` hint.  The CLI maps the taxonomy onto distinct exit
codes (see ``docs/ROBUSTNESS.md``):

==================  =========  =======================================
class               exit code  meaning
==================  =========  =======================================
:class:`ConfigError`        2  bad usage / design configuration
:class:`WorkloadError`      3  bad or unknown workload / layer
:class:`SimulationError`    4  a simulation failed
:class:`WorkerError`        4  a worker task failed after retries
:class:`CacheError`         5  the result cache is unusable
==================  =========  =======================================

For backward compatibility with the pre-taxonomy API, the validation
classes also inherit the builtin exception they replaced:
``ConfigError``/``WorkloadError`` are ``ValueError``s, the
``Unknown*Error`` name-lookup variants are ``KeyError``s, and the
``Invalid*Spec`` resolution variants are ``TypeError``s — existing
``except ValueError`` call sites keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


def _rebuild_error(cls: type, message: str, code: str, hint: Optional[str],
                   context: Dict[str, Any]) -> "ReproError":
    """Unpickle helper preserving code / hint / context across processes."""
    error = cls(message, code=code, hint=hint, context=context)
    return error


class ReproError(Exception):
    """Root of the taxonomy: a structured, user-addressable failure.

    Attributes:
        message: Human-readable one-line description.
        code: Stable machine-readable identifier (``"config.unknown_fields"``).
        hint: Optional remediation suggestion shown by the CLI.
        context: Machine-readable details (offending values, paths, keys).
    """

    #: Process exit code the CLI maps this class to.
    exit_code: int = 1
    #: Default ``code`` when the raise site does not pass one.
    default_code: str = "repro.internal"

    def __init__(self, message: str, *, code: Optional[str] = None,
                 hint: Optional[str] = None,
                 context: Optional[Dict[str, Any]] = None, **extra: Any) -> None:
        super().__init__(message)
        self.message = message
        self.code = code or type(self).default_code
        self.hint = hint
        self.context: Dict[str, Any] = dict(context or {})
        self.context.update(extra)

    def __str__(self) -> str:
        return self.message

    def __reduce__(self):
        return (_rebuild_error,
                (type(self), self.message, self.code, self.hint, self.context))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record of the failure (for reports and logs)."""
        return {
            "kind": type(self).__name__,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
            "context": self.context,
            "exit_code": self.exit_code,
        }

    def describe(self) -> str:
        """The message plus the hint, for one-shot display."""
        if self.hint:
            return f"{self.message}\nhint: {self.hint}"
        return self.message


class ConfigError(ReproError, ValueError):
    """Invalid usage or design configuration (bad field, bad file, bad flag)."""

    exit_code = 2
    default_code = "config.invalid"


class UnknownDesignError(ConfigError, KeyError):
    """A design name that resolves to nothing."""

    default_code = "config.unknown_design"


class InvalidSpecError(ConfigError, TypeError):
    """A design / technology spec of a type the resolver cannot handle."""

    default_code = "config.invalid_spec"


class WorkloadError(ReproError, ValueError):
    """Invalid or malformed workload / layer description."""

    exit_code = 3
    default_code = "workload.invalid"


class UnknownWorkloadError(WorkloadError, KeyError):
    """A workload (or layer) name that resolves to nothing."""

    default_code = "workload.unknown"


class InvalidWorkloadSpecError(WorkloadError, TypeError):
    """A workload spec of a type the resolver cannot handle."""

    default_code = "workload.invalid_spec"


class SimulationError(ReproError):
    """A simulation that could not produce a result."""

    exit_code = 4
    default_code = "simulation.failed"


class WorkerError(SimulationError):
    """A job-runner task that failed after exhausting its retry budget."""

    default_code = "worker.failed"


class CacheError(ReproError):
    """The result cache is unusable (unwritable directory, failed replace)."""

    exit_code = 5
    default_code = "cache.unusable"


__all__ = [
    "ReproError",
    "ConfigError",
    "UnknownDesignError",
    "InvalidSpecError",
    "WorkloadError",
    "UnknownWorkloadError",
    "InvalidWorkloadSpecError",
    "SimulationError",
    "WorkerError",
    "CacheError",
]
