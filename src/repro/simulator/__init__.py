"""Cycle-level SFQ-NPU simulator (mapping, engine, memory, power)."""

from repro.simulator.datapath import Datapath, build_datapath
from repro.simulator.mapping import LayerMapping, MappingTile, map_layer, utilization
from repro.simulator.memory import MemoryModel
from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult
from repro.simulator.engine import simulate, simulate_layer
from repro.simulator.power import DATA_ACTIVITY, PowerReport, power_report
from repro.simulator.dataflow_ablation import estimate_os_npu, simulate_os
from repro.simulator.batch_sweep import BatchPoint, batch_sweep, knee_batch
from repro.simulator.utilization import (
    UtilizationReport,
    compare_utilization,
    utilization_report,
)
from repro.simulator.training import (
    TrainingResult,
    gradient_layer,
    gradient_network,
    simulate_training_step,
)
from repro.simulator.trace import (
    TraceEvent,
    trace_layer,
    trace_summary,
    trace_to_csv,
)

__all__ = [
    "Datapath",
    "build_datapath",
    "LayerMapping",
    "MappingTile",
    "map_layer",
    "utilization",
    "MemoryModel",
    "ActivityTrace",
    "LayerResult",
    "SimulationResult",
    "simulate",
    "simulate_layer",
    "DATA_ACTIVITY",
    "PowerReport",
    "power_report",
    "estimate_os_npu",
    "simulate_os",
    "BatchPoint",
    "batch_sweep",
    "knee_batch",
    "UtilizationReport",
    "compare_utilization",
    "utilization_report",
    "TrainingResult",
    "gradient_layer",
    "gradient_network",
    "simulate_training_step",
    "TraceEvent",
    "trace_layer",
    "trace_summary",
    "trace_to_csv",
]
