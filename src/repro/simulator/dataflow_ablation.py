"""Output-stationary dataflow ablation (paper Section III-B, Fig. 6/7).

The paper rejects the output-stationary (OS) PE because its accumulator
feedback loop forces counter-flow clocking, roughly halving the clock
(Fig. 7c).  This module makes that trade-off measurable end to end: an OS
NPU built from the same units, simulated on the same workloads.

OS execution model: a tile of output values (array height x width of them)
stays resident in the PEs while the full reduction streams through:

* mappings = ceil(E*F*B / height) * ceil(K / width) * groups
* per mapping: stream ``reduction`` values (+ pipeline fill), then drain
  the finished outputs (one row per cycle);
* weights stream once per *output* tile — the OS penalty: weight traffic
  multiplies by the number of E*F*B tiles (WS streams them once);
* the shift-register ifmap buffer must rotate back to the tile's window
  before every re-streaming, charging the same per-mapping rewind WS pays.

No psum buffer exists (accumulation happens in place), so the Baseline's
psum-movement pathology disappears — but the clock halves and the weight
traffic explodes, which is exactly the paper's argument.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.device.cells import CellLibrary
from repro.estimator.arch_level import NPUEstimate, build_units, estimate_npu, interface_gate_pairs
from repro.simulator.memory import MemoryModel, memory_model_for
from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult
from repro.uarch.config import NPUConfig
from repro.uarch.mac import Dataflow
from repro.uarch.pe import ProcessingElement
from repro.workloads.layers import ConvLayer
from repro.workloads.models import Network


def estimate_os_npu(config: NPUConfig, library: CellLibrary) -> NPUEstimate:
    """Architecture estimate with output-stationary PEs.

    Identical to :func:`~repro.estimator.arch_level.estimate_npu` except the
    PE array carries the accumulator feedback loop, so the chip clock drops
    to the counter-flow bound (~31.8 GHz instead of 52.6 GHz).
    """
    base = estimate_npu(config, library)
    os_pe = ProcessingElement(
        bits=config.data_bits,
        psum_bits=config.psum_bits,
        registers=config.registers_per_pe,
        dataflow=Dataflow.OUTPUT_STATIONARY,
    )
    pe_report = os_pe.frequency(library)
    worst_cct = pe_report.cycle_time_ps
    critical = "pe_array (OS accumulator loop)"
    for pair in interface_gate_pairs():
        constraint = pair.resolve(library)
        if constraint.cycle_time_ps > worst_cct:
            worst_cct = constraint.cycle_time_ps
            critical = pair.label
    for name, unit in build_units(config).items():
        if name == "pe_array":
            continue
        try:
            report = unit.frequency(library)
        except ValueError:
            continue
        if report.cycle_time_ps > worst_cct:
            worst_cct = report.cycle_time_ps
            critical = name
    return NPUEstimate(
        config=config,
        technology=base.technology,
        frequency_ghz=1e3 / worst_cct,
        cycle_time_ps=worst_cct,
        critical_path=critical,
        units=base.units,
        wiring_area_mm2=base.wiring_area_mm2,
        wiring_static_power_w=base.wiring_static_power_w,
    )


def _simulate_os_layer(
    layer: ConvLayer,
    config: NPUConfig,
    batch: int,
    memory: MemoryModel,
    pe_stages: int,
    ifmap_rewind_cycles: int,
    input_resident: bool,
    is_last_layer: bool,
) -> "tuple[LayerResult, bool]":
    vectors = layer.output_pixels * batch
    height = config.pe_array_height
    width = config.pe_array_width
    reduction = layer.reduction_size

    output_tiles = (
        math.ceil(vectors / height)
        * math.ceil(layer.filters_per_group / width)
        * layer.groups
    )
    compute = output_tiles * (reduction + pe_stages)
    drain = output_tiles * height  # outputs leave one row per cycle
    # Every tile re-streams the ifmap window, so the shift-register buffer
    # rotates back once per tile (the same cost WS pays per weight mapping).
    ifmap_prep = max(0, output_tiles - 1) * ifmap_rewind_cycles
    # Weights re-stream once per output tile (the OS reuse penalty); load
    # cycles track the streamed volume at one value per column per cycle.
    weight_tile_bytes = min(reduction, height) * min(layer.filters_per_group, width)
    weight_load = output_tiles * math.ceil(weight_tile_bytes / width)

    traffic = weight_tile_bytes * output_tiles
    ifmap_volume = layer.ifmap_bytes * batch
    if not input_resident:
        traffic += ifmap_volume
    output_resident = (
        not is_last_layer
        and layer.ofmap_bytes * batch <= config.output_buffer_bytes
    )
    if not output_resident:
        traffic += layer.ofmap_bytes * batch

    on_chip = compute + drain + weight_load + ifmap_prep
    dram_cycles = memory.transfer_cycles(traffic)
    result = LayerResult(
        name=layer.name,
        mappings=output_tiles,
        weight_load_cycles=weight_load,
        ifmap_prep_cycles=ifmap_prep,
        psum_move_cycles=0,
        activation_transfer_cycles=drain,
        compute_cycles=compute,
        dram_traffic_bytes=traffic,
        dram_cycles=dram_cycles,
        total_cycles=max(on_chip, dram_cycles),
        macs=layer.macs_per_image * batch,
    )
    return result, output_resident


def simulate_os(
    config: NPUConfig,
    network: Network,
    batch: int = 1,
    estimate: Optional[NPUEstimate] = None,
    library: Optional[CellLibrary] = None,
) -> SimulationResult:
    """Cycle-level simulation of ``network`` on an OS-dataflow NPU."""
    if batch < 1:
        raise ValueError("batch must be positive")
    if estimate is None:
        if library is None:
            from repro.device.cells import rsfq_library

            library = rsfq_library()
        estimate = estimate_os_npu(config, library)

    memory = memory_model_for(config, estimate.frequency_ghz)
    pe_stages = ProcessingElement(
        bits=config.data_bits, psum_bits=config.psum_bits
    ).pipeline_stages
    from repro.uarch.buffers import ShiftRegisterBuffer

    ifmap_buffer = ShiftRegisterBuffer(
        config.ifmap_buffer_bytes,
        io_width=config.pe_array_height,
        entry_bits=config.data_bits,
        division=config.ifmap_division,
    )

    layers = []
    resident = False
    for index, layer in enumerate(network.layers):
        result, resident = _simulate_os_layer(
            layer,
            config,
            batch,
            memory,
            pe_stages,
            ifmap_rewind_cycles=ifmap_buffer.rewind_cycles(),
            input_resident=resident,
            is_last_layer=index == len(network.layers) - 1,
        )
        layers.append(result)
    return SimulationResult(
        design=f"{config.name} (OS)",
        network=network.name,
        batch=batch,
        frequency_ghz=estimate.frequency_ghz,
        layers=layers,
        activity=ActivityTrace(),
    )
