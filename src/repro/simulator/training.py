"""Training-step extension (the paper targets inference "as the first case
study"; this models the obvious next one).

A training step on the weight-stationary array costs three MAC passes plus
a weight write-back:

* **forward** — the existing inference pass;
* **input-gradient** (dX = dY * W^T) — a convolution with the reduction
  over the *filters*: modeled by simulating each layer's transposed
  counterpart (in/out channels swapped, full padding, unit stride — the
  standard dilated-gradient approximation for strided layers);
* **weight-gradient** (dW = X * dY) — the same MAC volume as the forward
  pass with the same tiling, re-streaming activations per filter tile:
  modeled as a second forward-shaped pass;
* **weight update** — every weight streams DRAM -> array-edge adder ->
  DRAM once.

The result reports per-phase cycles so the training/inference cost ratio
(canonically ~3x compute) can be inspected per design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.device.cells import CellLibrary
from repro.estimator.arch_level import NPUEstimate, estimate_npu
from repro.simulator.engine import simulate
from repro.simulator.memory import memory_model_for
from repro.simulator.results import SimulationResult
from repro.uarch.config import NPUConfig
from repro.workloads.layers import ConvLayer
from repro.workloads.models import Network


def gradient_layer(layer: ConvLayer) -> ConvLayer:
    """The input-gradient counterpart of a convolution layer.

    dX = full-correlation of dY with the flipped kernels: channels and
    filters swap roles, spatial size is the layer's output map, padding is
    "full" (kernel-1).  Strided layers are approximated at unit stride on
    the (smaller) output map — the dilated-input correction is a constant
    factor the cycle model does not need.
    """
    return ConvLayer(
        name=f"{layer.name}_dgrad",
        in_channels=layer.out_channels,
        in_height=layer.out_height,
        in_width=layer.out_width,
        out_channels=layer.in_channels,
        kernel_height=layer.kernel_height,
        kernel_width=layer.kernel_width,
        stride=1,
        padding=max(layer.kernel_height, layer.kernel_width) - 1,
        groups=layer.groups,
    )


def gradient_network(network: Network) -> Network:
    """The backward-data pass as a network (first layer needs no dX)."""
    layers = tuple(gradient_layer(layer) for layer in network.layers[1:])
    if not layers:
        layers = (gradient_layer(network.layers[0]),)
    return Network(f"{network.name}-dgrad", layers)


@dataclass
class TrainingResult:
    """Cycle accounting of one training step (one batch)."""

    design: str
    network: str
    batch: int
    frequency_ghz: float
    forward: SimulationResult
    input_gradient: SimulationResult
    weight_gradient: SimulationResult
    weight_update_cycles: int

    @property
    def total_cycles(self) -> int:
        return (
            self.forward.total_cycles
            + self.input_gradient.total_cycles
            + self.weight_gradient.total_cycles
            + self.weight_update_cycles
        )

    @property
    def total_macs(self) -> int:
        return (
            self.forward.total_macs
            + self.input_gradient.total_macs
            + self.weight_gradient.total_macs
        )

    @property
    def step_latency_s(self) -> float:
        return self.total_cycles / (self.frequency_ghz * 1e9)

    @property
    def mac_per_s(self) -> float:
        if self.step_latency_s == 0:
            return 0.0
        return self.total_macs / self.step_latency_s

    def phase_cycles(self) -> Dict[str, int]:
        return {
            "forward": self.forward.total_cycles,
            "input_gradient": self.input_gradient.total_cycles,
            "weight_gradient": self.weight_gradient.total_cycles,
            "weight_update": self.weight_update_cycles,
        }

    @property
    def training_vs_inference_ratio(self) -> float:
        """Step cycles over forward-only cycles (canonically ~3)."""
        return self.total_cycles / self.forward.total_cycles


def simulate_training_step(
    config: NPUConfig,
    network: Network,
    batch: int = 1,
    estimate: Optional[NPUEstimate] = None,
    library: Optional[CellLibrary] = None,
) -> TrainingResult:
    """Cycle-model one SGD step of ``network`` on ``config``."""
    if batch < 1:
        raise ValueError("batch must be positive")
    if estimate is None:
        if library is None:
            from repro.device.cells import rsfq_library

            library = rsfq_library()
        estimate = estimate_npu(config, library)

    forward = simulate(config, network, batch=batch, estimate=estimate)
    input_gradient = simulate(
        config, gradient_network(network), batch=batch, estimate=estimate
    )
    # Weight gradient: same MAC volume and tiling as the forward pass;
    # modeled as a forward-shaped pass (activations re-stream per tile).
    weight_gradient = simulate(config, network, batch=batch, estimate=estimate)
    weight_gradient = SimulationResult(
        design=weight_gradient.design,
        network=f"{network.name}-wgrad",
        batch=batch,
        frequency_ghz=weight_gradient.frequency_ghz,
        layers=weight_gradient.layers,
        activity=weight_gradient.activity,
    )

    # Weight update: read + write every weight once through the array edge.
    memory = memory_model_for(config, estimate.frequency_ghz)
    update_bytes = 2 * network.total_weight_bytes
    stream_cycles = network.total_weight_bytes // config.pe_array_width
    weight_update = max(stream_cycles, memory.transfer_cycles(update_bytes))

    return TrainingResult(
        design=config.name,
        network=network.name,
        batch=batch,
        frequency_ghz=estimate.frequency_ghz,
        forward=forward,
        input_gradient=input_gradient,
        weight_gradient=weight_gradient,
        weight_update_cycles=weight_update,
    )
