"""Shared construction of the simulated datapath components.

``simulate()`` and the execution tracer both need the same buffer / PE
instances a config implies; building them in one place keeps the engine
and the trace model structurally identical (which
``trace.verify_against_engine`` then checks cycle-for-cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.uarch.buffers import IntegratedOutputBuffer, ShiftRegisterBuffer
from repro.uarch.config import NPUConfig
from repro.uarch.pe import ProcessingElement


@dataclass(frozen=True)
class Datapath:
    """The config-derived on-chip components the cycle model charges."""

    ifmap_buffer: ShiftRegisterBuffer
    output_buffer: Union[ShiftRegisterBuffer, IntegratedOutputBuffer]
    psum_buffer: Optional[ShiftRegisterBuffer]
    pe: ProcessingElement


def build_datapath(config: NPUConfig) -> Datapath:
    """Instantiate the ifmap / output / psum buffers and PE for ``config``.

    Integrated designs fold psum storage into the output buffer
    (``psum_buffer is None``); non-integrated designs carry the separate
    psum buffer whose shift-in/out movement Fig. 16 (1) charges.
    """
    ifmap_buffer = ShiftRegisterBuffer(
        config.ifmap_buffer_bytes,
        io_width=config.pe_array_height,
        entry_bits=config.data_bits,
        division=config.ifmap_division,
    )
    buffer_cls = (
        IntegratedOutputBuffer if config.integrated_output_buffer else ShiftRegisterBuffer
    )
    output_buffer = buffer_cls(
        config.output_buffer_bytes,
        io_width=config.pe_array_width,
        entry_bits=config.data_bits,
        division=config.output_division,
    )
    psum_buffer = None
    if not config.integrated_output_buffer:
        psum_buffer = ShiftRegisterBuffer(
            config.psum_buffer_bytes,
            io_width=config.pe_array_width,
            entry_bits=config.data_bits,
            division=config.output_division,
        )
    pe = ProcessingElement(
        bits=config.data_bits,
        psum_bits=config.psum_bits,
        registers=config.registers_per_pe,
    )
    return Datapath(
        ifmap_buffer=ifmap_buffer,
        output_buffer=output_buffer,
        psum_buffer=psum_buffer,
        pe=pe,
    )
