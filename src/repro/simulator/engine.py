"""Cycle-level SFQ-NPU simulator (paper Section IV-B, Fig. 14).

For every layer the simulator enumerates the weight mappings, then charges:

* **Weight load** — streaming the tile's weights into the array
  (``rows * regs + cols`` cycles of diagonal fill per mapping).
* **Ifmap preparation** — rotating the shift-register ifmap chunk back to
  its head before the next mapping re-streams it (Fig. 16 (2)); division
  shortens this by the division degree.
* **Psum movement** — in non-integrated designs, every non-final row tile
  parks partial sums that must physically shift from the ofmap buffer to
  the psum buffer and back (Fig. 16 (1)): the sum of both buffers' row
  lengths per movement (65,536 cycles for the 16 MB Baseline pair).
* **Computation** — one ifmap vector per cycle per register plane:
  ``E*F*batch*regs`` cycles plus pipeline fill.
* **Activation transfer** — draining the layer's output into the ifmap
  buffer for the next layer.
* **DRAM traffic** — weights once per layer, activations when they do not
  fit on chip; a layer's wall-clock is ``max(on_chip, dram)`` cycles
  (double-buffered DMA).

The same engine simulates every design point; only the
:class:`~repro.uarch.config.NPUConfig` changes.
"""

from __future__ import annotations

import math
from typing import Optional

from repro import obs
from repro.obs.timeline import CycleTimeline
from repro.device.cells import CellLibrary
from repro.estimator.arch_level import NPUEstimate, estimate_npu
from repro.simulator.datapath import build_datapath
from repro.simulator.mapping import LayerMapping, map_layer
from repro.simulator.memory import MemoryModel, memory_model_for
from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult
from repro.uarch.buffers import ShiftRegisterBuffer
from repro.uarch.config import NPUConfig
from repro.uarch.pe import ProcessingElement
from repro.workloads.layers import ConvLayer
from repro.workloads.models import Network


def _ifmap_fits(layer: ConvLayer, config: NPUConfig, batch: int) -> bool:
    """Can the layer's whole (batched) input live in the ifmap buffer?

    Two conditions: raw capacity, and channel slots — each shift-register
    lane is dedicated to one ifmap channel, so an undivided buffer holds at
    most ``pe_array_height`` channels; division multiplies the slots
    (Fig. 19 (4) resolving Fig. 18(c)).
    """
    capacity_ok = layer.ifmap_bytes * batch <= config.ifmap_buffer_bytes
    channel_slots = config.pe_array_height * config.ifmap_division
    channels_ok = layer.in_channels * batch <= channel_slots
    return capacity_ok and channels_ok


def _output_fits(layer: ConvLayer, config: NPUConfig, batch: int) -> bool:
    """Can the layer's whole (batched) output stay in the output buffer?

    Psum headroom intentionally does **not** shrink the residency
    capacity: in a non-integrated design the in-flight partial sums live
    in the dedicated psum buffer (and pay their movement cost via
    Fig. 16 (1)'s psum_move charge), so the full ofmap buffer is
    available for the finished activations; in an integrated design the
    Table I sizings already account for psums sharing the buffer.
    Residency is therefore a plain capacity check in both cases.
    """
    return layer.ofmap_bytes * batch <= config.output_buffer_bytes


def simulate_layer(
    layer: ConvLayer,
    config: NPUConfig,
    batch: int,
    memory: MemoryModel,
    ifmap_buffer: ShiftRegisterBuffer,
    output_buffer: ShiftRegisterBuffer,
    psum_buffer: Optional[ShiftRegisterBuffer],
    pe: ProcessingElement,
    activity: ActivityTrace,
    input_resident: bool,
    is_last_layer: bool,
) -> "tuple[LayerResult, bool]":
    """Simulate one layer; returns its result and whether its output stayed
    on chip (feeding the next layer without a DRAM round trip)."""
    mapping: LayerMapping = map_layer(layer, config)
    vectors = layer.output_pixels * batch

    weight_load = 0
    compute = 0
    pe_stages = pe.pipeline_stages
    for tile in mapping.tiles:
        weight_load += tile.count * (tile.rows_used * tile.regs_used + tile.cols_used)
        fill = tile.rows_used + tile.cols_used + pe_stages
        compute += tile.count * (vectors * tile.regs_used + fill)

    # Ifmap re-alignment before every mapping after the first.
    rewinds = max(0, mapping.total_mappings - 1)
    ifmap_prep = rewinds * ifmap_buffer.rewind_cycles()

    # Psum <-> ofmap movement for every accumulating row-tile boundary.
    if psum_buffer is None:
        psum_move = 0
    else:
        per_move = psum_buffer.chunk_length_entries + output_buffer.chunk_length_entries
        psum_move = mapping.psum_movements * per_move

    # Output activations drain toward the ifmap buffer for the next layer.
    activation_transfer = 0
    if not is_last_layer:
        activation_transfer = math.ceil(
            layer.ofmap_bytes * batch / config.pe_array_height
        )

    # Off-chip traffic: weights stream in once per layer; activations move
    # only when they cannot stay resident.
    traffic = layer.weight_bytes
    ifmap_fits = _ifmap_fits(layer, config, batch)
    refetch = 1 if ifmap_fits else mapping.col_tiles
    ifmap_volume = layer.ifmap_bytes * batch
    if not input_resident:
        traffic += ifmap_volume
    traffic += ifmap_volume * (refetch - 1)
    output_resident = _output_fits(layer, config, batch) and not is_last_layer
    if not output_resident:
        traffic += layer.ofmap_bytes * batch

    on_chip = weight_load + ifmap_prep + psum_move + compute + activation_transfer
    dram_cycles = memory.transfer_cycles(traffic)
    total = max(on_chip, dram_cycles)

    macs = layer.macs_per_image * batch

    # Dynamic-power activity accounting (effective fully-active cycles).
    activity.add("pe_array", macs / config.num_pes)
    activity.add("network", macs / config.num_pes)
    dau_cycles = sum(
        tile.count * vectors * tile.regs_used * (tile.rows_used / config.pe_array_height)
        for tile in mapping.tiles
    )
    activity.add("dau", dau_cycles)
    activity.add(
        "ifmap_buffer", (compute + ifmap_prep) / config.ifmap_division
    )
    activity.add("output_buffer", compute / config.output_division + psum_move)
    if psum_buffer is not None:
        activity.add("psum_buffer", psum_move)
    activity.add("weight_buffer", weight_load)

    result = LayerResult(
        name=layer.name,
        mappings=mapping.total_mappings,
        weight_load_cycles=weight_load,
        ifmap_prep_cycles=ifmap_prep,
        psum_move_cycles=psum_move,
        activation_transfer_cycles=activation_transfer,
        compute_cycles=compute,
        dram_traffic_bytes=traffic,
        dram_cycles=dram_cycles,
        total_cycles=total,
        macs=macs,
    )
    return result, output_resident


def simulate(
    config: NPUConfig,
    network: Network,
    batch: int = 1,
    estimate: Optional[NPUEstimate] = None,
    library: Optional[CellLibrary] = None,
    timeline: Optional[CycleTimeline] = None,
) -> SimulationResult:
    """Run the cycle-level simulation of ``network`` on ``config``.

    ``estimate`` supplies the clock frequency; when omitted it is computed
    from ``library`` (default: the calibrated RSFQ library).  ``timeline``
    optionally receives the run's simulated-cycle event timeline (layer
    spans, on-chip phases, DRAM transfers, buffer-occupancy samples).
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    with obs.trace_span(
        "simulate", design=config.name, network=network.name, batch=batch
    ), obs.histogram("sim.simulate_seconds").time():
        if estimate is None:
            if library is None:
                from repro.device.cells import rsfq_library

                library = rsfq_library()
            estimate = estimate_npu(config, library)

        memory = memory_model_for(config, estimate.frequency_ghz)
        datapath = build_datapath(config)

        activity = ActivityTrace()
        layers = []
        resident = False  # the first layer's input always arrives from DRAM
        for index, layer in enumerate(network.layers):
            with obs.trace_span("simulate/layer", layer=layer.name) as span:
                result, resident = simulate_layer(
                    layer,
                    config,
                    batch,
                    memory,
                    datapath.ifmap_buffer,
                    datapath.output_buffer,
                    datapath.psum_buffer,
                    datapath.pe,
                    activity,
                    input_resident=resident,
                    is_last_layer=index == len(network.layers) - 1,
                )
                span.annotate(cycles=result.total_cycles, macs=result.macs)
            if timeline is not None:
                timeline.record_layer(
                    result,
                    occupancy={
                        "ifmap_buffer_bytes": min(
                            layer.ifmap_bytes * batch, config.ifmap_buffer_bytes
                        ),
                        "output_buffer_bytes": min(
                            layer.ofmap_bytes * batch, config.output_buffer_bytes
                        ),
                        "weight_buffer_bytes": min(
                            layer.weight_bytes, config.weight_buffer_bytes
                        ),
                    },
                )
            layers.append(result)

        run = SimulationResult(
            design=config.name,
            network=network.name,
            batch=batch,
            frequency_ghz=estimate.frequency_ghz,
            layers=layers,
            activity=activity,
        )
        obs.counter("sim.runs").inc()
        obs.counter("sim.layers_simulated").add(len(layers))
        obs.counter("sim.cycles").add(run.total_cycles)
        obs.counter("sim.macs").add(run.total_macs)
        obs.counter("sim.dram_traffic_bytes").add(
            sum(layer.dram_traffic_bytes for layer in layers)
        )
        return run
