"""Per-unit utilization report.

The paper's bottleneck analysis (Section V-A) is a utilization story: fast
PEs idling behind buffer shifts and memory.  This module turns a
simulation's activity trace into per-unit utilization percentages so that
story can be read off any run directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simulator.results import SimulationResult


@dataclass(frozen=True)
class UtilizationReport:
    """Effective-active share of total cycles, per unit."""

    design: str
    network: str
    total_cycles: int
    per_unit: Dict[str, float]

    @property
    def pe_utilization(self) -> float:
        return self.per_unit.get("pe_array", 0.0)

    def busiest_unit(self) -> str:
        """The highest-utilization unit; ties break lexicographically, so
        the answer is independent of activity insertion order."""
        if not self.per_unit:
            raise ValueError("no activity recorded")
        return max(sorted(self.per_unit), key=self.per_unit.__getitem__)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (used by ``supernpu bottleneck --json``)."""
        return {
            "design": self.design,
            "network": self.network,
            "total_cycles": self.total_cycles,
            "per_unit": dict(sorted(self.per_unit.items())),
            "busiest_unit": self.busiest_unit(),
        }


def utilization_report(run: SimulationResult) -> UtilizationReport:
    """Per-unit effective utilization of a finished run.

    A unit's utilization is its effective fully-active cycles over the
    run's total cycles; the PE array's value equals the paper's "PE
    utilization" (effective / peak throughput) by construction, since the
    simulator credits it one effective cycle per ``num_pes`` MACs.
    """
    total = run.total_cycles
    if total <= 0:
        raise ValueError("run has no cycles")
    per_unit = {
        unit: min(1.0, cycles / total)
        for unit, cycles in run.activity.effective_cycles.items()
    }
    return UtilizationReport(
        design=run.design,
        network=run.network,
        total_cycles=total,
        per_unit=per_unit,
    )


def compare_utilization(runs: "list[SimulationResult]") -> Dict[str, UtilizationReport]:
    """Reports keyed by design name (for before/after optimization views)."""
    return {run.design: utilization_report(run) for run in runs}
