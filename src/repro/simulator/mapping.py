"""Weight-mapping analysis for the weight-stationary systolic array.

A convolution layer is executed as a sequence of *weight mappings*
(Section IV-B: "SFQ-NPU simulator analyzes all required weight mappings").
Each mapping loads a tile of weights onto the array:

* the reduction dimension ``C/g * R * S`` is tiled over the PE-array
  *height* (one weight element per PE row);
* the filters of a group are tiled over the PE-array *width*, with
  ``registers_per_pe`` filters sharing one column in SuperNPU;
* channel groups (depthwise convolution) are independent mappings.

Identical tiles are aggregated with a ``count`` so a 512-group depthwise
layer costs one tile record, not 512.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.uarch.config import NPUConfig
from repro.workloads.layers import ConvLayer


@dataclass(frozen=True)
class MappingTile:
    """One (aggregated) weight mapping on the PE array.

    Attributes:
        rows_used: PE rows occupied (reduction elements in this tile).
        cols_used: PE columns occupied.
        regs_used: Weight registers exercised per PE in this tile.
        count: Number of identical mappings this record stands for.
        accumulates: Whether this tile's partial sums must be combined with
            another row tile's output (drives psum<->ofmap movement in
            non-integrated designs).
    """

    rows_used: int
    cols_used: int
    regs_used: int
    count: int = 1
    accumulates: bool = False

    def __post_init__(self) -> None:
        if min(self.rows_used, self.cols_used, self.regs_used, self.count) < 1:
            raise ValueError("tile dimensions and count must be positive")

    @property
    def weights(self) -> int:
        """Weight elements resident on the array for one mapping."""
        return self.rows_used * self.cols_used * self.regs_used

    def macs(self, vectors: int) -> int:
        """MACs executed by one mapping over ``vectors`` ifmap vectors."""
        return self.weights * vectors


@dataclass(frozen=True)
class LayerMapping:
    """All weight mappings of one layer on one NPU configuration."""

    layer: ConvLayer
    tiles: List[MappingTile]
    row_tiles: int
    col_tiles: int

    @property
    def total_mappings(self) -> int:
        return sum(tile.count for tile in self.tiles)

    @property
    def psum_movements(self) -> int:
        """Row-tile boundaries requiring psum<->ofmap buffer movement."""
        return sum(tile.count for tile in self.tiles if tile.accumulates)


def _column_tiles(filters: int, width: int, registers: int) -> List[dict]:
    """Split ``filters`` across columns x registers, full tiles first."""
    per_tile = width * registers
    tiles: List[dict] = []
    full, remainder = divmod(filters, per_tile)
    if full:
        tiles.append({"cols": width, "regs": registers, "count": full})
    if remainder:
        # Spread the leftover filters over as few register planes as needed
        # so the remaining columns still stream in parallel.
        regs_used = min(registers, math.ceil(remainder / width))
        cols_used = math.ceil(remainder / regs_used)
        tiles.append({"cols": cols_used, "regs": regs_used, "count": 1})
    return tiles


def map_layer(layer: ConvLayer, config: NPUConfig) -> LayerMapping:
    """Enumerate (aggregated) weight mappings of ``layer`` on ``config``."""
    height = config.pe_array_height
    reduction = layer.reduction_size
    row_sizes: List[int] = [height] * (reduction // height)
    if reduction % height:
        row_sizes.append(reduction % height)
    col_tiles = _column_tiles(
        layer.filters_per_group, config.pe_array_width, config.registers_per_pe
    )

    tiles: List[MappingTile] = []
    needs_accumulation = len(row_sizes) > 1
    for col in col_tiles:
        for index, rows in enumerate(row_sizes):
            # Every row tile except the last parks partial sums that a later
            # row tile must pick back up.
            accumulates = needs_accumulation and index < len(row_sizes) - 1
            tiles.append(
                MappingTile(
                    rows_used=rows,
                    cols_used=col["cols"],
                    regs_used=col["regs"],
                    count=col["count"] * layer.groups,
                    accumulates=accumulates,
                )
            )
    return LayerMapping(
        layer=layer,
        tiles=tiles,
        row_tiles=len(row_sizes),
        col_tiles=sum(col["count"] for col in col_tiles),
    )


def utilization(tile: MappingTile, config: NPUConfig) -> float:
    """Fraction of the PE array's MAC slots a tile keeps busy."""
    return tile.weights / (config.num_pes * config.registers_per_pe)
