"""Result records produced by the cycle-level NPU simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class LayerResult:
    """Cycle accounting for one layer (all weight mappings, full batch)."""

    name: str
    mappings: int
    weight_load_cycles: int
    ifmap_prep_cycles: int
    psum_move_cycles: int
    activation_transfer_cycles: int
    compute_cycles: int
    dram_traffic_bytes: int
    dram_cycles: int
    total_cycles: int
    macs: int

    @property
    def preparation_cycles(self) -> int:
        """The paper's "preparation" bucket (Fig. 15): everything that moves
        data into place before/around computation."""
        return (
            self.weight_load_cycles
            + self.ifmap_prep_cycles
            + self.psum_move_cycles
            + self.activation_transfer_cycles
        )

    @property
    def on_chip_cycles(self) -> int:
        """Cycles the layer needs with DRAM out of the picture."""
        return self.preparation_cycles + self.compute_cycles

    @property
    def memory_stall_cycles(self) -> int:
        """Cycles added because DRAM could not keep up."""
        return max(0, self.total_cycles - self.preparation_cycles - self.compute_cycles)

    @property
    def dram_bound(self) -> bool:
        """True when the engine's ``max(on_chip, dram)`` rule picked DRAM."""
        return self.dram_cycles > self.on_chip_cycles

    def phase_cycles(self) -> Dict[str, int]:
        """Cycle charge per phase, plus the DRAM stall the layer absorbed.

        The on-chip phases and ``dram_stall`` partition ``total_cycles``
        exactly: the stall is whatever ``max(on_chip, dram)`` added on top
        of the serialized on-chip work.
        """
        return {
            "weight_load": self.weight_load_cycles,
            "ifmap_prep": self.ifmap_prep_cycles,
            "psum_move": self.psum_move_cycles,
            "activation_transfer": self.activation_transfer_cycles,
            "compute": self.compute_cycles,
            "dram_stall": self.memory_stall_cycles,
        }


@dataclass
class ActivityTrace:
    """Per-unit effective fully-active cycle counts (for dynamic power)."""

    effective_cycles: Dict[str, float] = field(default_factory=dict)

    def add(self, unit: str, cycles: float) -> None:
        if cycles < 0:
            raise ValueError("activity cycles must be non-negative")
        self.effective_cycles[unit] = self.effective_cycles.get(unit, 0.0) + cycles


@dataclass
class SimulationResult:
    """Whole-network simulation outcome for one design point."""

    design: str
    network: str
    batch: int
    frequency_ghz: float
    layers: List[LayerResult]
    activity: ActivityTrace

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def preparation_cycles(self) -> int:
        return sum(layer.preparation_cycles for layer in self.layers)

    @property
    def compute_cycles(self) -> int:
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def memory_stall_cycles(self) -> int:
        return sum(layer.memory_stall_cycles for layer in self.layers)

    @property
    def latency_s(self) -> float:
        """Wall-clock time to process the batch."""
        return self.total_cycles / (self.frequency_ghz * 1e9)

    @property
    def mac_per_s(self) -> float:
        """Effective throughput in MAC/s."""
        if self.latency_s == 0:
            return 0.0
        return self.total_macs / self.latency_s

    @property
    def tmacs(self) -> float:
        return self.mac_per_s / 1e12

    @property
    def images_per_s(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.batch / self.latency_s

    def pe_utilization(self, peak_mac_per_s: float) -> float:
        """Effective / peak throughput (the paper's PE utilization)."""
        if peak_mac_per_s <= 0:
            raise ValueError("peak throughput must be positive")
        return self.mac_per_s / peak_mac_per_s

    def cycle_breakdown(self) -> Dict[str, float]:
        """Normalized preparation / computation / memory split (Fig. 15)."""
        total = self.total_cycles
        if total == 0:
            return {"preparation": 0.0, "computation": 0.0, "memory": 0.0}
        return {
            "preparation": self.preparation_cycles / total,
            "computation": self.compute_cycles / total,
            "memory": self.memory_stall_cycles / total,
        }
