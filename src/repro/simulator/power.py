"""Power aggregation: static + activity-driven dynamic power (Section IV-B).

Static power comes straight from the estimator (bias dissipation of every
gate; zero under ERSFQ).  Dynamic power multiplies each unit's
fully-active per-cycle energy by the effective active cycles the simulator
recorded and by a data-activity factor (on average about half the bit
lanes carry a pulse in any cycle — the clock tree, which fires every
active cycle, is already part of each cell's access energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.estimator.arch_level import NPUEstimate
from repro.simulator.results import SimulationResult

#: Average fraction of bit lanes carrying a data pulse in an active cycle.
DATA_ACTIVITY = 0.5


@dataclass(frozen=True)
class PowerReport:
    """Chip power of one simulated run."""

    design: str
    network: str
    technology: str
    static_w: float
    dynamic_w: float
    dynamic_by_unit: Dict[str, float]

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w


def power_report(
    sim: SimulationResult,
    estimate: NPUEstimate,
    data_activity: float = DATA_ACTIVITY,
) -> PowerReport:
    """Combine simulated activity with estimator energies into chip power."""
    if not 0.0 <= data_activity <= 1.0:
        raise ValueError("data activity must lie in [0, 1]")
    runtime_s = sim.latency_s
    dynamic_by_unit: Dict[str, float] = {}
    total_dynamic = 0.0
    for unit_name, effective_cycles in sim.activity.effective_cycles.items():
        if unit_name not in estimate.units:
            continue
        unit = estimate.units[unit_name]
        # Clocked gates fire on every clock pulse while the unit is active;
        # wire cells only switch when a data pulse actually passes.
        joules = effective_cycles * (
            unit.access_energy_clocked_j + unit.access_energy_wire_j * data_activity
        )
        watts = joules / runtime_s if runtime_s > 0 else 0.0
        dynamic_by_unit[unit_name] = watts
        total_dynamic += watts
    return PowerReport(
        design=sim.design,
        network=sim.network,
        technology=estimate.technology,
        static_w=estimate.static_power_w,
        dynamic_w=total_dynamic,
        dynamic_by_unit=dynamic_by_unit,
    )
