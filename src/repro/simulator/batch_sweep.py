"""Throughput-vs-batch analysis.

Section V-A3's insight is that batch size *is* computational intensity for
a weight-stationary NPU; this module produces the full curve — throughput
and latency at every batch — and locates the knee where the design stops
being preparation/memory-bound, which is what Table II's "maximum
resident batch" policy exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.device.cells import CellLibrary
from repro.errors import ConfigError
from repro.estimator.arch_level import NPUEstimate
from repro.simulator.engine import simulate
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network

if TYPE_CHECKING:  # jobs imports the simulator; avoid the import cycle here
    from repro.core.jobs import JobRunner
    from repro.core.plan import ExperimentPlan


@dataclass(frozen=True)
class BatchPoint:
    """One point of the throughput/latency-vs-batch curve."""

    batch: int
    mac_per_s: float
    latency_s: float

    @property
    def tmacs(self) -> float:
        return self.mac_per_s / 1e12

    @property
    def latency_per_image_s(self) -> float:
        return self.latency_s / self.batch


def batch_plan(
    config: NPUConfig,
    network: Network,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 30),
    library: Optional[CellLibrary] = None,
) -> "ExperimentPlan":
    """The throughput-vs-batch curve as a one-grid plan (batch axis)."""
    from repro.core.plan import (
        ExperimentPlan,
        Grid,
        batch_axis,
        config_axis,
        library_axis,
        workload_axis,
    )

    if not batches:
        raise ConfigError("need at least one batch size",
                          code="config.empty_sweep")
    if any(b < 1 for b in batches):
        raise ConfigError("batch sizes must be positive",
                          code="config.invalid_batch")
    grid = Grid("curve", (
        config_axis((config,)),
        workload_axis((network,)),
        batch_axis(tuple(batches)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "batch_knee", (grid,),
        description="throughput/latency vs batch size (knee location)",
    )


def batch_sweep(
    config: NPUConfig,
    network: Network,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 30),
    estimate: Optional[NPUEstimate] = None,
    library: Optional[CellLibrary] = None,
    runner: Optional["JobRunner"] = None,
) -> List[BatchPoint]:
    """Simulate ``network`` at each batch size.

    The sweep lowers onto a plan executed by the ambient (or given) job
    runner, so the per-batch simulations parallelize and cache.  Passing
    an explicit ``estimate`` bypasses the runner: a hand-built estimate
    is not reconstructible from a cache key, so those runs are simulated
    directly, serially.
    """
    if not batches:
        raise ConfigError("need at least one batch size",
                          code="config.empty_sweep")
    if any(b < 1 for b in batches):
        raise ConfigError("batch sizes must be positive",
                          code="config.invalid_batch")
    if estimate is not None:
        return [
            _point(simulate(config, network, batch=batch, estimate=estimate))
            for batch in batches
        ]
    from repro.core.plan import execute

    resultset = execute(batch_plan(config, network, batches, library),
                        runner=runner)
    return [_point(result.run) for result in resultset]


def _point(run) -> BatchPoint:
    return BatchPoint(batch=run.batch, mac_per_s=run.mac_per_s,
                      latency_s=run.latency_s)


def knee_batch(points: List[BatchPoint], threshold: float = 0.10) -> int:
    """Smallest batch whose next doubling gains under ``threshold``.

    The "knee" of the throughput curve: past it, extra batch buys little
    throughput while still costing per-batch latency.
    """
    if not points:
        raise ValueError("empty sweep")
    if not 0 < threshold < 1:
        raise ConfigError("threshold must lie in (0, 1)",
                          code="config.invalid_threshold")
    ordered = sorted(points, key=lambda p: p.batch)
    for current, following in zip(ordered, ordered[1:]):
        gain = following.mac_per_s / current.mac_per_s - 1.0
        scale = following.batch / current.batch - 1.0
        if scale > 0 and gain / scale < threshold:
            return current.batch
    return ordered[-1].batch
