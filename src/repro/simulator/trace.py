"""Event-level execution traces (SCALE-SIM-style inspection output).

Expands one layer's cycle accounting into an ordered timeline of phases —
weight load, ifmap rewind, computation, psum movement — per weight
mapping, so the Fig. 15/16 data-movement story can be inspected mapping by
mapping (and exported as CSV for plotting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.estimator.arch_level import NPUEstimate, estimate_npu
from repro.simulator.datapath import build_datapath
from repro.simulator.mapping import map_layer
from repro.simulator.memory import memory_model_for
from repro.uarch.config import NPUConfig
from repro.workloads.layers import ConvLayer

#: Phase names in the order they occur within one mapping.
PHASES = ("weight_load", "ifmap_rewind", "compute", "psum_move")


@dataclass(frozen=True)
class TraceEvent:
    """One contiguous phase of one weight mapping."""

    mapping_index: int
    phase: str
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"unknown phase {self.phase!r}")
        if self.end_cycle < self.start_cycle:
            raise ValueError("event must not end before it starts")


def trace_layer(
    layer: ConvLayer,
    config: NPUConfig,
    batch: int = 1,
    estimate: Optional[NPUEstimate] = None,
) -> List[TraceEvent]:
    """The serialized phase timeline of one layer's weight mappings.

    Mirrors the engine's cycle charges exactly (weight fill, rewind before
    every mapping after the first, compute, psum movement after
    accumulating tiles); the last event's ``end_cycle`` equals the layer's
    on-chip cycle count.
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    mapping = map_layer(layer, config)
    datapath = build_datapath(config)
    ifmap_buffer = datapath.ifmap_buffer
    psum_move = 0
    if datapath.psum_buffer is not None:
        psum_move = (
            datapath.psum_buffer.chunk_length_entries
            + datapath.output_buffer.chunk_length_entries
        )
    pe_stages = datapath.pe.pipeline_stages

    vectors = layer.output_pixels * batch
    events: List[TraceEvent] = []
    cycle = 0
    index = 0
    for tile in mapping.tiles:
        for _ in range(tile.count):
            load = tile.rows_used * tile.regs_used + tile.cols_used
            events.append(TraceEvent(index, "weight_load", cycle, cycle + load))
            cycle += load
            if index > 0:
                rewind = ifmap_buffer.rewind_cycles()
                events.append(TraceEvent(index, "ifmap_rewind", cycle, cycle + rewind))
                cycle += rewind
            compute = vectors * tile.regs_used + tile.rows_used + tile.cols_used + pe_stages
            events.append(TraceEvent(index, "compute", cycle, cycle + compute))
            cycle += compute
            if tile.accumulates and psum_move:
                events.append(TraceEvent(index, "psum_move", cycle, cycle + psum_move))
                cycle += psum_move
            index += 1
    return events


def trace_summary(events: List[TraceEvent]) -> dict:
    """Total cycles per phase (the Fig. 15 buckets, mapping-resolved)."""
    summary = {phase: 0 for phase in PHASES}
    for event in events:
        summary[event.phase] += event.duration
    summary["total"] = 0 if not events else events[-1].end_cycle
    return summary


def trace_to_csv(events: List[TraceEvent]) -> str:
    """Render a trace as CSV text."""
    lines = ["mapping,phase,start_cycle,end_cycle,duration"]
    for event in events:
        lines.append(
            f"{event.mapping_index},{event.phase},"
            f"{event.start_cycle},{event.end_cycle},{event.duration}"
        )
    return "\n".join(lines) + "\n"


def verify_against_engine(
    layer: ConvLayer,
    config: NPUConfig,
    batch: int = 1,
) -> bool:
    """The trace's phase totals must equal the engine's cycle charges."""
    from repro.simulator.engine import simulate_layer
    from repro.simulator.results import ActivityTrace

    estimate = estimate_npu(config, _default_library())
    memory = memory_model_for(config, estimate.frequency_ghz)
    datapath = build_datapath(config)
    result, _ = simulate_layer(
        layer, config, batch, memory, datapath.ifmap_buffer,
        datapath.output_buffer, datapath.psum_buffer, datapath.pe,
        ActivityTrace(), input_resident=True, is_last_layer=True,
    )
    summary = trace_summary(trace_layer(layer, config, batch))
    return (
        summary["weight_load"] == result.weight_load_cycles
        and summary["ifmap_rewind"] == result.ifmap_prep_cycles
        and summary["compute"] == result.compute_cycles
        and summary["psum_move"] == result.psum_move_cycles
    )


def _default_library():
    from repro.device.cells import rsfq_library

    return rsfq_library()
