"""Off-chip memory model (Section IV-B: "models the memory stall incurred
by limited memory bandwidth by taking memory bandwidth as its input").

The 4 K environment has no practical JJ-based main memory (Section II-B4),
so the NPU talks to room-temperature CMOS DRAM; the paper abstracts it as a
flat bandwidth (300 GB/s, the TPUv2 HBM figure).  We model a DMA engine
that overlaps transfers with on-chip work: a layer's wall-clock cycles are
``max(on_chip_cycles, traffic / bytes_per_cycle)``.

Which memory/link the bandwidth comes from is a registry choice:
:func:`memory_model_for` resolves a config's ``memory_technology`` /
``link_technology`` fields against ``repro.components`` — the default
technologies inherit ``memory_bandwidth_gbps`` unchanged, reproducing the
paper's fixed-DRAM model bitwise, while e.g. ``cryo-sram-4k`` substitutes
its own sustained bandwidth (capped by the link's, if any).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class MemoryModel:
    """A bandwidth-limited off-chip memory attached to an NPU clock."""

    bandwidth_gbps: float
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError(
                "memory bandwidth must be positive",
                code="config.invalid_value",
                bandwidth_gbps=self.bandwidth_gbps,
                hint="transfer_cycles would divide by a non-positive "
                     "bytes-per-cycle rate",
            )
        if self.frequency_ghz <= 0:
            raise ConfigError(
                "clock frequency must be positive",
                code="config.invalid_value",
                frequency_ghz=self.frequency_ghz,
            )

    @property
    def bytes_per_cycle(self) -> float:
        """DRAM bytes deliverable per NPU clock cycle.

        At 52.6 GHz and 300 GB/s this is only ~5.7 B/cycle — the number
        that makes the SFQ NPU's compute units starve (Fig. 17).
        """
        return self.bandwidth_gbps * 1e9 / (self.frequency_ghz * 1e9)

    def transfer_cycles(self, num_bytes: float) -> int:
        """NPU cycles needed to move ``num_bytes`` at full bandwidth."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return math.ceil(num_bytes / self.bytes_per_cycle)


def memory_model_for(config, frequency_ghz: float) -> MemoryModel:
    """The registry-backed :class:`MemoryModel` of one design point.

    Resolves ``config.memory_technology`` / ``config.link_technology``
    (via ``getattr`` with defaults, so CMOS baseline configs without the
    fields work unchanged) and takes the slower of the memory's and the
    link's sustained bandwidth.  Components that declare no bandwidth
    inherit ``config.memory_bandwidth_gbps`` — with default technologies
    the result is exactly ``MemoryModel(config.memory_bandwidth_gbps,
    frequency_ghz)``.
    """
    from repro.components import (
        DEFAULT_LINK_TECHNOLOGY,
        DEFAULT_MEMORY_TECHNOLOGY,
        component_by_name,
    )

    memory = component_by_name(
        getattr(config, "memory_technology", DEFAULT_MEMORY_TECHNOLOGY),
        kind="memory")
    link = component_by_name(
        getattr(config, "link_technology", DEFAULT_LINK_TECHNOLOGY),
        kind="link")
    bandwidth = memory.resolved_bandwidth_gbps(config.memory_bandwidth_gbps)
    if link.bandwidth_gbps is not None:
        bandwidth = min(bandwidth, link.bandwidth_gbps)
    return MemoryModel(bandwidth, frequency_ghz)
