"""Off-chip memory model (Section IV-B: "models the memory stall incurred
by limited memory bandwidth by taking memory bandwidth as its input").

The 4 K environment has no practical JJ-based main memory (Section II-B4),
so the NPU talks to room-temperature CMOS DRAM; the paper abstracts it as a
flat bandwidth (300 GB/s, the TPUv2 HBM figure).  We model a DMA engine
that overlaps transfers with on-chip work: a layer's wall-clock cycles are
``max(on_chip_cycles, traffic / bytes_per_cycle)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryModel:
    """A bandwidth-limited off-chip memory attached to an NPU clock."""

    bandwidth_gbps: float
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("clock frequency must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """DRAM bytes deliverable per NPU clock cycle.

        At 52.6 GHz and 300 GB/s this is only ~5.7 B/cycle — the number
        that makes the SFQ NPU's compute units starve (Fig. 17).
        """
        return self.bandwidth_gbps * 1e9 / (self.frequency_ghz * 1e9)

    def transfer_cycles(self, num_bytes: float) -> int:
        """NPU cycles needed to move ``num_bytes`` at full bandwidth."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return math.ceil(num_bytes / self.bytes_per_cycle)
