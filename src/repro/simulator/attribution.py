"""Per-layer bottleneck attribution and roofline analysis (Section V-A).

The paper's core argument is a bottleneck story: 50 GHz PEs idling behind
buffer shifts, psum movement, and DRAM.  This module turns a finished
:class:`~repro.simulator.results.SimulationResult` into that story in
machine-readable form:

* **bound classification** — each layer is compute-, preparation-, or
  DRAM-bound, read straight off the engine's ``max(on_chip, dram)`` rule;
* **attribution fractions** — how the layer's total cycles split across
  weight load / ifmap prep / psum movement / activation transfer /
  compute / DRAM stall (the fractions partition the total exactly);
* **critical-layer ranking** — the top-k layers by cycle share, i.e.
  where an optimization pays;
* **roofline points** — arithmetic intensity (MACs/byte of DRAM traffic)
  vs achieved vs attainable GOPS under the estimator's clock and the
  configured DRAM bandwidth (1 MAC = 2 ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.simulator.results import LayerResult, SimulationResult

#: Phase keys in report order (matches ``LayerResult.phase_cycles``).
PHASE_ORDER = (
    "weight_load",
    "ifmap_prep",
    "psum_move",
    "activation_transfer",
    "compute",
    "dram_stall",
)

#: The three bound labels a layer can receive.
BOUNDS = ("compute", "preparation", "dram")

#: Operations per multiply-accumulate (roofline convention).
OPS_PER_MAC = 2


@dataclass(frozen=True)
class LayerAttribution:
    """Where one layer's cycles went, and what bounds it."""

    name: str
    total_cycles: int
    macs: int
    fractions: Dict[str, float]
    bound: str
    dominant_phase: str


@dataclass(frozen=True)
class RooflinePoint:
    """One layer on the roofline plot."""

    name: str
    intensity_macs_per_byte: float
    achieved_gops: float
    attainable_gops: float
    limiter: str  # "compute" | "bandwidth"


@dataclass(frozen=True)
class RooflineReport:
    """Roofline model of one run: roofs, ridge point, per-layer points."""

    design: str
    network: str
    compute_roof_gops: float
    bandwidth_gbytes_per_s: float
    ridge_macs_per_byte: float
    points: List[RooflinePoint]


@dataclass(frozen=True)
class AttributionReport:
    """Whole-network bottleneck attribution of one run."""

    design: str
    network: str
    batch: int
    total_cycles: int
    layers: List[LayerAttribution]

    @property
    def summary_fractions(self) -> Dict[str, float]:
        """Cycle-weighted phase split across the whole network."""
        if self.total_cycles <= 0:
            return {phase: 0.0 for phase in PHASE_ORDER}
        totals = {phase: 0.0 for phase in PHASE_ORDER}
        for layer in self.layers:
            for phase in PHASE_ORDER:
                totals[phase] += layer.fractions[phase] * layer.total_cycles
        return {phase: totals[phase] / self.total_cycles for phase in PHASE_ORDER}

    @property
    def bound_counts(self) -> Dict[str, int]:
        counts = {bound: 0 for bound in BOUNDS}
        for layer in self.layers:
            counts[layer.bound] += 1
        return counts

    def critical_layers(self, k: int = 5) -> List[Tuple[LayerAttribution, float]]:
        """Top-k layers by cycle count, each with its share of the total."""
        if k < 1:
            raise ValueError("k must be positive")
        ranked = sorted(self.layers, key=lambda la: la.total_cycles, reverse=True)
        total = self.total_cycles or 1
        return [(layer, layer.total_cycles / total) for layer in ranked[:k]]


def attribute_layer(layer: LayerResult) -> LayerAttribution:
    """Classify one layer and split its cycles into exact fractions."""
    phases = layer.phase_cycles()
    total = layer.total_cycles
    if total > 0:
        fractions = {phase: phases[phase] / total for phase in PHASE_ORDER}
    else:
        fractions = {phase: 0.0 for phase in PHASE_ORDER}
    if layer.dram_bound:
        bound = "dram"
    elif layer.compute_cycles >= layer.preparation_cycles:
        bound = "compute"
    else:
        bound = "preparation"
    dominant = max(PHASE_ORDER, key=lambda phase: phases[phase])
    return LayerAttribution(
        name=layer.name,
        total_cycles=total,
        macs=layer.macs,
        fractions=fractions,
        bound=bound,
        dominant_phase=dominant,
    )


def attribute(run: SimulationResult) -> AttributionReport:
    """Per-layer bound classification + fractions for a finished run."""
    layers = [attribute_layer(layer) for layer in run.layers]
    return AttributionReport(
        design=run.design,
        network=run.network,
        batch=run.batch,
        total_cycles=run.total_cycles,
        layers=layers,
    )


def roofline(
    run: SimulationResult,
    peak_mac_per_s: float,
    memory_bandwidth_gbps: float,
) -> RooflineReport:
    """Roofline points of a run under the given compute and bandwidth roofs.

    ``peak_mac_per_s`` comes from the estimator (clock × PE count);
    ``memory_bandwidth_gbps`` from the design's DRAM interface.  A layer's
    attainable throughput is ``min(compute roof, intensity × bandwidth)``.
    """
    if peak_mac_per_s <= 0:
        raise ValueError("peak throughput must be positive")
    if memory_bandwidth_gbps <= 0:
        raise ValueError("memory bandwidth must be positive")
    compute_roof_gops = OPS_PER_MAC * peak_mac_per_s / 1e9
    bandwidth_bytes_per_s = memory_bandwidth_gbps * 1e9
    ridge = peak_mac_per_s / bandwidth_bytes_per_s  # MACs/byte at the knee

    points: List[RooflinePoint] = []
    for layer in run.layers:
        if layer.dram_traffic_bytes <= 0 or layer.total_cycles <= 0:
            continue
        intensity = layer.macs / layer.dram_traffic_bytes
        seconds = layer.total_cycles / (run.frequency_ghz * 1e9)
        achieved_gops = OPS_PER_MAC * layer.macs / seconds / 1e9
        bandwidth_roof_gops = (
            OPS_PER_MAC * intensity * bandwidth_bytes_per_s / 1e9
        )
        attainable = min(compute_roof_gops, bandwidth_roof_gops)
        limiter = "bandwidth" if bandwidth_roof_gops < compute_roof_gops else "compute"
        points.append(
            RooflinePoint(
                name=layer.name,
                intensity_macs_per_byte=intensity,
                achieved_gops=achieved_gops,
                attainable_gops=attainable,
                limiter=limiter,
            )
        )
    return RooflineReport(
        design=run.design,
        network=run.network,
        compute_roof_gops=compute_roof_gops,
        bandwidth_gbytes_per_s=memory_bandwidth_gbps,
        ridge_macs_per_byte=ridge,
        points=points,
    )


def phase_cycle_totals(run: SimulationResult) -> Dict[str, int]:
    """Whole-run cycles per phase plus ``total`` (for A-vs-B deltas)."""
    totals = {phase: 0 for phase in PHASE_ORDER}
    for layer in run.layers:
        for phase, cycles in layer.phase_cycles().items():
            totals[phase] += cycles
    totals["total"] = run.total_cycles
    return totals


def attribution_records(report: AttributionReport) -> List[Dict[str, object]]:
    """Flat per-layer dict records (JSON/CSV-ready)."""
    records: List[Dict[str, object]] = []
    for layer in report.layers:
        record: Dict[str, object] = {
            "layer": layer.name,
            "total_cycles": layer.total_cycles,
            "macs": layer.macs,
            "bound": layer.bound,
            "dominant_phase": layer.dominant_phase,
        }
        for phase in PHASE_ORDER:
            record[f"frac_{phase}"] = layer.fractions[phase]
        records.append(record)
    return records


def roofline_records(report: RooflineReport) -> List[Dict[str, object]]:
    """Flat per-layer roofline records (JSON/CSV-ready)."""
    return [
        {
            "layer": point.name,
            "intensity_macs_per_byte": point.intensity_macs_per_byte,
            "achieved_gops": point.achieved_gops,
            "attainable_gops": point.attainable_gops,
            "limiter": point.limiter,
        }
        for point in report.points
    ]
